//! Criterion benches: engine-level ablations.
//!
//! * **CLA caching** (the RAxML traversal descriptor): full
//!   re-evaluation after one branch change, with the lazy cache vs a
//!   cold cache. This quantifies why §V-C's "thousands of kernel
//!   invocations per second" are affordable at all.
//! * **Memory-saving recomputation** ([23], §V-A): the bounded-pool
//!   engine at minimal vs full pool size — the time cost of the memory
//!   cap.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use phylo_bench::paper_dataset;
use plf_core::recompute::{min_pool_slots_any_root, RecomputingEngine};
use plf_core::{EngineConfig, LikelihoodEngine};

const PATTERNS: usize = 20_000;

fn bench_engine(c: &mut Criterion) {
    let (tree, aln) = paper_dataset(15, PATTERNS, 31);
    let cfg = EngineConfig::default();

    let mut g = c.benchmark_group("cla_caching");
    g.throughput(Throughput::Elements(PATTERNS as u64));
    g.sample_size(20);
    g.bench_function("warm_cache_one_branch_changed", |b| {
        let mut engine = LikelihoodEngine::new(&tree, &aln, cfg);
        let mut t = tree.clone();
        engine.log_likelihood(&t, 0);
        let mut flip = false;
        b.iter(|| {
            flip = !flip;
            // A pendant branch change invalidates only the path to the
            // root edge.
            t.set_length(1, if flip { 0.11 } else { 0.13 }).unwrap();
            engine.log_likelihood(&t, 0)
        })
    });
    g.bench_function("cold_cache_full_traversal", |b| {
        let mut engine = LikelihoodEngine::new(&tree, &aln, cfg);
        b.iter(|| {
            engine.invalidate_all();
            engine.log_likelihood(&tree, 0)
        })
    });
    g.finish();

    let mut g = c.benchmark_group("memory_pool");
    g.throughput(Throughput::Elements(PATTERNS as u64));
    g.sample_size(20);
    let min_pool = min_pool_slots_any_root(&tree);
    for (label, pool) in [("full_pool", tree.num_inner()), ("minimal_pool", min_pool)] {
        g.bench_with_input(BenchmarkId::from_parameter(label), &pool, |b, &pool| {
            let mut engine = RecomputingEngine::new(&tree, &aln, cfg, pool);
            // Alternate between two distant roots: the minimal pool
            // must recompute evicted CLAs every time.
            let roots = [0usize, tree.num_edges() - 1];
            let mut i = 0;
            b.iter(|| {
                i = (i + 1) % 2;
                engine.log_likelihood(&tree, roots[i])
            })
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_engine
}
criterion_main!(benches);
