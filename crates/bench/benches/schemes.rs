//! Criterion benches: parallelization schemes (§V-C/§V-D).
//!
//! Compares full-likelihood evaluation under a single engine, the
//! fork-join worker scheme, and the ExaML replicated scheme across
//! thread counts — the host-side counterpart of the paper's
//! RAxML-Light vs ExaML comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use phylo_bench::paper_dataset;
use phylo_parallel::{Comm, ForkJoinEvaluator, ReplicatedEvaluator, ThreadCommGroup};
use phylo_search::Evaluator;
use plf_core::{EngineConfig, LikelihoodEngine};

const PATTERNS: usize = 50_000;

fn bench_schemes(c: &mut Criterion) {
    let (tree, aln) = paper_dataset(15, PATTERNS, 11);
    let cfg = EngineConfig::default();

    let mut g = c.benchmark_group("full_likelihood");
    g.throughput(Throughput::Elements(PATTERNS as u64));
    g.sample_size(20);

    g.bench_function("single_engine", |b| {
        let mut engine = LikelihoodEngine::new(&tree, &aln, cfg);
        b.iter(|| {
            engine.invalidate_all();
            LikelihoodEngine::log_likelihood(&mut engine, &tree, 0)
        })
    });

    for workers in [2usize, 4] {
        g.bench_with_input(
            BenchmarkId::new("forkjoin", workers),
            &workers,
            |b, &workers| {
                let mut fj = ForkJoinEvaluator::new(&tree, &aln, cfg, workers);
                // Force full recomputation per iteration by toggling a
                // branch length between two values.
                let mut t = tree.clone();
                let mut flip = false;
                b.iter(|| {
                    flip = !flip;
                    t.set_length(0, if flip { 0.11 } else { 0.12 }).unwrap();
                    fj.log_likelihood(&t, 0)
                })
            },
        );
    }
    g.finish();

    // Replicated scheme: measure the per-evaluation cost inside worker
    // threads (2 ranks), including the AllReduce.
    let mut g = c.benchmark_group("replicated_eval");
    g.sample_size(20);
    g.bench_function("2_ranks", |b| {
        b.iter_custom(|iters| {
            let ranges = phylo_parallel::forkjoin::split_ranges(aln.num_patterns(), 2);
            let mut group = ThreadCommGroup::new(2, 8);
            let start = std::time::Instant::now();
            std::thread::scope(|s| {
                for range in ranges {
                    let comm = group.take();
                    let tree = &tree;
                    let aln = &aln;
                    s.spawn(move || {
                        let engine = LikelihoodEngine::with_range(tree, aln, cfg, range);
                        let mut eval = ReplicatedEvaluator::new(engine, comm);
                        let mut t = tree.clone();
                        let mut flip = false;
                        for _ in 0..iters {
                            flip = !flip;
                            t.set_length(0, if flip { 0.11 } else { 0.12 }).unwrap();
                            eval.log_likelihood(&t, 0);
                        }
                    });
                }
            });
            start.elapsed()
        })
    });
    g.finish();
}

// Quiet the unused-trait warning: Comm is used via ReplicatedEvaluator.
#[allow(dead_code)]
fn _assert_comm_used<C: Comm>() {}

criterion_group! {
    name = benches;
    config = Criterion::default();
    targets = bench_schemes
}
criterion_main!(benches);
