//! Criterion benches: the four PLF kernels, scalar vs vector variants
//! (the host-side counterpart of the paper's Figure 2/Figure 3 — the
//! measurable effect of §V-B's loop fusion, alignment, and site
//! blocking).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use phylo_models::{DiscreteGamma, Gtr, GtrParams, ProbMatrix};
use plf_core::cla::Cla;
use plf_core::layout::{EigenBasis, FusedPmat, Lut16x16};
use plf_core::{AlignedVec, KernelKind, SITE_STRIDE};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const PATTERNS: usize = 16_384;

struct Fixture {
    p_l: FusedPmat,
    p_r: FusedPmat,
    lut_l: Lut16x16,
    lut_r: Lut16x16,
    pi_tip: Lut16x16,
    pi_w: [f64; SITE_STRIDE],
    basis: EigenBasis,
    codes: Vec<u8>,
    v_l: Cla,
    v_r: Cla,
    weights: Vec<u32>,
    sumtable: AlignedVec,
}

fn fixture() -> Fixture {
    let gtr = Gtr::new(GtrParams {
        rates: [1.1, 2.6, 0.8, 1.2, 3.4, 1.0],
        freqs: [0.29, 0.21, 0.22, 0.28],
    });
    let gamma = DiscreteGamma::new(0.85);
    let rates = *gamma.rates();
    let p_l = FusedPmat::from_prob(&ProbMatrix::new(gtr.eigen(), &rates, 0.13));
    let p_r = FusedPmat::from_prob(&ProbMatrix::new(gtr.eigen(), &rates, 0.27));
    let mut rng = SmallRng::seed_from_u64(7);
    let mut v_l = Cla::new(PATTERNS);
    let mut v_r = Cla::new(PATTERNS);
    for v in v_l
        .values_mut()
        .iter_mut()
        .chain(v_r.values_mut().iter_mut())
    {
        *v = rng.random::<f64>() * 0.5 + 0.25;
    }
    let codes: Vec<u8> = (0..PATTERNS)
        .map(|_| [1u8, 2, 4, 8, 15][rng.random_range(0..5usize)])
        .collect();
    let mut pi_w = [0.0; SITE_STRIDE];
    for k in 0..4 {
        for a in 0..4 {
            pi_w[4 * k + a] = 0.25 * gtr.freqs()[a];
        }
    }
    Fixture {
        lut_l: Lut16x16::tip_prob(&p_l),
        lut_r: Lut16x16::tip_prob(&p_r),
        pi_tip: Lut16x16::tip_pi(&gtr.freqs()),
        basis: EigenBasis::new(gtr.eigen(), &rates),
        p_l,
        p_r,
        pi_w,
        codes,
        v_l,
        v_r,
        weights: vec![1; PATTERNS],
        sumtable: AlignedVec::zeroed(PATTERNS * SITE_STRIDE),
    }
}

fn bench_kernels(c: &mut Criterion) {
    let mut fx = fixture();
    let variants = [KernelKind::Scalar, KernelKind::Vector, KernelKind::Simd];

    let mut g = c.benchmark_group("newview_ii");
    g.throughput(Throughput::Elements(PATTERNS as u64));
    for kind in variants {
        let k = kind.kernels();
        let mut out = Cla::new(PATTERNS);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &(),
            |b, ()| {
                b.iter(|| {
                    let (v, s) = out.buffers_mut();
                    k.newview_ii(
                        &fx.p_l,
                        fx.v_l.values(),
                        fx.v_l.scale(),
                        &fx.p_r,
                        fx.v_r.values(),
                        fx.v_r.scale(),
                        v,
                        s,
                    );
                })
            },
        );
    }
    g.finish();

    let mut g = c.benchmark_group("newview_ti");
    g.throughput(Throughput::Elements(PATTERNS as u64));
    for kind in variants {
        let k = kind.kernels();
        let mut out = Cla::new(PATTERNS);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &(),
            |b, ()| {
                b.iter(|| {
                    let (v, s) = out.buffers_mut();
                    k.newview_ti(
                        &fx.lut_l,
                        &fx.codes,
                        &fx.p_r,
                        fx.v_r.values(),
                        fx.v_r.scale(),
                        v,
                        s,
                    );
                })
            },
        );
    }
    g.finish();

    let mut g = c.benchmark_group("newview_tt");
    g.throughput(Throughput::Elements(PATTERNS as u64));
    for kind in variants {
        let k = kind.kernels();
        let mut out = Cla::new(PATTERNS);
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &(),
            |b, ()| {
                b.iter(|| {
                    let (v, s) = out.buffers_mut();
                    k.newview_tt(&fx.lut_l, &fx.lut_r, &fx.codes, &fx.codes, v, s);
                })
            },
        );
    }
    g.finish();

    let mut g = c.benchmark_group("evaluate_ii");
    g.throughput(Throughput::Elements(PATTERNS as u64));
    for kind in variants {
        let k = kind.kernels();
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &(),
            |b, ()| {
                b.iter(|| {
                    k.evaluate_ii(
                        &fx.pi_w,
                        fx.v_l.values(),
                        fx.v_l.scale(),
                        &fx.p_r,
                        fx.v_r.values(),
                        fx.v_r.scale(),
                        &fx.weights,
                    )
                })
            },
        );
    }
    g.finish();

    let mut g = c.benchmark_group("evaluate_ti");
    g.throughput(Throughput::Elements(PATTERNS as u64));
    for kind in variants {
        let k = kind.kernels();
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &(),
            |b, ()| {
                b.iter(|| {
                    k.evaluate_ti(
                        &fx.pi_tip,
                        &fx.codes,
                        &fx.p_r,
                        fx.v_r.values(),
                        fx.v_r.scale(),
                        &fx.weights,
                    )
                })
            },
        );
    }
    g.finish();

    let mut g = c.benchmark_group("derivative_sum_ii");
    g.throughput(Throughput::Elements(PATTERNS as u64));
    for kind in variants {
        let k = kind.kernels();
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &(),
            |b, ()| {
                b.iter(|| {
                    k.derivative_sum_ii(
                        &fx.basis,
                        fx.v_l.values(),
                        fx.v_r.values(),
                        &mut fx.sumtable,
                    )
                })
            },
        );
    }
    g.finish();

    // Fill the sumtable once so derivative_core sees realistic data.
    KernelKind::Vector.kernels().derivative_sum_ii(
        &fx.basis,
        fx.v_l.values(),
        fx.v_r.values(),
        &mut fx.sumtable,
    );
    let mut g = c.benchmark_group("derivative_core");
    g.throughput(Throughput::Elements(PATTERNS as u64));
    for kind in variants {
        let k = kind.kernels();
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{kind:?}")),
            &(),
            |b, ()| {
                b.iter(|| k.derivative_core(&fx.sumtable, &fx.basis.lambda_rate, 0.2, &fx.weights))
            },
        );
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_kernels
}
criterion_main!(benches);
