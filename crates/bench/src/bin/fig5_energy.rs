//! Regenerates Figure 5: relative energy savings compared to the CPU
//! baseline, using the paper's `E = MaxTDP × RunTime / 3600` estimate.
//!
//! Run: `cargo run --release -p phylo-bench --bin fig5_energy`

use micsim::energy::fig5_energy_savings;
use micsim::systems::SystemId;
use phylo_bench::{fmt_size, standard_trace};

fn main() {
    eprintln!("recording workload trace (instrumented replicated search)...");
    let trace = standard_trace();
    println!("Figure 5: relative energy savings vs 2S E5-2680 baseline");
    println!("(E_baseline / E_system; >1 means more energy-efficient)");
    println!();
    print!("{:>8}", "size");
    for s in SystemId::ALL {
        print!(" {:>18}", s.paper_name());
    }
    println!();
    for (size, row) in fig5_energy_savings(&trace) {
        print!("{:>8}", fmt_size(size));
        for sys in SystemId::ALL {
            let v = row.iter().find(|(s, _)| *s == sys).unwrap().1;
            print!(" {:>18.2}", v);
        }
        println!();
    }
    println!();
    println!("Expected shape (paper): single MIC overtakes at ~100K and reaches ~2.3x;");
    println!("the second card reduces energy efficiency everywhere, but the dual-MIC");
    println!("system still beats both CPUs for alignments over 500K sites.");
}
