//! Parallel-region overhead ablation: measures the real fork/join
//! barrier cost of the PThreads-style scheme on this host, across
//! worker counts and alignment sizes, and fits the measured per-kernel
//! cost model the `micsim` calibration consumes.
//!
//! This is the measured counterpart of the §V-D synchronization
//! analysis ("master and worker processes have to communicate at least
//! twice per parallel region/kernel"): per region we time the fork
//! barrier (master releasing the workers) and the join barrier (master
//! waiting for the slowest partial result), then show how the per-site
//! compute share shrinks relative to that fixed cost as workers grow —
//! the same granularity effect that buries the 236-thread MIC on small
//! alignments (§VI-B2).
//!
//! Run: `cargo run --release -p phylo-bench --bin ablation_regions`

use micsim::calibration::MeasuredHostCosts;
use phylo_bench::paper_dataset;
use phylo_parallel::ForkJoinEvaluator;
use phylo_search::Evaluator;
use plf_core::trace::{events_from_stats, write_jsonl};
use plf_core::{EngineConfig, KernelId};

/// Parallel regions dispatched per measurement (evaluate + derivative
/// rounds).
const ROUNDS: usize = 40;

fn main() {
    let (tree, aln) = paper_dataset(15, 20_000, 7);
    let cfg = EngineConfig::default();

    println!("Fork/join region overhead on this host (20K patterns, {ROUNDS} regions/row)");
    println!();
    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>14}",
        "workers", "fork ns", "join ns", "eval ns/call", "sites/worker"
    );

    let mut all_events = Vec::new();
    for workers in [1usize, 2, 4, 8] {
        let mut fj = ForkJoinEvaluator::new(&tree, &aln, cfg, workers);
        for r in 0..ROUNDS {
            let edge = r % tree.num_edges();
            fj.log_likelihood(&tree, edge);
        }
        let per_worker = fj.take_stats_per_worker();
        let master = fj.master_stats().clone();

        for (i, stats) in per_worker.iter().enumerate() {
            all_events.extend(events_from_stats(&format!("w{workers}.{i}"), stats));
        }
        all_events.extend(events_from_stats(&format!("master{workers}"), &master));

        let r = master.regions();
        let eval_ns: f64 = per_worker
            .iter()
            .map(|s| s.timing(KernelId::Evaluate).mean_ns())
            .sum::<f64>()
            / workers as f64;
        println!(
            "{:>8} {:>12.0} {:>12.0} {:>14.0} {:>14}",
            workers,
            r.fork.mean_ns(),
            r.join.mean_ns(),
            eval_ns,
            aln.num_patterns() / workers
        );
    }

    println!();
    println!("Measured per-kernel cost fit (total_ns = per_call*calls + per_site*sites),");
    println!("from the per-worker trace events above:");
    println!();
    let doc = write_jsonl(&all_events);
    match MeasuredHostCosts::from_jsonl(&doc) {
        Ok(costs) => {
            println!(
                "{:>16} {:>14} {:>14} {:>9}",
                "kernel", "per-call ns", "per-site ns", "samples"
            );
            for k in KernelId::ALL {
                let f = costs.fit(k);
                if f.samples == 0 {
                    continue;
                }
                println!(
                    "{:>16} {:>14.1} {:>14.3} {:>9}",
                    k.paper_name(),
                    f.per_call_ns,
                    f.per_site_ns,
                    f.samples
                );
            }
            println!();
            println!(
                "mean region overhead: fork {:.0} ns + join {:.0} ns = {:.2} us/region",
                costs.region_fork_ns,
                costs.region_join_ns,
                costs.region_overhead_s() * 1e6
            );
        }
        Err(e) => eprintln!("calibration fit failed: {e}"),
    }
    println!();
    println!("The join barrier, not the fork, carries the load imbalance: it absorbs the");
    println!("slowest worker's tail. As workers grow, per-worker sites shrink while the");
    println!("barrier cost does not — the paper's small-alignment granularity wall.");
}
