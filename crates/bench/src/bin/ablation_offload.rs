//! §V-C ablation: offload vs native execution mode.
//!
//! The paper's offloading prototype was more than 2x slower than the
//! native port because every kernel invocation pays the offload
//! runtime + PCIe latency, and ML inference performs thousands of
//! invocations per second. This binary reproduces that comparison from
//! the recorded invocation counts.
//!
//! Run: `cargo run --release -p phylo-bench --bin ablation_offload`

use micsim::model::{predict_time, ExecMode};
use micsim::systems::{SystemId, TABLE3_SIZES};
use phylo_bench::{fmt_size, fmt_time, standard_trace};

fn main() {
    eprintln!("recording workload trace (instrumented replicated search)...");
    let trace = standard_trace();
    println!("Offload vs native execution on one Xeon Phi 5110P (§V-C)");
    println!();
    println!(
        "{:>8} {:>10} {:>10} {:>14}",
        "size", "native", "offload", "native speedup"
    );
    for &size in &TABLE3_SIZES {
        let scaled = trace.scaled_to(size);
        let native = predict_time(&SystemId::Phi1.config(), &scaled).total();
        let mut cfg = SystemId::Phi1.config();
        cfg.mode = ExecMode::Offload;
        let offload = predict_time(&cfg, &scaled).total();
        println!(
            "{:>8} {:>9}s {:>9}s {:>13.2}x",
            fmt_size(size),
            fmt_time(native),
            fmt_time(offload),
            offload / native
        );
    }
    println!();
    println!(
        "Total kernel invocations in the trace: {} (each pays ~300 us in offload mode)",
        trace.stats.total_calls()
    );
    println!("Paper: native \"speedup exceeding a factor of two compared to the");
    println!("initial offloading-based version\" on the small RAxML-Light test runs.");
}
