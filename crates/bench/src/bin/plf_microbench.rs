//! `plf-microbench`: per-kernel, per-backend wall-time measurement
//! (the host-side analogue of the paper's Figure 3 / Table III sweep).
//!
//! Times all eight PLF kernels under every kernel backend —
//! `scalar`, `vector`, and `simd` — across the alignment widths the
//! paper varies in Table III, and writes `BENCH_5.json` with ns/site
//! per kernel per backend plus the speedup of each backend over the
//! scalar reference.
//!
//! Methodology: per (kernel, backend, size) the kernel runs `WARMUP`
//! untimed rounds, then `REPS` timed rounds; the minimum and maximum
//! round are discarded and the rest averaged (trimmed mean), divided
//! by the pattern count to give ns/site. Inputs are drawn from a range
//! that never triggers numerical rescaling, and the scaling counters
//! produced by every backend are asserted identical before timing —
//! so all backends do exactly the same scaling work and the comparison
//! is purely about the arithmetic/memory pipeline.
//!
//! The binary doubles as the CI perf gate: if the explicit-SIMD
//! backend is available on the host but fails to beat the scalar
//! reference on `newview_ii` at the largest measured size, it exits
//! nonzero.
//!
//! Run: `cargo run --release -p phylo-bench --bin plf-microbench`
//! Flags: `--quick` (10 000 patterns only), `--out PATH`
//! (default `BENCH_5.json`).

use phylo_models::{DiscreteGamma, Gtr, GtrParams, ProbMatrix};
use plf_core::cla::Cla;
use plf_core::layout::{EigenBasis, FusedPmat, Lut16x16};
use plf_core::{AlignedVec, KernelKind, SITE_STRIDE};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Table III varies alignment width over roughly three decades; these
/// are the pattern counts after compression that the host sweep uses.
const SIZES: [usize; 3] = [1_000, 10_000, 100_000];
const QUICK_SIZES: [usize; 1] = [10_000];
const BACKENDS: [KernelKind; 3] = [KernelKind::Scalar, KernelKind::Vector, KernelKind::Simd];
const KERNELS: [&str; 8] = [
    "newview_tt",
    "newview_ti",
    "newview_ii",
    "evaluate_ti",
    "evaluate_ii",
    "derivative_sum_ti",
    "derivative_sum_ii",
    "derivative_core",
];
const WARMUP: usize = 2;
const REPS: usize = 12;
/// Rounds dropped from each end of the sorted timings (interquartile
/// trimmed mean — the host may be a noisy shared VM).
const TRIM: usize = 3;

struct Fixture {
    patterns: usize,
    p_l: FusedPmat,
    p_r: FusedPmat,
    lut_l: Lut16x16,
    lut_r: Lut16x16,
    pi_tip: Lut16x16,
    pi_w: [f64; SITE_STRIDE],
    basis: EigenBasis,
    codes: Vec<u8>,
    v_l: Cla,
    v_r: Cla,
    weights: Vec<u32>,
    sumtable: AlignedVec,
}

fn fixture(patterns: usize) -> Fixture {
    let gtr = Gtr::new(GtrParams {
        rates: [1.1, 2.6, 0.8, 1.2, 3.4, 1.0],
        freqs: [0.29, 0.21, 0.22, 0.28],
    });
    let gamma = DiscreteGamma::new(0.85);
    let rates = *gamma.rates();
    let p_l = FusedPmat::from_prob(&ProbMatrix::new(gtr.eigen(), &rates, 0.13));
    let p_r = FusedPmat::from_prob(&ProbMatrix::new(gtr.eigen(), &rates, 0.27));
    let mut rng = SmallRng::seed_from_u64(7);
    let mut v_l = Cla::new(patterns);
    let mut v_r = Cla::new(patterns);
    // 0.25..0.75: far above the 2^-256 rescaling threshold, so no
    // backend ever scales and the counters stay fixed at zero.
    for v in v_l
        .values_mut()
        .iter_mut()
        .chain(v_r.values_mut().iter_mut())
    {
        *v = rng.random::<f64>() * 0.5 + 0.25;
    }
    let codes: Vec<u8> = (0..patterns)
        .map(|_| [1u8, 2, 4, 8, 15][rng.random_range(0..5usize)])
        .collect();
    let mut pi_w = [0.0; SITE_STRIDE];
    for k in 0..4 {
        for a in 0..4 {
            pi_w[4 * k + a] = 0.25 * gtr.freqs()[a];
        }
    }
    Fixture {
        patterns,
        lut_l: Lut16x16::tip_prob(&p_l),
        lut_r: Lut16x16::tip_prob(&p_r),
        pi_tip: Lut16x16::tip_pi(&gtr.freqs()),
        basis: EigenBasis::new(gtr.eigen(), &rates),
        p_l,
        p_r,
        pi_w,
        codes,
        v_l,
        v_r,
        weights: vec![1; patterns],
        sumtable: AlignedVec::zeroed(patterns * SITE_STRIDE),
    }
}

/// Runs `kernel` once under `kind`, returning the scaling counters it
/// produced (empty for kernels that have none). Used both as the
/// warmup/timed body and for the cross-backend counter assertion.
fn run_kernel(fx: &mut Fixture, kernel: &str, kind: KernelKind, out: &mut Cla) -> Vec<u32> {
    let k = kind.kernels();
    match kernel {
        "newview_tt" => {
            let (v, s) = out.buffers_mut();
            k.newview_tt(&fx.lut_l, &fx.lut_r, &fx.codes, &fx.codes, v, s);
            out.scale().to_vec()
        }
        "newview_ti" => {
            let (v, s) = out.buffers_mut();
            k.newview_ti(
                &fx.lut_l,
                &fx.codes,
                &fx.p_r,
                fx.v_r.values(),
                fx.v_r.scale(),
                v,
                s,
            );
            out.scale().to_vec()
        }
        "newview_ii" => {
            let (v, s) = out.buffers_mut();
            k.newview_ii(
                &fx.p_l,
                fx.v_l.values(),
                fx.v_l.scale(),
                &fx.p_r,
                fx.v_r.values(),
                fx.v_r.scale(),
                v,
                s,
            );
            out.scale().to_vec()
        }
        "evaluate_ti" => {
            black_box(k.evaluate_ti(
                &fx.pi_tip,
                &fx.codes,
                &fx.p_r,
                fx.v_r.values(),
                fx.v_r.scale(),
                &fx.weights,
            ));
            Vec::new()
        }
        "evaluate_ii" => {
            black_box(k.evaluate_ii(
                &fx.pi_w,
                fx.v_l.values(),
                fx.v_l.scale(),
                &fx.p_r,
                fx.v_r.values(),
                fx.v_r.scale(),
                &fx.weights,
            ));
            Vec::new()
        }
        "derivative_sum_ti" => {
            k.derivative_sum_ti(&fx.basis, &fx.codes, fx.v_r.values(), &mut fx.sumtable);
            Vec::new()
        }
        "derivative_sum_ii" => {
            k.derivative_sum_ii(
                &fx.basis,
                fx.v_l.values(),
                fx.v_r.values(),
                &mut fx.sumtable,
            );
            Vec::new()
        }
        "derivative_core" => {
            black_box(k.derivative_core(&fx.sumtable, &fx.basis.lambda_rate, 0.2, &fx.weights));
            Vec::new()
        }
        other => panic!("unknown kernel {other}"),
    }
}

/// Trimmed-mean ns/site for one (kernel, backend, size) cell.
fn time_kernel(fx: &mut Fixture, kernel: &str, kind: KernelKind) -> f64 {
    let mut out = Cla::new(fx.patterns);
    // derivative_core reads the sumtable; make sure it holds real data
    // (the sum kernels are measured before it in KERNELS order, but a
    // fresh fixture per backend must not depend on that).
    if kernel == "derivative_core" {
        run_kernel(fx, "derivative_sum_ii", KernelKind::Vector, &mut out);
    }
    for _ in 0..WARMUP {
        run_kernel(fx, kernel, kind, &mut out);
    }
    let mut rounds = [0.0f64; REPS];
    for r in rounds.iter_mut() {
        let start = Instant::now();
        run_kernel(fx, kernel, kind, &mut out);
        *r = start.elapsed().as_secs_f64();
    }
    rounds.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let trimmed = &rounds[TRIM..REPS - TRIM];
    let mean = trimmed.iter().sum::<f64>() / trimmed.len() as f64;
    mean * 1e9 / fx.patterns as f64
}

struct Cell {
    kernel: &'static str,
    patterns: usize,
    /// ns/site, indexed like `BACKENDS`.
    ns: [f64; 3],
}

fn main() {
    let mut quick = false;
    let mut out_path = String::from("BENCH_5.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown flag {other}; usage: plf-microbench [--quick] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    let sizes: &[usize] = if quick { &QUICK_SIZES } else { &SIZES };
    let simd = KernelKind::simd_available();

    println!("plf-microbench: per-kernel ns/site, {BACKENDS:?}");
    println!(
        "host SIMD (avx2+fma): {}  |  sizes: {sizes:?}  |  reps: {REPS} (trimmed)",
        if simd {
            "available"
        } else {
            "UNAVAILABLE (simd falls back to vector)"
        }
    );
    println!();

    let mut cells: Vec<Cell> = Vec::new();
    for &n in sizes {
        println!("== {n} patterns ==");
        let mut fx = fixture(n);

        // Scaling-event parity gate: every backend must produce
        // bit-identical counters on every newview kernel before any
        // timing is trusted.
        for kernel in ["newview_tt", "newview_ti", "newview_ii"] {
            let mut out = Cla::new(n);
            let reference = run_kernel(&mut fx, kernel, KernelKind::Scalar, &mut out);
            for kind in [KernelKind::Vector, KernelKind::Simd] {
                let got = run_kernel(&mut fx, kernel, kind, &mut out);
                assert_eq!(
                    reference, got,
                    "{kernel}: scaling counters differ between Scalar and {kind:?}"
                );
            }
        }

        for kernel in KERNELS {
            let mut ns = [0.0f64; 3];
            for (i, kind) in BACKENDS.iter().enumerate() {
                ns[i] = time_kernel(&mut fx, kernel, *kind);
            }
            println!(
                "  {kernel:<18} scalar {:>8.2}  vector {:>8.2} ({:>5.2}x)  simd {:>8.2} ({:>5.2}x)",
                ns[0],
                ns[1],
                ns[0] / ns[1],
                ns[2],
                ns[0] / ns[2],
            );
            cells.push(Cell {
                kernel,
                patterns: n,
                ns,
            });
        }
        println!();
    }

    let json = render_json(&cells, simd);
    std::fs::write(&out_path, json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(2);
    });
    println!("wrote {out_path}");

    // CI gate: with AVX2+FMA present, the explicit-SIMD backend must
    // beat the scalar reference on the hot kernel at the largest size.
    if simd {
        let biggest = sizes.iter().copied().max().unwrap();
        let cell = cells
            .iter()
            .find(|c| c.kernel == "newview_ii" && c.patterns == biggest)
            .expect("newview_ii cell");
        let speedup = cell.ns[0] / cell.ns[2];
        if speedup <= 1.0 {
            eprintln!(
                "FAIL: simd newview_ii is not faster than scalar at {biggest} patterns \
                 ({:.2} vs {:.2} ns/site, {speedup:.2}x)",
                cell.ns[2], cell.ns[0]
            );
            std::process::exit(1);
        }
        println!("gate: simd newview_ii {speedup:.2}x vs scalar at {biggest} patterns — ok");
    }
}

/// Hand-rolled JSON (the workspace has no serde): one record per
/// (kernel, size) with ns/site per backend and speedups vs scalar.
fn render_json(cells: &[Cell], simd: bool) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"plf-microbench/1\",");
    let _ = writeln!(s, "  \"host_simd\": {simd},");
    let _ = writeln!(s, "  \"backends\": [\"scalar\", \"vector\", \"simd\"],");
    s.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"kernel\": \"{}\", \"patterns\": {}, \
             \"ns_per_site\": {{\"scalar\": {:.3}, \"vector\": {:.3}, \"simd\": {:.3}}}, \
             \"speedup_vs_scalar\": {{\"vector\": {:.3}, \"simd\": {:.3}}}}}",
            c.kernel,
            c.patterns,
            c.ns[0],
            c.ns[1],
            c.ns[2],
            c.ns[0] / c.ns[1],
            c.ns[0] / c.ns[2],
        );
        s.push_str(if i + 1 == cells.len() { "\n" } else { ",\n" });
    }
    s.push_str("  ]\n}\n");
    s
}
