//! `plf-microbench`: per-kernel, per-backend wall-time measurement
//! (the host-side analogue of the paper's Figure 3 / Table III sweep).
//!
//! Times all eight PLF kernels under every kernel backend —
//! `scalar`, `vector`, `simd`, and the size-aware `auto` dispatcher —
//! across the alignment widths the paper varies in Table III, and
//! writes `BENCH_7.json` with ns/site per kernel per backend plus the
//! speedup of each backend over the scalar reference, host provenance
//! (git revision, CPU model, core count, SIMD flags), and — via the
//! analytical cost model ([`plf_core::cost`]) and the calibrated host
//! roofline ([`plf_prof::roofline`]) — each cell's achieved GFLOP/s
//! and % of the attainable roof.
//!
//! Methodology: per (kernel, backend, size) the kernel runs `WARMUP`
//! untimed rounds, then `REPS` timed rounds; the minimum and maximum
//! rounds are discarded and the rest averaged (trimmed mean), divided
//! by the pattern count to give ns/site. Inputs are drawn from a range
//! that never triggers numerical rescaling, and the scaling counters
//! produced by every backend are asserted identical before timing —
//! so all backends do exactly the same scaling work and the comparison
//! is purely about the arithmetic/memory pipeline.
//!
//! A second section measures site-repeat compression: a repeat-heavy
//! `newview_ii` input (64 prototype site patterns cycled across the
//! full width) is timed uncompressed vs compressed
//! (gather representatives → kernel over classes → expand), and a
//! 16-taxon engine-level traversal is timed with `--site-repeats`
//! on vs off.
//!
//! The binary doubles as the CI perf gate (all checked after the JSON
//! is written, so a failing run still leaves the numbers on disk):
//!   1. `vector` within `VECTOR_MAX_RATIO` of scalar on every kernel;
//!   2. `auto` no slower than `AUTO_TOLERANCE` × the best single
//!      backend on every (kernel, size) cell;
//!   3. with AVX2+FMA present, `simd` beats scalar on `newview_ii` at
//!      the largest size;
//!   4. compressed repeat-heavy `newview_ii` at least
//!      `REPEAT_MIN_SPEEDUP` × faster than uncompressed.
//!
//! Run: `cargo run --release -p phylo-bench --bin plf-microbench`
//! Flags: `--quick` (10 000 patterns only), `--out PATH`
//! (default `BENCH_7.json`).

use phylo_bio::{CompressedAlignment, DnaCode};
use phylo_models::{DiscreteGamma, Gtr, GtrParams, ProbMatrix};
use phylo_tree::build::{default_names, random_tree};
use plf_core::cla::Cla;
use plf_core::layout::{EigenBasis, FusedPmat, Lut16x16};
use plf_core::repeats::{ClassSource, RepeatTable};
use plf_core::{
    AlignedVec, EngineConfig, KernelKind, KernelOp, LikelihoodEngine, SiteRepeats, SITE_STRIDE,
};
use plf_prof::{host, roofline, HostRoofline};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

/// Table III varies alignment width over roughly three decades; these
/// are the pattern counts after compression that the host sweep uses.
const SIZES: [usize; 3] = [1_000, 10_000, 100_000];
const QUICK_SIZES: [usize; 1] = [10_000];
const BACKENDS: [KernelKind; 4] = [
    KernelKind::Scalar,
    KernelKind::Vector,
    KernelKind::Simd,
    KernelKind::Auto,
];
const KERNELS: [&str; 8] = [
    "newview_tt",
    "newview_ti",
    "newview_ii",
    "evaluate_ti",
    "evaluate_ii",
    "derivative_sum_ti",
    "derivative_sum_ii",
    "derivative_core",
];
const WARMUP: usize = 2;
/// Minimum timed rounds per cell; small sizes get proportionally more
/// (see [`reps_for`]) because a 1 000-pattern kernel round lasts only
/// a few microseconds and a single scheduler blip would otherwise
/// dominate the trimmed mean.
const MIN_REPS: usize = 12;

/// Timed rounds for a cell of `patterns` sites: at least `MIN_REPS`,
/// scaled up so every cell measures roughly the same total site count.
fn reps_for(patterns: usize) -> usize {
    MIN_REPS.max(1_200_000 / patterns.max(1))
}

/// Gate 1: the portable-vector backend must stay within this factor of
/// scalar on *every* kernel (it should win on most; the bound catches
/// auto-vectorization regressions without being noise-sensitive).
const VECTOR_MAX_RATIO: f64 = 1.5;
/// Gate 2: `auto` may lose to the best single backend by at most this
/// factor per cell — covers dispatch overhead plus timing noise.
const AUTO_TOLERANCE: f64 = 1.25;
/// Gate 4: minimum compressed-vs-uncompressed speedup on the
/// repeat-heavy `newview_ii` input.
const REPEAT_MIN_SPEEDUP: f64 = 1.5;
/// Prototype site patterns in the repeat-heavy input: 64 classes over
/// the full width, the regime §V targets (rRNA-like alignments where
/// most columns repeat an earlier induced subtree pattern).
const REPEAT_PROTOS: usize = 64;

struct Fixture {
    patterns: usize,
    p_l: FusedPmat,
    p_r: FusedPmat,
    lut_l: Lut16x16,
    lut_r: Lut16x16,
    pi_tip: Lut16x16,
    pi_w: [f64; SITE_STRIDE],
    basis: EigenBasis,
    codes: Vec<u8>,
    v_l: Cla,
    v_r: Cla,
    weights: Vec<u32>,
    sumtable: AlignedVec,
}

fn fixture(patterns: usize) -> Fixture {
    let gtr = Gtr::new(GtrParams {
        rates: [1.1, 2.6, 0.8, 1.2, 3.4, 1.0],
        freqs: [0.29, 0.21, 0.22, 0.28],
    });
    let gamma = DiscreteGamma::new(0.85);
    let rates = *gamma.rates();
    let p_l = FusedPmat::from_prob(&ProbMatrix::new(gtr.eigen(), &rates, 0.13));
    let p_r = FusedPmat::from_prob(&ProbMatrix::new(gtr.eigen(), &rates, 0.27));
    let mut rng = SmallRng::seed_from_u64(7);
    let mut v_l = Cla::new(patterns);
    let mut v_r = Cla::new(patterns);
    // 0.25..0.75: far above the 2^-256 rescaling threshold, so no
    // backend ever scales and the counters stay fixed at zero.
    for v in v_l
        .values_mut()
        .iter_mut()
        .chain(v_r.values_mut().iter_mut())
    {
        *v = rng.random::<f64>() * 0.5 + 0.25;
    }
    let codes: Vec<u8> = (0..patterns)
        .map(|_| [1u8, 2, 4, 8, 15][rng.random_range(0..5usize)])
        .collect();
    let mut pi_w = [0.0; SITE_STRIDE];
    for k in 0..4 {
        for a in 0..4 {
            pi_w[4 * k + a] = 0.25 * gtr.freqs()[a];
        }
    }
    Fixture {
        patterns,
        lut_l: Lut16x16::tip_prob(&p_l),
        lut_r: Lut16x16::tip_prob(&p_r),
        pi_tip: Lut16x16::tip_pi(&gtr.freqs()),
        basis: EigenBasis::new(gtr.eigen(), &rates),
        p_l,
        p_r,
        pi_w,
        codes,
        v_l,
        v_r,
        weights: vec![1; patterns],
        sumtable: AlignedVec::zeroed(patterns * SITE_STRIDE),
    }
}

/// Runs `kernel` once under `kind`, returning the scaling counters it
/// produced (empty for kernels that have none). Used both as the
/// warmup/timed body and for the cross-backend counter assertion.
fn run_kernel(fx: &mut Fixture, kernel: &str, kind: KernelKind, out: &mut Cla) -> Vec<u32> {
    let k = kind.kernels();
    match kernel {
        "newview_tt" => {
            let (v, s) = out.buffers_mut();
            k.newview_tt(&fx.lut_l, &fx.lut_r, &fx.codes, &fx.codes, v, s);
            out.scale().to_vec()
        }
        "newview_ti" => {
            let (v, s) = out.buffers_mut();
            k.newview_ti(
                &fx.lut_l,
                &fx.codes,
                &fx.p_r,
                fx.v_r.values(),
                fx.v_r.scale(),
                v,
                s,
            );
            out.scale().to_vec()
        }
        "newview_ii" => {
            let (v, s) = out.buffers_mut();
            k.newview_ii(
                &fx.p_l,
                fx.v_l.values(),
                fx.v_l.scale(),
                &fx.p_r,
                fx.v_r.values(),
                fx.v_r.scale(),
                v,
                s,
            );
            out.scale().to_vec()
        }
        "evaluate_ti" => {
            black_box(k.evaluate_ti(
                &fx.pi_tip,
                &fx.codes,
                &fx.p_r,
                fx.v_r.values(),
                fx.v_r.scale(),
                &fx.weights,
            ));
            Vec::new()
        }
        "evaluate_ii" => {
            black_box(k.evaluate_ii(
                &fx.pi_w,
                fx.v_l.values(),
                fx.v_l.scale(),
                &fx.p_r,
                fx.v_r.values(),
                fx.v_r.scale(),
                &fx.weights,
            ));
            Vec::new()
        }
        "derivative_sum_ti" => {
            k.derivative_sum_ti(&fx.basis, &fx.codes, fx.v_r.values(), &mut fx.sumtable);
            Vec::new()
        }
        "derivative_sum_ii" => {
            k.derivative_sum_ii(
                &fx.basis,
                fx.v_l.values(),
                fx.v_r.values(),
                &mut fx.sumtable,
            );
            Vec::new()
        }
        "derivative_core" => {
            black_box(k.derivative_core(&fx.sumtable, &fx.basis.lambda_rate, 0.2, &fx.weights));
            Vec::new()
        }
        other => panic!("unknown kernel {other}"),
    }
}

/// Trimmed-mean seconds for `reps` timed rounds of `body` after
/// `WARMUP` untimed ones; the top and bottom quarters of the sorted
/// rounds are discarded (the host may be a noisy shared VM).
fn timed<F: FnMut()>(reps: usize, mut body: F) -> f64 {
    for _ in 0..WARMUP {
        body();
    }
    let mut rounds = vec![0.0f64; reps];
    for r in rounds.iter_mut() {
        let start = Instant::now();
        body();
        *r = start.elapsed().as_secs_f64();
    }
    rounds.sort_by(|a, b| a.partial_cmp(b).unwrap());
    let trim = reps / 4;
    let trimmed = &rounds[trim..reps - trim];
    trimmed.iter().sum::<f64>() / trimmed.len() as f64
}

/// Trimmed-mean ns/site for one (kernel, backend, size) cell.
fn time_kernel(fx: &mut Fixture, kernel: &str, kind: KernelKind) -> f64 {
    let mut out = Cla::new(fx.patterns);
    // derivative_core reads the sumtable; make sure it holds real data
    // (the sum kernels are measured before it in KERNELS order, but a
    // fresh fixture per backend must not depend on that).
    if kernel == "derivative_core" {
        run_kernel(fx, "derivative_sum_ii", KernelKind::Vector, &mut out);
    }
    let patterns = fx.patterns;
    timed(reps_for(patterns), || {
        run_kernel(fx, kernel, kind, &mut out);
    }) * 1e9
        / patterns as f64
}

struct Cell {
    kernel: &'static str,
    patterns: usize,
    /// ns/site, indexed like `BACKENDS`.
    ns: [f64; 4],
}

impl Cell {
    /// The cost-model entry point for this row.
    fn op(&self) -> KernelOp {
        KernelOp::from_name(self.kernel).expect("KERNELS names match the cost model")
    }

    /// Achieved GFLOP/s of one backend: modeled flops/site over
    /// measured ns/site.
    fn gflops(&self, backend: usize) -> f64 {
        let per_site = self.op().cost(1);
        per_site.flops as f64 / self.ns[backend]
    }

    /// Fraction of the attainable roof for one backend; `None` when
    /// uncalibrated.
    fn pct_roof(&self, backend: usize, roof: &Option<HostRoofline>) -> Option<f64> {
        let roof = roof.as_ref()?;
        if roof.peak_mflops == 0 || roof.peak_mbps == 0 {
            return None;
        }
        let ai = self.op().cost(1).arithmetic_intensity();
        let attainable = (roof.peak_mflops as f64 / 1e3).min(ai * roof.peak_mbps as f64 / 1e3);
        (attainable > 0.0).then(|| self.gflops(backend) / attainable)
    }
}

/// Repeat-heavy `newview_ii`: both children cycle `REPEAT_PROTOS`
/// prototype site vectors, so the parent has exactly `REPEAT_PROTOS`
/// repeat classes. Returns (ns/site uncompressed, ns/site compressed,
/// classes) after asserting the compressed path is bit-identical.
fn repeat_kernel_bench(patterns: usize) -> (f64, f64, usize) {
    let gtr = Gtr::new(GtrParams {
        rates: [1.1, 2.6, 0.8, 1.2, 3.4, 1.0],
        freqs: [0.29, 0.21, 0.22, 0.28],
    });
    let gamma = DiscreteGamma::new(0.85);
    let rates = *gamma.rates();
    let p_l = FusedPmat::from_prob(&ProbMatrix::new(gtr.eigen(), &rates, 0.13));
    let p_r = FusedPmat::from_prob(&ProbMatrix::new(gtr.eigen(), &rates, 0.27));
    let mut rng = SmallRng::seed_from_u64(11);

    // Prototype child site vectors; every site is a copy of prototype
    // `site % REPEAT_PROTOS`, so sites in one class have bit-identical
    // child columns — the invariant the engine's table construction
    // guarantees and the expansion correctness proof needs.
    let proto: Vec<[f64; 2 * SITE_STRIDE]> = (0..REPEAT_PROTOS)
        .map(|_| std::array::from_fn(|_| rng.random::<f64>() * 0.5 + 0.25))
        .collect();
    let mut v_l = Cla::new(patterns);
    let mut v_r = Cla::new(patterns);
    for i in 0..patterns {
        let p = &proto[i % REPEAT_PROTOS];
        v_l.values_mut()[SITE_STRIDE * i..SITE_STRIDE * (i + 1)].copy_from_slice(&p[..SITE_STRIDE]);
        v_r.values_mut()[SITE_STRIDE * i..SITE_STRIDE * (i + 1)].copy_from_slice(&p[SITE_STRIDE..]);
    }

    // The children's class structure is the same cycle; feeding it
    // through tip-style sources would cap classes at 16, so build
    // child tables from synthetic per-site "codes" via a tip pair
    // whose (l, r) code pairs cycle with period REPEAT_PROTOS.
    let codes_a: Vec<u8> = (0..patterns).map(|i| (i % 16) as u8).collect();
    let codes_b: Vec<u8> = (0..patterns)
        .map(|i| ((i / 16) % (REPEAT_PROTOS / 16)) as u8)
        .collect();
    let child = RepeatTable::build(ClassSource::Tip(&codes_a), ClassSource::Tip(&codes_b));
    let table = RepeatTable::build(ClassSource::Inner(&child), ClassSource::Inner(&child));
    assert_eq!(table.num_classes(), REPEAT_PROTOS, "fixture class count");
    let classes = table.num_classes();

    let k = KernelKind::Auto.effective().kernels();
    let mut plain = Cla::new(patterns);
    let mut compressed = Cla::new(patterns);

    // Scratch for the compressed path, mirroring RepeatScratch's
    // gather → kernel-over-classes → expand pipeline.
    let mut g_l = AlignedVec::zeroed(classes * SITE_STRIDE);
    let mut g_r = AlignedVec::zeroed(classes * SITE_STRIDE);
    let mut gs_l = vec![0u32; classes];
    let mut gs_r = vec![0u32; classes];
    let mut c_v = AlignedVec::zeroed(classes * SITE_STRIDE);
    let mut c_s = vec![0u32; classes];

    let ns_off = timed(reps_for(patterns), || {
        let (v, s) = plain.buffers_mut();
        k.newview_ii(
            &p_l,
            v_l.values(),
            v_l.scale(),
            &p_r,
            v_r.values(),
            v_r.scale(),
            v,
            s,
        );
    }) * 1e9
        / patterns as f64;

    let ns_on = timed(reps_for(patterns), || {
        table.gather_sites(v_l.values(), v_l.scale(), &mut g_l, &mut gs_l);
        table.gather_sites(v_r.values(), v_r.scale(), &mut g_r, &mut gs_r);
        k.newview_ii(&p_l, &g_l, &gs_l, &p_r, &g_r, &gs_r, &mut c_v, &mut c_s);
        let (v, s) = compressed.buffers_mut();
        table.expand(&c_v, &c_s, v, s);
    }) * 1e9
        / patterns as f64;

    assert_eq!(
        plain.values(),
        compressed.values(),
        "compressed newview_ii output is not bit-identical"
    );
    assert_eq!(plain.scale(), compressed.scale());
    (ns_off, ns_on, classes)
}

struct EngineRepeatBench {
    taxa: usize,
    patterns: usize,
    classes_per_site: f64,
    ns_off: f64,
    ns_on: f64,
}

/// Engine-level repeat benchmark: full cold-cache traversals
/// (`invalidate_all` + `log_likelihood`) of a 16-taxon repeat-heavy
/// alignment with site repeats off vs on, after asserting the two
/// engines agree bit-for-bit.
fn repeat_engine_bench(patterns: usize) -> EngineRepeatBench {
    const TAXA: usize = 16;
    let mut rng = SmallRng::seed_from_u64(19);
    let names = default_names(TAXA);
    let tree = random_tree(&names, 0.12, &mut rng).unwrap();
    let cols: Vec<Vec<usize>> = (0..REPEAT_PROTOS)
        .map(|_| (0..TAXA).map(|_| rng.random_range(0..4)).collect())
        .collect();
    let rows: Vec<Vec<DnaCode>> = (0..TAXA)
        .map(|taxon| {
            (0..patterns)
                .map(|p| DnaCode::from_state(cols[p % REPEAT_PROTOS][taxon]))
                .collect()
        })
        .collect();
    let aln = CompressedAlignment::from_parts(tree.tip_names().to_vec(), rows, vec![1; patterns])
        .unwrap();

    let engine_for = |mode: SiteRepeats| {
        LikelihoodEngine::new(
            &tree,
            &aln,
            EngineConfig {
                site_repeats: mode,
                ..EngineConfig::default()
            },
        )
    };
    let mut off = engine_for(SiteRepeats::Off);
    let mut on = engine_for(SiteRepeats::On);
    let l_off = off.log_likelihood(&tree, 0);
    let l_on = on.log_likelihood(&tree, 0);
    assert_eq!(
        l_off.to_bits(),
        l_on.to_bits(),
        "engine logL differs with repeats on: {l_off} vs {l_on}"
    );
    let stats = on.repeat_stats();
    let classes_per_site = stats.ratio().unwrap_or(1.0);

    let ns_off = timed(reps_for(patterns), || {
        off.invalidate_all();
        black_box(off.log_likelihood(&tree, 0));
    }) * 1e9
        / patterns as f64;
    let ns_on = timed(reps_for(patterns), || {
        on.invalidate_all();
        black_box(on.log_likelihood(&tree, 0));
    }) * 1e9
        / patterns as f64;

    EngineRepeatBench {
        taxa: TAXA,
        patterns,
        classes_per_site,
        ns_off,
        ns_on,
    }
}

fn main() {
    let mut quick = false;
    let mut out_path = String::from("BENCH_7.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--quick" => quick = true,
            "--out" => match args.next() {
                Some(p) => out_path = p,
                None => {
                    eprintln!("--out requires a path");
                    std::process::exit(2);
                }
            },
            other => {
                eprintln!("unknown flag {other}; usage: plf-microbench [--quick] [--out PATH]");
                std::process::exit(2);
            }
        }
    }
    let sizes: &[usize] = if quick { &QUICK_SIZES } else { &SIZES };
    let simd = KernelKind::simd_available();

    println!("plf-microbench: per-kernel ns/site, {BACKENDS:?}");
    println!(
        "host SIMD (avx2+fma): {}  |  sizes: {sizes:?}  |  reps: >= {MIN_REPS} (trimmed)",
        if simd {
            "available"
        } else {
            "UNAVAILABLE (simd falls back to vector)"
        }
    );
    println!(
        "host: {} ({} cores, simd {}), git {}",
        host::cpu_model(),
        host::cores(),
        host::simd_flags(),
        host::git_rev()
    );
    // Calibrated peaks, if `phylomic calibrate` has been run on this
    // host; without them the roofline columns print as '-'.
    let roof = roofline::load_cached(std::path::Path::new(roofline::CACHE_FILE));
    match &roof {
        Some(r) => println!(
            "roofline: {:.2} GFLOP/s peak, {:.2} GB/s peak (ridge {:.3} flop/byte, from {})",
            r.peak_mflops as f64 / 1e3,
            r.peak_mbps as f64 / 1e3,
            r.ridge(),
            roofline::CACHE_FILE
        ),
        None => println!("roofline: uncalibrated — run `phylomic calibrate` for % of roof columns"),
    }
    println!();

    let mut cells: Vec<Cell> = Vec::new();
    for &n in sizes {
        println!("== {n} patterns ==");
        let mut fx = fixture(n);

        // Scaling-event parity gate: every backend must produce
        // bit-identical counters on every newview kernel before any
        // timing is trusted.
        for kernel in ["newview_tt", "newview_ti", "newview_ii"] {
            let mut out = Cla::new(n);
            let reference = run_kernel(&mut fx, kernel, KernelKind::Scalar, &mut out);
            for kind in [KernelKind::Vector, KernelKind::Simd, KernelKind::Auto] {
                let got = run_kernel(&mut fx, kernel, kind, &mut out);
                assert_eq!(
                    reference, got,
                    "{kernel}: scaling counters differ between Scalar and {kind:?}"
                );
            }
        }

        for kernel in KERNELS {
            let mut ns = [0.0f64; 4];
            for (i, kind) in BACKENDS.iter().enumerate() {
                ns[i] = time_kernel(&mut fx, kernel, *kind);
            }
            println!(
                "  {kernel:<18} scalar {:>8.2}  vector {:>8.2} ({:>5.2}x)  \
                 simd {:>8.2} ({:>5.2}x)  auto {:>8.2} ({:>5.2}x)",
                ns[0],
                ns[1],
                ns[0] / ns[1],
                ns[2],
                ns[0] / ns[2],
                ns[3],
                ns[0] / ns[3],
            );
            let cell = Cell {
                kernel,
                patterns: n,
                ns,
            };
            let cost = cell.op().cost(1);
            let pct = |b: usize| match cell.pct_roof(b, &roof) {
                Some(f) => format!("{:>5.1}%", f * 100.0),
                None => "    -".to_string(),
            };
            let bound = match &roof {
                Some(r) if r.peak_mbps > 0 && cost.arithmetic_intensity() < r.ridge() => {
                    "memory-bound"
                }
                Some(_) => "compute-bound",
                None => "",
            };
            println!(
                "  {:<18} scalar {:>7.3} GF/s {}  vector {:>7.3} GF/s {}  \
                 simd {:>7.3} GF/s {}  auto {:>7.3} GF/s {}  (AI {:.3}{}{})",
                "  % of roofline",
                cell.gflops(0),
                pct(0),
                cell.gflops(1),
                pct(1),
                cell.gflops(2),
                pct(2),
                cell.gflops(3),
                pct(3),
                cost.arithmetic_intensity(),
                if bound.is_empty() { "" } else { ", " },
                bound,
            );
            cells.push(cell);
        }
        println!();
    }

    // Site-repeat section: kernel-level and engine-level.
    let repeat_n = sizes.iter().copied().max().unwrap();
    let (rk_off, rk_on, rk_classes) = repeat_kernel_bench(repeat_n);
    println!(
        "repeat newview_ii   {repeat_n} sites / {rk_classes} classes: \
         off {rk_off:.2} ns/site, on {rk_on:.2} ns/site ({:.2}x)",
        rk_off / rk_on
    );
    let eng = repeat_engine_bench(repeat_n.min(50_000));
    println!(
        "repeat engine       {} taxa, {} sites, {:.4} classes/site: \
         off {:.2} ns/site, on {:.2} ns/site ({:.2}x)",
        eng.taxa,
        eng.patterns,
        eng.classes_per_site,
        eng.ns_off,
        eng.ns_on,
        eng.ns_off / eng.ns_on,
    );
    println!();

    let json = render_json(
        &cells,
        simd,
        &roof,
        (repeat_n, rk_classes, rk_off, rk_on),
        &eng,
    );
    std::fs::write(&out_path, json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(2);
    });
    println!("wrote {out_path}");

    // ---- perf gates (after the JSON is on disk) ----
    let mut failures: Vec<String> = Vec::new();

    for c in &cells {
        // Gate 1: vector within VECTOR_MAX_RATIO of scalar everywhere.
        if c.ns[1] > VECTOR_MAX_RATIO * c.ns[0] {
            failures.push(format!(
                "vector {} at {} patterns: {:.2} ns/site vs scalar {:.2} \
                 (> {VECTOR_MAX_RATIO}x)",
                c.kernel, c.patterns, c.ns[1], c.ns[0]
            ));
        }
        // Gate 2: auto keeps up with the best single backend per cell.
        let best = c.ns[0].min(c.ns[1]).min(c.ns[2]);
        if c.ns[3] > AUTO_TOLERANCE * best {
            failures.push(format!(
                "auto {} at {} patterns: {:.2} ns/site vs best single {:.2} \
                 (> {AUTO_TOLERANCE}x)",
                c.kernel, c.patterns, c.ns[3], best
            ));
        }
    }

    // Gate 3: with AVX2+FMA present, the explicit-SIMD backend must
    // beat the scalar reference on the hot kernel at the largest size.
    if simd {
        let biggest = sizes.iter().copied().max().unwrap();
        let cell = cells
            .iter()
            .find(|c| c.kernel == "newview_ii" && c.patterns == biggest)
            .expect("newview_ii cell");
        let speedup = cell.ns[0] / cell.ns[2];
        if speedup <= 1.0 {
            failures.push(format!(
                "simd newview_ii not faster than scalar at {biggest} patterns \
                 ({:.2} vs {:.2} ns/site, {speedup:.2}x)",
                cell.ns[2], cell.ns[0]
            ));
        } else {
            println!("gate: simd newview_ii {speedup:.2}x vs scalar at {biggest} patterns — ok");
        }
    }

    // Gate 4: repeat-heavy compression pays off on the hot kernel.
    let repeat_speedup = rk_off / rk_on;
    if repeat_speedup < REPEAT_MIN_SPEEDUP {
        failures.push(format!(
            "repeat-heavy newview_ii compression only {repeat_speedup:.2}x \
             (< {REPEAT_MIN_SPEEDUP}x) at {repeat_n} sites / {rk_classes} classes"
        ));
    } else {
        println!("gate: repeat-heavy newview_ii {repeat_speedup:.2}x with compression — ok");
    }

    if !failures.is_empty() {
        for f in &failures {
            eprintln!("FAIL: {f}");
        }
        std::process::exit(1);
    }
    println!("gates: all passed");
}

/// Hand-rolled JSON (the workspace has no serde): one record per
/// (kernel, size) with ns/site per backend and speedups vs scalar,
/// modeled GFLOP/s and % of the calibrated roof, plus host
/// provenance, the roofline, and the site-repeat section. The
/// `results` rows keep the `kernel`/`patterns`/`ns_per_site` shape of
/// schemas /1 and /2 so `plf-prof`'s trend parser reads all history.
fn render_json(
    cells: &[Cell],
    simd: bool,
    roof: &Option<HostRoofline>,
    repeat_kernel: (usize, usize, f64, f64),
    eng: &EngineRepeatBench,
) -> String {
    let esc = |s: &str| s.replace('\\', "\\\\").replace('"', "\\\"");
    let mut s = String::new();
    s.push_str("{\n");
    let _ = writeln!(s, "  \"schema\": \"plf-microbench/3\",");
    let _ = writeln!(s, "  \"host_simd\": {simd},");
    let _ = writeln!(
        s,
        "  \"provenance\": {{\"git_rev\": \"{}\", \"cpu_model\": \"{}\", \
         \"cores\": {}, \"simd_flags\": \"{}\"}},",
        esc(&host::git_rev()),
        esc(&host::cpu_model()),
        host::cores(),
        esc(&host::simd_flags()),
    );
    match roof {
        Some(r) => {
            let _ = writeln!(
                s,
                "  \"roofline\": {{\"peak_mflops\": {}, \"peak_mbps\": {}}},",
                r.peak_mflops, r.peak_mbps
            );
        }
        None => {
            let _ = writeln!(s, "  \"roofline\": null,");
        }
    }
    let _ = writeln!(
        s,
        "  \"backends\": [\"scalar\", \"vector\", \"simd\", \"auto\"],"
    );
    s.push_str("  \"results\": [\n");
    for (i, c) in cells.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"kernel\": \"{}\", \"patterns\": {}, \
             \"ns_per_site\": {{\"scalar\": {:.3}, \"vector\": {:.3}, \"simd\": {:.3}, \
             \"auto\": {:.3}}}, \
             \"speedup_vs_scalar\": {{\"vector\": {:.3}, \"simd\": {:.3}, \"auto\": {:.3}}}, \
             \"gflops\": {{\"scalar\": {:.3}, \"vector\": {:.3}, \"simd\": {:.3}, \
             \"auto\": {:.3}}}, \"arithmetic_intensity\": {:.4}",
            c.kernel,
            c.patterns,
            c.ns[0],
            c.ns[1],
            c.ns[2],
            c.ns[3],
            c.ns[0] / c.ns[1],
            c.ns[0] / c.ns[2],
            c.ns[0] / c.ns[3],
            c.gflops(0),
            c.gflops(1),
            c.gflops(2),
            c.gflops(3),
            c.op().cost(1).arithmetic_intensity(),
        );
        if roof.is_some() {
            let _ = write!(s, ", \"pct_roof\": {{");
            for (b, name) in ["scalar", "vector", "simd", "auto"].iter().enumerate() {
                if b > 0 {
                    s.push_str(", ");
                }
                match c.pct_roof(b, roof) {
                    Some(f) => {
                        let _ = write!(s, "\"{name}\": {:.4}", f);
                    }
                    None => {
                        let _ = write!(s, "\"{name}\": null");
                    }
                }
            }
            s.push('}');
        }
        s.push('}');
        s.push_str(if i + 1 == cells.len() { "\n" } else { ",\n" });
    }
    s.push_str("  ],\n");
    let (rn, rc, roff, ron) = repeat_kernel;
    let _ = writeln!(s, "  \"site_repeats\": {{");
    let _ = writeln!(
        s,
        "    \"kernel_newview_ii\": {{\"sites\": {rn}, \"classes\": {rc}, \
         \"ns_per_site_off\": {roff:.3}, \"ns_per_site_on\": {ron:.3}, \
         \"speedup\": {:.3}}},",
        roff / ron
    );
    let _ = writeln!(
        s,
        "    \"engine_traversal\": {{\"taxa\": {}, \"sites\": {}, \
         \"classes_per_site\": {:.5}, \"ns_per_site_off\": {:.3}, \
         \"ns_per_site_on\": {:.3}, \"speedup\": {:.3}}}",
        eng.taxa,
        eng.patterns,
        eng.classes_per_site,
        eng.ns_off,
        eng.ns_on,
        eng.ns_off / eng.ns_on,
    );
    s.push_str("  }\n}\n");
    s
}
