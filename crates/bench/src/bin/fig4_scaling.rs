//! Regenerates Figure 4: relative speedup of 2 MICs vs 1 MIC as a
//! function of alignment size.
//!
//! Run: `cargo run --release -p phylo-bench --bin fig4_scaling`

use micsim::systems::fig4_dual_mic_scaling;
use phylo_bench::{fmt_size, standard_trace};

/// Approximate paper values read off Figure 4.
const PAPER: [f64; 8] = [0.69, 0.93, 1.21, 1.40, 1.44, 1.62, 1.75, 1.84];

fn main() {
    eprintln!("recording workload trace (instrumented replicated search)...");
    let trace = standard_trace();
    println!("Figure 4: relative speedup of 2 MICs vs 1 MIC by alignment size");
    println!();
    println!("{:>8} {:>8} {:>8}  ", "size", "model", "paper");
    for (i, (size, ratio)) in fig4_dual_mic_scaling(&trace).into_iter().enumerate() {
        println!(
            "{:>8} {:>8.2} {:>8.2}  {}",
            fmt_size(size),
            ratio,
            PAPER[i],
            "#".repeat((ratio * 20.0).round() as usize)
        );
    }
    println!();
    println!("Expected shape: monotone growth, below 1 at 10K, 1.7-2.0 at 4000K.");
}
