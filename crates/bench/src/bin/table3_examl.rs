//! Regenerates Table III: ExaML execution times and speedups on the
//! four systems across the eight alignment sizes.
//!
//! A real instrumented replicated-scheme search is executed first; its
//! kernel/AllReduce counts parameterize the `micsim` platform model,
//! which is evaluated at every Table III size. Paper reference values
//! are printed alongside for comparison.
//!
//! Run: `cargo run --release -p phylo-bench --bin table3_examl`

use micsim::systems::{table3, SystemId};
use phylo_bench::{fmt_size, fmt_time, standard_trace};
use plf_core::KernelId;

/// The paper's Table III speedup values, for reference output.
const PAPER_SPEEDUPS: [(SystemId, [f64; 8]); 4] = [
    (
        SystemId::E5_2630,
        [0.73, 0.74, 0.72, 0.81, 0.84, 0.84, 0.84, 0.84],
    ),
    (
        SystemId::E5_2680,
        [1.00, 1.00, 1.00, 1.00, 1.00, 1.00, 1.00, 1.00],
    ),
    (
        SystemId::Phi1,
        [0.32, 0.81, 1.02, 1.47, 1.77, 1.93, 2.00, 2.03],
    ),
    (
        SystemId::Phi2,
        [0.22, 0.75, 1.23, 2.06, 2.56, 3.12, 3.49, 3.74],
    ),
];

fn main() {
    eprintln!("recording workload trace (instrumented replicated search)...");
    let trace = standard_trace();
    eprintln!(
        "trace: {} patterns, {} allreduces, kernel calls: {}",
        trace.patterns,
        trace.allreduces,
        KernelId::ALL
            .iter()
            .map(|&k| format!("{}={}", k.paper_name(), trace.stats.get(k).calls))
            .collect::<Vec<_>>()
            .join(" ")
    );
    println!();
    println!("Table III: ExaML execution times and speedups on CPUs and MIC");
    println!("(model-predicted seconds and speedup vs 2S E5-2680; paper speedups in parens)");
    println!();

    let grid = table3(&trace);
    print!("{:<20}", "System");
    for (size, _) in &grid {
        print!(" {:>16}", fmt_size(*size));
    }
    println!();

    for (row_idx, &sys) in SystemId::ALL.iter().enumerate() {
        print!("{:<20}", sys.paper_name());
        for (col, (_size, row)) in grid.iter().enumerate() {
            let cell = row.iter().find(|(s, _)| *s == sys).unwrap().1;
            let paper = PAPER_SPEEDUPS[row_idx].1[col];
            print!(
                " {:>7} {:>4.2}({:.2})",
                fmt_time(cell.time_s),
                cell.speedup,
                paper
            );
        }
        println!();
    }

    println!();
    println!("Shape checks (paper bands):");
    let last = &grid[grid.len() - 1].1;
    let get = |row: &Vec<(SystemId, micsim::systems::Table3Cell)>, s| {
        row.iter().find(|(x, _)| *x == s).unwrap().1.speedup
    };
    println!(
        "  1-MIC plateau   {:.2} (paper 2.03, band 1.8-2.2)",
        get(last, SystemId::Phi1)
    );
    println!(
        "  2-MIC plateau   {:.2} (paper 3.74, band 3.3-4.1)",
        get(last, SystemId::Phi2)
    );
    match micsim::systems::crossover_patterns(&trace, SystemId::Phi1) {
        Some(x) => println!("  crossover       {:.0} patterns (paper ~100K)", x),
        None => println!("  crossover       not reached (MODEL SHAPE VIOLATION)"),
    }
}
