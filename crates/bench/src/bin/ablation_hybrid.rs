//! §V-D ablation: hybrid MPI-OpenMP vs pure MPI on the MIC, and the
//! §VI-B3 interconnect-latency sweep for the dual-card configuration.
//!
//! Run: `cargo run --release -p phylo-bench --bin ablation_hybrid`

use micsim::model::{predict_time, ExecMode, Interconnect, MachineConfig};
use micsim::platform::XEON_PHI_5110P_1S;
use micsim::systems::SystemId;
use phylo_bench::{fmt_size, fmt_time, standard_trace};

fn main() {
    eprintln!("recording workload trace (instrumented replicated search)...");
    let trace = standard_trace();

    println!("Rank/thread decomposition on one Xeon Phi (100K patterns, §V-D)");
    println!();
    let scaled = trace.scaled_to(100_000);
    println!("{:>8} {:>9} {:>12}", "ranks", "threads", "time");
    for (ranks, threads) in [
        (120u32, 1u32),
        (60, 2),
        (8, 29),
        (4, 59),
        (2, 118),
        (1, 236),
    ] {
        let cfg = MachineConfig {
            platform: XEON_PHI_5110P_1S,
            ranks_per_device: ranks,
            threads_per_rank: threads,
            mode: ExecMode::Native,
            interconnect: Interconnect::SharedMemory,
        };
        let t = predict_time(&cfg, &scaled).total();
        println!("{:>8} {:>9} {:>11}s", ranks, threads, fmt_time(t));
    }
    println!();
    println!("Paper: 120 pure-MPI ranks gave a \"substantial slowdown\"; 2 ranks x 118");
    println!("threads was best for almost all datasets.");

    println!();
    println!("Dual-MIC AllReduce latency sweep (§VI-B3): 20 us PCIe (Intel MPI 4.1.2),");
    println!("35 us PCIe (old 4.0.3), 5 us InfiniBand-class");
    println!();
    print!("{:>8}", "size");
    for name in ["PCIe 20us", "old MPI 35us", "IB 5us"] {
        print!(" {:>14}", name);
    }
    println!();
    for &size in &[100_000u64, 1_000_000, 4_000_000] {
        let scaled = trace.scaled_to(size);
        print!("{:>8}", fmt_size(size));
        for ic in [
            Interconnect::PciePeerToPeer,
            Interconnect::PcieOldMpi,
            Interconnect::InfiniBand,
        ] {
            let mut cfg = SystemId::Phi2.config();
            cfg.interconnect = ic;
            let t = predict_time(&cfg, &scaled).total();
            print!(" {:>13}s", fmt_time(t));
        }
        println!();
    }
}
