//! Regenerates Figure 3: speedups of the individual PLF kernels on the
//! Xeon Phi relative to the 2S E5-2680 baseline.
//!
//! Two layers are reported:
//!   1. the `micsim` roofline prediction per kernel (the Figure 3
//!      reproduction proper), and
//!   2. a real host-side measurement of this crate's `vector` kernels
//!      against the `scalar` reference — the measurable effect of the
//!      paper's §V-B loop/layout transformations on the machine the
//!      harness runs on.
//!
//! Run: `cargo run --release -p phylo-bench --bin fig3_kernel_speedups`

use micsim::model::kernel_speedup;
use micsim::platform::{XEON_E5_2680_2S, XEON_PHI_5110P_1S};
use phylo_bench::paper_dataset;
use plf_core::engine::{EngineConfig, LikelihoodEngine};
use plf_core::{KernelId, KernelKind};
use std::time::Instant;

fn main() {
    println!("Figure 3: per-kernel speedups, Xeon Phi 5110P vs 2S Xeon E5-2680");
    println!("(micsim roofline prediction; paper reports 1.9x–2.8x)");
    println!();
    for k in KernelId::ALL {
        let s = kernel_speedup(&XEON_PHI_5110P_1S, &XEON_E5_2680_2S, k);
        println!("  {:<16} {:>5.2}x  {}", k.paper_name(), s, bar(s));
    }

    println!();
    println!("Host-side ablation: vector vs scalar kernel implementations");
    println!("(real wall time on this machine; §V-B layout + fusion + blocking)");
    println!();
    let (tree, aln) = paper_dataset(15, 20_000, 99);
    for kind in [KernelKind::Scalar, KernelKind::Vector, KernelKind::Simd] {
        let mut engine = LikelihoodEngine::new(
            &tree,
            &aln,
            EngineConfig {
                kernel: kind,
                alpha: 0.85,
                ..EngineConfig::default()
            },
        );
        // Warm up, then time repeated full evaluations with cache
        // invalidation (so every round re-runs all newviews).
        engine.log_likelihood(&tree, 0);
        let reps = 20;
        let start = Instant::now();
        for _ in 0..reps {
            engine.invalidate_all();
            let edge = 0;
            engine.prepare_branch(&tree, edge);
            engine.branch_derivatives(tree.length(edge));
            engine.log_likelihood(&tree, edge);
        }
        let dt = start.elapsed().as_secs_f64() / reps as f64;
        println!(
            "  {:<8} {:>8.3} ms per full round",
            format!("{kind:?}"),
            dt * 1e3
        );
    }
}

fn bar(s: f64) -> String {
    "#".repeat((s * 10.0).round() as usize)
}
