//! §V-A / §VII ablation: partitioned alignments and load balancing.
//!
//! The paper supports multiple partitions but warns that "for a large
//! number of partitions, performance will degrade due to decreasing
//! parallel block size". This binary quantifies that effect through
//! the `micsim` model: the parallel compute phase stretches by the
//! worker-load imbalance factor of the chosen distribution strategy,
//! and per-worker partition multiplicity adds P-matrix bookkeeping.
//!
//! Run: `cargo run --release -p phylo-bench --bin ablation_partitions`

use micsim::model::predict_time;
use micsim::systems::SystemId;
use phylo_bench::standard_trace;
use phylo_parallel::balance::{
    block_per_partition, imbalance, scatter_partitions, whole_partitions, Assignment,
};

/// Skewed partition sizes mimicking a multi-gene dataset: a few large
/// ribosomal genes plus many short ones.
fn skewed_sizes(partitions: usize, total: usize) -> Vec<usize> {
    // Geometric-ish decay with a floor of 1.
    let mut sizes: Vec<f64> = (0..partitions).map(|i| 0.7f64.powi(i as i32)).collect();
    let s: f64 = sizes.iter().sum();
    let mut out: Vec<usize> = sizes
        .iter_mut()
        .map(|v| ((*v / s) * total as f64).round().max(1.0) as usize)
        .collect();
    let diff = total as i64 - out.iter().sum::<usize>() as i64;
    out[0] = (out[0] as i64 + diff).max(1) as usize;
    out
}

fn main() {
    eprintln!("recording workload trace (instrumented replicated search)...");
    let trace = standard_trace();
    let size = 1_000_000u64;
    let scaled = trace.scaled_to(size);
    let cfg = SystemId::Phi1.config();
    let base = predict_time(&cfg, &scaled);
    let workers = cfg.workers_per_device() as usize;

    println!("Partitioned 1000K-pattern run on one Xeon Phi (236 workers)");
    println!(
        "predicted time = imbalance x compute + sync/comm (unpartitioned: {:.1}s)",
        base.total()
    );
    println!();
    println!(
        "{:>11} {:>22} {:>22} {:>22}",
        "partitions", "scatter", "block", "whole-partition"
    );
    for partitions in [1usize, 4, 16, 64, 256] {
        let sizes = skewed_sizes(partitions, size as usize);
        let render = |a: &Assignment| -> String {
            let f = imbalance(a);
            let touched: usize = (0..workers).map(|w| a.partitions_touched(w)).max().unwrap();
            let t = base.compute_s * f + base.sync_s + base.comm_s + base.serial_s;
            format!("{t:>7.1}s (x{f:>5.2},{touched:>4}p)")
        };
        println!(
            "{:>11} {:>22} {:>22} {:>22}",
            partitions,
            render(&scatter_partitions(&sizes, workers)),
            render(&block_per_partition(&sizes, workers)),
            render(&whole_partitions(&sizes, workers)),
        );
    }
    println!();
    println!("x = worker load imbalance factor; p = max partitions touched per worker");
    println!("(scatter balances load but every worker touches every partition — the");
    println!("shrinking parallel block size of §V-A; whole-partition keeps blocks large");
    println!("but collapses under size skew)");
}
