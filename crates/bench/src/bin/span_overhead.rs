//! Span-instrumentation overhead probe for the CI regression gate.
//!
//! Prints the nanoseconds per full-tree likelihood evaluation in a
//! machine-greppable `ns_per_eval <N>` line. CI runs this binary twice
//! — once from the default (`span-trace`) build and once from a
//! `--no-default-features` build — and fails if the instrumented
//! number exceeds the uninstrumented one by more than 5%: the
//! "compiles to a no-op when disabled" guarantee is only honest if the
//! *enabled* path stays near-free on real kernels too.
//!
//! The workload is the span hot path at its worst: every evaluation
//! crosses the `evaluate` span plus one `newview` span per invalidated
//! inner node, with sites small enough that span cost is not drowned
//! by arithmetic. Best-of-5 timing suppresses scheduler noise.
//!
//! Run: `cargo run --release -p phylo-bench --bin span_overhead`
//! (append `--no-default-features` to measure the uninstrumented build)

use phylo_bench::paper_dataset;
use plf_core::{EngineConfig, LikelihoodEngine};
use std::time::Instant;

/// Evaluations per timing repetition.
const EVALS: usize = 400;
/// Timing repetitions; the minimum is reported.
const REPS: usize = 5;

fn main() {
    let (tree, aln) = paper_dataset(12, 1_000, 3);
    let mut engine = LikelihoodEngine::new(&tree, &aln, EngineConfig::default());
    let num_edges = tree.num_edges();

    // Warm-up: touch every virtual root once so buffers are allocated
    // and caches primed before timing starts.
    let mut checksum = 0.0f64;
    for e in 0..num_edges {
        checksum += engine.log_likelihood(&tree, e);
    }

    let mut best_ns = f64::INFINITY;
    for _ in 0..REPS {
        let t0 = Instant::now();
        for i in 0..EVALS {
            // Cycling the virtual root invalidates partials and forces
            // real newview work (and its spans) each evaluation.
            checksum += engine.log_likelihood(&tree, i % num_edges);
        }
        let ns = t0.elapsed().as_nanos() as f64 / EVALS as f64;
        best_ns = best_ns.min(ns);
    }

    let instrumented = if cfg!(feature = "span-trace") {
        "span-trace"
    } else {
        "uninstrumented"
    };
    println!("build {instrumented}  evals {EVALS}  checksum {checksum:.3}");
    println!("ns_per_eval {best_ns:.0}");
}
