//! Regenerates Table I (platform specifications) and echoes the
//! Table II software configuration the paper lists.
//!
//! Run: `cargo run -p phylo-bench --bin table1_platforms`

use micsim::platform::TABLE1;

fn main() {
    println!("Table I: Specifications of CPUs and accelerators used for performance evaluation");
    println!();
    println!(
        "{:<20} {:>14} {:>8} {:>10} {:>8} {:>12} {:>8} {:>13}",
        "(Co-)processor",
        "Peak DP GFLOPS",
        "Cores",
        "Clock",
        "Memory",
        "Memory BW",
        "Max TDP",
        "Approx. price"
    );
    for p in TABLE1 {
        println!(
            "{:<20} {:>14} {:>8} {:>7.3} GHz {:>5} GB {:>9.1} GB/s {:>6} W {:>12}",
            p.name,
            p.peak_dp_gflops,
            p.cores,
            p.clock_ghz,
            p.memory_gb,
            p.memory_bw_gbs,
            p.max_tdp_w,
            format!("$ {}", p.price_usd),
        );
    }
    println!();
    println!("1S = single slot, 2S = dual slot; NVIDIA K20 listed for reference only");
    println!();
    println!("Table II: Software configuration of the paper's test systems (informational —");
    println!("this reproduction replaces the toolchain with stable Rust and the MPI layer");
    println!("with the in-process communicator of phylo-parallel):");
    println!("  Xeon E5-2630:  Linux 2.6.32, gcc 4.7.0, Intel MPI 4.1.2.040");
    println!("  Xeon E5-2680:  Linux 3.0.93, gcc 4.7.3, Intel MPI 4.1.1.036");
    println!("  Xeon Phi:      Linux 2.6.32, icc 13.1.3, Intel MPI 4.1.2.040");
}
