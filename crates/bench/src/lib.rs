#![warn(missing_docs)]
//! Shared harness code for the table/figure generator binaries and the
//! Criterion benches.
//!
//! The central object is [`record_trace`]: it runs a *real*,
//! instrumented ML tree search (the ExaML-style replicated scheme from
//! `phylo-parallel`) on a simulated 15-taxon alignment — the paper's
//! dataset shape — and packages the measured kernel invocation counts
//! and AllReduce counts as a [`WorkloadTrace`]. The `micsim` model then
//! extrapolates that trace across the Table III alignment sizes.
#![deny(unsafe_op_in_unsafe_fn)]

use micsim::WorkloadTrace;
use phylo_bio::CompressedAlignment;
use phylo_models::{DiscreteGamma, Gtr, GtrParams};
use phylo_search::{MlSearch, SearchConfig};
use phylo_tree::build::{default_names, random_tree};
use phylo_tree::Tree;
use plf_core::{EngineConfig, KernelKind};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Number of taxa in every paper dataset (§VI-A3).
pub const PAPER_TAXA: usize = 15;

/// Deterministically simulates a paper-style dataset: a random
/// `taxa`-leaf tree and a GTR+Γ alignment of `patterns` sites on it.
pub fn paper_dataset(taxa: usize, patterns: usize, seed: u64) -> (Tree, CompressedAlignment) {
    let mut rng = SmallRng::seed_from_u64(seed);
    let names = default_names(taxa);
    let tree = random_tree(&names, 0.15, &mut rng).unwrap();
    let gtr = Gtr::new(GtrParams {
        rates: [1.1, 2.6, 0.8, 1.2, 3.4, 1.0],
        freqs: [0.29, 0.21, 0.22, 0.28],
    });
    let gamma = DiscreteGamma::new(0.85);
    let aln = phylo_seqgen::simulate_compressed(&tree, gtr.eigen(), &gamma, patterns, &mut rng);
    (tree, aln)
}

/// The search configuration used for trace recording: a fixed-model
/// full tree search (the paper benchmarks parallel PLF performance,
/// not model optimization).
pub fn trace_search_config() -> SearchConfig {
    SearchConfig {
        spr_radius: 5,
        epsilon: 0.01,
        max_rounds: 6,
        optimize_model: false,
        smoothing_passes: 6,
    }
}

/// Runs one instrumented replicated-scheme search and returns the
/// measured workload trace.
///
/// `patterns` trades recording time against extrapolation distance;
/// 2 000–10 000 keeps the binaries interactive while the call counts —
/// the quantities that matter — are identical to a larger run's.
pub fn record_trace(patterns: usize, ranks: usize, seed: u64) -> WorkloadTrace {
    let (true_tree, aln) = paper_dataset(PAPER_TAXA, patterns, seed);
    // Start from a different random topology so the search does real
    // SPR work, as a production run would.
    let names = true_tree.tip_names().to_vec();
    let start = random_tree(&names, 0.1, &mut SmallRng::seed_from_u64(seed ^ 0xfeed)).unwrap();
    let config = EngineConfig {
        kernel: KernelKind::Vector,
        alpha: 0.85,
        ..EngineConfig::default()
    };
    let search = MlSearch::new(trace_search_config());
    let out = phylo_parallel::run_replicated(&start, &aln, config, search, ranks);
    WorkloadTrace::from_run(out.kernel_stats, out.comm_stats.allreduces, patterns as u64)
}

/// The default trace used by all generator binaries (overridable via
/// the `PHYLOMIC_TRACE_PATTERNS` environment variable).
pub fn standard_trace() -> WorkloadTrace {
    let patterns = std::env::var("PHYLOMIC_TRACE_PATTERNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(4000);
    record_trace(patterns, 2, 20140314)
}

/// Renders seconds in the paper's Table III style (one decimal below
/// 100 s, integral above).
pub fn fmt_time(s: f64) -> String {
    if s < 100.0 {
        format!("{s:.1}")
    } else {
        format!("{s:.0}")
    }
}

/// Renders a pattern count as the paper writes it (10K … 4000K).
pub fn fmt_size(patterns: u64) -> String {
    format!("{}K", patterns / 1000)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_dataset_is_deterministic() {
        let (t1, a1) = paper_dataset(8, 200, 7);
        let (t2, a2) = paper_dataset(8, 200, 7);
        assert_eq!(t1.rf_distance(&t2), 0);
        assert_eq!(a1, a2);
        assert_eq!(a1.num_taxa(), 8);
        assert_eq!(a1.num_patterns(), 200);
    }

    #[test]
    fn recorded_trace_has_all_kernels_and_allreduces() {
        let trace = record_trace(300, 2, 42);
        for k in plf_core::KernelId::ALL {
            assert!(trace.stats.get(k).calls > 0, "{k:?} never ran");
        }
        assert!(trace.allreduces > 0);
        assert_eq!(trace.patterns, 300);
        // Newton iterations dominate invocation counts, like RAxML.
        assert!(
            trace.stats.get(plf_core::KernelId::DerivativeCore).calls
                >= trace.stats.get(plf_core::KernelId::DerivativeSum).calls
        );
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_size(10_000), "10K");
        assert_eq!(fmt_size(4_000_000), "4000K");
        assert_eq!(fmt_time(4.123), "4.1");
        assert_eq!(fmt_time(1237.2), "1237");
    }
}
