#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // index loops mirror the paper's kernel notation; reference constants keep full printed precision
#![allow(clippy::excessive_precision)] // index loops mirror the paper's kernel notation; reference constants keep full printed precision
//! Statistical models of sequence evolution.
//!
//! Implements the model stack the paper's kernels evaluate under:
//!
//! * the general time-reversible (GTR) substitution model for DNA
//!   ([`gtr`]), including its eigendecomposition via symmetrization and
//!   a from-scratch Jacobi eigensolver ([`math::jacobi`]),
//! * transition probability matrices `P(t) = U exp(Λ r t) U⁻¹`
//!   ([`pmatrix`]),
//! * the Γ model of rate heterogeneity with discrete rate categories
//!   (Yang 1994), built on from-scratch implementations of `lgamma`,
//!   the regularized incomplete gamma function and its inverse
//!   ([`math::gammafn`], [`rates`]),
//! * the CAT approximation (per-site rate categories) as the paper's
//!   §VII extension ([`rates::CatRates`]),
//! * Brent's 1-D minimizer used for model-parameter optimization
//!   ([`math::brent`]).
#![deny(unsafe_op_in_unsafe_fn)]

pub mod gtr;
pub mod math;
pub mod nstate;
pub mod pmatrix;
pub mod rates;

pub use gtr::{Gtr, GtrParams};
pub use nstate::{protein_poisson, NEigensystem, NUM_AA_STATES};
pub use pmatrix::{Eigensystem, ProbMatrix};
pub use rates::{CatRates, DiscreteGamma};

/// Number of DNA states, re-exported for convenience.
pub const NUM_STATES: usize = phylo_bio::NUM_STATES;

/// Number of Γ rate categories used throughout the paper (fixed at 4).
pub const NUM_RATES: usize = 4;

/// CLA stride per site: `NUM_STATES * NUM_RATES` doubles (= 128 bytes),
/// the alignment unit discussed in §V-B2 of the paper.
pub const SITE_STRIDE: usize = NUM_STATES * NUM_RATES;
