//! Rate heterogeneity across sites.
//!
//! The paper's kernels support exactly one heterogeneity model: the Γ
//! model with four discrete rates (Yang 1994). [`DiscreteGamma`]
//! implements the standard mean-per-category discretization: the rate
//! distribution Gamma(α, α) (mean 1) is cut into `k` equal-probability
//! intervals at its quantiles, and each category's rate is the
//! distribution's conditional mean over its interval, so the category
//! rates always average to 1.
//!
//! [`CatRates`] implements the CAT approximation (Stamatakis 2006) the
//! paper lists as future work: every site is assigned to one of a small
//! number of per-site rate categories, which changes the memory access
//! granularity discussed in §V-B2.

use crate::math::gammafn::{inv_reg_gamma_p, reg_gamma_p};
use crate::NUM_RATES;

/// Γ rate heterogeneity with `NUM_RATES` equal-weight categories.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DiscreteGamma {
    alpha: f64,
    rates: [f64; NUM_RATES],
}

impl DiscreteGamma {
    /// Lower bound on α accepted by [`DiscreteGamma::new`]; below this,
    /// category rates underflow and the likelihood degenerates.
    pub const MIN_ALPHA: f64 = 0.02;
    /// Upper bound on α; beyond this, all categories are ≈1 and the
    /// model is operationally homogeneous.
    pub const MAX_ALPHA: f64 = 100.0;

    /// Discretizes Gamma(α, α) into `NUM_RATES` mean-per-category rates.
    ///
    /// # Panics
    /// Panics when α is outside `[MIN_ALPHA, MAX_ALPHA]`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            (Self::MIN_ALPHA..=Self::MAX_ALPHA).contains(&alpha),
            "alpha {alpha} outside [{}, {}]",
            Self::MIN_ALPHA,
            Self::MAX_ALPHA
        );
        let k = NUM_RATES as f64;

        // Category boundaries: quantiles i/k of Gamma(alpha, rate=alpha).
        // inv_reg_gamma_p returns the quantile of Gamma(alpha, 1); scale
        // by 1/alpha for rate alpha.
        let mut bounds = [0.0f64; NUM_RATES + 1];
        for i in 1..NUM_RATES {
            bounds[i] = inv_reg_gamma_p(alpha, i as f64 / k) / alpha;
        }
        bounds[NUM_RATES] = f64::INFINITY;

        // Conditional mean of category i:
        //   E[X | b_i < X < b_{i+1}] * k
        // with E[X·1{X<b}] = (alpha/alpha) P(alpha+1, alpha·b).
        let mut rates = [0.0f64; NUM_RATES];
        let upper_p = |b: f64| -> f64 {
            if b.is_infinite() {
                1.0
            } else {
                reg_gamma_p(alpha + 1.0, alpha * b)
            }
        };
        for i in 0..NUM_RATES {
            rates[i] = k * (upper_p(bounds[i + 1]) - upper_p(bounds[i]));
        }

        // Renormalize the (tiny) discretization residual so the mean is
        // exactly 1, which keeps branch lengths calibrated.
        let mean: f64 = rates.iter().sum::<f64>() / k;
        for r in rates.iter_mut() {
            *r /= mean;
        }

        DiscreteGamma { alpha, rates }
    }

    /// The shape parameter α.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The category rates, ascending, mean exactly 1.
    pub fn rates(&self) -> &[f64; NUM_RATES] {
        &self.rates
    }

    /// The (uniform) category weight.
    pub fn weight(&self) -> f64 {
        1.0 / NUM_RATES as f64
    }
}

/// Per-site rate categories (the CAT approximation).
///
/// Unlike Γ, CAT evaluates each site under a single rate, so the
/// per-site CLA stride shrinks from 16 to 4 doubles — the alignment
/// hazard §V-B2 of the paper warns about.
#[derive(Clone, Debug, PartialEq)]
pub struct CatRates {
    rates: Vec<f64>,
    site_category: Vec<u32>,
}

impl CatRates {
    /// Creates a CAT assignment from category rates and a per-site
    /// category index.
    ///
    /// # Panics
    /// Panics on empty categories, non-positive rates, or out-of-range
    /// site assignments.
    pub fn new(rates: Vec<f64>, site_category: Vec<u32>) -> Self {
        assert!(!rates.is_empty(), "CAT needs at least one category");
        assert!(
            rates.iter().all(|&r| r.is_finite() && r > 0.0),
            "CAT rates must be positive"
        );
        assert!(
            site_category.iter().all(|&c| (c as usize) < rates.len()),
            "site category out of range"
        );
        CatRates {
            rates,
            site_category,
        }
    }

    /// Uniform single-category assignment (rate 1) over `sites` sites.
    pub fn homogeneous(sites: usize) -> Self {
        CatRates {
            rates: vec![1.0],
            site_category: vec![0; sites],
        }
    }

    /// Number of rate categories.
    pub fn num_categories(&self) -> usize {
        self.rates.len()
    }

    /// Number of sites covered.
    pub fn num_sites(&self) -> usize {
        self.site_category.len()
    }

    /// Category rates.
    pub fn rates(&self) -> &[f64] {
        &self.rates
    }

    /// Rate applied to site `i`.
    pub fn site_rate(&self, i: usize) -> f64 {
        self.rates[self.site_category[i] as usize]
    }

    /// Category index of site `i`.
    pub fn site_category(&self, i: usize) -> usize {
        self.site_category[i] as usize
    }

    /// Rescales the category rates so the weighted mean rate over all
    /// sites is 1 (the CAT normalization step performed after rate
    /// re-estimation).
    pub fn normalize(&mut self, weights: &[u32]) {
        assert_eq!(weights.len(), self.site_category.len());
        let mut total_w = 0.0;
        let mut total_r = 0.0;
        for (i, &w) in weights.iter().enumerate() {
            total_w += w as f64;
            total_r += w as f64 * self.site_rate(i);
        }
        if total_r > 0.0 && total_w > 0.0 {
            let mean = total_r / total_w;
            for r in self.rates.iter_mut() {
                *r /= mean;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rates_ascending_mean_one() {
        for &alpha in &[0.05, 0.2, 0.5, 1.0, 2.0, 10.0, 99.0] {
            let g = DiscreteGamma::new(alpha);
            let r = g.rates();
            for i in 1..NUM_RATES {
                assert!(r[i] >= r[i - 1], "alpha={alpha}: {r:?}");
            }
            let mean: f64 = r.iter().sum::<f64>() / NUM_RATES as f64;
            assert!((mean - 1.0).abs() < 1e-12, "alpha={alpha}: mean={mean}");
        }
    }

    #[test]
    fn known_discretization_alpha_half() {
        // Reference values for alpha = 0.5, k = 4 (mean per category),
        // widely reproduced from Yang (1994): approximately
        // 0.0334, 0.2519, 0.8203, 2.8944.
        let g = DiscreteGamma::new(0.5);
        let r = g.rates();
        let expect = [0.0334, 0.2519, 0.8203, 2.8944];
        for i in 0..4 {
            assert!(
                (r[i] - expect[i]).abs() < 5e-4,
                "cat {i}: {} vs {}",
                r[i],
                expect[i]
            );
        }
    }

    #[test]
    fn known_discretization_alpha_one() {
        // alpha = 1 (exponential): approximately
        // 0.1369, 0.4768, 1.0000, 2.3863.
        let g = DiscreteGamma::new(1.0);
        let r = g.rates();
        let expect = [0.1369, 0.4768, 1.0000, 2.3863];
        for i in 0..4 {
            assert!((r[i] - expect[i]).abs() < 5e-4, "cat {i}: {}", r[i]);
        }
    }

    #[test]
    fn large_alpha_approaches_homogeneous() {
        let g = DiscreteGamma::new(99.0);
        for &r in g.rates() {
            assert!((r - 1.0).abs() < 0.15, "rate {r}");
        }
    }

    #[test]
    fn small_alpha_is_extreme() {
        let g = DiscreteGamma::new(0.05);
        let r = g.rates();
        assert!(r[0] < 1e-6);
        assert!(r[3] > 3.0);
    }

    #[test]
    #[should_panic]
    fn alpha_out_of_range_panics() {
        DiscreteGamma::new(0.001);
    }

    #[test]
    fn weights_uniform() {
        assert!((DiscreteGamma::new(1.0).weight() - 0.25).abs() < 1e-15);
    }

    #[test]
    fn cat_basic() {
        let c = CatRates::new(vec![0.5, 2.0], vec![0, 1, 1, 0]);
        assert_eq!(c.num_categories(), 2);
        assert_eq!(c.num_sites(), 4);
        assert_eq!(c.site_rate(1), 2.0);
        assert_eq!(c.site_category(3), 0);
    }

    #[test]
    fn cat_homogeneous() {
        let c = CatRates::homogeneous(10);
        assert_eq!(c.num_categories(), 1);
        for i in 0..10 {
            assert_eq!(c.site_rate(i), 1.0);
        }
    }

    #[test]
    fn cat_normalization() {
        let mut c = CatRates::new(vec![1.0, 3.0], vec![0, 1]);
        c.normalize(&[1, 1]);
        // Mean (1 + 3)/2 = 2 → rates become 0.5 and 1.5.
        assert!((c.rates()[0] - 0.5).abs() < 1e-12);
        assert!((c.rates()[1] - 1.5).abs() < 1e-12);
        // Weighted: weight 3 on site 0.
        let mut c = CatRates::new(vec![1.0, 3.0], vec![0, 1]);
        c.normalize(&[3, 1]);
        let mean = (3.0 * c.rates()[0] + c.rates()[1]) / 4.0;
        assert!((mean - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic]
    fn cat_out_of_range_site_panics() {
        CatRates::new(vec![1.0], vec![0, 1]);
    }

    #[test]
    #[should_panic]
    fn cat_nonpositive_rate_panics() {
        CatRates::new(vec![0.0], vec![0]);
    }
}
