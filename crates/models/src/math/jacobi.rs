//! Cyclic Jacobi eigensolver for small symmetric matrices.
//!
//! The GTR rate matrix is diagonalizable through a symmetric similarity
//! transform, so a symmetric eigensolver is all the likelihood machinery
//! needs. Matrices here are tiny (4×4 for DNA, 20×20 for proteins), so
//! the classic cyclic Jacobi rotation scheme is both simple and
//! effectively exact.

/// Result of a symmetric eigendecomposition: `a = V diag(λ) Vᵀ`.
#[derive(Clone, Debug)]
pub struct SymEigen {
    /// Eigenvalues, sorted ascending.
    pub values: Vec<f64>,
    /// Eigenvectors as columns: `vectors[r][c]` = component `r` of the
    /// eigenvector belonging to `values[c]`. Orthonormal.
    pub vectors: Vec<Vec<f64>>,
}

/// Diagonalizes the symmetric `n×n` matrix `a` (row-major, `a[i][j]`).
///
/// # Panics
/// Panics when the matrix is not square, is empty, or is not symmetric
/// to within `1e-9` (absolute).
pub fn jacobi_eigen(a: &[Vec<f64>]) -> SymEigen {
    let n = a.len();
    assert!(n > 0, "empty matrix");
    for row in a {
        assert_eq!(row.len(), n, "matrix is not square");
    }
    for i in 0..n {
        for j in (i + 1)..n {
            assert!(
                (a[i][j] - a[j][i]).abs() < 1e-9,
                "matrix not symmetric at ({i},{j}): {} vs {}",
                a[i][j],
                a[j][i]
            );
        }
    }

    let mut m: Vec<Vec<f64>> = a.to_vec();
    let mut v: Vec<Vec<f64>> = (0..n)
        .map(|i| (0..n).map(|j| if i == j { 1.0 } else { 0.0 }).collect())
        .collect();

    const MAX_SWEEPS: usize = 100;
    for _sweep in 0..MAX_SWEEPS {
        let off: f64 = (0..n)
            .flat_map(|i| ((i + 1)..n).map(move |j| (i, j)))
            .map(|(i, j)| m[i][j] * m[i][j])
            .sum();
        if off < 1e-30 {
            break;
        }
        for p in 0..n {
            for q in (p + 1)..n {
                let apq = m[p][q];
                if apq.abs() < 1e-300 {
                    continue;
                }
                // Rotation angle: tan(2θ) = 2 a_pq / (a_qq - a_pp).
                let theta = (m[q][q] - m[p][p]) / (2.0 * apq);
                let t = {
                    let sign = if theta >= 0.0 { 1.0 } else { -1.0 };
                    sign / (theta.abs() + (theta * theta + 1.0).sqrt())
                };
                let c = 1.0 / (t * t + 1.0).sqrt();
                let s = t * c;
                let tau = s / (1.0 + c);

                let app = m[p][p];
                let aqq = m[q][q];
                m[p][p] = app - t * apq;
                m[q][q] = aqq + t * apq;
                m[p][q] = 0.0;
                m[q][p] = 0.0;
                for i in 0..n {
                    if i != p && i != q {
                        let aip = m[i][p];
                        let aiq = m[i][q];
                        m[i][p] = aip - s * (aiq + tau * aip);
                        m[p][i] = m[i][p];
                        m[i][q] = aiq + s * (aip - tau * aiq);
                        m[q][i] = m[i][q];
                    }
                }
                for row in v.iter_mut() {
                    let vip = row[p];
                    let viq = row[q];
                    row[p] = vip - s * (viq + tau * vip);
                    row[q] = viq + s * (vip - tau * viq);
                }
            }
        }
    }

    // Sort eigenpairs ascending by eigenvalue.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&i, &j| m[i][i].partial_cmp(&m[j][j]).unwrap());
    let values: Vec<f64> = order.iter().map(|&i| m[i][i]).collect();
    let vectors: Vec<Vec<f64>> = (0..n)
        .map(|r| order.iter().map(|&c| v[r][c]).collect())
        .collect();

    SymEigen { values, vectors }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reconstruct(e: &SymEigen) -> Vec<Vec<f64>> {
        let n = e.values.len();
        (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| {
                        (0..n)
                            .map(|k| e.vectors[i][k] * e.values[k] * e.vectors[j][k])
                            .sum()
                    })
                    .collect()
            })
            .collect()
    }

    #[test]
    fn diagonal_matrix() {
        let a = vec![
            vec![3.0, 0.0, 0.0],
            vec![0.0, 1.0, 0.0],
            vec![0.0, 0.0, 2.0],
        ];
        let e = jacobi_eigen(&a);
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 2.0).abs() < 1e-12);
        assert!((e.values[2] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn known_2x2() {
        // [[2,1],[1,2]] has eigenvalues 1 and 3.
        let a = vec![vec![2.0, 1.0], vec![1.0, 2.0]];
        let e = jacobi_eigen(&a);
        assert!((e.values[0] - 1.0).abs() < 1e-12);
        assert!((e.values[1] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn reconstruction_4x4() {
        let a = vec![
            vec![4.0, 1.0, 0.5, 0.2],
            vec![1.0, 3.0, 0.7, 0.1],
            vec![0.5, 0.7, 2.0, 0.3],
            vec![0.2, 0.1, 0.3, 1.0],
        ];
        let e = jacobi_eigen(&a);
        let r = reconstruct(&e);
        for i in 0..4 {
            for j in 0..4 {
                assert!((r[i][j] - a[i][j]).abs() < 1e-10, "({i},{j})");
            }
        }
    }

    #[test]
    fn eigenvectors_orthonormal() {
        let a = vec![
            vec![1.0, 0.4, 0.3],
            vec![0.4, 2.0, 0.6],
            vec![0.3, 0.6, 3.0],
        ];
        let e = jacobi_eigen(&a);
        for c1 in 0..3 {
            for c2 in 0..3 {
                let dot: f64 = (0..3).map(|r| e.vectors[r][c1] * e.vectors[r][c2]).sum();
                let expect = if c1 == c2 { 1.0 } else { 0.0 };
                assert!((dot - expect).abs() < 1e-10, "({c1},{c2}): {dot}");
            }
        }
    }

    #[test]
    fn trace_preserved() {
        let a = vec![
            vec![5.0, -1.0, 2.0, 0.0],
            vec![-1.0, 4.0, 1.0, -0.5],
            vec![2.0, 1.0, 3.0, 0.8],
            vec![0.0, -0.5, 0.8, 2.0],
        ];
        let e = jacobi_eigen(&a);
        let trace: f64 = (0..4).map(|i| a[i][i]).sum();
        let sum: f64 = e.values.iter().sum();
        assert!((trace - sum).abs() < 1e-10);
    }

    #[test]
    fn larger_20x20_random_symmetric() {
        // Deterministic pseudo-random symmetric matrix (protein-sized).
        let n = 20;
        let mut seed = 12345u64;
        let mut next = || {
            seed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((seed >> 33) as f64) / (u32::MAX as f64) - 0.5
        };
        let mut a = vec![vec![0.0; n]; n];
        for i in 0..n {
            for j in i..n {
                let x = next();
                a[i][j] = x;
                a[j][i] = x;
            }
            a[i][i] += n as f64; // diagonally dominant
        }
        let e = jacobi_eigen(&a);
        let r = reconstruct(&e);
        for i in 0..n {
            for j in 0..n {
                assert!((r[i][j] - a[i][j]).abs() < 1e-8);
            }
        }
        // Ascending order.
        for k in 1..n {
            assert!(e.values[k] >= e.values[k - 1]);
        }
    }

    #[test]
    #[should_panic]
    fn asymmetric_rejected() {
        jacobi_eigen(&[vec![1.0, 2.0], vec![0.0, 1.0]]);
    }

    #[test]
    #[should_panic]
    fn empty_rejected() {
        jacobi_eigen(&[]);
    }
}
