//! Brent's method for 1-D function minimization.
//!
//! RAxML optimizes the Γ shape parameter α and the GTR exchangeability
//! rates one at a time with Brent's parabolic-interpolation/golden-
//! section minimizer; this is a from-scratch implementation of the same
//! algorithm (Brent 1973, as in Numerical Recipes `brent`).

/// Result of a Brent minimization.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct BrentResult {
    /// Location of the minimum.
    pub xmin: f64,
    /// Function value at the minimum.
    pub fmin: f64,
    /// Number of function evaluations performed.
    pub evals: usize,
}

const GOLD: f64 = 0.381_966_011_250_105; // (3 - sqrt 5) / 2
const ZEPS: f64 = 1e-11;

/// Minimizes `f` over the bracket `[a, b]` to relative tolerance `tol`,
/// using at most `max_iter` iterations.
///
/// The bracket need not contain an interior minimum; in that case the
/// minimizer converges to the appropriate endpoint.
///
/// # Panics
/// Panics when `a >= b` or `tol <= 0`.
pub fn minimize<F: FnMut(f64) -> f64>(
    mut f: F,
    a: f64,
    b: f64,
    tol: f64,
    max_iter: usize,
) -> BrentResult {
    assert!(a < b, "invalid bracket [{a}, {b}]");
    assert!(tol > 0.0, "tolerance must be positive");

    let (mut lo, mut hi) = (a, b);
    let mut x = lo + GOLD * (hi - lo);
    let mut w = x;
    let mut v = x;
    let mut fx = f(x);
    let mut fw = fx;
    let mut fv = fx;
    let mut evals = 1usize;

    let mut d: f64 = 0.0;
    let mut e: f64 = 0.0;

    for _ in 0..max_iter {
        let xm = 0.5 * (lo + hi);
        let tol1 = tol * x.abs() + ZEPS;
        let tol2 = 2.0 * tol1;
        if (x - xm).abs() <= tol2 - 0.5 * (hi - lo) {
            break;
        }

        let mut use_golden = true;
        if e.abs() > tol1 {
            // Parabolic fit through (v, fv), (w, fw), (x, fx).
            let r = (x - w) * (fx - fv);
            let q0 = (x - v) * (fx - fw);
            let mut p = (x - v) * q0 - (x - w) * r;
            let mut q = 2.0 * (q0 - r);
            if q > 0.0 {
                p = -p;
            }
            q = q.abs();
            let e_prev = e;
            e = d;
            if p.abs() < (0.5 * q * e_prev).abs() && p > q * (lo - x) && p < q * (hi - x) {
                d = p / q;
                let u = x + d;
                if u - lo < tol2 || hi - u < tol2 {
                    d = if xm > x { tol1 } else { -tol1 };
                }
                use_golden = false;
            }
        }
        if use_golden {
            e = if x >= xm { lo - x } else { hi - x };
            d = GOLD * e;
        }

        let u = if d.abs() >= tol1 {
            x + d
        } else if d > 0.0 {
            x + tol1
        } else {
            x - tol1
        };
        let fu = f(u);
        evals += 1;

        if fu <= fx {
            if u >= x {
                lo = x;
            } else {
                hi = x;
            }
            (v, fv) = (w, fw);
            (w, fw) = (x, fx);
            (x, fx) = (u, fu);
        } else {
            if u < x {
                lo = u;
            } else {
                hi = u;
            }
            if fu <= fw || w == x {
                (v, fv) = (w, fw);
                (w, fw) = (u, fu);
            } else if fu <= fv || v == x || v == w {
                (v, fv) = (u, fu);
            }
        }
    }

    BrentResult {
        xmin: x,
        fmin: fx,
        evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadratic_minimum() {
        let r = minimize(|x| (x - 3.0) * (x - 3.0) + 2.0, 0.0, 10.0, 1e-10, 200);
        assert!((r.xmin - 3.0).abs() < 1e-6, "xmin={}", r.xmin);
        assert!((r.fmin - 2.0).abs() < 1e-10);
    }

    #[test]
    fn asymmetric_function() {
        // min of x - ln x at x = 1.
        let r = minimize(|x| x - x.ln(), 0.01, 50.0, 1e-10, 200);
        assert!((r.xmin - 1.0).abs() < 1e-6);
    }

    #[test]
    fn monotone_function_converges_to_endpoint() {
        let r = minimize(|x| x, 1.0, 2.0, 1e-9, 200);
        assert!((r.xmin - 1.0).abs() < 1e-4, "xmin={}", r.xmin);
    }

    #[test]
    fn narrow_well() {
        let r = minimize(
            |x: f64| ((x - 0.123).abs() + 1.0).ln(),
            0.0,
            1.0,
            1e-12,
            300,
        );
        assert!((r.xmin - 0.123).abs() < 1e-6);
    }

    #[test]
    fn eval_count_reported() {
        let mut n = 0;
        let r = minimize(
            |x| {
                n += 1;
                x * x
            },
            -1.0,
            1.0,
            1e-8,
            100,
        );
        assert_eq!(r.evals, n);
    }

    #[test]
    #[should_panic]
    fn invalid_bracket_panics() {
        minimize(|x| x, 2.0, 1.0, 1e-8, 10);
    }
}
