//! Gamma-family special functions, implemented from scratch.
//!
//! * [`lgamma`] — log Γ(x) via the Lanczos approximation (g = 7, 9
//!   coefficients), accurate to ~15 significant digits for x > 0.
//! * [`reg_gamma_p`] / [`reg_gamma_q`] — the regularized lower/upper
//!   incomplete gamma functions, via the classical series expansion for
//!   `x < a + 1` and the Lentz continued fraction otherwise.
//! * [`inv_reg_gamma_p`] — the inverse of `P(a, ·)`, via a
//!   Wilson-Hilferty starting guess refined by safeguarded Newton
//!   iteration; this is what discretizing the Γ rate model needs.

/// Lanczos coefficients for g = 7.
const LANCZOS: [f64; 9] = [
    0.999_999_999_999_809_93,
    676.520_368_121_885_1,
    -1_259.139_216_722_402_8,
    771.323_428_777_653_13,
    -176.615_029_162_140_6,
    12.507_343_278_686_905,
    -0.138_571_095_265_720_12,
    9.984_369_578_019_572e-6,
    1.505_632_735_149_311_6e-7,
];

/// Natural logarithm of the gamma function for `x > 0`.
///
/// # Panics
/// Panics when `x <= 0` (the likelihood code never needs the reflection
/// branch, and silently returning garbage there would hide bugs).
pub fn lgamma(x: f64) -> f64 {
    assert!(x > 0.0, "lgamma requires x > 0, got {x}");
    if x < 0.5 {
        // Reflection for better accuracy near zero:
        // Γ(x)Γ(1-x) = π / sin(πx).
        return std::f64::consts::PI.ln() - (std::f64::consts::PI * x).sin().ln() - lgamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = LANCZOS[0];
    for (i, &c) in LANCZOS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + 7.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

const MAX_ITER: usize = 500;
const EPS: f64 = 1e-15;

/// Regularized lower incomplete gamma function `P(a, x)` for `a > 0`,
/// `x >= 0`.
pub fn reg_gamma_p(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "reg_gamma_p domain: a={a}, x={x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        gamma_p_series(a, x)
    } else {
        1.0 - gamma_q_cf(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
pub fn reg_gamma_q(a: f64, x: f64) -> f64 {
    assert!(a > 0.0 && x >= 0.0, "reg_gamma_q domain: a={a}, x={x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - gamma_p_series(a, x)
    } else {
        gamma_q_cf(a, x)
    }
}

/// Series expansion of P(a, x), converges fast for x < a + 1.
fn gamma_p_series(a: f64, x: f64) -> f64 {
    let mut ap = a;
    let mut sum = 1.0 / a;
    let mut term = sum;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * EPS {
            break;
        }
    }
    sum * (-x + a * x.ln() - lgamma(a)).exp()
}

/// Modified Lentz continued fraction for Q(a, x), converges for
/// x >= a + 1.
fn gamma_q_cf(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    h * (-x + a * x.ln() - lgamma(a)).exp()
}

/// Inverse of the regularized lower incomplete gamma: returns `x` such
/// that `P(a, x) = p`, for `a > 0`, `0 <= p < 1`.
///
/// Uses the Wilson-Hilferty normal approximation as the starting point,
/// then safeguarded Newton iteration on `P(a, x) - p` with bisection
/// fallback when a Newton step leaves the bracket.
pub fn inv_reg_gamma_p(a: f64, p: f64) -> f64 {
    assert!(a > 0.0, "inv_reg_gamma_p requires a > 0");
    assert!(
        (0.0..1.0).contains(&p),
        "inv_reg_gamma_p requires 0 <= p < 1"
    );
    if p == 0.0 {
        return 0.0;
    }

    // Wilson-Hilferty: if X ~ Gamma(a, 1) then (X/a)^(1/3) is approx
    // normal with mean 1 - 1/(9a) and variance 1/(9a).
    let z = inv_std_normal(p);
    let t = 1.0 - 1.0 / (9.0 * a) + z / (3.0 * a.sqrt());
    let mut x = (a * t * t * t).max(1e-12);

    // Establish a bracket [lo, hi] around the root.
    let mut lo = 0.0f64;
    let mut hi = x.max(1.0);
    while reg_gamma_p(a, hi) < p {
        hi *= 2.0;
        if hi > 1e12 {
            break;
        }
    }

    let lgam = lgamma(a);
    for _ in 0..200 {
        let f = reg_gamma_p(a, x) - p;
        if f > 0.0 {
            hi = x;
        } else {
            lo = x;
        }
        if f.abs() < 1e-14 {
            break;
        }
        // P'(a, x) = x^(a-1) e^{-x} / Γ(a)
        let dens = ((a - 1.0) * x.ln() - x - lgam).exp();
        let mut next = if dens > 0.0 { x - f / dens } else { f64::NAN };
        if !(next > lo && next < hi) {
            next = 0.5 * (lo + hi);
        }
        if (next - x).abs() <= 1e-15 * x.abs() {
            x = next;
            break;
        }
        x = next;
    }
    x
}

/// Inverse standard normal CDF (Acklam's rational approximation,
/// |relative error| < 1.15e-9 — ample for a Newton starting point).
fn inv_std_normal(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0);
    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -inv_std_normal(1.0 - p)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lgamma_known_values() {
        // Γ(1) = Γ(2) = 1, Γ(5) = 24, Γ(0.5) = sqrt(pi).
        assert!(lgamma(1.0).abs() < 1e-12);
        assert!(lgamma(2.0).abs() < 1e-12);
        assert!((lgamma(5.0) - 24f64.ln()).abs() < 1e-12);
        assert!((lgamma(0.5) - 0.5 * std::f64::consts::PI.ln()).abs() < 1e-12);
    }

    #[test]
    fn lgamma_recurrence() {
        // Γ(x+1) = x Γ(x) across a range of magnitudes.
        for &x in &[0.1, 0.7, 1.3, 4.2, 17.9, 123.4] {
            let lhs = lgamma(x + 1.0);
            let rhs = lgamma(x) + x.ln();
            assert!((lhs - rhs).abs() < 1e-10, "x={x}: {lhs} vs {rhs}");
        }
    }

    #[test]
    #[should_panic]
    fn lgamma_rejects_nonpositive() {
        lgamma(0.0);
    }

    #[test]
    fn gamma_p_boundaries() {
        assert_eq!(reg_gamma_p(2.0, 0.0), 0.0);
        assert!((reg_gamma_p(2.0, 1e6) - 1.0).abs() < 1e-12);
        assert_eq!(reg_gamma_q(2.0, 0.0), 1.0);
    }

    #[test]
    fn gamma_p_plus_q_is_one() {
        for &a in &[0.3, 1.0, 2.5, 10.0, 50.0] {
            for &x in &[0.01, 0.5, 1.0, 3.0, 10.0, 80.0] {
                let s = reg_gamma_p(a, x) + reg_gamma_q(a, x);
                assert!((s - 1.0).abs() < 1e-12, "a={a} x={x}: {s}");
            }
        }
    }

    #[test]
    fn gamma_p_known_values() {
        // P(1, x) = 1 - e^{-x} (exponential CDF).
        for &x in &[0.1f64, 1.0, 2.5, 7.0] {
            let expect = 1.0 - (-x).exp();
            assert!((reg_gamma_p(1.0, x) - expect).abs() < 1e-12);
        }
        // Chi-square with 2 dof at its median: P(1, ln 2) = 0.5.
        assert!((reg_gamma_p(1.0, std::f64::consts::LN_2) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn gamma_p_monotone_in_x() {
        let a = 0.47;
        let mut prev = -1.0;
        for i in 0..100 {
            let x = i as f64 * 0.2;
            let v = reg_gamma_p(a, x);
            assert!(v >= prev);
            prev = v;
        }
    }

    #[test]
    fn inverse_roundtrip() {
        for &a in &[0.05, 0.25, 0.5, 1.0, 2.0, 7.5, 42.0] {
            for &p in &[0.001, 0.05, 0.25, 0.5, 0.75, 0.95, 0.999] {
                let x = inv_reg_gamma_p(a, p);
                let back = reg_gamma_p(a, x);
                assert!((back - p).abs() < 1e-9, "a={a} p={p}: x={x}, P(a,x)={back}");
            }
        }
    }

    #[test]
    fn inverse_at_zero() {
        assert_eq!(inv_reg_gamma_p(3.0, 0.0), 0.0);
    }

    #[test]
    fn inv_std_normal_symmetry() {
        assert!((inv_std_normal(0.5)).abs() < 1e-8);
        assert!((inv_std_normal(0.975) - 1.959_964).abs() < 1e-4);
        assert!((inv_std_normal(0.025) + 1.959_964).abs() < 1e-4);
    }
}
