//! Generic N-state reversible substitution models.
//!
//! The DNA stack ([`crate::gtr`]) is hard-wired to 4 states for kernel
//! efficiency. This module provides the runtime-N generalization the
//! paper lists as future work (§VII: "support protein data"): a
//! reversible rate matrix over any alphabet size, eigendecomposed
//! through the same symmetrization trick, with heap-backed matrices.
//!
//! [`protein_poisson`] builds the 20-state Poisson+F model (uniform
//! exchangeabilities, empirical frequencies) — the standard minimal
//! protein model; richer empirical matrices drop in as exchangeability
//! tables.

use crate::math::jacobi::jacobi_eigen;

/// Eigendecomposition of an N-state reversible rate matrix.
#[derive(Clone, Debug)]
pub struct NEigensystem {
    n: usize,
    values: Vec<f64>,
    /// `u[i][j]`: right eigenvectors as columns.
    u: Vec<Vec<f64>>,
    /// `u_inv[j][i]`.
    u_inv: Vec<Vec<f64>>,
    freqs: Vec<f64>,
}

impl NEigensystem {
    /// Builds a reversible model from a symmetric exchangeability
    /// matrix `s` (diagonal ignored) and stationary frequencies,
    /// normalized to one expected substitution per unit time.
    pub fn new(s: &[Vec<f64>], freqs: &[f64]) -> Result<Self, String> {
        let n = freqs.len();
        if n < 2 {
            return Err("need at least 2 states".into());
        }
        if s.len() != n || s.iter().any(|row| row.len() != n) {
            return Err("exchangeability matrix shape mismatch".into());
        }
        let fsum: f64 = freqs.iter().sum();
        // NaN must fail these checks, hence the `.. <= 0.0 || !finite`
        // formulation rather than a bare `> 0.0` test.
        if (fsum - 1.0).abs() > 1e-6 || freqs.iter().any(|&f| f <= 0.0 || !f.is_finite()) {
            return Err(format!("invalid frequencies (sum {fsum})"));
        }
        for i in 0..n {
            for j in (i + 1)..n {
                let bad = !(s[i][j] - s[j][i]).abs().is_finite()
                    || s[i][j] <= 0.0
                    || s[i][j].is_nan()
                    || (s[i][j] - s[j][i]).abs() > 1e-9;
                if bad {
                    return Err(format!("invalid exchangeability at ({i},{j})"));
                }
            }
        }

        // Q = S diag(pi), zero row sums, unit expected rate.
        let mut q = vec![vec![0.0; n]; n];
        for i in 0..n {
            let mut row = 0.0;
            for j in 0..n {
                if i != j {
                    q[i][j] = s[i][j] * freqs[j];
                    row += q[i][j];
                }
            }
            q[i][i] = -row;
        }
        let scale: f64 = -(0..n).map(|i| freqs[i] * q[i][i]).sum::<f64>();
        if scale <= 0.0 {
            return Err("degenerate rate matrix".into());
        }
        for row in q.iter_mut() {
            for v in row.iter_mut() {
                *v /= scale;
            }
        }

        // Symmetrize and diagonalize.
        let sq: Vec<f64> = freqs.iter().map(|f| f.sqrt()).collect();
        let b: Vec<Vec<f64>> = (0..n)
            .map(|i| (0..n).map(|j| sq[i] * q[i][j] / sq[j]).collect())
            .collect();
        let sym = jacobi_eigen(&b);

        let mut values = sym.values.clone();
        let mut u = vec![vec![0.0; n]; n];
        let mut u_inv = vec![vec![0.0; n]; n];
        for j in 0..n {
            for i in 0..n {
                u[i][j] = sym.vectors[i][j] / sq[i];
                u_inv[j][i] = sym.vectors[i][j] * sq[i];
            }
        }
        // Snap the stationary eigenvalue to exactly zero.
        let (zi, _) = values
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .expect("non-empty");
        values[zi] = 0.0;

        Ok(NEigensystem {
            n,
            values,
            u,
            u_inv,
            freqs: freqs.to_vec(),
        })
    }

    /// Number of states.
    pub fn num_states(&self) -> usize {
        self.n
    }

    /// Eigenvalues (one exactly zero, the rest negative).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Right eigenvector matrix U.
    pub fn u(&self) -> &[Vec<f64>] {
        &self.u
    }

    /// Inverse eigenvector matrix U⁻¹.
    pub fn u_inv(&self) -> &[Vec<f64>] {
        &self.u_inv
    }

    /// Stationary frequencies.
    pub fn freqs(&self) -> &[f64] {
        &self.freqs
    }

    /// Transition probability matrix over branch `t` scaled by `rate`,
    /// entries clamped to `[0, 1]`.
    pub fn prob_matrix(&self, t: f64, rate: f64) -> Vec<Vec<f64>> {
        let n = self.n;
        let expo: Vec<f64> = self.values.iter().map(|&l| (l * rate * t).exp()).collect();
        (0..n)
            .map(|i| {
                (0..n)
                    .map(|j| {
                        let mut sum = 0.0;
                        for k in 0..n {
                            sum += self.u[i][k] * expo[k] * self.u_inv[k][j];
                        }
                        sum.clamp(0.0, 1.0)
                    })
                    .collect()
            })
            .collect()
    }
}

/// Number of amino-acid states.
pub const NUM_AA_STATES: usize = 20;

/// The Poisson+F protein model: uniform exchangeabilities with the
/// given stationary amino-acid frequencies.
pub fn protein_poisson(freqs: &[f64; NUM_AA_STATES]) -> Result<NEigensystem, String> {
    let s = vec![vec![1.0; NUM_AA_STATES]; NUM_AA_STATES];
    NEigensystem::new(&s, freqs)
}

/// The 4-state DNA model expressed through the generic machinery
/// (used as a cross-check oracle against [`crate::gtr::Gtr`]).
pub fn dna_as_nstate(params: &crate::gtr::GtrParams) -> Result<NEigensystem, String> {
    let idx = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
    let mut s = vec![vec![0.0; 4]; 4];
    for (k, &(i, j)) in idx.iter().enumerate() {
        s[i][j] = params.rates[k];
        s[j][i] = params.rates[k];
    }
    NEigensystem::new(&s, &params.freqs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gtr::{Gtr, GtrParams};

    fn uniform_aa() -> [f64; 20] {
        [0.05; 20]
    }

    fn skewed_aa() -> [f64; 20] {
        let mut f = [0.0f64; 20];
        let mut total = 0.0;
        for (i, v) in f.iter_mut().enumerate() {
            *v = 1.0 + (i as f64) * 0.3;
            total += *v;
        }
        f.map(|v| v / total)
    }

    #[test]
    fn poisson_rows_sum_to_one() {
        let m = protein_poisson(&skewed_aa()).unwrap();
        for &t in &[0.01, 0.3, 2.0, 50.0] {
            let p = m.prob_matrix(t, 1.0);
            for (i, row) in p.iter().enumerate() {
                let s: f64 = row.iter().sum();
                assert!((s - 1.0).abs() < 1e-8, "t={t} row {i}: {s}");
            }
        }
    }

    #[test]
    fn poisson_converges_to_frequencies() {
        let f = skewed_aa();
        let m = protein_poisson(&f).unwrap();
        let p = m.prob_matrix(500.0, 1.0);
        for row in &p {
            for j in 0..20 {
                assert!((row[j] - f[j]).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn poisson_identity_at_zero() {
        let m = protein_poisson(&uniform_aa()).unwrap();
        let p = m.prob_matrix(0.0, 1.0);
        for i in 0..20 {
            for j in 0..20 {
                let e = if i == j { 1.0 } else { 0.0 };
                assert!((p[i][j] - e).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn chapman_kolmogorov_20_states() {
        let m = protein_poisson(&skewed_aa()).unwrap();
        let (s, t) = (0.21, 0.43);
        let ps = m.prob_matrix(s, 1.0);
        let pt = m.prob_matrix(t, 1.0);
        let pst = m.prob_matrix(s + t, 1.0);
        for i in 0..20 {
            for j in 0..20 {
                let prod: f64 = (0..20).map(|k| ps[i][k] * pt[k][j]).sum();
                assert!((prod - pst[i][j]).abs() < 1e-9, "({i},{j})");
            }
        }
    }

    #[test]
    fn dna_special_case_matches_gtr() {
        let params = GtrParams {
            rates: [1.3, 2.7, 0.6, 1.1, 3.8, 1.0],
            freqs: [0.3, 0.2, 0.22, 0.28],
        };
        let g = Gtr::new(params);
        let n = dna_as_nstate(&params).unwrap();
        for &t in &[0.05, 0.4, 1.7] {
            let p4 = g.eigen().prob_matrix(t, 1.3);
            let pn = n.prob_matrix(t, 1.3);
            for i in 0..4 {
                for j in 0..4 {
                    assert!((p4[i][j] - pn[i][j]).abs() < 1e-10, "({i},{j}) t={t}");
                }
            }
        }
    }

    #[test]
    fn invalid_inputs_rejected() {
        assert!(NEigensystem::new(&[vec![1.0]], &[1.0]).is_err()); // 1 state
        let s = vec![vec![1.0; 3]; 3];
        assert!(NEigensystem::new(&s, &[0.5, 0.5, 0.5]).is_err()); // bad freqs
        let mut asym = vec![vec![1.0; 3]; 3];
        asym[0][1] = 2.0;
        assert!(NEigensystem::new(&asym, &[0.3, 0.3, 0.4]).is_err());
        let zero = vec![vec![0.0; 3]; 3];
        assert!(NEigensystem::new(&zero, &[0.3, 0.3, 0.4]).is_err());
    }

    #[test]
    fn one_zero_eigenvalue() {
        let m = protein_poisson(&skewed_aa()).unwrap();
        assert_eq!(m.values().iter().filter(|v| **v == 0.0).count(), 1);
        assert_eq!(m.values().iter().filter(|v| **v < 0.0).count(), 19);
    }
}
