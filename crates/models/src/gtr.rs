//! The general time-reversible (GTR) DNA substitution model.
//!
//! GTR is the model RAxML, ExaML, and the paper's kernels operate
//! under. It is parameterized by six exchangeability rates (AC, AG, AT,
//! CG, CT, GT — GT conventionally fixed to 1) and four stationary base
//! frequencies. The instantaneous rate matrix is
//! `Q[i][j] = s_ij * π_j` (i ≠ j), normalized so the expected number of
//! substitutions per unit time is 1, which makes branch lengths directly
//! interpretable as expected substitutions per site.
//!
//! Reversibility makes `diag(π)^{1/2} Q diag(π)^{-1/2}` symmetric, so Q
//! is diagonalized with the Jacobi solver and `P(t) = U exp(Λt) U⁻¹`
//! with real eigenvalues — the decomposition the `derivativeCore` kernel
//! relies on.

use crate::math::jacobi::jacobi_eigen;
use crate::pmatrix::Eigensystem;
use crate::NUM_STATES;

/// Indices into the six GTR exchangeability rates.
pub const RATE_NAMES: [&str; 6] = ["AC", "AG", "AT", "CG", "CT", "GT"];

/// Raw GTR parameters: exchangeabilities and stationary frequencies.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct GtrParams {
    /// Exchangeability rates in order AC, AG, AT, CG, CT, GT.
    pub rates: [f64; 6],
    /// Stationary base frequencies in order A, C, G, T.
    pub freqs: [f64; NUM_STATES],
}

impl GtrParams {
    /// The Jukes-Cantor special case: all rates 1, uniform frequencies.
    pub fn jc69() -> Self {
        GtrParams {
            rates: [1.0; 6],
            freqs: [0.25; NUM_STATES],
        }
    }

    /// HKY-style parameters with transition/transversion ratio `kappa`
    /// and the given frequencies (transitions: AG and CT).
    pub fn hky(kappa: f64, freqs: [f64; NUM_STATES]) -> Self {
        GtrParams {
            rates: [1.0, kappa, 1.0, 1.0, kappa, 1.0],
            freqs,
        }
    }

    /// Validates positivity and that frequencies sum to 1 (±1e-6).
    pub fn validate(&self) -> Result<(), String> {
        for (i, &r) in self.rates.iter().enumerate() {
            if !(r.is_finite() && r > 0.0) {
                return Err(format!("rate {} must be positive, got {r}", RATE_NAMES[i]));
            }
        }
        let sum: f64 = self.freqs.iter().sum();
        if (sum - 1.0).abs() > 1e-6 {
            return Err(format!("frequencies sum to {sum}, expected 1"));
        }
        for &f in &self.freqs {
            if !(f.is_finite() && f > 0.0) {
                return Err(format!("frequencies must be positive, got {f}"));
            }
        }
        Ok(())
    }
}

/// A fully constructed GTR model: normalized rate matrix plus its
/// eigendecomposition, ready for P-matrix exponentiation.
#[derive(Clone, Debug)]
pub struct Gtr {
    params: GtrParams,
    /// Normalized instantaneous rate matrix, row-major.
    q: [[f64; NUM_STATES]; NUM_STATES],
    eigen: Eigensystem,
}

impl Gtr {
    /// Builds the model: assembles Q, normalizes it to one expected
    /// substitution per unit time, and eigendecomposes it.
    ///
    /// # Panics
    /// Panics when `params.validate()` fails; use `try_new` to handle
    /// parameter errors gracefully.
    pub fn new(params: GtrParams) -> Self {
        Self::try_new(params).expect("invalid GTR parameters")
    }

    /// Fallible constructor.
    pub fn try_new(params: GtrParams) -> Result<Self, String> {
        params.validate()?;
        let pi = params.freqs;

        // Symmetric exchangeability matrix S (zero diagonal).
        let mut s = [[0.0f64; NUM_STATES]; NUM_STATES];
        let idx = [(0, 1), (0, 2), (0, 3), (1, 2), (1, 3), (2, 3)];
        for (k, &(i, j)) in idx.iter().enumerate() {
            s[i][j] = params.rates[k];
            s[j][i] = params.rates[k];
        }

        // Q = S diag(pi) with diagonal fixed so rows sum to zero.
        let mut q = [[0.0f64; NUM_STATES]; NUM_STATES];
        for i in 0..NUM_STATES {
            let mut row = 0.0;
            for j in 0..NUM_STATES {
                if i != j {
                    q[i][j] = s[i][j] * pi[j];
                    row += q[i][j];
                }
            }
            q[i][i] = -row;
        }

        // Normalize: expected rate = -sum_i pi_i Q_ii = 1.
        let scale: f64 = -(0..NUM_STATES).map(|i| pi[i] * q[i][i]).sum::<f64>();
        if scale <= 0.0 {
            return Err("degenerate rate matrix (zero total rate)".into());
        }
        for row in q.iter_mut() {
            for entry in row.iter_mut() {
                *entry /= scale;
            }
        }

        // Symmetrize: B = D^{1/2} Q D^{-1/2}, D = diag(pi).
        let sq: [f64; NUM_STATES] = pi.map(f64::sqrt);
        let b: Vec<Vec<f64>> = (0..NUM_STATES)
            .map(|i| (0..NUM_STATES).map(|j| sq[i] * q[i][j] / sq[j]).collect())
            .collect();
        let sym = jacobi_eigen(&b);

        // U = D^{-1/2} V, U^{-1} = V^T D^{1/2}.
        let mut u = [[0.0f64; NUM_STATES]; NUM_STATES];
        let mut u_inv = [[0.0f64; NUM_STATES]; NUM_STATES];
        let mut values = [0.0f64; NUM_STATES];
        for j in 0..NUM_STATES {
            values[j] = sym.values[j];
            for i in 0..NUM_STATES {
                u[i][j] = sym.vectors[i][j] / sq[i];
                u_inv[j][i] = sym.vectors[i][j] * sq[i];
            }
        }

        // The zero eigenvalue (stationarity) comes out as ~1e-16 noise;
        // snap it exactly to zero so P(t) rows sum to 1 for huge t.
        let (zi, _) = values
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .expect("non-empty");
        values[zi] = 0.0;

        let eigen = Eigensystem::new(values, u, u_inv, pi);
        Ok(Gtr { params, q, eigen })
    }

    /// The raw parameters this model was built from.
    pub fn params(&self) -> &GtrParams {
        &self.params
    }

    /// The normalized rate matrix Q.
    pub fn q(&self) -> &[[f64; NUM_STATES]; NUM_STATES] {
        &self.q
    }

    /// Stationary frequencies π.
    pub fn freqs(&self) -> [f64; NUM_STATES] {
        self.params.freqs
    }

    /// The eigendecomposition (shared with the PLF kernels).
    pub fn eigen(&self) -> &Eigensystem {
        &self.eigen
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn typical() -> Gtr {
        Gtr::new(GtrParams {
            rates: [1.3, 3.9, 0.7, 0.9, 4.2, 1.0],
            freqs: [0.31, 0.19, 0.22, 0.28],
        })
    }

    #[test]
    fn q_rows_sum_to_zero() {
        let g = typical();
        for row in g.q() {
            let s: f64 = row.iter().sum();
            assert!(s.abs() < 1e-12, "row sum {s}");
        }
    }

    #[test]
    fn q_normalized_to_unit_rate() {
        let g = typical();
        let pi = g.freqs();
        let rate: f64 = -(0..4).map(|i| pi[i] * g.q()[i][i]).sum::<f64>();
        assert!((rate - 1.0).abs() < 1e-12);
    }

    #[test]
    fn detailed_balance() {
        // Reversibility: pi_i Q_ij = pi_j Q_ji.
        let g = typical();
        let pi = g.freqs();
        for i in 0..4 {
            for j in 0..4 {
                let lhs = pi[i] * g.q()[i][j];
                let rhs = pi[j] * g.q()[j][i];
                assert!((lhs - rhs).abs() < 1e-12, "({i},{j})");
            }
        }
    }

    #[test]
    fn eigen_reconstructs_q() {
        let g = typical();
        let e = g.eigen();
        for i in 0..4 {
            for j in 0..4 {
                let mut sum = 0.0;
                for k in 0..4 {
                    sum += e.u()[i][k] * e.values()[k] * e.u_inv()[k][j];
                }
                assert!((sum - g.q()[i][j]).abs() < 1e-10, "({i},{j})");
            }
        }
    }

    #[test]
    fn one_zero_eigenvalue_rest_negative() {
        let g = typical();
        let vals = g.eigen().values();
        let zeros = vals.iter().filter(|v| **v == 0.0).count();
        assert_eq!(zeros, 1);
        assert_eq!(vals.iter().filter(|v| **v < 0.0).count(), 3);
    }

    #[test]
    fn u_uinv_are_inverses() {
        let g = typical();
        let e = g.eigen();
        for i in 0..4 {
            for j in 0..4 {
                let mut sum = 0.0;
                for k in 0..4 {
                    sum += e.u()[i][k] * e.u_inv()[k][j];
                }
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((sum - expect).abs() < 1e-10);
            }
        }
    }

    #[test]
    fn jc69_eigenvalues() {
        // JC69 normalized Q has eigenvalues {0, -4/3, -4/3, -4/3}.
        let g = Gtr::new(GtrParams::jc69());
        let vals = g.eigen().values();
        assert!((vals[0]).abs() < 1e-12 || (vals[0] + 4.0 / 3.0).abs() < 1e-12);
        let negs: Vec<f64> = vals.iter().copied().filter(|v| *v < -1e-9).collect();
        assert_eq!(negs.len(), 3);
        for v in negs {
            assert!((v + 4.0 / 3.0).abs() < 1e-10);
        }
    }

    #[test]
    fn hky_is_gtr_special_case() {
        let p = GtrParams::hky(4.0, [0.25; 4]);
        assert_eq!(p.rates[1], 4.0);
        assert_eq!(p.rates[4], 4.0);
        assert!(Gtr::try_new(p).is_ok());
    }

    #[test]
    fn invalid_params_rejected() {
        let mut p = GtrParams::jc69();
        p.rates[0] = 0.0;
        assert!(Gtr::try_new(p).is_err());

        let mut p = GtrParams::jc69();
        p.freqs = [0.5, 0.5, 0.5, 0.5];
        assert!(Gtr::try_new(p).is_err());

        let mut p = GtrParams::jc69();
        p.freqs = [1.0, -0.1, 0.05, 0.05];
        assert!(Gtr::try_new(p).is_err());

        let mut p = GtrParams::jc69();
        p.rates[2] = f64::NAN;
        assert!(Gtr::try_new(p).is_err());
    }
}
