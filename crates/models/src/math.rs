//! From-scratch numerical building blocks.

pub mod brent;
pub mod gammafn;
pub mod jacobi;

pub use brent::minimize as brent_minimize;
pub use gammafn::{inv_reg_gamma_p, lgamma, reg_gamma_p, reg_gamma_q};
pub use jacobi::jacobi_eigen;
