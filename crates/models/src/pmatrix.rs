//! Transition probability matrices from the GTR eigendecomposition.

use crate::{NUM_RATES, NUM_STATES};

/// The eigendecomposition `Q = U diag(λ) U⁻¹` of a reversible rate
/// matrix, plus the stationary frequencies. This is the object the PLF
/// kernels consume: `newview`/`evaluate` need `P(t)` matrices built from
/// it, while `derivativeSum`/`derivativeCore` use `U`, `U⁻¹`, and λ
/// directly (the branch-length derivative is a sum of `λ_j r_k`-weighted
/// exponentials).
#[derive(Clone, Debug)]
pub struct Eigensystem {
    values: [f64; NUM_STATES],
    u: [[f64; NUM_STATES]; NUM_STATES],
    u_inv: [[f64; NUM_STATES]; NUM_STATES],
    freqs: [f64; NUM_STATES],
}

impl Eigensystem {
    /// Assembles an eigensystem from its parts (normally produced by
    /// [`crate::gtr::Gtr::try_new`]).
    pub fn new(
        values: [f64; NUM_STATES],
        u: [[f64; NUM_STATES]; NUM_STATES],
        u_inv: [[f64; NUM_STATES]; NUM_STATES],
        freqs: [f64; NUM_STATES],
    ) -> Self {
        Eigensystem {
            values,
            u,
            u_inv,
            freqs,
        }
    }

    /// Eigenvalues λ (one exactly zero, the rest negative).
    pub fn values(&self) -> &[f64; NUM_STATES] {
        &self.values
    }

    /// Right eigenvector matrix U (columns are eigenvectors).
    pub fn u(&self) -> &[[f64; NUM_STATES]; NUM_STATES] {
        &self.u
    }

    /// Inverse eigenvector matrix U⁻¹.
    pub fn u_inv(&self) -> &[[f64; NUM_STATES]; NUM_STATES] {
        &self.u_inv
    }

    /// Stationary frequencies π.
    pub fn freqs(&self) -> &[f64; NUM_STATES] {
        &self.freqs
    }

    /// Computes `P(r·t)` for a single rate multiplier: the transition
    /// probability matrix over branch length `t` scaled by rate `r`.
    ///
    /// Entries are clamped to `[0, 1]`: exact arithmetic guarantees the
    /// range, but floating-point noise can produce values like `-1e-18`
    /// which would poison log-likelihoods downstream.
    pub fn prob_matrix(&self, t: f64, rate: f64) -> [[f64; NUM_STATES]; NUM_STATES] {
        debug_assert!(t >= 0.0 && rate >= 0.0, "negative branch or rate");
        let expo: [f64; NUM_STATES] = {
            let mut e = [0.0; NUM_STATES];
            for j in 0..NUM_STATES {
                e[j] = (self.values[j] * rate * t).exp();
            }
            e
        };
        let mut p = [[0.0f64; NUM_STATES]; NUM_STATES];
        for i in 0..NUM_STATES {
            for j in 0..NUM_STATES {
                let mut sum = 0.0;
                for k in 0..NUM_STATES {
                    sum += self.u[i][k] * expo[k] * self.u_inv[k][j];
                }
                p[i][j] = sum.clamp(0.0, 1.0);
            }
        }
        p
    }
}

/// The full set of per-rate-category transition matrices for one branch:
/// what `newview` consumes for one child edge under Γ.
#[derive(Clone, Debug)]
pub struct ProbMatrix {
    /// `per_rate[k][a][b]` = P(state a → b over branch `t` at rate r_k).
    pub per_rate: [[[f64; NUM_STATES]; NUM_STATES]; NUM_RATES],
    /// The branch length this matrix was computed for.
    pub branch_length: f64,
}

impl ProbMatrix {
    /// Builds the Γ-category transition matrices for branch length `t`.
    pub fn new(eigen: &Eigensystem, rates: &[f64; NUM_RATES], t: f64) -> Self {
        let mut per_rate = [[[0.0; NUM_STATES]; NUM_STATES]; NUM_RATES];
        for (k, &r) in rates.iter().enumerate() {
            per_rate[k] = eigen.prob_matrix(t, r);
        }
        ProbMatrix {
            per_rate,
            branch_length: t,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gtr::{Gtr, GtrParams};

    fn eigen() -> Eigensystem {
        Gtr::new(GtrParams {
            rates: [1.1, 2.7, 0.6, 1.4, 3.8, 1.0],
            freqs: [0.27, 0.23, 0.24, 0.26],
        })
        .eigen()
        .clone()
    }

    #[test]
    fn identity_at_zero() {
        let e = eigen();
        let p = e.prob_matrix(0.0, 1.0);
        for i in 0..4 {
            for j in 0..4 {
                let expect = if i == j { 1.0 } else { 0.0 };
                assert!((p[i][j] - expect).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn rows_sum_to_one() {
        let e = eigen();
        for &t in &[0.001, 0.1, 1.0, 10.0, 500.0] {
            let p = e.prob_matrix(t, 1.0);
            for (i, row) in p.iter().enumerate() {
                let s: f64 = row.iter().sum();
                assert!((s - 1.0).abs() < 1e-9, "t={t} row {i}: {s}");
            }
        }
    }

    #[test]
    fn entries_are_probabilities() {
        let e = eigen();
        for &t in &[0.01, 0.5, 3.0] {
            let p = e.prob_matrix(t, 1.7);
            for row in &p {
                for &v in row {
                    assert!((0.0..=1.0).contains(&v));
                }
            }
        }
    }

    #[test]
    fn chapman_kolmogorov() {
        // P(s+t) = P(s) P(t).
        let e = eigen();
        let (s, t) = (0.13, 0.57);
        let ps = e.prob_matrix(s, 1.0);
        let pt = e.prob_matrix(t, 1.0);
        let pst = e.prob_matrix(s + t, 1.0);
        for i in 0..4 {
            for j in 0..4 {
                let prod: f64 = (0..4).map(|k| ps[i][k] * pt[k][j]).sum();
                assert!((prod - pst[i][j]).abs() < 1e-10, "({i},{j})");
            }
        }
    }

    #[test]
    fn converges_to_stationary() {
        let e = eigen();
        let p = e.prob_matrix(1e4, 1.0);
        for row in &p {
            for j in 0..4 {
                assert!((row[j] - e.freqs()[j]).abs() < 1e-8);
            }
        }
    }

    #[test]
    fn rate_scales_time() {
        let e = eigen();
        let a = e.prob_matrix(2.0, 0.5);
        let b = e.prob_matrix(1.0, 1.0);
        for i in 0..4 {
            for j in 0..4 {
                assert!((a[i][j] - b[i][j]).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn prob_matrix_set_per_category() {
        let e = eigen();
        let rates = [0.2, 0.6, 1.2, 2.0];
        let pm = ProbMatrix::new(&e, &rates, 0.3);
        assert_eq!(pm.branch_length, 0.3);
        // Faster categories move further from identity.
        let self_prob = |k: usize| -> f64 { (0..4).map(|i| pm.per_rate[k][i][i]).sum::<f64>() };
        assert!(self_prob(0) > self_prob(1));
        assert!(self_prob(1) > self_prob(2));
        assert!(self_prob(2) > self_prob(3));
    }
}
