//! Integration tests over the seeded-violation fixture corpus in
//! `crates/analyzer/fixtures/`. Each fixture file is analyzed under a
//! synthetic workspace path chosen so the rule under test discovers
//! its entry points, and the tests assert the exact audit keys (and,
//! where line-stability matters, the lines) of the seeded violations.
//!
//! The corpus is excluded from `cargo xtask lint` runs —
//! [`plf_analyzer::collect_rs_files`] skips `fixtures/` directories —
//! so the deliberate violations never pollute the workspace audit.

use plf_analyzer::graph::CallGraph;
use plf_analyzer::item::{extract, FileItems, FnItem};
use plf_analyzer::report::Finding;
use plf_analyzer::rules::{fpdet, inventory, purity, safety, Allowlist, Allowlists};

fn fixture(name: &str) -> String {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read fixture {}: {e}", path.display()))
}

/// Extracts a fixture under a synthetic path and runs every rule
/// family with empty allowlists.
fn analyze(name: &str, as_path: &str) -> (Vec<Finding>, FileItems, Vec<FnItem>) {
    let mut items = extract(as_path, &fixture(name), &[]);
    let fns = std::mem::take(&mut items.fns);
    let graph = CallGraph::build(&fns);
    let allow = Allowlists::default();
    let mut findings = Vec::new();
    findings.extend(purity::run(&fns, &graph, &allow.purity));
    findings.extend(fpdet::run(&fns, &graph, &allow.fpdet));
    findings.extend(safety::run(
        std::slice::from_ref(&items),
        &fns,
        &graph,
        &allow,
    ));
    (findings, items, fns)
}

fn keys(findings: &[Finding]) -> Vec<&str> {
    findings.iter().map(|f| f.key.as_str()).collect()
}

#[test]
fn purity_kernel_fixture_flags_each_category_down_the_chain() {
    let (findings, _, _) = analyze("purity_kernel.rs", "crates/fake/src/kernels/bad.rs");
    let purity: Vec<&Finding> = findings.iter().filter(|f| f.rule == "purity").collect();
    let k = keys(&findings);
    // The seeded helper two hops from the entry point, per category.
    assert!(k.contains(&"lookup:alloc"), "{k:?}");
    assert!(k.contains(&"lookup:index"), "{k:?}");
    assert!(k.contains(&"lookup:panic"), "{k:?}");
    // Reachability chains name the entry point.
    let panic = purity.iter().find(|f| f.key == "lookup:panic").unwrap();
    assert!(
        panic.message.contains("newview_tt") && panic.message.contains("lookup"),
        "{}",
        panic.message
    );
    // The impure-but-unreachable fn stays unreported.
    assert!(
        !k.iter().any(|key| key.starts_with("cold_path")),
        "cold_path must not be reachability-flagged: {k:?}"
    );
}

#[test]
fn purity_worker_fixture_checks_panic_alloc_but_not_indexing() {
    let (findings, _, _) = analyze("purity_worker.rs", "crates/parallel/src/forkjoin.rs");
    let k = keys(&findings);
    assert!(k.contains(&"dispatch:alloc"), "{k:?}");
    assert!(k.contains(&"dispatch:panic"), "{k:?}");
    // Indexing inside worker_loop is exempt in the worker tier.
    assert!(!k.contains(&"worker_loop:index"), "{k:?}");
}

#[test]
fn fpdet_fixture_flags_raw_mul_add_but_not_gated_ones() {
    let (findings, _, _) = analyze("fpdet.rs", "crates/fake/src/numerics.rs");
    let fp: Vec<&Finding> = findings.iter().filter(|f| f.rule == "fpdet").collect();
    let k: Vec<&str> = fp.iter().map(|f| f.key.as_str()).collect();
    // The libm-collapse reintroduction shape is caught...
    assert!(k.contains(&"raw_fma_regression:mul_add"), "{k:?}");
    // ...while both gated shapes pass.
    assert!(
        !k.iter().any(|key| key.starts_with("gated_by_cfg")),
        "{k:?}"
    );
    assert!(
        !k.iter()
            .any(|key| key.starts_with("gated_by_target_feature")),
        "{k:?}"
    );
    assert!(k.contains(&"float_eq_bug:float_cmp"), "{k:?}");
    assert!(k.contains(&"hash_order_bug:hash_iter"), "{k:?}");
}

#[test]
fn safety_fixture_flags_all_four_rules_once_each() {
    let (findings, _, _) = analyze("safety.rs", "crates/fake/src/lib.rs");
    let sf: Vec<&Finding> = findings.iter().filter(|f| f.rule == "safety").collect();
    let k: Vec<&str> = sf.iter().map(|f| f.key.as_str()).collect();
    // Rule 1: exactly one bare unsafe block (peek); the audited one
    // (peek_audited) is covered by its SAFETY comment. The
    // uncommented unsafe impl trips rule 1 too, under its own kind.
    assert_eq!(
        k.iter()
            .filter(|key| **key == "block:safety_comment")
            .count(),
        1,
        "{k:?}"
    );
    assert!(k.contains(&"impl:safety_comment"), "{k:?}");
    // Rule 2: the multi-line Relaxed store — the shape the PR 3 line
    // scanner could not see.
    assert!(k.contains(&"flag.store"), "{k:?}");
    // Rule 3: the unregistered unsafe impl Sync.
    assert!(k.contains(&"Racy"), "{k:?}");
    // Rule 4: a crate root with no deny(unsafe_op_in_unsafe_fn).
    assert!(k.contains(&"unsafe_op_in_unsafe_fn"), "{k:?}");
}

#[test]
fn safety_fixture_relaxed_finding_is_suppressed_by_allowlist_entry() {
    let mut items = extract("crates/fake/src/lib.rs", &fixture("safety.rs"), &[]);
    let fns = std::mem::take(&mut items.fns);
    let graph = CallGraph::build(&fns);
    let allow = Allowlists {
        relaxed: Allowlist::parse("crates/fake flag.store\n"),
        unsafe_impl: Allowlist::parse("# audited\ncrates/fake Racy\n"),
        ..Allowlists::default()
    };
    let findings = safety::run(std::slice::from_ref(&items), &fns, &graph, &allow);
    let k: Vec<&str> = findings.iter().map(|f| f.key.as_str()).collect();
    assert!(!k.contains(&"flag.store"), "{k:?}");
    assert!(!k.contains(&"Racy"), "{k:?}");
}

#[test]
fn clean_kernel_fixture_produces_zero_findings() {
    let (findings, _, _) = analyze("clean_kernel.rs", "crates/fake/src/kernels/clean.rs");
    // The worker-tier entry guard is expected (this synthetic
    // workspace has no forkjoin.rs); nothing else may fire.
    let real: Vec<&Finding> = findings
        .iter()
        .filter(|f| f.key != "entry:worker_loop")
        .collect();
    assert!(real.is_empty(), "{real:?}");
}

#[test]
fn fixture_corpus_is_invisible_to_workspace_collection() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf();
    for f in plf_analyzer::collect_rs_files(&root) {
        let p = f.to_string_lossy().replace('\\', "/");
        assert!(
            !p.contains("/fixtures/"),
            "fixture corpus leaked into the workspace scan: {p}"
        );
    }
}

#[test]
fn inventory_census_of_fixture_matches_seeded_unsafe() {
    let (_, items, _) = analyze("safety.rs", "crates/fake/src/lib.rs");
    let inv = inventory::render(std::slice::from_ref(&items));
    // Two unsafe blocks (peek, peek_audited) and one unsafe impl.
    assert!(inv.contains("\"kind\":\"impl\",\"count\":1"), "{inv}");
    let blocks = inv
        .lines()
        .filter(|l| l.contains("\"kind\":\"block\""))
        .count();
    assert_eq!(blocks, 2, "{inv}");
}
