//! Findings and their text/JSON renderings.

use std::fmt;

/// One analyzer finding. `key` is the stable audit handle — the
/// string an allowlist entry matches against — so renames and line
/// drift don't invalidate audits.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Rule family: `purity`, `fpdet`, `safety`, `inventory`.
    pub rule: &'static str,
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line of the (first) offending site.
    pub line: u32,
    /// Audit key, e.g. `scale_site:index` or `SpanRing` — what an
    /// allowlist entry's second column must be a substring of.
    pub key: String,
    /// Human explanation, including the call chain for reachability
    /// findings.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {} (key: {})",
            self.file, self.line, self.rule, self.message, self.key
        )
    }
}

/// Sorts findings into the canonical report order.
pub fn sort(findings: &mut [Finding]) {
    findings.sort_by(|a, b| {
        (a.file.as_str(), a.line, a.rule, a.key.as_str()).cmp(&(
            b.file.as_str(),
            b.line,
            b.rule,
            b.key.as_str(),
        ))
    });
}

/// Escapes a string for JSON embedding.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders findings as a JSON array (one object per line, stable
/// order) — the CI artifact format.
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[\n");
    for (i, f) in findings.iter().enumerate() {
        out.push_str(&format!(
            "{{\"rule\":\"{}\",\"file\":\"{}\",\"line\":{},\"key\":\"{}\",\"message\":\"{}\"}}{}\n",
            json_escape(f.rule),
            json_escape(&f.file),
            f.line,
            json_escape(&f.key),
            json_escape(&f.message),
            if i + 1 == findings.len() { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping_and_shape() {
        let f = Finding {
            rule: "fpdet",
            file: "crates/x/src/a.rs".into(),
            line: 3,
            key: "f:float_cmp".into(),
            message: "quote \" and\nnewline".into(),
        };
        let json = render_json(&[f]);
        assert!(json.contains("\\\""));
        assert!(json.contains("\\n"));
        assert!(json.starts_with("[\n{\"rule\":\"fpdet\""));
        assert!(json.trim_end().ends_with(']'));
    }

    #[test]
    fn sort_is_by_file_then_line() {
        let mk = |file: &str, line: u32| Finding {
            rule: "purity",
            file: file.into(),
            line,
            key: String::new(),
            message: String::new(),
        };
        let mut v = vec![mk("b.rs", 1), mk("a.rs", 9), mk("a.rs", 2)];
        sort(&mut v);
        assert_eq!(
            v.iter()
                .map(|f| (f.file.as_str(), f.line))
                .collect::<Vec<_>>(),
            [("a.rs", 2), ("a.rs", 9), ("b.rs", 1)]
        );
    }
}
