//! plf-analyzer: token-tree static analysis for the PLF workspace.
//!
//! Pipeline: [`lex`] (flat tokens + per-line comments) → [`tree`]
//! (delimiter-grouped token trees, the `proc_macro::TokenStream`
//! shape) → [`item`] (fns, impls, unsafe sites, attrs — cfg-aware) →
//! [`graph`] (per-body facts and a name-resolved-enough workspace
//! call graph) → [`rules`] (purity, fpdet, safety, inventory).
//!
//! Deliberately dependency-free: no rustc, no syn — the environment
//! is offline. The analyzer parses Rust exactly far enough for its
//! rules. `cargo xtask lint` is the driver.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod graph;
pub mod item;
pub mod lex;
pub mod report;
pub mod rules;
pub mod tree;

use graph::CallGraph;
use item::{FileItems, FnItem};
use report::Finding;
use rules::Allowlists;
use std::path::{Path, PathBuf};

/// Analyzer configuration.
#[derive(Clone, Debug)]
pub struct Config {
    /// Workspace root (the directory holding `Cargo.toml`).
    pub root: PathBuf,
    /// Cargo features treated as enabled: items under
    /// `#[cfg(feature = "x")]` for listed `x` are analyzed instead of
    /// skipped. This is how CI seeds violations (`--cfg-feature
    /// seed-hotpath-bug`).
    pub features: Vec<String>,
}

/// The extracted workspace plus analysis results.
pub struct Analysis {
    /// Unsuppressed findings, in canonical order.
    pub findings: Vec<Finding>,
    /// The current unsafe census (canonical JSON).
    pub inventory: String,
    /// Files analyzed.
    pub files: usize,
    /// Functions extracted (incl. test code).
    pub fns: usize,
    /// Items skipped by cfg gating.
    pub skipped_cfg_items: usize,
}

/// Collects the workspace's `.rs` files: `crates/`, `shims/`, `src/`,
/// `tests/`, `benches/`, `examples/` under `root`, skipping `target/`
/// and `fixtures/` directories (fixture corpora contain deliberate
/// violations and are analyzed only by their own tests).
pub fn collect_rs_files(root: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    for top in ["crates", "shims", "src", "tests", "benches", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut out);
        }
    }
    out.sort();
    out
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" {
                continue;
            }
            walk(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
}

/// The parsed workspace: per-file items with fns drained into one
/// global vector for the call graph.
pub struct Workspace {
    pub files: Vec<FileItems>,
    pub fns: Vec<FnItem>,
}

/// Parses and extracts every workspace file.
pub fn load_workspace(cfg: &Config) -> std::io::Result<Workspace> {
    let mut files = Vec::new();
    let mut fns = Vec::new();
    for path in collect_rs_files(&cfg.root) {
        let src = std::fs::read_to_string(&path)?;
        let rel = path
            .strip_prefix(&cfg.root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        let mut items = item::extract(&rel, &src, &cfg.features);
        fns.append(&mut items.fns);
        files.push(items);
    }
    Ok(Workspace { files, fns })
}

/// Runs every rule family over the workspace and returns the
/// findings (allowlist-suppressed ones removed) plus the unsafe
/// census.
pub fn analyze_workspace(cfg: &Config) -> std::io::Result<Analysis> {
    let ws = load_workspace(cfg)?;
    let allow = Allowlists::load(&cfg.root);
    let graph = CallGraph::build(&ws.fns);
    let mut findings = Vec::new();
    findings.extend(rules::purity::run(&ws.fns, &graph, &allow.purity));
    findings.extend(rules::fpdet::run(&ws.fns, &graph, &allow.fpdet));
    findings.extend(rules::safety::run(&ws.files, &ws.fns, &graph, &allow));
    let inventory = rules::inventory::render(&ws.files);
    let stored = std::fs::read_to_string(cfg.root.join("crates/xtask/unsafe_inventory.json")).ok();
    findings.extend(rules::inventory::check(stored.as_deref(), &inventory));
    report::sort(&mut findings);
    Ok(Analysis {
        findings,
        inventory,
        files: ws.files.len(),
        fns: ws.fns.len(),
        skipped_cfg_items: ws.files.iter().map(|f| f.skipped_cfg_items).sum(),
    })
}
