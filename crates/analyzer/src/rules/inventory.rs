//! The unsafe inventory: a cargo-geiger-style census of every unsafe
//! site in the workspace, grouped by `(file, container, kind)`, kept
//! as a committed JSON artifact with a CI drift gate.
//!
//! The committed file is `crates/xtask/unsafe_inventory.json`. When
//! the census drifts from it, the lint fails and prints the delta;
//! `cargo xtask lint --update-inventory` regenerates the file after
//! review. Keys are line-stable (no line numbers), so unrelated edits
//! never trip the gate — only genuinely new/removed/moved unsafe.

use crate::item::FileItems;
use crate::report::{json_escape, Finding};
use std::collections::BTreeMap;

/// Renders the canonical inventory JSON: one entry per line, sorted
/// by `(file, container, kind)`.
pub fn render(files: &[FileItems]) -> String {
    let mut counts: BTreeMap<(String, String, &'static str), u32> = BTreeMap::new();
    for file in files {
        for site in &file.unsafe_sites {
            *counts
                .entry((file.file.clone(), site.container.clone(), site.kind.name()))
                .or_insert(0) += 1;
        }
    }
    let mut out = String::from("[\n");
    let total = counts.len();
    for (i, ((file, container, kind), count)) in counts.iter().enumerate() {
        out.push_str(&format!(
            "{{\"file\":\"{}\",\"container\":\"{}\",\"kind\":\"{}\",\"count\":{}}}{}\n",
            json_escape(file),
            json_escape(container),
            kind,
            count,
            if i + 1 == total { "" } else { "," }
        ));
    }
    out.push_str("]\n");
    out
}

/// Normalizes one inventory line for set comparison (trailing commas
/// and whitespace are formatting, not content).
fn canon(line: &str) -> Option<&str> {
    let l = line.trim().trim_end_matches(',');
    (l.starts_with('{')).then_some(l)
}

/// Compares the committed inventory against the current census.
/// `stored` is `None` when the committed file is missing.
pub fn check(stored: Option<&str>, current: &str) -> Vec<Finding> {
    let inv_path = "crates/xtask/unsafe_inventory.json";
    let Some(stored) = stored else {
        return vec![Finding {
            rule: "inventory",
            file: inv_path.into(),
            line: 1,
            key: "missing".into(),
            message: "committed unsafe inventory is missing — run `cargo xtask lint \
                      --update-inventory` and commit the file"
                .into(),
        }];
    };
    let stored_set: Vec<&str> = stored.lines().filter_map(canon).collect();
    let current_set: Vec<&str> = current.lines().filter_map(canon).collect();
    let mut findings = Vec::new();
    for line in &current_set {
        if !stored_set.contains(line) {
            findings.push(Finding {
                rule: "inventory",
                file: inv_path.into(),
                line: 1,
                key: entry_key(line),
                message: format!(
                    "unsafe census grew or changed: {line} is not in the committed inventory — \
                     review the new unsafe, then `cargo xtask lint --update-inventory`"
                ),
            });
        }
    }
    for line in &stored_set {
        if !current_set.contains(line) {
            findings.push(Finding {
                rule: "inventory",
                file: inv_path.into(),
                line: 1,
                key: entry_key(line),
                message: format!(
                    "committed inventory entry no longer matches the census: {line} — \
                     `cargo xtask lint --update-inventory` to record the removal"
                ),
            });
        }
    }
    findings
}

/// Extracts `file` + `kind` from a canonical entry line as the audit
/// key (`crates/core/src/aligned.rs:block`).
fn entry_key(line: &str) -> String {
    let field = |name: &str| -> &str {
        let pat = format!("\"{name}\":\"");
        line.find(&pat)
            .map(|at| {
                let rest = &line[at + pat.len()..];
                &rest[..rest.find('"').unwrap_or(rest.len())]
            })
            .unwrap_or("")
    };
    format!("{}:{}", field("file"), field("kind"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::extract;

    fn census(path: &str, src: &str) -> String {
        render(&[extract(path, src, &[])])
    }

    #[test]
    fn render_groups_and_counts() {
        let src = "// SAFETY: test.\nfn f(p: *const u8) -> u8 {\n  let a = unsafe { *p };\n  let b = unsafe { *p };\n  a + b\n}\nunsafe impl Sync for R {}\n";
        let inv = census("crates/x/src/a.rs", src);
        assert!(
            inv.contains("\"container\":\"fn f\",\"kind\":\"block\",\"count\":2"),
            "{inv}"
        );
        assert!(inv.contains("\"kind\":\"impl\",\"count\":1"), "{inv}");
        assert!(inv.starts_with("[\n"));
        assert!(inv.trim_end().ends_with(']'));
    }

    #[test]
    fn drift_gate_fires_both_ways_and_is_stable_otherwise() {
        let v1 = census(
            "crates/x/src/a.rs",
            "fn f(p: *const u8) -> u8 { unsafe { *p } }\n",
        );
        // Same census, unrelated formatting of the committed file.
        let reformatted = v1.replace('\n', "\n  ");
        assert!(check(Some(&reformatted), &v1).is_empty());
        // New unsafe site → drift.
        let v2 = census(
            "crates/x/src/a.rs",
            "fn f(p: *const u8) -> u8 { unsafe { *p } }\nfn g(p: *const u8) -> u8 { unsafe { *p } }\n",
        );
        let grown = check(Some(&v1), &v2);
        assert_eq!(grown.len(), 1, "{grown:?}");
        assert_eq!(grown[0].key, "crates/x/src/a.rs:block");
        assert!(grown[0].message.contains("census grew"));
        // Removed unsafe site → also drift (the other direction).
        let shrunk = check(Some(&v2), &v1);
        assert_eq!(shrunk.len(), 1);
        assert!(shrunk[0].message.contains("no longer matches"));
        // Missing committed file.
        assert_eq!(check(None, &v1)[0].key, "missing");
    }
}
