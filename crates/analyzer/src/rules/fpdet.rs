//! FP-determinism: keep the likelihood bit-reproducible across
//! builds and runs.
//!
//! Three checks over every non-test fn:
//!
//! * **`mul_add` outside an FMA gate** — a raw `mul_add` call
//!   contracts to one rounding on FMA hardware and falls back to a
//!   *different* libm software path otherwise, so the same binary
//!   produces different likelihoods on different machines (the PR 6
//!   libm-collapse regression). `mul_add` is legal only under
//!   `#[cfg(target_feature = "fma")]` or inside a
//!   `#[target_feature(enable = …)]` fn, where the hardware
//!   instruction is guaranteed.
//! * **float `==`/`!=`** — exact float equality against a literal is
//!   either a sentinel test (audit it) or a bug.
//! * **HashMap/HashSet iteration feeding an accumulation** — hash
//!   iteration order varies run to run, so any `+=`-style reduction
//!   or order-sensitive `collect` over it is nondeterministic.
//!
//! Audit keys are `<fn>:mul_add`, `<fn>:float_cmp`, `<fn>:hash_iter`
//! in `crates/xtask/fpdet_allowlist.txt`.

use crate::graph::CallGraph;
use crate::item::FnItem;
use crate::report::Finding;
use crate::rules::Allowlist;

/// Runs the FP-determinism rule.
pub fn run(fns: &[FnItem], graph: &CallGraph, allow: &Allowlist) -> Vec<Finding> {
    let mut findings = Vec::new();
    for (i, f) in fns.iter().enumerate() {
        if f.is_test_ctx {
            continue;
        }
        let facts = &graph.facts[i];
        for ma in &facts.mul_adds {
            if ma.gated {
                continue;
            }
            let key = format!("{}:mul_add", f.name);
            if allow.covers(&f.file, &key) {
                continue;
            }
            findings.push(Finding {
                rule: "fpdet",
                file: f.file.clone(),
                line: ma.line,
                key,
                message: format!(
                    "raw `mul_add` in `{}` outside an FMA gate: contracts on FMA hardware, \
                     falls back to libm otherwise — likelihoods diverge across machines. Gate \
                     it under #[cfg(target_feature = \"fma\")] or route through the gated \
                     helper in kernels/vector.rs",
                    f.qualified()
                ),
            });
        }
        for &line in &facts.float_cmps {
            let key = format!("{}:float_cmp", f.name);
            if allow.covers(&f.file, &key) {
                continue;
            }
            findings.push(Finding {
                rule: "fpdet",
                file: f.file.clone(),
                line,
                key,
                message: format!(
                    "float `==`/`!=` against a literal in `{}`: exact float equality is a \
                     sentinel test or a bug; audit in crates/xtask/fpdet_allowlist.txt if \
                     intentional",
                    f.qualified()
                ),
            });
            break; // One finding per fn; lines drift, the key doesn't.
        }
        for hi in &facts.hash_iters {
            let key = format!("{}:hash_iter", f.name);
            if allow.covers(&f.file, &key) {
                continue;
            }
            findings.push(Finding {
                rule: "fpdet",
                file: f.file.clone(),
                line: hi.line,
                key,
                message: format!(
                    "iteration over hash container `{}` feeds an accumulation in `{}`: hash \
                     order varies per run, making the result nondeterministic — iterate a \
                     sorted view (BTreeMap or sort keys first)",
                    hi.ident,
                    f.qualified()
                ),
            });
            break;
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CallGraph;
    use crate::item::extract;

    fn run_on(src: &str, allow: &str) -> Vec<Finding> {
        let items = extract("crates/core/src/kernels/vector.rs", src, &[]);
        let graph = CallGraph::build(&items.fns);
        run(&items.fns, &graph, &Allowlist::parse(allow))
    }

    #[test]
    fn raw_mul_add_flagged_gated_is_not() {
        let src = r#"
fn raw(a: f64, b: f64, c: f64) -> f64 { a.mul_add(b, c) }
fn gated(a: f64, b: f64, c: f64) -> f64 {
    #[cfg(target_feature = "fma")]
    { return a.mul_add(b, c); }
    #[cfg(not(target_feature = "fma"))]
    { a * b + c }
}
"#;
        let findings = run_on(src, "");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].key, "raw:mul_add");
    }

    #[test]
    fn float_compare_flagged_once_per_fn_and_auditable() {
        let src = "fn f(x: f64) -> bool { x == 0.0 || x != 1.0 }\n";
        let findings = run_on(src, "");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].key, "f:float_cmp");
        assert!(run_on(src, "crates/core f:float_cmp\n").is_empty());
    }

    #[test]
    fn test_code_is_exempt() {
        let src = "#[cfg(test)]\nmod tests {\n  fn f(a: f64) -> f64 { a.mul_add(1.0, 2.0) }\n}\n";
        assert!(run_on(src, "").is_empty());
    }

    #[test]
    fn hash_iteration_accumulation_flagged() {
        let src = r#"
fn sum_weights() -> f64 {
    let mut m = HashMap::new();
    m.insert(1u32, 0.5f64);
    let mut acc = 0.0;
    for (_, w) in m.iter() { acc += w; }
    acc
}
"#;
        let findings = run_on(src, "");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].key, "sum_weights:hash_iter");
    }
}
