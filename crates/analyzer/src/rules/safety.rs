//! The PR 3 unsafe-invariant lints, migrated from line scanning to
//! token trees:
//!
//! 1. **SAFETY comments** — every unsafe site (block, fn, impl) needs
//!    a comment containing `SAFETY` on its line or within
//!    [`SAFETY_WINDOW`] lines above.
//! 2. **No relaxed publishing** — mutating atomic ops with
//!    `Ordering::Relaxed` anywhere in the (possibly multi-line) call
//!    must be audited in `relaxed_allowlist.txt`. Token trees close
//!    the old scanner's gap: the ordering is found in the argument
//!    group, not on "the same line".
//! 3. **Audited `unsafe impl Send/Sync`** — every such impl must be
//!    registered in `unsafe_impl_registry.txt`.
//! 4. **`#![deny(unsafe_op_in_unsafe_fn)]`** — required in *every*
//!    workspace crate root (not just crates that currently contain
//!    unsafe code: the attribute is a tripwire for unsafe code that
//!    arrives later).

use crate::graph::{CallGraph, CallKind};
use crate::item::{FileItems, FnItem};
use crate::report::Finding;
use crate::rules::Allowlists;

/// How many lines above an unsafe site a `SAFETY` comment may sit
/// (same window as the PR 3 scanner).
pub const SAFETY_WINDOW: u32 = 10;

/// Mutating atomic operations (method names).
const MUTATING_OPS: &[&str] = &[
    "store",
    "swap",
    "fetch_add",
    "fetch_sub",
    "fetch_or",
    "fetch_and",
    "fetch_xor",
    "fetch_min",
    "fetch_max",
    "compare_exchange",
    "compare_exchange_weak",
];

/// Runs rules 1–3 per file plus rule 2 over fn bodies.
pub fn run(
    files: &[FileItems],
    fns: &[FnItem],
    graph: &CallGraph,
    allow: &Allowlists,
) -> Vec<Finding> {
    let mut findings = Vec::new();
    for file in files {
        // Rule 1: SAFETY comment near every unsafe site.
        for site in &file.unsafe_sites {
            if !file.lexed.comment_near(site.line, SAFETY_WINDOW, "SAFETY") {
                findings.push(Finding {
                    rule: "safety",
                    file: file.file.clone(),
                    line: site.line,
                    key: format!("{}:safety_comment", site.kind.name()),
                    message: format!(
                        "unsafe {} ({}) has no SAFETY comment within {} lines — state the \
                         invariant that makes it sound",
                        site.kind.name(),
                        site.container,
                        SAFETY_WINDOW
                    ),
                });
            }
        }
        // Rule 3: unsafe impl Send/Sync must be registered.
        for imp in &file.impls {
            if !imp.is_unsafe {
                continue;
            }
            let Some(trait_name) = &imp.trait_name else {
                continue;
            };
            if trait_name != "Send" && trait_name != "Sync" {
                continue;
            }
            let self_type = imp.self_type.clone().unwrap_or_else(|| "?".into());
            if allow.unsafe_impl.covers(&file.file, &self_type) {
                continue;
            }
            findings.push(Finding {
                rule: "safety",
                file: file.file.clone(),
                line: imp.line,
                key: self_type.clone(),
                message: format!(
                    "`unsafe impl {trait_name} for {self_type}` is not registered in \
                     crates/xtask/unsafe_impl_registry.txt — register it with the invariant \
                     that makes the marker sound"
                ),
            });
        }
        // Rule 4: deny(unsafe_op_in_unsafe_fn) in every crate root.
        let is_crate_root = file.file.ends_with("src/lib.rs") || file.file.ends_with("src/main.rs");
        if is_crate_root {
            let has = file
                .inner_attrs
                .iter()
                .any(|a| a.text.contains("deny") && a.text.contains("unsafe_op_in_unsafe_fn"));
            if !has {
                findings.push(Finding {
                    rule: "safety",
                    file: file.file.clone(),
                    line: 1,
                    key: "unsafe_op_in_unsafe_fn".into(),
                    message: "crate root is missing #![deny(unsafe_op_in_unsafe_fn)] — required \
                              workspace-wide so unsafe fns never get implicit unsafe bodies"
                        .into(),
                });
            }
        }
    }
    // Rule 2: relaxed mutating atomic ops, from fn bodies.
    for (i, f) in fns.iter().enumerate() {
        if f.is_test_ctx || !f.file.contains("/src/") {
            continue;
        }
        for call in &graph.facts[i].calls {
            if call.kind != CallKind::Method
                || !call.args_have_relaxed
                || !MUTATING_OPS.contains(&call.name.as_str())
            {
                continue;
            }
            if allow.relaxed.covers(&f.file, &call.receiver) {
                continue;
            }
            findings.push(Finding {
                rule: "safety",
                file: f.file.clone(),
                line: call.line,
                key: call.receiver.clone(),
                message: format!(
                    "mutating atomic op `{}` with Ordering::Relaxed in `{}` — relaxed \
                     mutations must not publish data; audit in \
                     crates/xtask/relaxed_allowlist.txt with the reason",
                    call.receiver,
                    f.qualified()
                ),
            });
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CallGraph;
    use crate::item::extract;
    use crate::rules::Allowlist;

    fn run_on(path: &str, src: &str, relaxed: &str, registry: &str) -> Vec<Finding> {
        let mut items = extract(path, src, &[]);
        let fns = std::mem::take(&mut items.fns);
        let graph = CallGraph::build(&fns);
        let allow = Allowlists {
            relaxed: Allowlist::parse(relaxed),
            unsafe_impl: Allowlist::parse(registry),
            ..Allowlists::default()
        };
        run(&[items], &fns, &graph, &allow)
    }

    #[test]
    fn safety_comment_required_within_window() {
        let with = "fn f(p: *const u8) -> u8 {\n    // SAFETY: caller guarantees p is valid.\n    unsafe { *p }\n}\n";
        assert!(run_on("crates/x/src/a.rs", with, "", "").is_empty());
        let without = "fn f(p: *const u8) -> u8 {\n    unsafe { *p }\n}\n";
        let findings = run_on("crates/x/src/a.rs", without, "", "");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].key, "block:safety_comment");
    }

    #[test]
    fn relaxed_mutation_spanning_lines_is_caught() {
        // The PR 3 line scanner missed exactly this shape: the op and
        // the ordering on different lines.
        let src = "// SAFETY-free file: no unsafe here.\nfn f(a: &AtomicU32) {\n    a.store(\n        1,\n        Ordering::Relaxed,\n    );\n}\n";
        let findings = run_on("crates/x/src/a.rs", src, "", "");
        assert_eq!(findings.len(), 1, "{findings:?}");
        assert_eq!(findings[0].key, "a.store");
        assert_eq!(findings[0].line, 3);
        assert!(run_on("crates/x/src/a.rs", src, "crates/x a.store\n", "").is_empty());
    }

    #[test]
    fn unsafe_impl_send_sync_needs_registry() {
        let src = "// SAFETY: single-writer protocol.\nunsafe impl Sync for Ring {}\n";
        let findings = run_on("crates/x/src/a.rs", src, "", "");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].key, "Ring");
        assert!(run_on("crates/x/src/a.rs", src, "", "crates/x Ring\n").is_empty());
    }

    #[test]
    fn crate_roots_need_the_deny_attr() {
        let findings = run_on("crates/x/src/lib.rs", "pub fn f() {}\n", "", "");
        assert_eq!(findings.len(), 1);
        assert_eq!(findings[0].key, "unsafe_op_in_unsafe_fn");
        let ok = "#![deny(unsafe_op_in_unsafe_fn)]\npub fn f() {}\n";
        assert!(run_on("crates/x/src/lib.rs", ok, "", "").is_empty());
        // Non-root files are exempt.
        assert!(run_on("crates/x/src/other.rs", "pub fn f() {}\n", "", "").is_empty());
    }
}
