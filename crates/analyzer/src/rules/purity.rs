//! Hot-path purity: nothing reachable from the PLF kernel entry
//! points (or the fork-join worker loop) may panic, allocate, or —
//! for the kernel tier — bounds-check-index without an audit.
//!
//! Two entry tiers:
//!
//! * **Kernel tier** — the eight `Kernels` trait methods
//!   (`newview_tt/ti/ii`, `evaluate_ti/ii`, `derivative_sum_ti/ii`,
//!   `derivative_core`) as defined/implemented under `src/kernels`.
//!   Checked categories: `panic`, `alloc`, `index`.
//! * **Worker tier** — `worker_loop` in `parallel/src/forkjoin.rs`,
//!   the fork-join workers' steady-state loop. Checked categories:
//!   `panic`, `alloc`. (Indexing is not checked here: the whole
//!   engine is worker-reachable and slice indexing is its idiom; the
//!   kernel tier is where bounds checks cost real throughput.)
//!
//! Findings aggregate per `(fn, category)` with the audit key
//! `<fn>:<category>`, so one allowlist line covers a function's
//! audited sites without pinning line numbers.

use crate::graph::{CallGraph, CallKind};
use crate::item::FnItem;
use crate::report::Finding;
use crate::rules::Allowlist;
use std::collections::BTreeMap;

/// The eight PLF kernel entry points (`Kernels` trait methods).
pub const KERNEL_ENTRY_POINTS: &[&str] = &[
    "newview_tt",
    "newview_ti",
    "newview_ii",
    "evaluate_ti",
    "evaluate_ii",
    "derivative_sum_ti",
    "derivative_sum_ii",
    "derivative_core",
];

/// Panic-raising macros (`debug_assert*` is excluded: compiled out
/// in release builds, where kernel throughput is measured).
const PANIC_MACROS: &[&str] = &[
    "panic",
    "unreachable",
    "todo",
    "unimplemented",
    "assert",
    "assert_eq",
    "assert_ne",
];

/// Methods/functions that panic on the error/empty case.
const PANIC_CALLS: &[&str] = &["unwrap", "expect"];

/// Allocating macros.
const ALLOC_MACROS: &[&str] = &["vec", "format"];

/// Method calls that (re)allocate.
const ALLOC_METHODS: &[&str] = &[
    "push",
    "push_str",
    "insert",
    "extend",
    "reserve",
    "to_vec",
    "collect",
    "to_string",
    "to_owned",
];

/// `Type::ctor` pairs that allocate.
const ALLOC_CTORS: &[(&str, &str)] = &[
    ("Box", "new"),
    ("Vec", "new"),
    ("Vec", "with_capacity"),
    ("Vec", "from"),
    ("String", "new"),
    ("String", "from"),
    ("String", "with_capacity"),
    ("Arc", "new"),
    ("Rc", "new"),
    ("HashMap", "new"),
    ("BTreeMap", "new"),
    ("VecDeque", "new"),
];

/// Offending sites of one category inside one fn.
fn sites_of(graph: &CallGraph, fn_idx: usize, category: &str) -> Vec<u32> {
    let facts = &graph.facts[fn_idx];
    let mut lines = Vec::new();
    match category {
        "panic" => {
            for c in &facts.calls {
                let hit = match c.kind {
                    CallKind::Macro => PANIC_MACROS.contains(&c.name.as_str()),
                    _ => PANIC_CALLS.contains(&c.name.as_str()),
                };
                if hit {
                    lines.push(c.line);
                }
            }
        }
        "alloc" => {
            for c in &facts.calls {
                let hit = match c.kind {
                    CallKind::Macro => ALLOC_MACROS.contains(&c.name.as_str()),
                    CallKind::Method => ALLOC_METHODS.contains(&c.name.as_str()),
                    CallKind::Qualified => ALLOC_CTORS
                        .iter()
                        .any(|(q, n)| c.qualifier == *q && c.name == *n),
                    CallKind::Plain => false,
                };
                if hit {
                    lines.push(c.line);
                }
            }
        }
        "index" => lines.extend_from_slice(&facts.index_sites),
        _ => {}
    }
    lines.sort_unstable();
    lines.dedup();
    lines
}

/// Finds entry-point fn indices for a tier.
fn entries(fns: &[FnItem], names: &[&str], path_frag: &str) -> Vec<usize> {
    fns.iter()
        .enumerate()
        .filter(|(_, f)| {
            !f.is_test_ctx && names.contains(&f.name.as_str()) && f.file.contains(path_frag)
        })
        .map(|(i, _)| i)
        .collect()
}

/// Runs the purity rule over the workspace graph.
pub fn run(fns: &[FnItem], graph: &CallGraph, allow: &Allowlist) -> Vec<Finding> {
    let mut findings = Vec::new();
    let kernel_entries = entries(fns, KERNEL_ENTRY_POINTS, "/src/kernels");
    let worker_entries = entries(fns, &["worker_loop"], "parallel/src/forkjoin.rs");
    // Misconfiguration guard: if the code moves out from under the
    // rule, fail loudly instead of silently checking nothing.
    if kernel_entries.is_empty() {
        findings.push(Finding {
            rule: "purity",
            file: "crates/core/src/kernels.rs".into(),
            line: 1,
            key: "entry:kernels".into(),
            message: "no kernel entry points found under src/kernels — purity rule is checking \
                      nothing; update KERNEL_ENTRY_POINTS"
                .into(),
        });
    }
    if worker_entries.is_empty() {
        findings.push(Finding {
            rule: "purity",
            file: "crates/parallel/src/forkjoin.rs".into(),
            line: 1,
            key: "entry:worker_loop".into(),
            message: "worker_loop not found in parallel/src/forkjoin.rs — purity worker tier is \
                      checking nothing"
                .into(),
        });
    }
    let tiers: [(&[usize], &[&str]); 2] = [
        (&kernel_entries, &["panic", "alloc", "index"]),
        (&worker_entries, &["panic", "alloc"]),
    ];
    // (fn, category) → finding, so overlapping tiers don't duplicate.
    let mut seen: BTreeMap<(usize, &str), ()> = BTreeMap::new();
    for (tier_entries, categories) in tiers {
        let reached = graph.reach(tier_entries);
        for &fn_idx in reached.keys() {
            let f = &fns[fn_idx];
            if f.is_test_ctx {
                continue;
            }
            for &category in categories {
                if seen.contains_key(&(fn_idx, category)) {
                    continue;
                }
                let lines = sites_of(graph, fn_idx, category);
                if lines.is_empty() {
                    continue;
                }
                seen.insert((fn_idx, category), ());
                let key = format!("{}:{}", f.name, category);
                if allow.covers(&f.file, &key) {
                    continue;
                }
                let shown: Vec<String> = lines.iter().take(6).map(u32::to_string).collect();
                let more = lines.len().saturating_sub(6);
                findings.push(Finding {
                    rule: "purity",
                    file: f.file.clone(),
                    line: lines[0],
                    key,
                    message: format!(
                        "hot-path {category} site{} in `{}` (line{} {}{}) reachable via {}; \
                         remove it or audit in crates/xtask/purity_allowlist.txt",
                        if lines.len() == 1 { "" } else { "s" },
                        f.qualified(),
                        if lines.len() == 1 { "" } else { "s" },
                        shown.join(", "),
                        if more > 0 {
                            format!(" +{more} more")
                        } else {
                            String::new()
                        },
                        graph.chain(&reached, fn_idx),
                    ),
                });
            }
        }
    }
    findings
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::CallGraph;
    use crate::item::extract;

    fn run_on(src: &str, allow: &str) -> Vec<Finding> {
        let items = extract("crates/core/src/kernels/scalar.rs", src, &[]);
        let graph = CallGraph::build(&items.fns);
        run(&items.fns, &graph, &Allowlist::parse(allow))
    }

    #[test]
    fn reachable_panic_alloc_index_are_flagged() {
        let src = r#"
fn newview_tt(x: &[f64]) -> f64 { helper(x) }
fn helper(x: &[f64]) -> f64 {
    let mut v = Vec::new();
    v.push(x[0]);
    v.iter().sum::<f64>().sqrt()
}
fn cold_unrelated() { panic!("never reached"); }
"#;
        let findings = run_on(src, "");
        let keys: Vec<&str> = findings.iter().map(|f| f.key.as_str()).collect();
        assert!(keys.contains(&"helper:alloc"), "{keys:?}");
        assert!(keys.contains(&"helper:index"), "{keys:?}");
        assert!(!keys.iter().any(|k| k.starts_with("cold_unrelated")));
        // worker_loop entry guard fires in this single-file test.
        assert!(keys.contains(&"entry:worker_loop"));
        let alloc = findings
            .iter()
            .find(|f| f.key == "helper:alloc")
            .expect("alloc");
        assert!(
            alloc.message.contains("newview_tt → helper"),
            "{}",
            alloc.message
        );
    }

    #[test]
    fn allowlist_suppresses_by_fn_and_category() {
        let src = r#"
fn newview_tt(x: &[f64]) -> f64 { helper(x) }
fn helper(x: &[f64]) -> f64 { x[0] }
"#;
        let noisy = run_on(src, "");
        assert!(noisy.iter().any(|f| f.key == "helper:index"));
        let quiet = run_on(src, "crates/core helper:index\n");
        assert!(!quiet.iter().any(|f| f.key == "helper:index"));
    }

    #[test]
    fn unwrap_and_assert_flag_but_debug_assert_does_not() {
        let src = r#"
fn newview_tt(v: Option<f64>) -> f64 {
    debug_assert!(v.is_some());
    v.unwrap()
}
"#;
        let findings = run_on(src, "");
        let panic = findings
            .iter()
            .find(|f| f.key == "newview_tt:panic")
            .expect("panic finding");
        // Only the unwrap line, not the debug_assert line.
        assert!(panic.message.contains("line 4"), "{}", panic.message);
        assert!(!panic.message.contains("line 3,"), "{}", panic.message);
    }
}
