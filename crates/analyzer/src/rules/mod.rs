//! The rule families and the shared allowlist machinery.
//!
//! Every allowlist follows the `relaxed_allowlist.txt` convention:
//! one `<path substring> <key substring>` pair per line, `#` starts a
//! comment, and each entry is an audit decision whose justification
//! lives in the comment above it. A finding is suppressed when some
//! entry's path is a substring of the finding's file AND its key is a
//! substring of the finding's key.

pub mod fpdet;
pub mod inventory;
pub mod purity;
pub mod safety;

/// One parsed allowlist.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    pub entries: Vec<(String, String)>,
}

impl Allowlist {
    /// Parses the `<path substring> <key substring>` format.
    pub fn parse(text: &str) -> Allowlist {
        let entries = text
            .lines()
            .map(str::trim)
            .filter(|l| !l.is_empty() && !l.starts_with('#'))
            .filter_map(|l| {
                let mut it = l.split_whitespace();
                Some((it.next()?.to_string(), it.next()?.to_string()))
            })
            .collect();
        Allowlist { entries }
    }

    /// Whether a finding at `path` with audit `key` is covered.
    pub fn covers(&self, path: &str, key: &str) -> bool {
        self.entries
            .iter()
            .any(|(p, k)| path.contains(p.as_str()) && key.contains(k.as_str()))
    }
}

/// All audit files the rules consume, loaded from `crates/xtask/`.
#[derive(Clone, Debug, Default)]
pub struct Allowlists {
    /// Hot-path purity audits (`<path> <fn:category>`).
    pub purity: Allowlist,
    /// FP-determinism audits (`<path> <fn:category>`).
    pub fpdet: Allowlist,
    /// Audited relaxed mutating atomic ops (`<path> <site text>`).
    pub relaxed: Allowlist,
    /// Audited `unsafe impl Send/Sync` types (`<path> <Type>`).
    pub unsafe_impl: Allowlist,
}

impl Allowlists {
    /// Loads every audit file under `<root>/crates/xtask/`. Missing
    /// files parse as empty (everything is then flagged).
    pub fn load(root: &std::path::Path) -> Allowlists {
        let read = |name: &str| {
            std::fs::read_to_string(root.join("crates/xtask").join(name)).unwrap_or_default()
        };
        Allowlists {
            purity: Allowlist::parse(&read("purity_allowlist.txt")),
            fpdet: Allowlist::parse(&read("fpdet_allowlist.txt")),
            relaxed: Allowlist::parse(&read("relaxed_allowlist.txt")),
            unsafe_impl: Allowlist::parse(&read("unsafe_impl_registry.txt")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_skips_comments_and_matches_by_substring() {
        let list = Allowlist::parse(
            "# comment\n\ncrates/core/src/metrics.rs self.0.fetch_add\ncrates/parallel fired.swap\n",
        );
        assert_eq!(list.entries.len(), 2);
        assert!(list.covers(
            "crates/core/src/metrics.rs",
            "self.0.fetch_add(1,Ordering::Relaxed)"
        ));
        assert!(!list.covers("crates/core/src/span.rs", "self.0.fetch_add"));
    }
}
