//! Fn-body analysis and the workspace call graph.
//!
//! For every extracted function body this module collects the facts
//! the rules consume: call sites (plain, method, qualified-path and
//! macro calls), slice/array indexing sites, float `==`/`!=`
//! comparisons against float literals, `mul_add` calls and whether
//! they sit under an FMA gate, and `HashMap`/`HashSet` iterations
//! that feed order-sensitive accumulations.
//!
//! The graph is *name-resolved-enough*: a call `foo(…)` resolves to
//! every workspace function named `foo` (qualified calls `T::foo`
//! prefer impls of `T`). That over-approximation is exactly what a
//! reachability-based purity rule wants — a dynamic `dyn Kernels`
//! dispatch reaches all implementations — and the audited allowlist
//! absorbs the rare false positive.

use crate::item::{AttrKind, FnItem};
use crate::lex::{num_is_float, Delim, Tok};
use crate::tree::{render, Group, Tt};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// How a call site was written.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CallKind {
    /// `name(…)`
    Plain,
    /// `.name(…)`
    Method,
    /// `Qual::name(…)` — qualifier is the last path segment before
    /// the called name.
    Qualified,
    /// `name!(…)`
    Macro,
}

/// One call site inside a fn body.
#[derive(Clone, Debug)]
pub struct Call {
    pub name: String,
    /// For qualified calls, the segment before the name (`Box` in
    /// `Box::new`). Empty otherwise.
    pub qualifier: String,
    pub kind: CallKind,
    pub line: u32,
    /// Reconstructed receiver text for method calls (allowlist keys),
    /// e.g. `self.buckets[bucket].fetch_add`.
    pub receiver: String,
    /// Whether the call's argument group contains the identifier
    /// `Relaxed` (atomic-ordering rule).
    pub args_have_relaxed: bool,
}

/// A `mul_add` call site with its gating status.
#[derive(Clone, Debug)]
pub struct MulAdd {
    pub line: u32,
    /// Under `#[cfg(target_feature = "fma")]` (statement/block gate)
    /// or inside a `#[target_feature(enable = …)]` fn.
    pub gated: bool,
}

/// A `HashMap`/`HashSet` iteration feeding an accumulation.
#[derive(Clone, Debug)]
pub struct HashIter {
    pub line: u32,
    /// The iterated binding.
    pub ident: String,
}

/// Everything extracted from one fn body.
#[derive(Clone, Debug, Default)]
pub struct BodyFacts {
    pub calls: Vec<Call>,
    /// Lines with slice/array indexing expressions.
    pub index_sites: Vec<u32>,
    /// Lines with `==`/`!=` against a float literal.
    pub float_cmps: Vec<u32>,
    pub mul_adds: Vec<MulAdd>,
    pub hash_iters: Vec<HashIter>,
}

/// Keywords that look like calls when followed by `(`.
fn is_expr_keyword(name: &str) -> bool {
    matches!(
        name,
        "if" | "while"
            | "for"
            | "match"
            | "return"
            | "loop"
            | "else"
            | "in"
            | "as"
            | "let"
            | "move"
            | "ref"
            | "mut"
            | "fn"
            | "impl"
            | "dyn"
            | "where"
            | "unsafe"
            | "break"
            | "continue"
            | "await"
            | "async"
            | "box"
            | "pub"
            | "use"
            | "struct"
            | "enum"
    )
}

/// Analyzes one fn's body.
pub fn analyze_body(f: &FnItem) -> BodyFacts {
    let mut facts = BodyFacts::default();
    let Some(body) = &f.body else {
        return facts;
    };
    let fn_gated = f.has_target_feature();
    // Bindings whose initializer mentions HashMap/HashSet/BTreeMap —
    // only Hash* iteration is nondeterministic, but collect all and
    // filter at flag time.
    let mut hash_idents: BTreeSet<String> = BTreeSet::new();
    collect_hash_bindings(&body.items, &mut hash_idents);
    walk(&body.items, fn_gated, &hash_idents, &mut facts);
    // A `for … in m.iter()` loop trips both the for-loop and the
    // method-call detectors: dedupe by (line, binding).
    facts
        .hash_iters
        .sort_by(|a, b| (a.line, &a.ident).cmp(&(b.line, &b.ident)));
    facts
        .hash_iters
        .dedup_by(|a, b| a.line == b.line && a.ident == b.ident);
    facts
}

/// Records `let name … = … HashMap … ;` / `HashSet` bindings (plus
/// fn params would need signature types; bindings cover this
/// workspace's usage).
fn collect_hash_bindings(tts: &[Tt], out: &mut BTreeSet<String>) {
    let mut i = 0;
    while i < tts.len() {
        if tts[i].is_ident("let") {
            // Find the binding name: first ident after `let`
            // (skipping `mut`).
            let mut j = i + 1;
            while j < tts.len() && tts[j].is_ident("mut") {
                j += 1;
            }
            let name = match tts.get(j).and_then(Tt::tok) {
                Some(Tok::Ident(n)) => Some(n.clone()),
                _ => None,
            };
            // Scan the statement (to `;` at this level) for Hash
            // container names.
            let mut k = j;
            let mut is_hash = false;
            while k < tts.len() && !tts[k].is_punct(';') {
                match &tts[k] {
                    Tt::Tok(t) => {
                        if let Tok::Ident(s) = &t.tok {
                            if s == "HashMap" || s == "HashSet" {
                                is_hash = true;
                            }
                        }
                    }
                    Tt::Group(g) => {
                        if render(&g.items).contains("HashMap")
                            || render(&g.items).contains("HashSet")
                        {
                            is_hash = true;
                        }
                    }
                }
                k += 1;
            }
            if let (Some(n), true) = (name, is_hash) {
                out.insert(n);
            }
            i = k;
            continue;
        }
        if let Tt::Group(g) = &tts[i] {
            collect_hash_bindings(&g.items, out);
        }
        i += 1;
    }
}

/// Whether a token can end an expression (making a following `[`
/// group an indexing operation rather than an array literal/type).
fn ends_expr(tt: &Tt) -> bool {
    match tt {
        Tt::Tok(t) => {
            matches!(t.tok, Tok::Ident(_) | Tok::Num(_) | Tok::Literal(_))
                && !matches!(&t.tok, Tok::Ident(s) if is_expr_keyword(s) || s == "in" || s == "return")
        }
        Tt::Group(g) => g.delim != Delim::Brace,
    }
}

/// Reconstructs the receiver chain ending just before index `dot` (a
/// `.` token): walks back over `ident`/`.`/index-group/`self` runs.
fn receiver_text(tts: &[Tt], dot: usize) -> String {
    let mut start = dot;
    while start > 0 {
        let prev = &tts[start - 1];
        let keep = match prev {
            Tt::Tok(t) => {
                matches!(&t.tok, Tok::Ident(s) if !is_expr_keyword(s))
                    || matches!(t.tok, Tok::Num(_))
                    || matches!(t.tok, Tok::Punct('.'))
            }
            Tt::Group(g) => g.delim == Delim::Bracket,
        };
        if keep {
            start -= 1;
        } else {
            break;
        }
    }
    render(&tts[start..dot])
}

/// Whether a paren group's tokens mention the ident `Relaxed`
/// (recursively).
fn group_has_relaxed(g: &Group) -> bool {
    g.items.iter().any(|t| match t {
        Tt::Tok(tk) => matches!(&tk.tok, Tok::Ident(s) if s == "Relaxed"),
        Tt::Group(sub) => group_has_relaxed(sub),
    })
}

/// Whether a group contains order-sensitive accumulation: compound
/// assignment (`+=`, `*=`, `-=`, `/=`) or `.push(`/`.insert(`/
/// `.extend(` calls.
fn group_accumulates(tts: &[Tt]) -> bool {
    let mut i = 0;
    while i < tts.len() {
        if let Some(Tok::Punct(c)) = tts[i].tok() {
            if matches!(c, '+' | '-' | '*' | '/') && tts.get(i + 1).is_some_and(|t| t.is_punct('='))
            {
                return true;
            }
        }
        if tts[i].is_punct('.') {
            if let Some(Tok::Ident(name)) = tts.get(i + 1).and_then(Tt::tok) {
                if matches!(
                    name.as_str(),
                    "push" | "insert" | "extend" | "sum" | "product" | "fold" | "collect"
                ) && tts
                    .get(i + 2)
                    .is_some_and(|t| t.group(Delim::Paren).is_some())
                {
                    return true;
                }
            }
        }
        if let Tt::Group(g) = &tts[i] {
            if group_accumulates(&g.items) {
                return true;
            }
        }
        i += 1;
    }
    false
}

/// The recursive body walk. `gated` is true inside an FMA-gated
/// region (fn-level `#[target_feature]` or a statement under
/// `#[cfg(target_feature = "fma")]`).
fn walk(tts: &[Tt], gated: bool, hash_idents: &BTreeSet<String>, facts: &mut BodyFacts) {
    let mut i = 0;
    while i < tts.len() {
        let tt = &tts[i];
        // Statement-level FMA gate: `#[cfg(target_feature = "fma")]`
        // followed by a `{…}` block (or any single statement run up
        // to the next `;`): mark the gated span.
        if tt.is_punct('#') {
            if let Some(g) = tts.get(i + 1).and_then(|t| t.group(Delim::Bracket)) {
                let kind = crate::item::attr_kind(&g.items);
                if matches!(kind, AttrKind::CfgTargetFeature(ref f) if f == "fma") {
                    // Gate the next group or statement.
                    let mut j = i + 2;
                    while j < tts.len() && !tts[j].is_punct(';') {
                        if let Tt::Group(sub) = &tts[j] {
                            walk(&sub.items, true, hash_idents, facts);
                            j += 1;
                            // Only the first brace group is the gated
                            // block.
                            if sub.delim == Delim::Brace {
                                break;
                            }
                            continue;
                        }
                        walk_leaf(tts, j, true, hash_idents, facts);
                        j += 1;
                    }
                    i = j;
                    continue;
                }
                // Any other attribute: skip it (its contents are not
                // expression code).
                i += 2;
                continue;
            }
        }
        if let Tt::Group(g) = tt {
            // Indexing: a bracket group directly after an expression.
            if g.delim == Delim::Bracket && i > 0 && ends_expr(&tts[i - 1]) {
                facts.index_sites.push(g.open_line);
            }
            walk(&g.items, gated, hash_idents, facts);
            i += 1;
            continue;
        }
        walk_leaf(tts, i, gated, hash_idents, facts);
        i += 1;
    }
}

/// Handles one leaf position `i` of the walk (call detection, float
/// compares, hash iteration).
fn walk_leaf(
    tts: &[Tt],
    i: usize,
    gated: bool,
    hash_idents: &BTreeSet<String>,
    facts: &mut BodyFacts,
) {
    let tt = &tts[i];
    let Some(tok) = tt.tok() else { return };
    match tok {
        Tok::Ident(name) => {
            if is_expr_keyword(name) {
                // `for pat in expr { body }`: hash-iteration check.
                if name == "for" {
                    check_for_loop(tts, i, hash_idents, facts);
                }
                return;
            }
            let next = tts.get(i + 1);
            // Macro call `name!(…)` / `name!{…}` / `name![…]`.
            if next.is_some_and(|t| t.is_punct('!'))
                && tts.get(i + 2).is_some_and(|t| matches!(t, Tt::Group(_)))
            {
                facts.calls.push(Call {
                    name: name.clone(),
                    qualifier: String::new(),
                    kind: CallKind::Macro,
                    line: tt.line(),
                    receiver: String::new(),
                    args_have_relaxed: false,
                });
                return;
            }
            // Plain or qualified call `name(…)` — not a definition
            // (`fn name(…)`) and not a method call (`.name(…)`),
            // which the `.` handler records.
            let prev_dot = i > 0 && tts[i - 1].is_punct('.');
            let prev_fn = i > 0 && tts[i - 1].is_ident("fn");
            if prev_dot || prev_fn {
                return;
            }
            if let Some(args) = next.and_then(|t| t.group(Delim::Paren)) {
                let qualified = i >= 2 && tts[i - 1].is_punct(':') && tts[i - 2].is_punct(':');
                let qualifier = if qualified && i >= 3 {
                    match tts[i - 3].tok() {
                        Some(Tok::Ident(q)) => q.clone(),
                        _ => String::new(),
                    }
                } else {
                    String::new()
                };
                // `mul_add` via UFCS `f64::mul_add(a, b, c)`.
                if name == "mul_add" {
                    facts.mul_adds.push(MulAdd {
                        line: tt.line(),
                        gated,
                    });
                }
                facts.calls.push(Call {
                    name: name.clone(),
                    qualifier,
                    kind: if qualified {
                        CallKind::Qualified
                    } else {
                        CallKind::Plain
                    },
                    line: tt.line(),
                    receiver: String::new(),
                    args_have_relaxed: group_has_relaxed(args),
                });
            }
        }
        Tok::Punct('.') => {
            // Method call `.name(…)`.
            let Some(Tok::Ident(name)) = tts.get(i + 1).and_then(Tt::tok) else {
                return;
            };
            let Some(args) = tts.get(i + 2).and_then(|t| t.group(Delim::Paren)) else {
                return;
            };
            if name == "mul_add" {
                facts.mul_adds.push(MulAdd {
                    line: tts[i + 1].line(),
                    gated,
                });
            }
            // `map.iter()` / `.values()` / `.keys()` / `.drain()` on
            // a known Hash* binding.
            if matches!(
                name.as_str(),
                "iter" | "iter_mut" | "values" | "keys" | "drain" | "into_iter" | "values_mut"
            ) {
                let recv = receiver_text(tts, i);
                let base = recv.split(['.', '[']).next().unwrap_or("");
                if hash_idents.contains(base) {
                    // Does the surrounding statement accumulate?
                    if statement_accumulates(tts, i) {
                        facts.hash_iters.push(HashIter {
                            line: tts[i + 1].line(),
                            ident: base.to_string(),
                        });
                    }
                }
            }
            facts.calls.push(Call {
                name: name.clone(),
                qualifier: String::new(),
                kind: CallKind::Method,
                line: tts[i + 1].line(),
                receiver: format!("{}.{}", receiver_text(tts, i), name),
                args_have_relaxed: group_has_relaxed(args),
            });
        }
        Tok::Punct(c @ ('=' | '!')) => {
            // Float compare: `== 1.0` / `1.0 !=` — a float literal on
            // either side of `==`/`!=`.
            if !tts.get(i + 1).is_some_and(|t| t.is_punct('=')) {
                return;
            }
            // `!=` lexes as '!' '='; `==` as '=' '='; exclude `=`
            // followed by `==`? (`x = ==` is not Rust). Also exclude
            // `<=`/`>=`/`=>` by checking the previous char.
            if *c == '='
                && i > 0
                && matches!(tts[i - 1].tok(), Some(Tok::Punct('<' | '>' | '=' | '!')))
            {
                return;
            }
            let float_before =
                i > 0 && matches!(tts[i - 1].tok(), Some(Tok::Num(n)) if num_is_float(n));
            let float_after =
                matches!(tts.get(i + 2).and_then(Tt::tok), Some(Tok::Num(n)) if num_is_float(n));
            if float_before || float_after {
                facts.float_cmps.push(tt.line());
            }
        }
        _ => {}
    }
}

/// `for pat in <expr> { body }`: flags iteration over a Hash*
/// binding whose body accumulates.
fn check_for_loop(
    tts: &[Tt],
    for_at: usize,
    hash_idents: &BTreeSet<String>,
    facts: &mut BodyFacts,
) {
    // Find `in`, then the loop body brace group.
    let mut j = for_at + 1;
    while j < tts.len() && !tts[j].is_ident("in") {
        j += 1;
    }
    if j >= tts.len() {
        return;
    }
    let expr_start = j + 1;
    let mut k = expr_start;
    while k < tts.len() && tts[k].group(Delim::Brace).is_none() {
        k += 1;
    }
    let Some(body) = tts.get(k).and_then(|t| t.group(Delim::Brace)) else {
        return;
    };
    let expr = render(&tts[expr_start..k]);
    let base = expr
        .trim_start_matches(['&', '*'])
        .split(['.', '[', '('])
        .next()
        .unwrap_or("");
    if hash_idents.contains(base) && group_accumulates(&body.items) {
        facts.hash_iters.push(HashIter {
            line: tts[for_at].line(),
            ident: base.to_string(),
        });
    }
}

/// Whether the statement containing position `i` (bounded by `;` at
/// this level) contains an accumulation, or is itself a result-
/// bearing `.collect()`/`.sum()`/`.fold()` chain.
fn statement_accumulates(tts: &[Tt], i: usize) -> bool {
    let mut lo = i;
    while lo > 0 && !tts[lo - 1].is_punct(';') {
        lo -= 1;
    }
    let mut hi = i;
    while hi < tts.len() && !tts[hi].is_punct(';') {
        hi += 1;
    }
    group_accumulates(&tts[lo..hi])
}

/// Names that shadow ubiquitous std/core methods. Calls to these
/// names are NOT resolved to workspace fns: `.new(`, `.get(`,
/// `.push(` etc. overwhelmingly target std types, and resolving them
/// by name alone would connect nearly every fn in the workspace to
/// nearly every other (one `.get(` edge into a bio parser, one
/// `.new(` edge into the model checker), destroying the precision of
/// reachability rules. Nothing is lost on the *detection* side —
/// panic/alloc/index sites are found in the body where they occur,
/// not through resolution — and workspace-significant callees are
/// still reached through their distinctively-named callers.
const AMBIENT_NAMES: &[&str] = &[
    // Constructors / conversions.
    "new",
    "with_capacity",
    "default",
    "from",
    "into",
    "try_from",
    "try_into",
    "clone",
    "to_string",
    "to_owned",
    "to_vec",
    "as_ref",
    "as_mut",
    "as_slice",
    "as_str",
    "parse",
    // Accessors / collections.
    "get",
    "get_mut",
    "len",
    "is_empty",
    "iter",
    "iter_mut",
    "into_iter",
    "push",
    "pop",
    "insert",
    "remove",
    "contains",
    "contains_key",
    "extend",
    "reserve",
    "resize",
    "clear",
    "first",
    "last",
    "keys",
    "values",
    "entry",
    "split_at",
    "split_at_mut",
    "chunks",
    "chunks_exact",
    "windows",
    "fill",
    "copy_from_slice",
    "swap",
    "sort",
    "sort_by",
    "binary_search",
    "truncate",
    "drain",
    "append",
    "take",
    "replace",
    "set",
    "index",
    // Iterator adapters / folds.
    "map",
    "filter",
    "fold",
    "sum",
    "product",
    "collect",
    "count",
    "next",
    "zip",
    "rev",
    "enumerate",
    "chain",
    "flat_map",
    "any",
    "all",
    "find",
    "position",
    "min",
    "max",
    "min_by",
    "max_by",
    "skip",
    "step_by",
    "unwrap_or",
    "unwrap_or_else",
    "unwrap_or_default",
    "ok_or",
    "ok_or_else",
    "and_then",
    "map_err",
    "is_some",
    "is_none",
    "is_ok",
    "is_err",
    // Option/Result panics: detected at the call site by the purity
    // rule; resolving them by name would alias every `.expect(` in
    // the workspace to any fn that happens to be named `expect`.
    "expect",
    "unwrap",
    // Math / float methods (kernels call these constantly; they are
    // std f64 methods, never workspace fns).
    "abs",
    "sqrt",
    "exp",
    "ln",
    "log2",
    "log10",
    "powi",
    "powf",
    "floor",
    "ceil",
    "round",
    "is_finite",
    "is_nan",
    "to_bits",
    "from_bits",
    // I/O and formatting traits.
    "write",
    "write_all",
    "write_str",
    "read",
    "read_to_string",
    "flush",
    "fmt",
    "finish",
    // Atomics / sync (the relaxed rule checks these at the site).
    "load",
    "store",
    "fetch_add",
    "fetch_sub",
    "compare_exchange",
    "lock",
    "send",
    "recv",
    "join",
    "spawn",
    "wait",
    // Comparison / hashing traits.
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "drop",
    "deref",
    "deref_mut",
    "borrow",
    "borrow_mut",
];

/// The workspace-wide call graph over extracted functions.
pub struct CallGraph<'a> {
    pub fns: &'a [FnItem],
    pub facts: Vec<BodyFacts>,
    /// name → indices of non-test fns with that name.
    index: BTreeMap<&'a str, Vec<usize>>,
    /// Per-fn crate key (`crates/core`, `shims/rand`, `root`) for
    /// same-crate resolution preference.
    crates: Vec<String>,
}

/// Crate key of a workspace-relative path: its first two components
/// under `crates/`/`shims/`, or `root` for the root package.
fn crate_of(file: &str) -> String {
    let mut parts = file.split('/');
    match parts.next() {
        Some(top @ ("crates" | "shims")) => match parts.next() {
            Some(name) => format!("{top}/{name}"),
            None => top.to_string(),
        },
        _ => "root".to_string(),
    }
}

impl<'a> CallGraph<'a> {
    /// Builds bodies' facts and the name index. Test-context fns are
    /// indexed separately (they never resolve as call targets of
    /// production code).
    pub fn build(fns: &'a [FnItem]) -> Self {
        let facts = fns.iter().map(analyze_body).collect();
        let mut index: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
        for (i, f) in fns.iter().enumerate() {
            if !f.is_test_ctx {
                index.entry(f.name.as_str()).or_default().push(i);
            }
        }
        let crates = fns.iter().map(|f| crate_of(&f.file)).collect();
        CallGraph {
            fns,
            facts,
            index,
            crates,
        }
    }

    /// Resolves one call made from fn `caller` to candidate fn
    /// indices.
    ///
    /// * Qualified calls (`T::f`) prefer impls of the named type.
    /// * Method calls (`.f(`) resolve to same-crate candidates plus
    ///   cross-crate candidates defined inside a **trait impl** — the
    ///   dyn-dispatch approximation (`worker_loop` calling
    ///   `.log_likelihood(` must reach every `impl LikelihoodEngine`)
    ///   without aliasing inherent methods across crates (parallel's
    ///   `UnsafeCell::with` facade must not drag in the model
    ///   checker's same-named inherent method).
    /// * Plain calls prefer same-crate candidates, falling back to
    ///   every candidate (cross-crate free-fn calls usually arrive
    ///   qualified).
    pub fn resolve(&self, caller: usize, call: &Call) -> Vec<usize> {
        if call.kind == CallKind::Macro || AMBIENT_NAMES.contains(&call.name.as_str()) {
            return Vec::new();
        }
        let Some(cands) = self.index.get(call.name.as_str()) else {
            return Vec::new();
        };
        if call.kind == CallKind::Qualified && !call.qualifier.is_empty() {
            // Prefer impls of the named type; fall back to all.
            let typed: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| self.fns[i].impl_type.as_deref() == Some(call.qualifier.as_str()))
                .collect();
            if !typed.is_empty() {
                return typed;
            }
        }
        let caller_crate = &self.crates[caller];
        if call.kind == CallKind::Method {
            let narrowed: Vec<usize> = cands
                .iter()
                .copied()
                .filter(|&i| &self.crates[i] == caller_crate || self.fns[i].impl_trait.is_some())
                .collect();
            if !narrowed.is_empty() {
                return narrowed;
            }
            return cands.clone();
        }
        let local: Vec<usize> = cands
            .iter()
            .copied()
            .filter(|&i| &self.crates[i] == caller_crate)
            .collect();
        if !local.is_empty() {
            return local;
        }
        cands.clone()
    }

    /// BFS over the graph from `entries` (fn indices). Returns, for
    /// every reached fn, the call-chain parent it was first reached
    /// through (entries map to themselves).
    pub fn reach(&self, entries: &[usize]) -> BTreeMap<usize, usize> {
        let mut parent: BTreeMap<usize, usize> = BTreeMap::new();
        let mut queue: VecDeque<usize> = VecDeque::new();
        for &e in entries {
            parent.entry(e).or_insert(e);
            queue.push_back(e);
        }
        while let Some(at) = queue.pop_front() {
            for call in &self.facts[at].calls {
                for target in self.resolve(at, call) {
                    if let std::collections::btree_map::Entry::Vacant(v) = parent.entry(target) {
                        v.insert(at);
                        queue.push_back(target);
                    }
                }
            }
        }
        parent
    }

    /// Renders the call chain from an entry to `target` (for
    /// diagnostics): `entry → … → target`.
    pub fn chain(&self, parent: &BTreeMap<usize, usize>, target: usize) -> String {
        let mut names = vec![self.fns[target].qualified()];
        let mut at = target;
        let mut hops = 0;
        while let Some(&p) = parent.get(&at) {
            if p == at || hops > 12 {
                break;
            }
            names.push(self.fns[p].qualified());
            at = p;
            hops += 1;
        }
        names.reverse();
        names.join(" → ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::item::extract;

    fn facts_of(src: &str) -> (Vec<FnItem>, Vec<BodyFacts>) {
        let items = extract("crates/demo/src/lib.rs", src, &[]);
        let facts = items.fns.iter().map(analyze_body).collect();
        (items.fns, facts)
    }

    #[test]
    fn calls_of_every_kind() {
        let (_, facts) = facts_of(
            "fn f(v: &mut Vec<u32>) {\n  helper(1);\n  v.push(2);\n  let b = Box::new(3);\n  panic!(\"x\");\n}\n",
        );
        let calls = &facts[0].calls;
        let get = |n: &str| calls.iter().find(|c| c.name == n).expect("call");
        assert_eq!(get("helper").kind, CallKind::Plain);
        assert_eq!(get("push").kind, CallKind::Method);
        assert_eq!(get("push").receiver, "v.push");
        assert_eq!(get("new").kind, CallKind::Qualified);
        assert_eq!(get("new").qualifier, "Box");
        assert_eq!(get("panic").kind, CallKind::Macro);
    }

    #[test]
    fn indexing_is_detected_but_not_array_literals_or_types() {
        let (_, facts) = facts_of(
            "fn f(x: &[f64], m: usize) -> f64 {\n  let a: [f64; 4] = [0.0; 4];\n  let v = vec![1];\n  x[m] + a[0]\n}\n",
        );
        // x[m] and a[0] are indexing; `[f64; 4]`, `[0.0; 4]`, vec![…]
        // are not.
        assert_eq!(facts[0].index_sites, vec![4, 4]);
    }

    #[test]
    fn float_compares_against_literals() {
        let (_, facts) = facts_of(
            "fn f(x: f64, n: u32) -> bool {\n  if x == 0.0 { return true; }\n  if 1.5 != x { return true; }\n  if n == 0 { return false; }\n  x <= 2.0\n}\n",
        );
        assert_eq!(facts[0].float_cmps, vec![2, 3]);
    }

    #[test]
    fn mul_add_gating() {
        let src = r#"
fn raw(a: f64) -> f64 { a.mul_add(2.0, 1.0) }
fn gated(a: f64) -> f64 {
    #[cfg(target_feature = "fma")]
    { a.mul_add(2.0, 1.0) }
    #[cfg(not(target_feature = "fma"))]
    { a * 2.0 + 1.0 }
}
#[target_feature(enable = "avx2,fma")]
unsafe fn probe(a: f64) -> f64 { a.mul_add(2.0, 1.0) }
"#;
        let (fns, facts) = facts_of(src);
        let by = |n: &str| {
            let i = fns.iter().position(|f| f.name == n).expect("fn");
            &facts[i]
        };
        assert!(!by("raw").mul_adds[0].gated);
        assert!(by("gated").mul_adds[0].gated);
        assert_eq!(
            by("gated").mul_adds.len(),
            1,
            "ungated branch has no mul_add"
        );
        assert!(by("probe").mul_adds[0].gated);
    }

    #[test]
    fn hashmap_iteration_feeding_accumulation() {
        let src = r#"
fn bad() -> f64 {
    let mut m = std::collections::HashMap::new();
    m.insert(1u32, 2.0f64);
    let mut sum = 0.0;
    for (_, v) in m.iter() { sum += v; }
    sum
}
fn lookup_only(m2: u32) -> u32 {
    let mut m = std::collections::HashMap::new();
    m.insert(1u32, 2u32);
    *m.get(&m2).unwrap_or(&0)
}
fn sorted_ok() {
    let mut m = std::collections::HashMap::new();
    m.insert(1u32, 2u32);
    let mut keys: Vec<_> = m.keys().collect();
    keys.sort();
}
"#;
        let (fns, facts) = facts_of(src);
        let by = |n: &str| {
            let i = fns.iter().position(|f| f.name == n).expect("fn");
            &facts[i]
        };
        assert_eq!(by("bad").hash_iters.len(), 1);
        assert!(by("lookup_only").hash_iters.is_empty());
        // keys().collect() IS flagged: collecting an unsorted Hash
        // iteration is result-bearing; the audit comment justifies
        // the sort that follows.
        assert_eq!(by("sorted_ok").hash_iters.len(), 1);
    }

    #[test]
    fn reachability_and_chains() {
        let src = r#"
fn entry() { middle(); }
fn middle() { leaf(1); }
fn leaf(n: u32) -> u32 { n }
fn unrelated() { leaf(2); }
"#;
        let items = extract("crates/demo/src/lib.rs", src, &[]);
        let graph = CallGraph::build(&items.fns);
        let entry = items
            .fns
            .iter()
            .position(|f| f.name == "entry")
            .expect("entry");
        let reached = graph.reach(&[entry]);
        let names: Vec<_> = reached
            .keys()
            .map(|&i| items.fns[i].name.as_str())
            .collect();
        assert_eq!(names, ["entry", "middle", "leaf"]);
        let leaf = items
            .fns
            .iter()
            .position(|f| f.name == "leaf")
            .expect("leaf");
        assert_eq!(graph.chain(&reached, leaf), "entry → middle → leaf");
    }

    #[test]
    fn relaxed_in_multiline_call_args() {
        let src = "fn f(a: &AtomicU32) {\n  a.store(\n    1,\n    Ordering::Relaxed,\n  );\n}\n";
        let (_, facts) = facts_of(src);
        let store = facts[0]
            .calls
            .iter()
            .find(|c| c.name == "store")
            .expect("store");
        assert!(store.args_have_relaxed);
        assert_eq!(store.receiver, "a.store");
    }
}
