//! Item extraction: functions, impls, modules, attributes and unsafe
//! sites, walked out of a file's token trees.
//!
//! The extractor is *cfg-aware*: an item carrying
//! `#[cfg(feature = "x")]` is skipped entirely unless `x` is in the
//! analysis's enabled-feature set — this is how the seeded-violation
//! CI build works (`cargo xtask lint --cfg-feature seed-hotpath-bug`
//! makes the deliberately buggy fixture item visible to the rules).
//! `#[cfg(test)]` modules and `#[test]` functions are extracted but
//! marked, so rules can scope themselves to production code the way
//! the PR 3 line scanner scoped by "first `#[cfg(test)]` line".

use crate::lex::{lex, Delim, Lexed, Tok};
use crate::tree::{build, render, Group, Tt};

/// One parsed attribute (`#[…]` or `#![…]`).
#[derive(Clone, Debug)]
pub struct Attr {
    pub line: u32,
    /// Rendered attribute contents, e.g. `cfg(feature="x")`,
    /// `deny(unsafe_op_in_unsafe_fn)`. Literal contents are kept.
    pub text: String,
    pub kind: AttrKind,
}

/// What the analyzer understands about an attribute.
#[derive(Clone, Debug, PartialEq)]
pub enum AttrKind {
    /// `#[cfg(test)]`
    CfgTest,
    /// `#[cfg(feature = "name")]`
    CfgFeature(String),
    /// `#[cfg(target_feature = "name")]`
    CfgTargetFeature(String),
    /// `#[target_feature(enable = "…")]`
    TargetFeatureEnable,
    /// `#[test]`
    Test,
    /// Anything else (kept as text).
    Other,
}

/// A function item.
#[derive(Clone, Debug)]
pub struct FnItem {
    /// Workspace-relative file path (forward slashes).
    pub file: String,
    pub name: String,
    pub line: u32,
    pub is_unsafe: bool,
    /// Inside a `#[cfg(test)]` module, marked `#[test]`, or in a
    /// `tests/` / `benches/` directory.
    pub is_test_ctx: bool,
    /// Base identifier of the `impl` self type, when inside one.
    pub impl_type: Option<String>,
    /// Base identifier of the implemented trait, when inside a trait
    /// impl.
    pub impl_trait: Option<String>,
    pub attrs: Vec<Attr>,
    /// The `{…}` body; `None` for trait-method declarations.
    pub body: Option<Group>,
}

impl FnItem {
    /// `impl Ty::name`-style qualified display name.
    pub fn qualified(&self) -> String {
        match &self.impl_type {
            Some(ty) => format!("{ty}::{}", self.name),
            None => self.name.clone(),
        }
    }

    /// Whether any attribute is `#[target_feature(enable = …)]`.
    pub fn has_target_feature(&self) -> bool {
        self.attrs
            .iter()
            .any(|a| a.kind == AttrKind::TargetFeatureEnable)
    }
}

/// Kinds of unsafe site, for the inventory.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum UnsafeKind {
    Block,
    Fn,
    Impl,
}

impl UnsafeKind {
    pub fn name(self) -> &'static str {
        match self {
            UnsafeKind::Block => "block",
            UnsafeKind::Fn => "fn",
            UnsafeKind::Impl => "impl",
        }
    }
}

/// One `unsafe` occurrence.
#[derive(Clone, Debug)]
pub struct UnsafeSite {
    pub file: String,
    pub line: u32,
    pub kind: UnsafeKind,
    /// Stable enclosing container: `fn name`, `impl Ty`, or `item`
    /// (file-level static/const initializer). Used as the inventory
    /// key so unrelated edits above the site don't shift it.
    pub container: String,
    pub in_test_ctx: bool,
}

/// An `impl` block header.
#[derive(Clone, Debug)]
pub struct ImplItem {
    pub file: String,
    pub line: u32,
    pub is_unsafe: bool,
    pub self_type: Option<String>,
    pub trait_name: Option<String>,
}

/// Everything extracted from one file.
#[derive(Debug, Default)]
pub struct FileItems {
    pub file: String,
    pub lexed: Lexed,
    pub fns: Vec<FnItem>,
    pub impls: Vec<ImplItem>,
    pub unsafe_sites: Vec<UnsafeSite>,
    /// File-level inner attributes (`#![…]`).
    pub inner_attrs: Vec<Attr>,
    /// Items skipped because their `cfg(feature)` was not enabled.
    pub skipped_cfg_items: usize,
}

/// Extraction context threaded through the walk.
#[derive(Clone, Default)]
struct Ctx {
    in_test: bool,
    impl_type: Option<String>,
    impl_trait: Option<String>,
}

/// Parses one file into items. `enabled_features` controls which
/// `#[cfg(feature = "…")]` items are visible.
pub fn extract(file: &str, src: &str, enabled_features: &[String]) -> FileItems {
    let lexed = lex(src);
    let tts = build(lexed.tokens.clone());
    let mut out = FileItems {
        file: file.to_string(),
        lexed,
        ..FileItems::default()
    };
    let path_test_ctx = file.contains("/tests/")
        || file.contains("/benches/")
        || file.contains("/examples/")
        || file.ends_with("build.rs");
    let ctx = Ctx {
        in_test: path_test_ctx,
        ..Ctx::default()
    };
    walk_items(&tts, &ctx, enabled_features, true, &mut out);
    out
}

/// Parses an attribute group's contents into an [`AttrKind`].
pub(crate) fn attr_kind(items: &[Tt]) -> AttrKind {
    let first = match items.first().and_then(Tt::tok) {
        Some(Tok::Ident(s)) => s.as_str(),
        _ => return AttrKind::Other,
    };
    match first {
        "test" if items.len() == 1 => AttrKind::Test,
        "target_feature" => AttrKind::TargetFeatureEnable,
        "cfg" => {
            let Some(args) = items.get(1).and_then(|t| t.group(Delim::Paren)) else {
                return AttrKind::Other;
            };
            match args.items.first().and_then(Tt::tok) {
                Some(Tok::Ident(s)) if s == "test" && args.items.len() == 1 => AttrKind::CfgTest,
                Some(Tok::Ident(s)) if s == "feature" || s == "target_feature" => {
                    // `feature = "name"`
                    let name = args.items.iter().find_map(|t| match t.tok() {
                        Some(Tok::Literal(text)) => Some(text.clone()),
                        _ => None,
                    });
                    match (s.as_str(), name) {
                        ("feature", Some(n)) => AttrKind::CfgFeature(n),
                        ("target_feature", Some(n)) => AttrKind::CfgTargetFeature(n),
                        _ => AttrKind::Other,
                    }
                }
                _ => AttrKind::Other,
            }
        }
        _ => AttrKind::Other,
    }
}

/// Whether pending attributes make this item invisible under the
/// enabled feature set.
fn cfg_skips(attrs: &[Attr], enabled: &[String]) -> bool {
    attrs.iter().any(|a| match &a.kind {
        AttrKind::CfgFeature(f) => !enabled.iter().any(|e| e == f),
        _ => false,
    })
}

fn cfg_test(attrs: &[Attr]) -> bool {
    attrs
        .iter()
        .any(|a| matches!(a.kind, AttrKind::CfgTest | AttrKind::Test))
}

/// Base identifier of a type token run: first identifier that isn't a
/// pointer/reference sigil or keyword (`dyn`, `mut`, `const`).
fn base_type_ident(tts: &[Tt]) -> Option<String> {
    tts.iter().find_map(|t| match t.tok() {
        Some(Tok::Ident(s)) if !matches!(s.as_str(), "dyn" | "mut" | "const" | "impl") => {
            Some(s.clone())
        }
        _ => None,
    })
}

/// Skips a balanced `< … >` generic run starting at `i` (which must
/// point at `<`); returns the index just past the matching `>`.
fn skip_generics(tts: &[Tt], mut i: usize) -> usize {
    let mut depth = 0i32;
    while i < tts.len() {
        if tts[i].is_punct('<') {
            depth += 1;
        } else if tts[i].is_punct('>') {
            depth -= 1;
            if depth <= 0 {
                return i + 1;
            }
        }
        i += 1;
    }
    i
}

/// Walks one item-level token run (file top level, `mod` body, `impl`
/// body, `trait` body).
fn walk_items(tts: &[Tt], ctx: &Ctx, enabled: &[String], file_level: bool, out: &mut FileItems) {
    let mut pending_attrs: Vec<Attr> = Vec::new();
    let mut pending_unsafe: Option<u32> = None;
    let mut i = 0;
    while i < tts.len() {
        let tt = &tts[i];
        // Attributes: `#[…]` (outer) and `#![…]` (inner).
        if tt.is_punct('#') {
            let (bang, group_at) = if tts.get(i + 1).is_some_and(|t| t.is_punct('!')) {
                (true, i + 2)
            } else {
                (false, i + 1)
            };
            if let Some(g) = tts.get(group_at).and_then(|t| t.group(Delim::Bracket)) {
                let attr = Attr {
                    line: tt.line(),
                    text: render(&g.items),
                    kind: attr_kind(&g.items),
                };
                if bang {
                    if file_level {
                        out.inner_attrs.push(attr);
                    }
                } else {
                    pending_attrs.push(attr);
                }
                i = group_at + 1;
                continue;
            }
        }
        match tt.tok() {
            Some(Tok::Ident(kw)) if kw == "unsafe" => {
                pending_unsafe = Some(tt.line());
                // `unsafe { … }` in item position (static/const
                // initializers): record as a block site.
                if let Some(g) = tts.get(i + 1).and_then(|t| t.group(Delim::Brace)) {
                    out.unsafe_sites.push(UnsafeSite {
                        file: out.file.clone(),
                        line: tt.line(),
                        kind: UnsafeKind::Block,
                        container: "item".to_string(),
                        in_test_ctx: ctx.in_test,
                    });
                    let _ = g;
                    pending_unsafe = None;
                    i += 2;
                    continue;
                }
                i += 1;
                continue;
            }
            Some(Tok::Ident(kw)) if kw == "fn" => {
                let attrs = std::mem::take(&mut pending_attrs);
                let is_unsafe = pending_unsafe.take().is_some();
                if cfg_skips(&attrs, enabled) {
                    out.skipped_cfg_items += 1;
                    i = skip_item(tts, i);
                    continue;
                }
                let name = match tts.get(i + 1).and_then(Tt::tok) {
                    Some(Tok::Ident(n)) => n.clone(),
                    _ => {
                        i += 1;
                        continue;
                    }
                };
                let line = tt.line();
                // Find the body: first brace group before a `;`.
                let (body, next) = find_fn_body(tts, i + 2);
                let is_test_ctx = ctx.in_test || cfg_test(&attrs);
                if is_unsafe {
                    out.unsafe_sites.push(UnsafeSite {
                        file: out.file.clone(),
                        line,
                        kind: UnsafeKind::Fn,
                        container: format!("fn {}", qualify(ctx, &name)),
                        in_test_ctx: is_test_ctx,
                    });
                }
                if let Some(b) = &body {
                    collect_unsafe_blocks(
                        &b.items,
                        &format!("fn {}", qualify(ctx, &name)),
                        is_test_ctx,
                        out,
                    );
                }
                out.fns.push(FnItem {
                    file: out.file.clone(),
                    name,
                    line,
                    is_unsafe,
                    is_test_ctx,
                    impl_type: ctx.impl_type.clone(),
                    impl_trait: ctx.impl_trait.clone(),
                    attrs,
                    body,
                });
                i = next;
            }
            Some(Tok::Ident(kw)) if kw == "mod" => {
                let attrs = std::mem::take(&mut pending_attrs);
                pending_unsafe = None;
                if cfg_skips(&attrs, enabled) {
                    out.skipped_cfg_items += 1;
                    i = skip_item(tts, i);
                    continue;
                }
                // `mod name { … }` — recurse; `mod name;` — the file
                // collector visits the file itself.
                let mut j = i + 1;
                while j < tts.len() && !matches!(tts[j], Tt::Group(_)) && !tts[j].is_punct(';') {
                    j += 1;
                }
                if let Some(g) = tts.get(j).and_then(|t| t.group(Delim::Brace)) {
                    let sub = Ctx {
                        in_test: ctx.in_test || cfg_test(&attrs),
                        impl_type: None,
                        impl_trait: None,
                    };
                    walk_items(&g.items, &sub, enabled, false, out);
                }
                i = j + 1;
            }
            Some(Tok::Ident(kw)) if kw == "impl" => {
                let attrs = std::mem::take(&mut pending_attrs);
                let is_unsafe = pending_unsafe.take().is_some();
                if cfg_skips(&attrs, enabled) {
                    out.skipped_cfg_items += 1;
                    i = skip_item(tts, i);
                    continue;
                }
                let line = tt.line();
                // Header: `impl [<…>] Path [for Path] [where …] { … }`.
                let mut j = i + 1;
                if tts.get(j).is_some_and(|t| t.is_punct('<')) {
                    j = skip_generics(tts, j);
                }
                let header_start = j;
                while j < tts.len() && tts[j].group(Delim::Brace).is_none() && !tts[j].is_punct(';')
                {
                    j += 1;
                }
                let header = &tts[header_start..j.min(tts.len())];
                let for_pos = header.iter().position(|t| t.is_ident("for"));
                let (trait_name, self_type) = match for_pos {
                    Some(p) => (
                        base_type_ident(&header[..p]),
                        base_type_ident(&header[p + 1..]),
                    ),
                    None => (None, base_type_ident(header)),
                };
                if is_unsafe {
                    out.unsafe_sites.push(UnsafeSite {
                        file: out.file.clone(),
                        line,
                        kind: UnsafeKind::Impl,
                        container: format!(
                            "impl {} for {}",
                            trait_name.as_deref().unwrap_or("?"),
                            self_type.as_deref().unwrap_or("?")
                        ),
                        in_test_ctx: ctx.in_test || cfg_test(&attrs),
                    });
                }
                out.impls.push(ImplItem {
                    file: out.file.clone(),
                    line,
                    is_unsafe,
                    self_type: self_type.clone(),
                    trait_name: trait_name.clone(),
                });
                if let Some(g) = tts.get(j).and_then(|t| t.group(Delim::Brace)) {
                    let sub = Ctx {
                        in_test: ctx.in_test || cfg_test(&attrs),
                        impl_type: self_type,
                        impl_trait: trait_name,
                    };
                    walk_items(&g.items, &sub, enabled, false, out);
                }
                i = j + 1;
            }
            Some(Tok::Ident(kw)) if kw == "trait" => {
                let attrs = std::mem::take(&mut pending_attrs);
                pending_unsafe = None;
                if cfg_skips(&attrs, enabled) {
                    out.skipped_cfg_items += 1;
                    i = skip_item(tts, i);
                    continue;
                }
                let trait_name = match tts.get(i + 1).and_then(Tt::tok) {
                    Some(Tok::Ident(n)) => Some(n.clone()),
                    _ => None,
                };
                let mut j = i + 1;
                while j < tts.len() && tts[j].group(Delim::Brace).is_none() && !tts[j].is_punct(';')
                {
                    j += 1;
                }
                if let Some(g) = tts.get(j).and_then(|t| t.group(Delim::Brace)) {
                    let sub = Ctx {
                        in_test: ctx.in_test || cfg_test(&attrs),
                        impl_type: None,
                        impl_trait: trait_name,
                    };
                    walk_items(&g.items, &sub, enabled, false, out);
                }
                i = j + 1;
            }
            // Qualifiers sit between attributes and the item keyword
            // (`#[inline] pub const unsafe fn f`): keep the pending
            // state across them, and across the `(crate)` group of a
            // `pub(crate)` visibility.
            Some(Tok::Ident(kw))
                if matches!(
                    kw.as_str(),
                    "pub" | "const" | "async" | "extern" | "default"
                ) =>
            {
                i += 1;
            }
            None if tts[i].group(Delim::Paren).is_some() => {
                i += 1;
            }
            _ => {
                pending_attrs.clear();
                pending_unsafe = None;
                i += 1;
            }
        }
    }
}

fn qualify(ctx: &Ctx, name: &str) -> String {
    match &ctx.impl_type {
        Some(ty) => format!("{ty}::{name}"),
        None => name.to_string(),
    }
}

/// Finds a fn's body brace group starting the search at `i` (just
/// past the name): returns `(body, index just past the item)`.
fn find_fn_body(tts: &[Tt], mut i: usize) -> (Option<Group>, usize) {
    // Skip generics directly after the name.
    if tts.get(i).is_some_and(|t| t.is_punct('<')) {
        i = skip_generics(tts, i);
    }
    while i < tts.len() {
        if tts[i].is_punct(';') {
            return (None, i + 1);
        }
        if let Some(g) = tts[i].group(Delim::Brace) {
            return (Some(g.clone()), i + 1);
        }
        i += 1;
    }
    (None, i)
}

/// Skips one item starting at its keyword (used for cfg-disabled
/// items): advances past the next top-level `{…}` group or `;`.
fn skip_item(tts: &[Tt], mut i: usize) -> usize {
    // Special-case fn: generics may contain `;` never, but default
    // const generics could contain groups; the first brace group at
    // this level is the body either way.
    while i < tts.len() {
        if tts[i].is_punct(';') {
            return i + 1;
        }
        if tts[i].group(Delim::Brace).is_some() {
            return i + 1;
        }
        i += 1;
    }
    i
}

/// Records every `unsafe { … }` block inside a fn body (recursively,
/// including inside nested closures/blocks).
fn collect_unsafe_blocks(tts: &[Tt], container: &str, in_test: bool, out: &mut FileItems) {
    let mut i = 0;
    while i < tts.len() {
        if tts[i].is_ident("unsafe") {
            // `unsafe {` possibly with tokens between on other lines
            // is always adjacent in token trees.
            if let Some(g) = tts.get(i + 1).and_then(|t| t.group(Delim::Brace)) {
                out.unsafe_sites.push(UnsafeSite {
                    file: out.file.clone(),
                    line: tts[i].line(),
                    kind: UnsafeKind::Block,
                    container: container.to_string(),
                    in_test_ctx: in_test,
                });
                // Recurse inside the unsafe block for nested sites.
                collect_unsafe_blocks(&g.items, container, in_test, out);
                i += 2;
                continue;
            }
        }
        if let Tt::Group(g) = &tts[i] {
            collect_unsafe_blocks(&g.items, container, in_test, out);
        }
        i += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ex(src: &str) -> FileItems {
        extract("crates/demo/src/lib.rs", src, &[])
    }

    #[test]
    fn fns_with_context_and_bodies() {
        let items = ex("impl Foo { pub fn bar(&self) -> u32 { self.x } }\nfn free() {}\ntrait T { fn decl(&self); }\n");
        let names: Vec<_> = items.fns.iter().map(|f| f.qualified()).collect();
        assert_eq!(names, ["Foo::bar", "free", "decl"]);
        assert!(items.fns[0].body.is_some());
        assert!(items.fns[2].body.is_none());
        assert_eq!(items.fns[0].impl_type.as_deref(), Some("Foo"));
    }

    #[test]
    fn impl_headers_with_generics_and_traits() {
        let items = ex("unsafe impl<T: Send> Sync for Holder<T> {}\nimpl<'a> Walker<'a> { }\n");
        assert_eq!(items.impls[0].trait_name.as_deref(), Some("Sync"));
        assert_eq!(items.impls[0].self_type.as_deref(), Some("Holder"));
        assert!(items.impls[0].is_unsafe);
        assert_eq!(items.impls[1].self_type.as_deref(), Some("Walker"));
        assert!(!items.impls[1].is_unsafe);
        assert_eq!(items.unsafe_sites.len(), 1);
        assert_eq!(items.unsafe_sites[0].kind, UnsafeKind::Impl);
    }

    #[test]
    fn unsafe_fns_and_blocks_with_containers() {
        let src = "unsafe fn raw() {}\nfn wrapper() {\n    let x = unsafe { *p };\n    x\n}\n";
        let items = ex(src);
        let kinds: Vec<_> = items
            .unsafe_sites
            .iter()
            .map(|s| (s.kind, s.container.as_str(), s.line))
            .collect();
        assert_eq!(
            kinds,
            [
                (UnsafeKind::Fn, "fn raw", 1),
                (UnsafeKind::Block, "fn wrapper", 3)
            ]
        );
    }

    #[test]
    fn cfg_feature_items_are_skipped_unless_enabled() {
        let src = "#[cfg(feature = \"seed\")]\nfn bad() {}\nfn good() {}\n";
        let off = extract("f.rs", src, &[]);
        assert_eq!(off.fns.len(), 1);
        assert_eq!(off.fns[0].name, "good");
        assert_eq!(off.skipped_cfg_items, 1);
        let on = extract("f.rs", src, &["seed".to_string()]);
        assert_eq!(on.fns.len(), 2);
    }

    #[test]
    fn test_contexts_are_marked() {
        let src = "fn prod() {}\n#[cfg(test)]\nmod tests {\n    #[test]\n    fn check() {}\n    fn helper() {}\n}\n";
        let items = ex(src);
        let by_name = |n: &str| items.fns.iter().find(|f| f.name == n).expect("fn");
        assert!(!by_name("prod").is_test_ctx);
        assert!(by_name("check").is_test_ctx);
        assert!(by_name("helper").is_test_ctx);
    }

    #[test]
    fn inner_attrs_are_file_level_only() {
        let src = "#![deny(unsafe_op_in_unsafe_fn)]\nfn f() {}\n";
        let items = ex(src);
        assert_eq!(items.inner_attrs.len(), 1);
        assert!(items.inner_attrs[0].text.contains("deny"));
        assert!(items.inner_attrs[0].text.contains("unsafe_op_in_unsafe_fn"));
    }

    #[test]
    fn attr_kinds_parse() {
        let src = "#[cfg(test)]\n#[cfg(feature = \"fast\")]\n#[cfg(target_feature = \"fma\")]\n#[target_feature(enable = \"avx2,fma\")]\n#[inline]\nunsafe fn f() {}\n";
        let items = extract("f.rs", src, &["fast".to_string()]);
        let kinds: Vec<_> = items.fns[0].attrs.iter().map(|a| a.kind.clone()).collect();
        assert_eq!(
            kinds,
            [
                AttrKind::CfgTest,
                AttrKind::CfgFeature("fast".into()),
                AttrKind::CfgTargetFeature("fma".into()),
                AttrKind::TargetFeatureEnable,
                AttrKind::Other,
            ]
        );
    }
}
