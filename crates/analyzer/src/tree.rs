//! Token trees: the lexer's flat stream grouped by `()`/`[]`/`{}`.
//!
//! This is the same shape rustc's `proc_macro::TokenStream` exposes,
//! and it is the foundation every rule walks: a group is one atomic
//! unit (a call's argument list, a function body, an attribute), so
//! rules stop caring about line boundaries — the precision limit that
//! capped the PR 3 line scanner.

use crate::lex::{Delim, Tok, Token};

/// One node of a token tree.
#[derive(Clone, Debug)]
pub enum Tt {
    /// A leaf token (never `Open`/`Close`).
    Tok(Token),
    /// A delimited group and everything inside it.
    Group(Group),
}

/// A delimited group.
#[derive(Clone, Debug)]
pub struct Group {
    pub delim: Delim,
    /// Line of the opening delimiter.
    pub open_line: u32,
    /// Line of the closing delimiter (or of the last token when the
    /// file ends unbalanced).
    pub close_line: u32,
    pub items: Vec<Tt>,
}

impl Tt {
    /// The source line this node starts on.
    pub fn line(&self) -> u32 {
        match self {
            Tt::Tok(t) => t.line,
            Tt::Group(g) => g.open_line,
        }
    }

    /// The leaf token, if this is one.
    pub fn tok(&self) -> Option<&Tok> {
        match self {
            Tt::Tok(t) => Some(&t.tok),
            Tt::Group(_) => None,
        }
    }

    /// Whether this leaf is the identifier `name`.
    pub fn is_ident(&self, name: &str) -> bool {
        matches!(self.tok(), Some(Tok::Ident(s)) if s == name)
    }

    /// Whether this leaf is the punctuation `c`.
    pub fn is_punct(&self, c: char) -> bool {
        matches!(self.tok(), Some(Tok::Punct(p)) if *p == c)
    }

    /// The group, if this node is one with the given delimiter.
    pub fn group(&self, delim: Delim) -> Option<&Group> {
        match self {
            Tt::Group(g) if g.delim == delim => Some(g),
            _ => None,
        }
    }
}

/// Builds token trees from a flat token stream. Unbalanced input is
/// tolerated: a stray closer is dropped, an unclosed group ends at
/// end of file.
pub fn build(tokens: Vec<Token>) -> Vec<Tt> {
    // Stack of open groups; index 0 is the virtual file-level group.
    let mut stack: Vec<(Delim, u32, Vec<Tt>)> = vec![(Delim::Brace, 0, Vec::new())];
    let mut last_line = 1;
    for t in tokens {
        last_line = t.line;
        match t.tok {
            Tok::Open(d) => stack.push((d, t.line, Vec::new())),
            Tok::Close(d) => {
                // Pop to the innermost matching group; drop stray
                // closers that match nothing.
                if stack.len() > 1 && stack.last().is_some_and(|(od, _, _)| *od == d) {
                    let (delim, open_line, items) = stack.pop().unwrap_or((d, t.line, Vec::new()));
                    let group = Tt::Group(Group {
                        delim,
                        open_line,
                        close_line: t.line,
                        items,
                    });
                    if let Some(top) = stack.last_mut() {
                        top.2.push(group);
                    }
                }
            }
            _ => {
                if let Some(top) = stack.last_mut() {
                    top.2.push(Tt::Tok(t));
                }
            }
        }
    }
    // Flatten unclosed groups back into their parents so no token is
    // lost on malformed input.
    while stack.len() > 1 {
        let (delim, open_line, items) = match stack.pop() {
            Some(g) => g,
            None => break,
        };
        if let Some(top) = stack.last_mut() {
            top.2.push(Tt::Group(Group {
                delim,
                open_line,
                close_line: last_line,
                items,
            }));
        }
    }
    stack.pop().map(|(_, _, items)| items).unwrap_or_default()
}

/// Reconstructs approximate source text for a token-tree slice —
/// used for allowlist keys (e.g. `self.buckets[bucket].fetch_add`)
/// and diagnostics. Identifiers are space-free around `.`/`::` so the
/// result matches hand-written audit entries.
pub fn render(tts: &[Tt]) -> String {
    let mut out = String::new();
    for tt in tts {
        match tt {
            Tt::Tok(t) => match &t.tok {
                Tok::Ident(s) => out.push_str(s),
                Tok::Lifetime(s) => {
                    out.push('\'');
                    out.push_str(s);
                }
                Tok::Literal(_) => out.push_str("\"…\""),
                Tok::Num(s) => out.push_str(s),
                Tok::Punct(c) => out.push(*c),
                // Leaves never carry delimiters (build() consumes
                // them into groups), but tolerate malformed input.
                Tok::Open(_) | Tok::Close(_) => {}
            },
            Tt::Group(g) => {
                let (open, close) = match g.delim {
                    Delim::Paren => ('(', ')'),
                    Delim::Bracket => ('[', ']'),
                    Delim::Brace => ('{', '}'),
                };
                out.push(open);
                out.push_str(&render(&g.items));
                out.push(close);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lex::lex;

    fn trees(src: &str) -> Vec<Tt> {
        build(lex(src).tokens)
    }

    #[test]
    fn groups_nest_and_record_lines() {
        let tts = trees("fn f() {\n  g(1, [2]);\n}\n");
        // fn, f, (), {}
        assert_eq!(tts.len(), 4);
        let body = tts[3].group(Delim::Brace).expect("body group");
        assert_eq!(body.open_line, 1);
        assert_eq!(body.close_line, 3);
        let call_args = body.items[1].group(Delim::Paren).expect("call args");
        assert_eq!(call_args.open_line, 2);
    }

    #[test]
    fn unbalanced_input_keeps_all_tokens() {
        let tts = trees("fn f( {");
        // Unclosed groups flatten; nothing is dropped or looped.
        assert!(!tts.is_empty());
        let tts = trees(") fn }");
        assert!(tts.iter().any(|t| t.is_ident("fn")));
    }

    #[test]
    fn render_reconstructs_receiver_chains() {
        let tts = trees("self.buckets[bucket].fetch_add(1, Ordering::Relaxed)");
        assert_eq!(
            render(&tts),
            "self.buckets[bucket].fetch_add(1,Ordering::Relaxed)"
        );
    }
}
