//! The Rust lexer underlying every analyzer pass.
//!
//! Produces a flat token stream with 1-based line numbers plus a
//! per-line comment map. This subsumes the per-line code/comment
//! split of `xtask::scan` (whose behavior is pinned by parity tests)
//! with real tokens: identifiers and keywords, lifetimes, string and
//! char literals in every flavor (`"…"`, `r#"…"#`, `b"…"`, `br#"…"#`,
//! `'c'`, `b'c'`), numeric literals with their text (so rules can
//! recognize float literals), and single-character punctuation.
//!
//! The lexer never fails: unexpected bytes become punctuation tokens
//! and an unterminated literal simply runs to end of file. Rules must
//! degrade to *noisy*, never to *silent*, on malformed input.

/// A delimiter kind for grouped tokens.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Delim {
    /// `( … )`
    Paren,
    /// `[ … ]`
    Bracket,
    /// `{ … }`
    Brace,
}

/// One lexed token.
#[derive(Clone, Debug, PartialEq)]
pub enum Tok {
    /// Identifier or keyword (`fn`, `unsafe`, `newview_ii`, …).
    Ident(String),
    /// Lifetime (`'a`), without the quote.
    Lifetime(String),
    /// String/char/byte literal of any flavor, carrying the raw
    /// contents (without quotes/prefix; escapes unprocessed). Rules
    /// must never pattern-match inside literal text — the contents
    /// exist only so attribute arguments (`cfg(feature = "x")`,
    /// `target_feature(enable = "fma")`) can be read.
    Literal(String),
    /// Numeric literal, original text kept (float detection).
    Num(String),
    /// A single punctuation character (`.`, `:`, `=`, `!`, …).
    Punct(char),
    /// Opening delimiter.
    Open(Delim),
    /// Closing delimiter.
    Close(Delim),
}

/// A token with its 1-based source line.
#[derive(Clone, Debug, PartialEq)]
pub struct Token {
    pub tok: Tok,
    pub line: u32,
}

/// The lexed form of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    /// All tokens in source order.
    pub tokens: Vec<Token>,
    /// Comment text per 1-based line (line comments and the portion
    /// of any block comment crossing that line). Lines without
    /// comments are absent.
    pub comments: std::collections::BTreeMap<u32, String>,
}

impl Lexed {
    /// Whether `line` (or any of the `window` lines above it) carries
    /// a comment containing `needle`.
    pub fn comment_near(&self, line: u32, window: u32, needle: &str) -> bool {
        let lo = line.saturating_sub(window);
        self.comments
            .range(lo..=line)
            .any(|(_, text)| text.contains(needle))
    }
}

struct Lexer<'a> {
    src: &'a [u8],
    i: usize,
    line: u32,
    out: Lexed,
}

/// Lexes one Rust source file.
pub fn lex(src: &str) -> Lexed {
    let mut lx = Lexer {
        src: src.as_bytes(),
        i: 0,
        line: 1,
        out: Lexed::default(),
    };
    lx.run();
    lx.out
}

fn is_ident_start(b: u8) -> bool {
    b.is_ascii_alphabetic() || b == b'_'
}

fn is_ident_cont(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> u8 {
        *self.src.get(self.i + ahead).unwrap_or(&0)
    }

    fn push(&mut self, tok: Tok) {
        self.out.tokens.push(Token {
            tok,
            line: self.line,
        });
    }

    fn comment_push(&mut self, c: char) {
        self.out.comments.entry(self.line).or_default().push(c);
    }

    fn bump_line(&mut self) {
        self.line += 1;
    }

    fn run(&mut self) {
        while self.i < self.src.len() {
            let b = self.src[self.i];
            match b {
                b'\n' => {
                    self.bump_line();
                    self.i += 1;
                }
                _ if b.is_ascii_whitespace() => self.i += 1,
                b'/' if self.peek(1) == b'/' => self.line_comment(),
                b'/' if self.peek(1) == b'*' => self.block_comment(),
                b'"' => self.string(),
                b'b' if self.peek(1) == b'"' => {
                    self.i += 1;
                    self.string();
                }
                b'r' | b'b' if self.raw_string_hashes().is_some() => {
                    // `r"`, `r#"`, `br#"` … — but NOT `r#ident` (a raw
                    // identifier), which raw_string_hashes rejects.
                    let hashes = self.raw_string_hashes().unwrap_or(0);
                    self.raw_string(hashes);
                }
                b'\'' => self.char_or_lifetime(),
                b'b' if self.peek(1) == b'\'' => {
                    self.i += 1;
                    self.char_or_lifetime();
                }
                _ if b.is_ascii_digit() => self.number(),
                _ if is_ident_start(b) => self.ident(),
                b'(' => self.delim(Tok::Open(Delim::Paren)),
                b')' => self.delim(Tok::Close(Delim::Paren)),
                b'[' => self.delim(Tok::Open(Delim::Bracket)),
                b']' => self.delim(Tok::Close(Delim::Bracket)),
                b'{' => self.delim(Tok::Open(Delim::Brace)),
                b'}' => self.delim(Tok::Close(Delim::Brace)),
                _ => {
                    self.push(Tok::Punct(b as char));
                    self.i += 1;
                }
            }
        }
    }

    fn delim(&mut self, tok: Tok) {
        self.push(tok);
        self.i += 1;
    }

    fn line_comment(&mut self) {
        self.i += 2;
        while self.i < self.src.len() && self.src[self.i] != b'\n' {
            self.comment_push(self.src[self.i] as char);
            self.i += 1;
        }
    }

    fn block_comment(&mut self) {
        self.i += 2;
        let mut depth = 1u32;
        while self.i < self.src.len() && depth > 0 {
            let b = self.src[self.i];
            if b == b'/' && self.peek(1) == b'*' {
                depth += 1;
                self.i += 2;
            } else if b == b'*' && self.peek(1) == b'/' {
                depth -= 1;
                self.i += 2;
            } else {
                if b == b'\n' {
                    self.bump_line();
                } else {
                    self.comment_push(b as char);
                }
                self.i += 1;
            }
        }
    }

    fn string(&mut self) {
        // self.i at the opening quote.
        let at = self.out.tokens.len();
        self.push(Tok::Literal(String::new()));
        self.i += 1;
        let start = self.i;
        while self.i < self.src.len() {
            match self.src[self.i] {
                b'\\' => self.i += 2,
                b'"' => {
                    self.set_literal_text(at, start, self.i);
                    self.i += 1;
                    return;
                }
                b'\n' => {
                    self.bump_line();
                    self.i += 1;
                }
                _ => self.i += 1,
            }
        }
        self.set_literal_text(at, start, self.src.len());
    }

    /// Back-fills a literal token's contents once its end is known.
    fn set_literal_text(&mut self, at: usize, start: usize, end: usize) {
        if let Some(Token {
            tok: Tok::Literal(text),
            ..
        }) = self.out.tokens.get_mut(at)
        {
            *text = String::from_utf8_lossy(&self.src[start..end.min(self.src.len())]).into_owned();
        }
    }

    /// `Some(hashes)` when the cursor starts a raw string literal
    /// (`r"`, `r#"`, `br#"`, …); `None` for raw identifiers and
    /// everything else.
    fn raw_string_hashes(&self) -> Option<usize> {
        let mut j = 0;
        if self.peek(j) == b'b' {
            j += 1;
        }
        if self.peek(j) != b'r' {
            return None;
        }
        j += 1;
        let mut hashes = 0;
        while self.peek(j) == b'#' {
            hashes += 1;
            j += 1;
        }
        if self.peek(j) == b'"' {
            Some(hashes)
        } else {
            None // `r#ident` raw identifier or plain ident starting r/b
        }
    }

    fn raw_string(&mut self, hashes: usize) {
        let at = self.out.tokens.len();
        self.push(Tok::Literal(String::new()));
        // Skip the prefix up to and including the opening quote.
        while self.i < self.src.len() && self.src[self.i] != b'"' {
            self.i += 1;
        }
        self.i += 1;
        let start = self.i;
        while self.i < self.src.len() {
            let b = self.src[self.i];
            if b == b'"' {
                let closing = (1..=hashes).all(|k| self.peek(k) == b'#');
                if closing {
                    self.set_literal_text(at, start, self.i);
                    self.i += 1 + hashes;
                    return;
                }
                self.i += 1;
            } else {
                if b == b'\n' {
                    self.bump_line();
                }
                self.i += 1;
            }
        }
    }

    fn char_or_lifetime(&mut self) {
        // self.i at the quote. A char literal either escapes or
        // closes two chars on; otherwise this is a lifetime.
        let escaped = self.peek(1) == b'\\';
        let closes = self.peek(2) == b'\'' && self.peek(1) != b'\'';
        if escaped {
            self.push(Tok::Literal(String::new()));
            self.i += 2; // quote + backslash
            while self.i < self.src.len() && self.src[self.i] != b'\'' {
                self.i += 1;
            }
            self.i += 1;
        } else if closes {
            self.push(Tok::Literal(String::new()));
            self.i += 3;
        } else {
            self.i += 1;
            let start = self.i;
            while self.i < self.src.len() && is_ident_cont(self.src[self.i]) {
                self.i += 1;
            }
            let name = String::from_utf8_lossy(&self.src[start..self.i]).into_owned();
            self.push(Tok::Lifetime(name));
        }
    }

    fn number(&mut self) {
        let start = self.i;
        // Integer part (covers 0x/0b/0o prefixes: hex digits and `_`
        // are in the alphanumeric class).
        while self.i < self.src.len() && (is_ident_cont(self.src[self.i])) {
            self.i += 1;
        }
        // Fraction: a `.` belongs to the number only when followed by
        // a digit (so `0..n` lexes as `0`, `.`, `.`, `n`).
        if self.peek(0) == b'.' && self.peek(1).is_ascii_digit() {
            self.i += 1;
            while self.i < self.src.len() && is_ident_cont(self.src[self.i]) {
                self.i += 1;
            }
        }
        // Exponent sign: `1.5e-3` — the `e`/`E` was consumed above;
        // pick up a sign directly after it.
        if (self.peek(0) == b'-' || self.peek(0) == b'+')
            && matches!(self.src.get(self.i - 1), Some(b'e' | b'E'))
        {
            self.i += 1;
            while self.i < self.src.len() && is_ident_cont(self.src[self.i]) {
                self.i += 1;
            }
        }
        let text = String::from_utf8_lossy(&self.src[start..self.i]).into_owned();
        self.push(Tok::Num(text));
    }

    fn ident(&mut self) {
        let start = self.i;
        while self.i < self.src.len() && is_ident_cont(self.src[self.i]) {
            self.i += 1;
        }
        let name = String::from_utf8_lossy(&self.src[start..self.i]).into_owned();
        self.push(Tok::Ident(name));
    }
}

/// Whether a numeric literal's text denotes a float (`1.0`, `1e-3`,
/// `2f64`), as opposed to an integer (`3`, `0xff`, `1_000u32`).
pub fn num_is_float(text: &str) -> bool {
    if text.starts_with("0x") || text.starts_with("0b") || text.starts_with("0o") {
        return false;
    }
    text.contains('.')
        || text.ends_with("f32")
        || text.ends_with("f64")
        || (text.contains(['e', 'E']) && !text.contains(|c: char| c.is_ascii_hexdigit() && c > 'e'))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn literals_never_leak_tokens() {
        let src = r##"let s = "unsafe { Relaxed }"; let r = r#"panic! unsafe"#; let c = 'u';"##;
        let ids = idents(src);
        assert!(!ids
            .iter()
            .any(|s| s == "unsafe" || s == "Relaxed" || s == "panic"));
        assert_eq!(ids, ["let", "s", "let", "r", "let", "c"]);
    }

    #[test]
    fn byte_raw_strings_and_byte_chars() {
        let src = r##"let a = br#"unsafe " quote"#; let b = b"x"; let c = b'\n';"##;
        let ids = idents(src);
        assert!(!ids
            .iter()
            .any(|s| s == "unsafe" || s == "quote" || s == "x" || s == "n"));
    }

    #[test]
    fn lifetimes_are_distinct_from_char_literals() {
        let lexed = lex("fn f<'a>(x: &'a str) -> char { 'x' }");
        let lifetimes = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Lifetime(_)))
            .count();
        let literals = lexed
            .tokens
            .iter()
            .filter(|t| matches!(t.tok, Tok::Literal(_)))
            .count();
        assert_eq!(lifetimes, 2);
        assert_eq!(literals, 1);
    }

    #[test]
    fn comments_attach_to_lines_and_nest() {
        let src = "a // one\n/* two /* nested */ still\nthree */ b\n";
        let lexed = lex(src);
        assert!(lexed.comments[&1].contains("one"));
        assert!(lexed.comments[&2].contains("two"));
        assert!(lexed.comments[&2].contains("still"));
        assert!(lexed.comments[&3].contains("three"));
        assert_eq!(idents(src), ["a", "b"]);
        assert_eq!(lexed.tokens[1].line, 3); // `b` sits on line 3
    }

    #[test]
    fn comment_near_window() {
        let lexed = lex("// SAFETY: fine\n\n\nunsafe {}\n");
        assert!(lexed.comment_near(4, 10, "SAFETY"));
        assert!(!lexed.comment_near(4, 1, "SAFETY"));
    }

    #[test]
    fn numbers_keep_text_and_float_detection() {
        let lexed = lex("let a = 1.5e-3; let b = 0xff; let c = 2f64; let r = 0..10;");
        let nums: Vec<_> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Num(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(nums, ["1.5e-3", "0xff", "2f64", "0", "10"]);
        assert!(num_is_float("1.5e-3"));
        assert!(num_is_float("2f64"));
        assert!(!num_is_float("0xff"));
        assert!(!num_is_float("10"));
    }

    #[test]
    fn raw_identifiers_are_idents_not_strings() {
        // `r#fn` must not be mistaken for a raw string start.
        let ids = idents("let r#fn = 1; let br = 2;");
        assert!(ids.contains(&"fn".to_string()) || ids.contains(&"r".to_string()));
        assert!(ids.contains(&"br".to_string()));
    }

    #[test]
    fn unterminated_literal_is_not_an_infinite_loop() {
        let lexed = lex("let s = \"never closed");
        assert!(lexed
            .tokens
            .iter()
            .any(|t| matches!(t.tok, Tok::Literal(_))));
    }
}
