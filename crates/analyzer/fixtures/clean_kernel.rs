//! Clean-kernel fixture: a kernel entry point written in the style
//! the purity rule demands — iterator traversal (no bounds-checked
//! indexing), no allocation, no panicking calls, FMA behind the
//! gated helper. Must produce ZERO findings under every rule family.
#![deny(unsafe_op_in_unsafe_fn)]

pub fn newview_tt(left: &[f64], right: &[f64], out: &mut [f64]) -> f64 {
    let mut acc = 0.0;
    for ((l, r), o) in left.iter().zip(right).zip(out.iter_mut()) {
        *o = fma(*l, *r, acc);
        acc = *o;
    }
    acc
}

fn fma(a: f64, b: f64, c: f64) -> f64 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, c)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        a * b + c
    }
}
