// Purity-rule fixture: analyzed under a synthetic `/src/kernels/`
// path so `newview_tt` is discovered as a kernel entry point. Seeds
// one violation per category (panic, alloc, index) in a helper two
// hops down the call chain, plus a cold fn that must NOT be flagged.

pub fn newview_tt(left: &[f64], out: &mut [f64]) -> f64 {
    accumulate(left, out)
}

fn accumulate(src: &[f64], out: &mut [f64]) -> f64 {
    let mut acc = 0.0;
    for (i, o) in out.iter_mut().enumerate() {
        *o = lookup(src, i); // seeded: lookup indexes + unwraps
        acc += *o;
    }
    acc
}

fn lookup(table: &[f64], i: usize) -> f64 {
    let scratch = vec![0.0; 4]; // seeded: alloc in hot path
    let _ = scratch;
    let v = table[i]; // seeded: bounds-checked indexing
    table.first().copied().unwrap() + v // seeded: panic on empty
}

// Not reachable from any entry point: none of its sites may be
// reported, however impure.
pub fn cold_path() -> Vec<String> {
    let mut v = Vec::new();
    v.push(format!("{}", f64::NAN));
    v
}
