// FP-determinism fixture. Seeds:
//   * a raw `f64::mul_add` outside any FMA gate — the exact shape of
//     the BENCH_5 libm-collapse regression (an earlier PR replaced
//     the gated `fma` helper with bare mul_add calls; on targets
//     without hardware FMA those lower to libm `fma()` at ~10× the
//     cost, and results diverge from the mul+add path);
//   * a float `==` against a computed value;
//   * a HashMap iteration feeding an accumulation.
// The two *gated* mul_add shapes must NOT be reported.

pub fn raw_fma_regression(a: f64, b: f64, c: f64) -> f64 {
    a.mul_add(b, c) // seeded: ungated mul_add
}

// Statement-level gate: contraction only where hardware FMA exists.
pub fn gated_by_cfg(a: f64, b: f64, c: f64) -> f64 {
    #[cfg(target_feature = "fma")]
    {
        a.mul_add(b, c)
    }
    #[cfg(not(target_feature = "fma"))]
    {
        a * b + c
    }
}

// Fn-level gate: the whole body is FMA-only by construction.
#[target_feature(enable = "fma")]
pub unsafe fn gated_by_target_feature(a: f64, b: f64, c: f64) -> f64 {
    // SAFETY: caller checked the fma target feature.
    a.mul_add(b, c)
}

pub fn float_eq_bug(x: f64) -> bool {
    x == 0.1 // seeded: 0.1 is not exactly representable
}

pub fn hash_order_bug(keys: &[String]) -> f64 {
    let mut weights: std::collections::HashMap<String, f64> =
        std::collections::HashMap::new();
    for k in keys {
        weights.insert(k.clone(), 1.0);
    }
    let mut total = 0.0;
    for (_k, w) in weights.iter() {
        total += w; // seeded: accumulation order follows hash order
    }
    total
}
