// Worker-tier purity fixture: analyzed under the synthetic path
// `crates/parallel/src/forkjoin.rs` so `worker_loop` roots the worker
// tier. The tier checks panic + alloc but NOT indexing — the `codes`
// slice access must stay unreported.

pub fn worker_loop(commands: &[u32], codes: &[u8]) {
    for &cmd in commands {
        let _ = codes[cmd as usize]; // indexing: exempt in this tier
        dispatch(cmd);
    }
}

fn dispatch(cmd: u32) {
    let name = cmd.to_string(); // seeded: alloc in worker steady state
    assert!(!name.is_empty(), "empty command name"); // seeded: panic
}
