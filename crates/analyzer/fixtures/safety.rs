// Safety-rule fixture (analyzed as a crate root, `src/lib.rs`).
// Seeds all four PR 3 rules: an unjustified unsafe block, a mutating
// Relaxed atomic op spanning multiple lines (the shape the old line
// scanner could not see), an unregistered marker impl (which also
// lacks a justification comment, so rules 1 and 3 both fire on it),
// and a crate root with no deny(unsafe_op_in_unsafe_fn) inner attr.
// One compliant site shows rule 1 accepts audited code. NOTE: the
// word the rule greps for is deliberately kept out of every comment
// in this file except the compliant one.

use std::sync::atomic::{AtomicU64, Ordering};

pub struct Racy(pub *mut u8);

unsafe impl Sync for Racy {} // seeded: not in the registry, no comment

pub fn publish(flag: &AtomicU64) {
    flag.store(
        1,
        Ordering::Relaxed, // seeded: relaxed mutation, multi-line call
    );
}

pub fn peek(p: *const u8) -> u8 {
    unsafe { *p } // seeded: no justification comment anywhere near
}

pub fn peek_audited(p: *const u8) -> u8 {
    // SAFETY: caller contract — p is valid for reads (fixture shows
    // the compliant shape; this site must not be reported).
    unsafe { *p }
}
