//! Platform specifications — the paper's Table I, verbatim.

/// Broad architecture class (selects efficiency constants in
/// [`crate::calibration`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PlatformKind {
    /// Out-of-order Xeon server CPU (AVX).
    Cpu,
    /// Xeon Phi / MIC coprocessor (in-order, 512-bit vectors).
    Mic,
    /// GPU — listed in Table I for reference only; never simulated.
    Gpu,
}

/// One row of Table I.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Platform {
    /// Display name as printed in the paper.
    pub name: &'static str,
    /// Peak double-precision GFLOPS.
    pub peak_dp_gflops: f64,
    /// Physical cores (sockets/cards combined).
    pub cores: u32,
    /// Core clock in GHz.
    pub clock_ghz: f64,
    /// Memory capacity in GB.
    pub memory_gb: f64,
    /// Peak memory bandwidth in GB/s.
    pub memory_bw_gbs: f64,
    /// Max thermal design power in W.
    pub max_tdp_w: f64,
    /// Approximate price in USD (2013).
    pub price_usd: f64,
    /// Architecture class.
    pub kind: PlatformKind,
    /// Number of discrete devices aggregated in this row (2 for the
    /// dual-socket/dual-card rows).
    pub devices: u32,
}

/// 2S Xeon E5-2630.
pub const XEON_E5_2630_2S: Platform = Platform {
    name: "2S Xeon E5-2630",
    peak_dp_gflops: 220.0,
    cores: 12,
    clock_ghz: 2.30,
    memory_gb: 32.0,
    memory_bw_gbs: 85.2,
    max_tdp_w: 190.0,
    price_usd: 1224.0,
    kind: PlatformKind::Cpu,
    devices: 2,
};

/// 2S Xeon E5-2680 — the paper's primary baseline.
pub const XEON_E5_2680_2S: Platform = Platform {
    name: "2S Xeon E5-2680",
    peak_dp_gflops: 346.0,
    cores: 16,
    clock_ghz: 2.70,
    memory_gb: 32.0,
    memory_bw_gbs: 102.4,
    max_tdp_w: 260.0,
    price_usd: 3486.0,
    kind: PlatformKind::Cpu,
    devices: 2,
};

/// One Xeon Phi 5110P card.
pub const XEON_PHI_5110P_1S: Platform = Platform {
    name: "1S Xeon Phi 5110P",
    peak_dp_gflops: 1074.0,
    cores: 60,
    clock_ghz: 1.053,
    memory_gb: 8.0,
    memory_bw_gbs: 320.0,
    max_tdp_w: 225.0,
    price_usd: 2649.0,
    kind: PlatformKind::Mic,
    devices: 1,
};

/// Two Xeon Phi 5110P cards in one host.
pub const XEON_PHI_5110P_2S: Platform = Platform {
    name: "2S Xeon Phi 5110P",
    peak_dp_gflops: 2148.0,
    cores: 120,
    clock_ghz: 1.053,
    memory_gb: 16.0,
    memory_bw_gbs: 640.0,
    max_tdp_w: 450.0,
    price_usd: 5298.0,
    kind: PlatformKind::Mic,
    devices: 2,
};

/// NVIDIA K20, for reference only (never simulated).
pub const NVIDIA_K20: Platform = Platform {
    name: "NVIDIA K20 (ref.)",
    peak_dp_gflops: 1170.0,
    cores: 2496,
    clock_ghz: 0.706,
    memory_gb: 5.0,
    memory_bw_gbs: 208.0,
    max_tdp_w: 225.0,
    price_usd: 2800.0,
    kind: PlatformKind::Gpu,
    devices: 1,
};

/// All Table I rows, in paper order.
pub const TABLE1: [Platform; 5] = [
    XEON_E5_2630_2S,
    XEON_E5_2680_2S,
    XEON_PHI_5110P_1S,
    XEON_PHI_5110P_2S,
    NVIDIA_K20,
];

impl Platform {
    /// Bandwidth and compute of a single device of this row (per-card
    /// values for the dual-card row; dual-socket CPUs share one
    /// coherent memory system and are treated as one device group).
    pub fn per_device_bw(&self) -> f64 {
        match self.kind {
            PlatformKind::Mic => self.memory_bw_gbs / self.devices as f64,
            _ => self.memory_bw_gbs,
        }
    }

    /// Peak GFLOPS of a single device (see [`Platform::per_device_bw`]).
    pub fn per_device_gflops(&self) -> f64 {
        match self.kind {
            PlatformKind::Mic => self.peak_dp_gflops / self.devices as f64,
            _ => self.peak_dp_gflops,
        }
    }

    /// Number of independent devices for data decomposition (MIC cards;
    /// 1 for coherent CPU boxes).
    pub fn num_devices(&self) -> u32 {
        match self.kind {
            PlatformKind::Mic => self.devices,
            _ => 1,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_rows() {
        assert_eq!(TABLE1.len(), 5);
        assert_eq!(XEON_E5_2680_2S.peak_dp_gflops, 346.0);
        assert_eq!(XEON_PHI_5110P_1S.memory_bw_gbs, 320.0);
        assert_eq!(XEON_PHI_5110P_2S.price_usd, 5298.0);
        assert_eq!(XEON_E5_2630_2S.max_tdp_w, 190.0);
    }

    #[test]
    fn dual_card_is_twice_single() {
        assert_eq!(
            XEON_PHI_5110P_2S.peak_dp_gflops,
            2.0 * XEON_PHI_5110P_1S.peak_dp_gflops
        );
        assert_eq!(XEON_PHI_5110P_2S.num_devices(), 2);
        assert_eq!(
            XEON_PHI_5110P_2S.per_device_bw(),
            XEON_PHI_5110P_1S.memory_bw_gbs
        );
    }

    #[test]
    fn cpu_counts_as_one_device_group() {
        assert_eq!(XEON_E5_2680_2S.num_devices(), 1);
        assert_eq!(XEON_E5_2680_2S.per_device_bw(), 102.4);
    }

    #[test]
    fn phi_theoretical_advantage_is_about_3x() {
        // §VI-B2: "~3x in both peak GFLOPS and memory bandwidth".
        let gf = XEON_PHI_5110P_1S.peak_dp_gflops / XEON_E5_2680_2S.peak_dp_gflops;
        let bw = XEON_PHI_5110P_1S.memory_bw_gbs / XEON_E5_2680_2S.memory_bw_gbs;
        assert!((2.9..3.3).contains(&gf), "gflops ratio {gf}");
        assert!((2.9..3.3).contains(&bw), "bw ratio {bw}");
    }
}
