//! Workload traces: what a real search run did, scaled across sizes.

use plf_core::trace::TraceEvent;
use plf_core::{KernelId, KernelStats};

/// The workload description consumed by the performance model:
/// per-kernel invocation/site counts plus the AllReduce count, for one
/// complete ML tree search over `patterns` alignment patterns.
#[derive(Clone, Debug)]
pub struct WorkloadTrace {
    /// Per-kernel work counters (whole run, all ranks merged).
    pub stats: KernelStats,
    /// Number of AllReduce operations the run performed.
    pub allreduces: u64,
    /// Alignment patterns the run covered.
    pub patterns: u64,
}

impl WorkloadTrace {
    /// Wraps counters measured from an instrumented run.
    pub fn from_run(stats: KernelStats, allreduces: u64, patterns: u64) -> Self {
        assert!(patterns > 0);
        WorkloadTrace {
            stats,
            allreduces,
            patterns,
        }
    }

    /// Reconstructs a workload from JSONL trace events (as written by
    /// `phylomic --trace-out`): kernel events from every source are
    /// merged; each event's sites are distributed evenly over its
    /// calls so the per-kernel totals match the recorded run exactly.
    pub fn from_trace_events(events: &[TraceEvent], allreduces: u64, patterns: u64) -> Self {
        let mut stats = KernelStats::new();
        for e in events {
            if let TraceEvent::Kernel {
                kernel,
                calls,
                sites,
                ..
            } = e
            {
                if *calls == 0 {
                    continue;
                }
                let base = sites / calls;
                let rem = sites % calls;
                for i in 0..*calls {
                    let extra = u64::from(i < rem);
                    stats.record(*kernel, (base + extra) as usize);
                }
            }
        }
        Self::from_run(stats, allreduces, patterns)
    }

    /// Extrapolates the trace to a different alignment size: invocation
    /// and AllReduce counts stay fixed (the search does the same moves;
    /// taxon count is fixed at 15 in the paper), per-invocation sites
    /// scale linearly.
    pub fn scaled_to(&self, patterns: u64) -> WorkloadTrace {
        assert!(patterns > 0);
        let factor = patterns as f64 / self.patterns as f64;
        WorkloadTrace {
            stats: self.stats.scale_sites(factor),
            allreduces: self.allreduces,
            patterns,
        }
    }

    /// Average pattern-sites per invocation of `kernel`.
    pub fn sites_per_call(&self, kernel: KernelId) -> f64 {
        let c = self.stats.get(kernel);
        if c.calls == 0 {
            0.0
        } else {
            c.sites as f64 / c.calls as f64
        }
    }

    /// A synthetic trace with the call mix of a full 15-taxon ML search
    /// (used by tests; the benchmark harness records real traces).
    /// Counts follow the structure of our search: every SPR candidate
    /// costs a handful of `newview`s plus one `evaluate`; every branch
    /// optimization costs one `derivativeSum` and a few
    /// `derivativeCore` Newton steps; every `evaluate` and
    /// `derivativeCore` ends in an AllReduce.
    pub fn synthetic_search(patterns: u64) -> WorkloadTrace {
        let mut stats = KernelStats::new();
        let mix: [(KernelId, u64); 4] = [
            (KernelId::Newview, 2600),
            (KernelId::Evaluate, 1400),
            (KernelId::DerivativeSum, 700),
            (KernelId::DerivativeCore, 2900),
        ];
        for (k, calls) in mix {
            for _ in 0..calls {
                stats.record(k, patterns as usize);
            }
        }
        let allreduces = 1400 + 2900;
        WorkloadTrace {
            stats,
            allreduces,
            patterns,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaling_preserves_calls_and_scales_sites() {
        let t = WorkloadTrace::synthetic_search(10_000);
        let s = t.scaled_to(40_000);
        assert_eq!(
            s.stats.get(KernelId::Newview).calls,
            t.stats.get(KernelId::Newview).calls
        );
        assert_eq!(
            s.stats.get(KernelId::Newview).sites,
            4 * t.stats.get(KernelId::Newview).sites
        );
        assert_eq!(s.allreduces, t.allreduces);
        assert_eq!(s.patterns, 40_000);
    }

    #[test]
    fn sites_per_call_matches_patterns() {
        let t = WorkloadTrace::synthetic_search(5_000);
        assert_eq!(t.sites_per_call(KernelId::Evaluate), 5_000.0);
        let s = t.scaled_to(50_000);
        assert_eq!(s.sites_per_call(KernelId::Evaluate), 50_000.0);
    }

    #[test]
    fn trace_events_reconstruct_exact_totals() {
        let events = vec![
            TraceEvent::Kernel {
                source: "worker0".into(),
                kernel: KernelId::Newview,
                calls: 3,
                sites: 10, // 4 + 3 + 3 after distribution
                total_ns: 100,
                min_ns: 10,
                max_ns: 50,
                p50_ns: 0,
                p95_ns: 0,
                p99_ns: 0,
            },
            TraceEvent::Kernel {
                source: "worker1".into(),
                kernel: KernelId::Newview,
                calls: 3,
                sites: 8,
                total_ns: 90,
                min_ns: 10,
                max_ns: 50,
                p50_ns: 0,
                p95_ns: 0,
                p99_ns: 0,
            },
            TraceEvent::Region {
                source: "master".into(),
                count: 3,
                fork_total_ns: 1,
                fork_max_ns: 1,
                join_total_ns: 2,
                join_max_ns: 1,
            },
        ];
        let t = WorkloadTrace::from_trace_events(&events, 5, 18);
        assert_eq!(t.stats.get(KernelId::Newview).calls, 6);
        assert_eq!(t.stats.get(KernelId::Newview).sites, 18);
        assert_eq!(t.allreduces, 5);
        assert_eq!(t.patterns, 18);
    }

    #[test]
    fn synthetic_mix_has_derivative_core_dominant_in_calls() {
        // Newton iterations outnumber branch preparations.
        let t = WorkloadTrace::synthetic_search(1_000);
        assert!(
            t.stats.get(KernelId::DerivativeCore).calls
                > t.stats.get(KernelId::DerivativeSum).calls
        );
    }
}
