//! Calibrated model constants, each pinned to a paper observation.
//!
//! Everything Table I does not provide lives here. Constants were
//! chosen once so the model reproduces the paper's reported *shapes*
//! (Figure 3 kernel speedups, Table III crossover and plateaus,
//! Figure 4 scaling, §V-C offload slowdown) and are validated by the
//! shape tests in [`crate::systems`] — they are not refit per run.

use crate::platform::PlatformKind;

/// Fraction of peak DP flops the PLF's mixed mat-vec code attains.
///
/// CPU (AVX, out-of-order): ~35 % of peak is typical for well-blocked
/// small-matrix code. MIC (in-order, 512-bit): ~11 % — the paper's
/// §VI-B2 notes real applications attain far below the theoretical 3×
/// advantage, with typical whole-app speedups of 1.7–2.8×.
pub fn flop_efficiency(kind: PlatformKind) -> f64 {
    match kind {
        PlatformKind::Cpu => 0.35,
        PlatformKind::Mic => 0.109,
        PlatformKind::Gpu => 0.20,
    }
}

/// Fraction of peak memory bandwidth attained by streaming kernels.
///
/// CPU: ~78 % (STREAM-like). MIC: ~70 % of the 320 GB/s GDDR5 peak —
/// together these put the memory-bound `derivativeSum` speedup at
/// (320·0.70)/(102.4·0.78) ≈ 2.8×, the value Figure 3 reports.
pub fn bandwidth_efficiency(kind: PlatformKind) -> f64 {
    match kind {
        PlatformKind::Cpu => 0.78,
        PlatformKind::Mic => 0.70,
        PlatformKind::Gpu => 0.65,
    }
}

/// OpenMP parallel-region overhead per thread, seconds (barrier +
/// fork/join bookkeeping scales ~linearly in threads on the MIC's
/// in-order cores over the ring interconnect). 118 threads ≈ 20 µs per
/// region; together with [`GRANULARITY_SITES`] this is what buries the
/// MIC on small alignments (Table III, 10K row: 12.9 s vs 4.1 s).
pub const OMP_REGION_OVERHEAD_PER_THREAD_S: f64 = 170e-9;

/// Per-kernel-call fixed overhead on a CPU MPI rank (ExaML's scheme
/// has no cross-rank barrier per kernel; this charges loop setup and
/// cache warm-up only).
pub const CPU_CALL_OVERHEAD_S: f64 = 1.0e-6;

/// Per-thread fixed work per kernel invocation, expressed in
/// site-equivalents: with S sites per thread the effective compute
/// time is inflated by (1 + GRANULARITY_SITES / S). 300
/// site-equivalents ≈ 0.7 µs per thread per region — a handful of
/// uncovered GDDR5 misses, the "memory access latencies" §VI-B2 blames
/// for small-alignment losses when each of the 236 threads gets only a
/// few dozen sites.
pub const GRANULARITY_SITES: f64 = 300.0;

/// AllReduce latencies by interconnect, seconds (§VI-B3, measured by
/// the authors): 20 µs between two MIC cards over PCIe with Intel MPI
/// 4.1.2, ~35 µs with the older 4.0.3 release, <5 µs between cluster
/// nodes over QLogic InfiniBand; shared-memory CPU AllReduce ≈ 1.5 µs.
pub fn allreduce_latency_s(ic: crate::model::Interconnect) -> f64 {
    use crate::model::Interconnect::*;
    match ic {
        SharedMemory => 1.5e-6,
        PciePeerToPeer => 20e-6,
        PcieOldMpi => 35e-6,
        InfiniBand => 5e-6,
    }
}

/// Offload-mode invocation latency, seconds: the full per-invocation
/// round trip of the offload runtime — runtime call, PCIe doorbell,
/// argument/result marshalling for P-matrices and reduced values, and
/// host-side completion wait. §V-C observes this overhead "is
/// comparable to and partially exceeds the time required for the
/// actual computation"; 300 µs reproduces the ≥2× whole-program
/// slowdown the paper measured for the offload prototype.
pub const OFFLOAD_INVOCATION_LATENCY_S: f64 = 300e-6;

/// Pure-MPI-on-MIC penalty: an AllReduce across R ranks *on one card*
/// traverses the software loopback stack rank-by-rank, costing
/// `INTRA_MIC_MPI_BASE_S · R` per operation (~2.4 ms at 120 ranks —
/// the MIC's MPI stack predates shared-memory collectives, cf. the
/// MVAPICH2 intra-MIC work the paper cites as reference 36). With 120 ExaML ranks
/// this is what made the rank-per-core configuration "substantially"
/// slower (§V-D).
pub const INTRA_MIC_MPI_BASE_S: f64 = 20e-6;

/// Fixed per-run startup/serial time, seconds (I/O, tree setup).
pub const SERIAL_OVERHEAD_S: f64 = 0.05;

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::PlatformKind::*;

    #[test]
    fn efficiencies_are_fractions() {
        for k in [Cpu, Mic, Gpu] {
            assert!((0.0..=1.0).contains(&flop_efficiency(k)));
            assert!((0.0..=1.0).contains(&bandwidth_efficiency(k)));
        }
    }

    #[test]
    fn mic_attains_lower_flop_fraction_than_cpu() {
        assert!(flop_efficiency(Mic) < flop_efficiency(Cpu));
    }

    #[test]
    fn latency_ordering_matches_section_6b3() {
        use crate::model::Interconnect::*;
        assert!(allreduce_latency_s(SharedMemory) < allreduce_latency_s(InfiniBand));
        assert!(allreduce_latency_s(InfiniBand) < allreduce_latency_s(PciePeerToPeer));
        assert!(allreduce_latency_s(PciePeerToPeer) < allreduce_latency_s(PcieOldMpi));
        assert_eq!(allreduce_latency_s(PciePeerToPeer), 20e-6);
        assert_eq!(allreduce_latency_s(PcieOldMpi), 35e-6);
    }

    #[test]
    fn derivative_sum_speedup_lands_at_2_8() {
        // The constant choice documented above, verified numerically.
        let mic = 320.0 * bandwidth_efficiency(Mic);
        let cpu = 102.4 * bandwidth_efficiency(Cpu);
        let ratio = mic / cpu;
        assert!((2.7..2.9).contains(&ratio), "ratio {ratio}");
    }
}
