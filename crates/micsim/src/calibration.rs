//! Calibrated model constants, each pinned to a paper observation.
//!
//! Everything Table I does not provide lives here. Constants were
//! chosen once so the model reproduces the paper's reported *shapes*
//! (Figure 3 kernel speedups, Table III crossover and plateaus,
//! Figure 4 scaling, §V-C offload slowdown) and are validated by the
//! shape tests in [`crate::systems`] — they are not refit per run.

use crate::platform::PlatformKind;

/// Fraction of peak DP flops the PLF's mixed mat-vec code attains.
///
/// CPU (AVX, out-of-order): ~35 % of peak is typical for well-blocked
/// small-matrix code. MIC (in-order, 512-bit): ~11 % — the paper's
/// §VI-B2 notes real applications attain far below the theoretical 3×
/// advantage, with typical whole-app speedups of 1.7–2.8×.
pub fn flop_efficiency(kind: PlatformKind) -> f64 {
    match kind {
        PlatformKind::Cpu => 0.35,
        PlatformKind::Mic => 0.109,
        PlatformKind::Gpu => 0.20,
    }
}

/// Fraction of peak memory bandwidth attained by streaming kernels.
///
/// CPU: ~78 % (STREAM-like). MIC: ~70 % of the 320 GB/s GDDR5 peak —
/// together these put the memory-bound `derivativeSum` speedup at
/// (320·0.70)/(102.4·0.78) ≈ 2.8×, the value Figure 3 reports.
pub fn bandwidth_efficiency(kind: PlatformKind) -> f64 {
    match kind {
        PlatformKind::Cpu => 0.78,
        PlatformKind::Mic => 0.70,
        PlatformKind::Gpu => 0.65,
    }
}

/// OpenMP parallel-region overhead per thread, seconds (barrier +
/// fork/join bookkeeping scales ~linearly in threads on the MIC's
/// in-order cores over the ring interconnect). 118 threads ≈ 20 µs per
/// region; together with [`GRANULARITY_SITES`] this is what buries the
/// MIC on small alignments (Table III, 10K row: 12.9 s vs 4.1 s).
pub const OMP_REGION_OVERHEAD_PER_THREAD_S: f64 = 170e-9;

/// Per-kernel-call fixed overhead on a CPU MPI rank (ExaML's scheme
/// has no cross-rank barrier per kernel; this charges loop setup and
/// cache warm-up only).
pub const CPU_CALL_OVERHEAD_S: f64 = 1.0e-6;

/// Per-thread fixed work per kernel invocation, expressed in
/// site-equivalents: with S sites per thread the effective compute
/// time is inflated by (1 + GRANULARITY_SITES / S). 300
/// site-equivalents ≈ 0.7 µs per thread per region — a handful of
/// uncovered GDDR5 misses, the "memory access latencies" §VI-B2 blames
/// for small-alignment losses when each of the 236 threads gets only a
/// few dozen sites.
pub const GRANULARITY_SITES: f64 = 300.0;

/// AllReduce latencies by interconnect, seconds (§VI-B3, measured by
/// the authors): 20 µs between two MIC cards over PCIe with Intel MPI
/// 4.1.2, ~35 µs with the older 4.0.3 release, <5 µs between cluster
/// nodes over QLogic InfiniBand; shared-memory CPU AllReduce ≈ 1.5 µs.
pub fn allreduce_latency_s(ic: crate::model::Interconnect) -> f64 {
    use crate::model::Interconnect::*;
    match ic {
        SharedMemory => 1.5e-6,
        PciePeerToPeer => 20e-6,
        PcieOldMpi => 35e-6,
        InfiniBand => 5e-6,
    }
}

/// Mean *measured* collective latency from a v6 trace meta's wire
/// fields, seconds — the empirical counterpart the modeled
/// [`allreduce_latency_s`] is validated against (`trace-report` prints
/// both side by side). `None` when the run recorded no collectives.
pub fn measured_allreduce_latency_s(wire_ops: u64, wire_ns: u64) -> Option<f64> {
    (wire_ops > 0).then(|| wire_ns as f64 / wire_ops as f64 / 1e9)
}

/// Offload-mode invocation latency, seconds: the full per-invocation
/// round trip of the offload runtime — runtime call, PCIe doorbell,
/// argument/result marshalling for P-matrices and reduced values, and
/// host-side completion wait. §V-C observes this overhead "is
/// comparable to and partially exceeds the time required for the
/// actual computation"; 300 µs reproduces the ≥2× whole-program
/// slowdown the paper measured for the offload prototype.
pub const OFFLOAD_INVOCATION_LATENCY_S: f64 = 300e-6;

/// Pure-MPI-on-MIC penalty: an AllReduce across R ranks *on one card*
/// traverses the software loopback stack rank-by-rank, costing
/// `INTRA_MIC_MPI_BASE_S · R` per operation (~2.4 ms at 120 ranks —
/// the MIC's MPI stack predates shared-memory collectives, cf. the
/// MVAPICH2 intra-MIC work the paper cites as reference 36). With 120 ExaML ranks
/// this is what made the rank-per-core configuration "substantially"
/// slower (§V-D).
pub const INTRA_MIC_MPI_BASE_S: f64 = 20e-6;

/// Fixed per-run startup/serial time, seconds (I/O, tree setup).
pub const SERIAL_OVERHEAD_S: f64 = 0.05;

// ---------------------------------------------------------------------
// Measured-timing calibration.
//
// The constants above are derived from hardware datasheets and the
// paper's reported numbers. Since the kernel-timing trace work, the
// model can also be anchored to *measured* host timings: `phylomic
// --trace-out run.jsonl` dumps per-source kernel aggregates, and
// [`MeasuredHostCosts`] fits each kernel's linear cost model
// `total_ns ≈ per_call_ns · calls + per_site_ns · sites` from those
// events by least squares. The per-site slope replaces the roofline
// `site_time` for the host platform, and the per-call intercept plus
// region fork/join latencies calibrate the synchronization constants.
// ---------------------------------------------------------------------

use plf_core::trace::{parse_jsonl, TraceEvent};
use plf_core::KernelId;

/// The linear cost model of one kernel, fit from measured timings.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct KernelCostFit {
    /// Fixed cost per invocation, nanoseconds (loop setup, cache
    /// warm-up, dispatch).
    pub per_call_ns: f64,
    /// Marginal cost per pattern-site, nanoseconds.
    pub per_site_ns: f64,
    /// Number of trace samples the fit saw.
    pub samples: usize,
}

impl KernelCostFit {
    /// Predicted total time of `calls` invocations over `sites`
    /// pattern-sites, nanoseconds.
    pub fn predict_ns(&self, calls: u64, sites: u64) -> f64 {
        self.per_call_ns * calls as f64 + self.per_site_ns * sites as f64
    }
}

/// Host kernel costs fit from a measured JSONL trace.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct MeasuredHostCosts {
    fits: [KernelCostFit; 4],
    /// Mean fork-barrier latency per parallel region, nanoseconds.
    pub region_fork_ns: f64,
    /// Mean join-barrier latency per parallel region, nanoseconds.
    pub region_join_ns: f64,
}

/// A trace unusable for calibration.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CalibrationError(pub String);

impl std::fmt::Display for CalibrationError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "calibration error: {}", self.0)
    }
}

impl std::error::Error for CalibrationError {}

impl MeasuredHostCosts {
    /// Fits per-kernel costs from trace events. Each `kernel` event is
    /// one sample `(calls, sites, total_ns)`; sources with different
    /// slice widths (fork-join workers) give the fit the spread in
    /// sites-per-call it needs to separate the per-call intercept from
    /// the per-site slope. Requires at least one kernel sample with
    /// nonzero calls.
    pub fn from_events(events: &[TraceEvent]) -> Result<MeasuredHostCosts, CalibrationError> {
        let mut samples: [Vec<(f64, f64, f64)>; 4] = Default::default();
        let mut region_count = 0u64;
        let mut fork_total = 0u64;
        let mut join_total = 0u64;
        for e in events {
            match e {
                TraceEvent::Kernel {
                    kernel,
                    calls,
                    sites,
                    total_ns,
                    ..
                } if *calls > 0 => {
                    samples[kernel_index(*kernel)].push((
                        *calls as f64,
                        *sites as f64,
                        *total_ns as f64,
                    ));
                }
                TraceEvent::Region {
                    count,
                    fork_total_ns,
                    join_total_ns,
                    ..
                } => {
                    region_count += count;
                    fork_total += fork_total_ns;
                    join_total += join_total_ns;
                }
                _ => {}
            }
        }
        if samples.iter().all(|s| s.is_empty()) {
            return Err(CalibrationError(
                "trace contains no kernel samples".to_string(),
            ));
        }
        let mut fits = [KernelCostFit::default(); 4];
        for (i, s) in samples.iter().enumerate() {
            fits[i] = fit_linear(s);
        }
        let (region_fork_ns, region_join_ns) = if region_count > 0 {
            (
                fork_total as f64 / region_count as f64,
                join_total as f64 / region_count as f64,
            )
        } else {
            (0.0, 0.0)
        };
        Ok(MeasuredHostCosts {
            fits,
            region_fork_ns,
            region_join_ns,
        })
    }

    /// Parses a JSONL trace document and fits it.
    pub fn from_jsonl(text: &str) -> Result<MeasuredHostCosts, CalibrationError> {
        let events = parse_jsonl(text).map_err(|e| CalibrationError(e.to_string()))?;
        MeasuredHostCosts::from_events(&events)
    }

    /// The fit for one kernel (zeroed when the trace had no samples
    /// for it — check [`KernelCostFit::samples`]).
    pub fn fit(&self, kernel: KernelId) -> &KernelCostFit {
        &self.fits[kernel_index(kernel)]
    }

    /// Measured marginal cost per pattern-site of `kernel`, seconds —
    /// the measured counterpart of [`crate::model::site_time`] for the
    /// host the trace was recorded on.
    pub fn site_time_s(&self, kernel: KernelId) -> f64 {
        self.fit(kernel).per_site_ns * 1e-9
    }

    /// Mean fork+join synchronization cost per parallel region,
    /// seconds — the measured counterpart of the
    /// [`OMP_REGION_OVERHEAD_PER_THREAD_S`]-based charge.
    pub fn region_overhead_s(&self) -> f64 {
        (self.region_fork_ns + self.region_join_ns) * 1e-9
    }

    /// Predicted host wall time of replaying `trace`'s kernel mix,
    /// seconds: measured kernel costs plus the measured per-region
    /// synchronization (one region per kernel invocation, as in the
    /// fork-join scheme).
    pub fn predict_run_s(&self, trace: &crate::workload::WorkloadTrace) -> f64 {
        let mut ns = 0.0;
        for k in KernelId::ALL {
            let c = trace.stats.get(k);
            ns += self.fit(k).predict_ns(c.calls, c.sites);
        }
        ns * 1e-9 + trace.stats.total_calls() as f64 * self.region_overhead_s()
    }
}

fn kernel_index(k: KernelId) -> usize {
    KernelId::ALL.iter().position(|x| *x == k).unwrap()
}

/// Least-squares fit of `t ≈ a·calls + b·sites` over samples
/// `(calls, sites, t)`, solving the 2×2 normal equations. Falls back
/// to a pure per-site (or per-call) rate when the system is singular —
/// e.g. a single sample, or all samples sharing one sites/calls ratio
/// — and clamps both coefficients to be non-negative (re-fitting the
/// other coordinate when one clamps).
fn fit_linear(samples: &[(f64, f64, f64)]) -> KernelCostFit {
    if samples.is_empty() {
        return KernelCostFit::default();
    }
    let (mut scc, mut scs, mut sss, mut sct, mut sst) = (0.0, 0.0, 0.0, 0.0, 0.0);
    let (mut sc, mut ss, mut st) = (0.0, 0.0, 0.0);
    for &(c, s, t) in samples {
        scc += c * c;
        scs += c * s;
        sss += s * s;
        sct += c * t;
        sst += s * t;
        sc += c;
        ss += s;
        st += t;
    }
    let det = scc * sss - scs * scs;
    let per_site_only = || KernelCostFit {
        per_call_ns: if ss <= 0.0 && sc > 0.0 { st / sc } else { 0.0 },
        per_site_ns: if ss > 0.0 { st / ss } else { 0.0 },
        samples: samples.len(),
    };
    if samples.len() < 2 || det.abs() <= 1e-9 * scc * sss {
        return per_site_only();
    }
    let mut a = (sct * sss - sst * scs) / det;
    let mut b = (scc * sst - scs * sct) / det;
    if a < 0.0 {
        // Negative intercept: the data is per-site dominated; refit
        // the slope alone.
        a = 0.0;
        b = if sss > 0.0 { sst / sss } else { 0.0 };
    } else if b < 0.0 {
        b = 0.0;
        a = if scc > 0.0 { sct / scc } else { 0.0 };
    }
    KernelCostFit {
        per_call_ns: a.max(0.0),
        per_site_ns: b.max(0.0),
        samples: samples.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::PlatformKind::*;

    #[test]
    fn efficiencies_are_fractions() {
        for k in [Cpu, Mic, Gpu] {
            assert!((0.0..=1.0).contains(&flop_efficiency(k)));
            assert!((0.0..=1.0).contains(&bandwidth_efficiency(k)));
        }
    }

    #[test]
    fn mic_attains_lower_flop_fraction_than_cpu() {
        assert!(flop_efficiency(Mic) < flop_efficiency(Cpu));
    }

    #[test]
    fn latency_ordering_matches_section_6b3() {
        use crate::model::Interconnect::*;
        assert!(allreduce_latency_s(SharedMemory) < allreduce_latency_s(InfiniBand));
        assert!(allreduce_latency_s(InfiniBand) < allreduce_latency_s(PciePeerToPeer));
        assert!(allreduce_latency_s(PciePeerToPeer) < allreduce_latency_s(PcieOldMpi));
        assert_eq!(allreduce_latency_s(PciePeerToPeer), 20e-6);
        assert_eq!(allreduce_latency_s(PcieOldMpi), 35e-6);
    }

    #[test]
    fn derivative_sum_speedup_lands_at_2_8() {
        // The constant choice documented above, verified numerically.
        let mic = 320.0 * bandwidth_efficiency(Mic);
        let cpu = 102.4 * bandwidth_efficiency(Cpu);
        let ratio = mic / cpu;
        assert!((2.7..2.9).contains(&ratio), "ratio {ratio}");
    }

    /// Synthesizes worker trace events from a known ground-truth cost
    /// model `t = a·calls + b·sites`.
    fn synth_events(a: f64, b: f64, widths: &[u64]) -> Vec<TraceEvent> {
        widths
            .iter()
            .enumerate()
            .map(|(i, &sites_per_call)| {
                let calls = 40u64;
                let sites = calls * sites_per_call;
                let total = (a * calls as f64 + b * sites as f64).round() as u64;
                TraceEvent::Kernel {
                    source: format!("worker{i}"),
                    kernel: KernelId::Newview,
                    calls,
                    sites,
                    total_ns: total,
                    min_ns: 0,
                    max_ns: total,
                    p50_ns: 0,
                    p95_ns: 0,
                    p99_ns: 0,
                }
            })
            .collect()
    }

    #[test]
    fn fit_recovers_per_call_and_per_site_costs() {
        // Workers with different slice widths — exactly what
        // fork-join `take_stats_per_worker` produces — let the fit
        // separate intercept from slope.
        let events = synth_events(2_000.0, 35.0, &[50, 120, 300, 800, 2000]);
        let costs = MeasuredHostCosts::from_events(&events).unwrap();
        let fit = costs.fit(KernelId::Newview);
        assert_eq!(fit.samples, 5);
        assert!(
            (fit.per_call_ns - 2_000.0).abs() < 1.0,
            "per_call {}",
            fit.per_call_ns
        );
        assert!(
            (fit.per_site_ns - 35.0).abs() < 0.01,
            "per_site {}",
            fit.per_site_ns
        );
        // site_time_s converts to seconds.
        assert!((costs.site_time_s(KernelId::Newview) - 35.0e-9).abs() < 1e-12);
        // Kernels absent from the trace have an empty fit.
        assert_eq!(costs.fit(KernelId::Evaluate).samples, 0);
    }

    #[test]
    fn single_sample_falls_back_to_per_site_rate() {
        let events = synth_events(0.0, 50.0, &[100]);
        let costs = MeasuredHostCosts::from_events(&events).unwrap();
        let fit = costs.fit(KernelId::Newview);
        assert_eq!(fit.per_call_ns, 0.0);
        assert!((fit.per_site_ns - 50.0).abs() < 1e-9, "{}", fit.per_site_ns);
    }

    #[test]
    fn fit_coefficients_never_negative() {
        // Adversarial noise: decreasing totals with increasing sites.
        let events = vec![
            TraceEvent::Kernel {
                source: "w0".into(),
                kernel: KernelId::Evaluate,
                calls: 10,
                sites: 100,
                total_ns: 10_000,
                min_ns: 0,
                max_ns: 0,
                p50_ns: 0,
                p95_ns: 0,
                p99_ns: 0,
            },
            TraceEvent::Kernel {
                source: "w1".into(),
                kernel: KernelId::Evaluate,
                calls: 10,
                sites: 10_000,
                total_ns: 9_000,
                min_ns: 0,
                max_ns: 0,
                p50_ns: 0,
                p95_ns: 0,
                p99_ns: 0,
            },
        ];
        let costs = MeasuredHostCosts::from_events(&events).unwrap();
        let fit = costs.fit(KernelId::Evaluate);
        assert!(fit.per_call_ns >= 0.0 && fit.per_site_ns >= 0.0);
    }

    #[test]
    fn region_events_average_into_overhead() {
        let mut events = synth_events(0.0, 10.0, &[100]);
        events.push(TraceEvent::Region {
            source: "master".into(),
            count: 10,
            fork_total_ns: 5_000,
            fork_max_ns: 900,
            join_total_ns: 45_000,
            join_max_ns: 8_000,
        });
        let costs = MeasuredHostCosts::from_events(&events).unwrap();
        assert!((costs.region_fork_ns - 500.0).abs() < 1e-9);
        assert!((costs.region_join_ns - 4_500.0).abs() < 1e-9);
        assert!((costs.region_overhead_s() - 5_000.0e-9).abs() < 1e-15);
    }

    #[test]
    fn jsonl_roundtrip_feeds_the_fit() {
        // The full loop the --trace-out flag enables: stats → JSONL →
        // parse → fit.
        let events = synth_events(1_000.0, 20.0, &[60, 200, 900]);
        let doc = plf_core::trace::write_jsonl(&events);
        let costs = MeasuredHostCosts::from_jsonl(&doc).unwrap();
        let fit = costs.fit(KernelId::Newview);
        assert!(
            (fit.per_call_ns - 1_000.0).abs() < 1.0,
            "{}",
            fit.per_call_ns
        );
        assert!((fit.per_site_ns - 20.0).abs() < 0.01, "{}", fit.per_site_ns);
    }

    #[test]
    fn empty_or_malformed_traces_are_rejected() {
        assert!(MeasuredHostCosts::from_jsonl("").is_err());
        assert!(MeasuredHostCosts::from_jsonl("garbage\n").is_err());
    }

    #[test]
    fn predicted_run_time_matches_ground_truth_model() {
        let events = synth_events(2_000.0, 35.0, &[50, 300, 2000]);
        let costs = MeasuredHostCosts::from_events(&events).unwrap();
        let trace = crate::workload::WorkloadTrace::from_trace_events(&events, 0, 1_000);
        let calls: u64 = 3 * 40;
        let sites: u64 = 40 * (50 + 300 + 2000);
        let expect_ns = 2_000.0 * calls as f64 + 35.0 * sites as f64;
        let got = costs.predict_run_s(&trace);
        assert!(
            (got - expect_ns * 1e-9).abs() / (expect_ns * 1e-9) < 1e-3,
            "got {got}, expect {}",
            expect_ns * 1e-9
        );
    }
}
