//! The four Table III system configurations and the experiment
//! helpers built on them.

use crate::model::{predict_time, ExecMode, Interconnect, MachineConfig, TimeBreakdown};
use crate::platform::{XEON_E5_2630_2S, XEON_E5_2680_2S, XEON_PHI_5110P_1S, XEON_PHI_5110P_2S};
use crate::workload::WorkloadTrace;

/// The systems of Table III, in row order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SystemId {
    /// 2S Xeon E5-2630, ExaML with one MPI rank per core.
    E5_2630,
    /// 2S Xeon E5-2680 — the baseline (speedup 1.00).
    E5_2680,
    /// One Xeon Phi 5110P, hybrid 2 ranks × 118 threads.
    Phi1,
    /// Two Xeon Phi 5110P, hybrid 2 ranks × 118 threads per card.
    Phi2,
}

impl SystemId {
    /// All Table III rows, in order.
    pub const ALL: [SystemId; 4] = [
        SystemId::E5_2630,
        SystemId::E5_2680,
        SystemId::Phi1,
        SystemId::Phi2,
    ];

    /// The row label used in the paper.
    pub fn paper_name(self) -> &'static str {
        self.config().platform.name
    }

    /// The machine configuration the paper ran on this system:
    /// CPU rows use one ExaML MPI rank per physical core; MIC rows use
    /// the hybrid 2 ranks × 118 threads per card (§VI-B2); the
    /// dual-card row communicates over PCIe (§VI-B3).
    pub fn config(self) -> MachineConfig {
        match self {
            SystemId::E5_2630 => MachineConfig {
                platform: XEON_E5_2630_2S,
                ranks_per_device: 12,
                threads_per_rank: 1,
                mode: ExecMode::Native,
                interconnect: Interconnect::SharedMemory,
            },
            SystemId::E5_2680 => MachineConfig {
                platform: XEON_E5_2680_2S,
                ranks_per_device: 16,
                threads_per_rank: 1,
                mode: ExecMode::Native,
                interconnect: Interconnect::SharedMemory,
            },
            SystemId::Phi1 => MachineConfig {
                platform: XEON_PHI_5110P_1S,
                ranks_per_device: 2,
                threads_per_rank: 118,
                mode: ExecMode::Native,
                interconnect: Interconnect::SharedMemory,
            },
            SystemId::Phi2 => MachineConfig {
                platform: XEON_PHI_5110P_2S,
                ranks_per_device: 2,
                threads_per_rank: 118,
                mode: ExecMode::Native,
                interconnect: Interconnect::PciePeerToPeer,
            },
        }
    }
}

/// The Table III system set with their configurations.
pub fn table3_systems() -> Vec<(SystemId, MachineConfig)> {
    SystemId::ALL.iter().map(|&s| (s, s.config())).collect()
}

/// The alignment sizes (in patterns) of Table III.
pub const TABLE3_SIZES: [u64; 8] = [
    10_000, 50_000, 100_000, 250_000, 500_000, 1_000_000, 2_000_000, 4_000_000,
];

/// One cell of Table III: predicted time and speedup vs the E5-2680
/// baseline.
#[derive(Clone, Copy, Debug)]
pub struct Table3Cell {
    /// Predicted execution time, seconds.
    pub time_s: f64,
    /// Speedup relative to the 2S E5-2680 at the same size.
    pub speedup: f64,
    /// Full breakdown for diagnostics.
    pub breakdown: TimeBreakdown,
}

/// Predicts the whole Table III grid from a measured base trace.
pub fn table3(trace: &WorkloadTrace) -> Vec<(u64, Vec<(SystemId, Table3Cell)>)> {
    TABLE3_SIZES
        .iter()
        .map(|&size| {
            let scaled = trace.scaled_to(size);
            let baseline = predict_time(&SystemId::E5_2680.config(), &scaled).total();
            let row = SystemId::ALL
                .iter()
                .map(|&sys| {
                    let breakdown = predict_time(&sys.config(), &scaled);
                    let time_s = breakdown.total();
                    (
                        sys,
                        Table3Cell {
                            time_s,
                            speedup: baseline / time_s,
                            breakdown,
                        },
                    )
                })
                .collect();
            (size, row)
        })
        .collect()
}

/// Figure 4 series: speedup of two MICs over one, per size.
pub fn fig4_dual_mic_scaling(trace: &WorkloadTrace) -> Vec<(u64, f64)> {
    TABLE3_SIZES
        .iter()
        .map(|&size| {
            let scaled = trace.scaled_to(size);
            let one = predict_time(&SystemId::Phi1.config(), &scaled).total();
            let two = predict_time(&SystemId::Phi2.config(), &scaled).total();
            (size, one / two)
        })
        .collect()
}

/// The alignment size at which a system first beats the baseline
/// (linear interpolation between Table III grid points).
pub fn crossover_patterns(trace: &WorkloadTrace, system: SystemId) -> Option<f64> {
    let mut prev: Option<(f64, f64)> = None;
    for &size in &TABLE3_SIZES {
        let scaled = trace.scaled_to(size);
        let base = predict_time(&SystemId::E5_2680.config(), &scaled).total();
        let sys = predict_time(&system.config(), &scaled).total();
        let ratio = base / sys;
        if ratio >= 1.0 {
            return Some(match prev {
                None => size as f64,
                Some((ps, pr)) => {
                    // Interpolate the ratio-1 crossing.
                    ps + (size as f64 - ps) * (1.0 - pr) / (ratio - pr)
                }
            });
        }
        prev = Some((size as f64, ratio));
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn trace() -> WorkloadTrace {
        WorkloadTrace::synthetic_search(10_000)
    }

    #[test]
    fn cpu_wins_small_mic_wins_large() {
        // Table III shape: at 10K the baseline is fastest of
        // CPU-vs-MIC; at 4000K both MIC rows are at least 1.9× faster.
        let grid = table3(&trace());
        let (size0, row0) = &grid[0];
        assert_eq!(*size0, 10_000);
        let cell = |row: &Vec<(SystemId, Table3Cell)>, s: SystemId| {
            row.iter().find(|(x, _)| *x == s).unwrap().1
        };
        assert!(cell(row0, SystemId::Phi1).speedup < 0.9);
        assert!(cell(row0, SystemId::Phi2).speedup < cell(row0, SystemId::Phi1).speedup * 1.2);

        let (_, row_last) = &grid[grid.len() - 1];
        let phi1 = cell(row_last, SystemId::Phi1).speedup;
        let phi2 = cell(row_last, SystemId::Phi2).speedup;
        assert!((1.8..2.2).contains(&phi1), "Phi1 plateau {phi1}");
        assert!((3.3..4.1).contains(&phi2), "Phi2 plateau {phi2}");
    }

    #[test]
    fn e5_2630_stays_slightly_below_baseline() {
        // Table III row 1: 0.72–0.84 across all sizes.
        let grid = table3(&trace());
        for (size, row) in grid {
            let s = row
                .iter()
                .find(|(x, _)| *x == SystemId::E5_2630)
                .unwrap()
                .1
                .speedup;
            assert!((0.6..1.0).contains(&s), "size {size}: speedup {s}");
        }
    }

    #[test]
    fn crossover_lands_between_50k_and_250k() {
        let x =
            crossover_patterns(&trace(), SystemId::Phi1).expect("Phi must overtake the baseline");
        assert!(
            (50_000.0..250_000.0).contains(&x),
            "crossover at {x} patterns"
        );
    }

    #[test]
    fn phi1_speedup_monotone_in_size() {
        let grid = table3(&trace());
        let mut prev = 0.0;
        for (size, row) in grid {
            let s = row
                .iter()
                .find(|(x, _)| *x == SystemId::Phi1)
                .unwrap()
                .1
                .speedup;
            assert!(s >= prev, "size {size}: {s} < {prev}");
            prev = s;
        }
    }

    #[test]
    fn fig4_scaling_grows_toward_band() {
        let series = fig4_dual_mic_scaling(&trace());
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1 - 1e-9, "not monotone: {series:?}");
        }
        let last = series.last().unwrap().1;
        assert!((1.6..2.0).contains(&last), "4000K dual-MIC ratio {last}");
        let first = series[0].1;
        assert!(first < 1.3, "10K dual-MIC ratio {first}");
    }
}
