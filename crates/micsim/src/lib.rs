#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // index loops mirror the paper's kernel notation; reference constants keep full printed precision
//! `micsim` — an analytical machine-performance model of the paper's
//! test systems.
//!
//! We have no Xeon Phi 5110P or dual-socket Xeon E5 testbed, so the
//! paper's *hardware* is the one substrate we must substitute (see
//! DESIGN.md). The substitution preserves the mechanisms that produce
//! every number in the paper's evaluation:
//!
//! 1. **Roofline kernel costs** ([`model`]): each PLF kernel is
//!    characterized by flops and bytes per pattern-site
//!    ([`kernel_model`]); a platform executes it at
//!    `max(flops/peak_eff, bytes/bw_eff)`. Memory-bound kernels
//!    (`derivativeSum`) gain the platforms' bandwidth ratio, mixed
//!    kernels (`newview`) gain less — reproducing Figure 3.
//! 2. **Synchronization costs**: every kernel invocation on the MIC is
//!    an OpenMP parallel region with a barrier across 118+ threads,
//!    and every `evaluate`/`derivativeCore` reduction is an MPI
//!    AllReduce priced by interconnect (§VI-B3's measured 20 µs
//!    PCIe / 5 µs InfiniBand / 35 µs old-MPI latencies) — reproducing
//!    Table III's small-alignment behavior and Figure 4's dual-MIC
//!    scaling.
//! 3. **Work granularity**: per-thread fixed overheads inflate
//!    effective compute time when threads get few sites (§VI-B2).
//! 4. **Offload invocation latency** ([`model::ExecMode`]): the §V-C
//!    experiment that drove the paper to native execution.
//!
//! The workload counts come from *real instrumented runs* of the Rust
//! search ([`workload::WorkloadTrace`]), scaled across alignment sizes
//! exactly as the paper scales its INDELible datasets. The calibrated
//! constants are centralized and documented in [`calibration`].
#![deny(unsafe_op_in_unsafe_fn)]

pub mod calibration;
pub mod energy;
pub mod kernel_model;
pub mod model;
pub mod platform;
pub mod report;
pub mod systems;
pub mod workload;

pub use model::{predict_time, ExecMode, Interconnect, MachineConfig, TimeBreakdown};
pub use platform::{Platform, PlatformKind};
pub use report::TraceReport;
pub use systems::{table3_systems, SystemId};
pub use workload::WorkloadTrace;
