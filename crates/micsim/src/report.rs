//! Post-mortem analysis of a JSONL trace (`phylomic trace-report`).
//!
//! Turns the flat event stream `--trace-out` produces into the
//! summaries the paper's evaluation reasons about: per-kernel time
//! shares (the Table III decomposition), fork/join synchronization
//! overhead per parallel region (§VI-B2's small-alignment effect),
//! per-worker load imbalance (the Fig. 4 efficiency ceiling), and the
//! measured per-call/per-site kernel cost table that feeds
//! [`crate::calibration::MeasuredHostCosts`].

use crate::calibration::MeasuredHostCosts;
use plf_core::trace::{parse_jsonl, TraceEvent};
use plf_core::KernelId;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One kernel's aggregate across every source in the trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KernelRow {
    /// Which kernel.
    pub kernel: KernelId,
    /// Invocations summed over sources.
    pub calls: u64,
    /// Pattern-sites summed over sources.
    pub sites: u64,
    /// Wall time summed over sources, nanoseconds.
    pub total_ns: u64,
    /// Fraction of the summed kernel time spent in this kernel.
    pub share: f64,
    /// Call-weighted mean of the sources' median latencies, ns.
    pub p50_ns: u64,
    /// Call-weighted mean of the sources' p95 latencies, ns.
    pub p95_ns: u64,
    /// Call-weighted mean of the sources' p99 latencies, ns.
    pub p99_ns: u64,
}

/// Fork/join synchronization totals and the derived overhead fraction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RegionSummary {
    /// Parallel regions executed.
    pub count: u64,
    /// Summed fork-barrier latency, ns.
    pub fork_total_ns: u64,
    /// Summed join-barrier latency, ns.
    pub join_total_ns: u64,
    /// Estimated wall time spent inside regions (the master blocks
    /// through fork and join, so this is their sum), ns.
    pub wall_ns: u64,
    /// Fraction of region wall time not covered by the busiest
    /// worker's kernel time: `(wall − max_busy) / wall`, clamped to
    /// `[0, 1]`. Pure synchronization + scheduling overhead.
    pub overhead_fraction: f64,
}

/// One worker's busy time, as seen through its kernel events.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkerRow {
    /// Source label (e.g. `"worker2"`).
    pub source: String,
    /// Summed kernel wall time, ns.
    pub busy_ns: u64,
    /// Pattern-sites processed (summed over kernels and calls).
    pub sites: u64,
}

/// Aggregate of one span name across all tracks.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRow {
    /// Span name (e.g. `"spr_round"`).
    pub name: String,
    /// Closed spans with this name.
    pub count: u64,
    /// Summed duration, ns. Nested spans of the same name both count.
    pub total_ns: u64,
}

/// Everything `trace-report` prints, in analyzable form.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceReport {
    /// Schema version from the `meta` event, if present.
    pub version: Option<u64>,
    /// Resolved kernel backend from the `meta` event (`"simd"`,
    /// `"vector"`, …); `None` for pre-v3 traces, which did not record
    /// it.
    pub backend: Option<String>,
    /// Resolved site-repeat compression mode from the `meta` event
    /// (`"on"` / `"off"`); `None` for pre-v4 traces.
    pub site_repeats: Option<String>,
    /// Per-kernel aggregates, descending by total time.
    pub kernels: Vec<KernelRow>,
    /// Summed kernel time across all sources, ns.
    pub total_kernel_ns: u64,
    /// Fork/join summary; `None` for serial traces.
    pub regions: Option<RegionSummary>,
    /// Per-worker busy time, sorted by source label; empty for serial.
    pub workers: Vec<WorkerRow>,
    /// `max(busy) / mean(busy)` over workers (1.0 = perfect balance);
    /// `None` with fewer than two workers.
    pub imbalance: Option<f64>,
    /// Span aggregates, descending by total time.
    pub spans: Vec<SpanRow>,
    /// Counter/gauge readings (`name`, `kind`, `value`), sorted.
    pub metrics: Vec<(String, String, u64)>,
    /// Measured kernel cost fits; `None` if no kernel events.
    pub costs: Option<MeasuredHostCosts>,
}

impl TraceReport {
    /// Builds a report from parsed trace events.
    pub fn from_events(events: &[TraceEvent]) -> TraceReport {
        let mut version = None;
        let mut backend = None;
        let mut site_repeats = None;
        // kernel -> (calls, sites, total, Σcalls·p50, Σcalls·p95, Σcalls·p99)
        let mut per_kernel: BTreeMap<&'static str, (KernelId, [u64; 3], [u128; 3])> =
            BTreeMap::new();
        let mut per_worker: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        let mut region_count = 0u64;
        let mut fork_total = 0u64;
        let mut join_total = 0u64;
        let mut spans: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        let mut metrics = Vec::new();

        for e in events {
            match e {
                TraceEvent::Meta {
                    version: v,
                    backend: b,
                    site_repeats: sr,
                } => {
                    version = Some(*v);
                    if !b.is_empty() {
                        backend = Some(b.clone());
                    }
                    if !sr.is_empty() {
                        site_repeats = Some(sr.clone());
                    }
                }
                TraceEvent::Kernel {
                    source,
                    kernel,
                    calls,
                    sites,
                    total_ns,
                    p50_ns,
                    p95_ns,
                    p99_ns,
                    ..
                } => {
                    let entry = per_kernel
                        .entry(kernel.paper_name())
                        .or_insert((*kernel, [0; 3], [0; 3]));
                    entry.1[0] += calls;
                    entry.1[1] += sites;
                    entry.1[2] += total_ns;
                    entry.2[0] += *calls as u128 * *p50_ns as u128;
                    entry.2[1] += *calls as u128 * *p95_ns as u128;
                    entry.2[2] += *calls as u128 * *p99_ns as u128;
                    if source.starts_with("worker") {
                        let w = per_worker.entry(source.clone()).or_insert((0, 0));
                        w.0 += total_ns;
                        w.1 += sites;
                    }
                }
                TraceEvent::Region {
                    count,
                    fork_total_ns,
                    join_total_ns,
                    ..
                } => {
                    region_count += count;
                    fork_total += fork_total_ns;
                    join_total += join_total_ns;
                }
                TraceEvent::Span { name, dur_ns, .. } => {
                    let s = spans.entry(name.clone()).or_insert((0, 0));
                    s.0 += 1;
                    s.1 += dur_ns;
                }
                TraceEvent::Metric {
                    name, kind, value, ..
                } => metrics.push((name.clone(), kind.clone(), *value)),
                TraceEvent::MetricHist {
                    name,
                    count,
                    total_ns,
                    ..
                } => metrics.push((
                    format!("{name} (hist total, n={count})"),
                    "hist".into(),
                    *total_ns,
                )),
                TraceEvent::Unknown { .. } => {}
            }
        }

        let total_kernel_ns: u64 = per_kernel.values().map(|(_, agg, _)| agg[2]).sum();
        let mut kernels: Vec<KernelRow> = per_kernel
            .into_values()
            .map(|(kernel, [calls, sites, total_ns], q)| {
                let weighted = |sum: u128| {
                    if calls == 0 {
                        0
                    } else {
                        (sum / calls as u128) as u64
                    }
                };
                KernelRow {
                    kernel,
                    calls,
                    sites,
                    total_ns,
                    share: if total_kernel_ns == 0 {
                        0.0
                    } else {
                        total_ns as f64 / total_kernel_ns as f64
                    },
                    p50_ns: weighted(q[0]),
                    p95_ns: weighted(q[1]),
                    p99_ns: weighted(q[2]),
                }
            })
            .collect();
        kernels.sort_by_key(|k| std::cmp::Reverse(k.total_ns));

        let workers: Vec<WorkerRow> = per_worker
            .into_iter()
            .map(|(source, (busy_ns, sites))| WorkerRow {
                source,
                busy_ns,
                sites,
            })
            .collect();

        let imbalance = if workers.len() >= 2 {
            let max = workers.iter().map(|w| w.busy_ns).max().unwrap_or(0) as f64;
            let mean = workers.iter().map(|w| w.busy_ns).sum::<u64>() as f64 / workers.len() as f64;
            (mean > 0.0).then(|| max / mean)
        } else {
            None
        };

        let regions = (region_count > 0).then(|| {
            let wall_ns = fork_total + join_total;
            let max_busy = workers.iter().map(|w| w.busy_ns).max().unwrap_or(0);
            RegionSummary {
                count: region_count,
                fork_total_ns: fork_total,
                join_total_ns: join_total,
                wall_ns,
                overhead_fraction: if wall_ns == 0 {
                    0.0
                } else {
                    (wall_ns.saturating_sub(max_busy)) as f64 / wall_ns as f64
                },
            }
        });

        let mut spans: Vec<SpanRow> = spans
            .into_iter()
            .map(|(name, (count, total_ns))| SpanRow {
                name,
                count,
                total_ns,
            })
            .collect();
        spans.sort_by_key(|s| std::cmp::Reverse(s.total_ns));
        metrics.sort();

        let costs = MeasuredHostCosts::from_events(events).ok();

        TraceReport {
            version,
            backend,
            site_repeats,
            kernels,
            total_kernel_ns,
            regions,
            workers,
            imbalance,
            spans,
            metrics,
            costs,
        }
    }

    /// Parses a JSONL document and builds the report.
    pub fn from_jsonl(text: &str) -> Result<TraceReport, plf_core::trace::TraceError> {
        Ok(TraceReport::from_events(&parse_jsonl(text)?))
    }

    /// Renders the report as the text `phylomic trace-report` prints.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let ms = |ns: u64| ns as f64 / 1e6;
        if let Some(v) = self.version {
            let _ = writeln!(s, "trace schema v{v}");
        }
        if let Some(b) = &self.backend {
            let _ = writeln!(s, "kernel backend: {b}");
        }
        if let Some(sr) = &self.site_repeats {
            let _ = writeln!(s, "site repeats: {sr}");
        }

        let _ = writeln!(s, "\n== kernel time shares ==");
        let _ = writeln!(
            s,
            "{:<16} {:>10} {:>12} {:>11} {:>7} {:>9} {:>9} {:>9}",
            "kernel", "calls", "sites", "total ms", "share", "p50 ns", "p95 ns", "p99 ns"
        );
        for k in &self.kernels {
            let _ = writeln!(
                s,
                "{:<16} {:>10} {:>12} {:>11.3} {:>6.1}% {:>9} {:>9} {:>9}",
                k.kernel.paper_name(),
                k.calls,
                k.sites,
                ms(k.total_ns),
                k.share * 100.0,
                k.p50_ns,
                k.p95_ns,
                k.p99_ns
            );
        }
        let _ = writeln!(s, "total kernel time {:.3} ms", ms(self.total_kernel_ns));

        if let Some(r) = &self.regions {
            let _ = writeln!(s, "\n== fork/join regions ==");
            let _ = writeln!(
                s,
                "regions {}  fork {:.3} ms  join {:.3} ms  wall {:.3} ms",
                r.count,
                ms(r.fork_total_ns),
                ms(r.join_total_ns),
                ms(r.wall_ns)
            );
            let _ = writeln!(
                s,
                "overhead fraction {:.1}% (region wall not covered by busiest worker)",
                r.overhead_fraction * 100.0
            );
        }

        if !self.workers.is_empty() {
            let _ = writeln!(s, "\n== per-worker load ==");
            for w in &self.workers {
                let _ = writeln!(
                    s,
                    "{:<10} busy {:>11.3} ms  sites {:>12}",
                    w.source,
                    ms(w.busy_ns),
                    w.sites
                );
            }
            if let Some(i) = self.imbalance {
                let _ = writeln!(s, "imbalance (slowest/mean) {i:.3}");
            }
        }

        if !self.spans.is_empty() {
            let _ = writeln!(s, "\n== span totals ==");
            for sp in &self.spans {
                let _ = writeln!(
                    s,
                    "{:<18} count {:>8}  total {:>11.3} ms",
                    sp.name,
                    sp.count,
                    ms(sp.total_ns)
                );
            }
        }

        if !self.metrics.is_empty() {
            let _ = writeln!(s, "\n== metrics ==");
            for (name, kind, value) in &self.metrics {
                let _ = writeln!(s, "{name:<40} {kind:<8} {value}");
            }
        }

        if let Some(c) = &self.costs {
            let _ = writeln!(s, "\n== calibration cost table (MeasuredHostCosts) ==");
            let _ = writeln!(
                s,
                "{:<16} {:>14} {:>14} {:>8}",
                "kernel", "per-call ns", "per-site ns", "samples"
            );
            for kernel in KernelId::ALL {
                let f = c.fit(kernel);
                if f.samples == 0 {
                    continue;
                }
                let _ = writeln!(
                    s,
                    "{:<16} {:>14.1} {:>14.3} {:>8}",
                    kernel.paper_name(),
                    f.per_call_ns,
                    f.per_site_ns,
                    f.samples
                );
            }
            let _ = writeln!(
                s,
                "region fork {:.1} ns  join {:.1} ns (mean per region)",
                c.region_fork_ns, c.region_join_ns
            );
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel_event(
        source: &str,
        kernel: KernelId,
        calls: u64,
        sites: u64,
        total: u64,
    ) -> TraceEvent {
        TraceEvent::Kernel {
            source: source.into(),
            kernel,
            calls,
            sites,
            total_ns: total,
            min_ns: total / calls.max(1),
            max_ns: total / calls.max(1),
            p50_ns: total / calls.max(1),
            p95_ns: total / calls.max(1),
            p99_ns: total / calls.max(1),
        }
    }

    fn forkjoin_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Meta {
                version: 4,
                backend: "simd".into(),
                site_repeats: "on".into(),
            },
            kernel_event("worker0", KernelId::Newview, 10, 1000, 6_000_000),
            kernel_event("worker1", KernelId::Newview, 10, 500, 3_000_000),
            kernel_event("worker0", KernelId::Evaluate, 5, 500, 1_000_000),
            kernel_event("worker1", KernelId::Evaluate, 5, 250, 500_000),
            TraceEvent::Region {
                source: "master".into(),
                count: 15,
                fork_total_ns: 1_000_000,
                join_total_ns: 9_000_000,
                fork_max_ns: 200_000,
                join_max_ns: 1_000_000,
            },
            TraceEvent::Span {
                source: "master".into(),
                name: "search".into(),
                start_ns: 0,
                dur_ns: 12_000_000,
                depth: 0,
            },
            TraceEvent::Metric {
                source: "process".into(),
                name: "spr.moves.accepted".into(),
                kind: "counter".into(),
                value: 3,
            },
        ]
    }

    #[test]
    fn report_computes_shares_imbalance_and_overhead() {
        let r = TraceReport::from_events(&forkjoin_events());
        assert_eq!(r.version, Some(4));
        assert_eq!(r.backend.as_deref(), Some("simd"));
        assert_eq!(r.site_repeats.as_deref(), Some("on"));
        assert_eq!(r.total_kernel_ns, 10_500_000);
        // newview dominates and sorts first.
        assert_eq!(r.kernels[0].kernel, KernelId::Newview);
        assert!((r.kernels[0].share - 9.0 / 10.5).abs() < 1e-9);
        // worker0 busy 7ms, worker1 busy 3.5ms → imbalance 7/5.25.
        assert_eq!(r.workers.len(), 2);
        let imb = r.imbalance.unwrap();
        assert!((imb - 7.0 / 5.25).abs() < 1e-9, "{imb}");
        // wall 10ms, max busy 7ms → overhead 30%.
        let reg = r.regions.unwrap();
        assert_eq!(reg.count, 15);
        assert!((reg.overhead_fraction - 0.3).abs() < 1e-9);
        assert!(r.costs.is_some());
        assert_eq!(r.spans[0].name, "search");
        assert_eq!(r.metrics[0].0, "spr.moves.accepted");
    }

    #[test]
    fn render_mentions_every_section() {
        let text = TraceReport::from_events(&forkjoin_events()).render();
        for needle in [
            "kernel time shares",
            "newview",
            "fork/join regions",
            "overhead fraction",
            "per-worker load",
            "imbalance (slowest/mean)",
            "span totals",
            "metrics",
            "calibration cost table",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn serial_trace_reports_without_regions_or_workers() {
        let events = vec![kernel_event("serial", KernelId::Newview, 4, 400, 2_000_000)];
        let r = TraceReport::from_events(&events);
        assert!(r.regions.is_none());
        assert!(r.workers.is_empty());
        assert!(r.imbalance.is_none());
        assert_eq!(r.kernels.len(), 1);
        assert!((r.kernels[0].share - 1.0).abs() < 1e-12);
        // Render stays valid with the parallel sections absent.
        let text = r.render();
        assert!(!text.contains("fork/join regions"));
    }

    #[test]
    fn empty_trace_yields_empty_report() {
        let r = TraceReport::from_events(&[]);
        assert!(r.kernels.is_empty() && r.costs.is_none());
        assert_eq!(r.total_kernel_ns, 0);
    }

    #[test]
    fn from_jsonl_roundtrip() {
        let doc = plf_core::trace::write_jsonl(&forkjoin_events());
        let r = TraceReport::from_jsonl(&doc).unwrap();
        assert_eq!(r, TraceReport::from_events(&forkjoin_events()));
    }
}
