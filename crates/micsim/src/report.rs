//! Post-mortem analysis of a JSONL trace (`phylomic trace-report`).
//!
//! Turns the flat event stream `--trace-out` produces into the
//! summaries the paper's evaluation reasons about: per-kernel time
//! shares (the Table III decomposition), fork/join synchronization
//! overhead per parallel region (§VI-B2's small-alignment effect),
//! per-worker load imbalance (the Fig. 4 efficiency ceiling), and the
//! measured per-call/per-site kernel cost table that feeds
//! [`crate::calibration::MeasuredHostCosts`].

use crate::calibration::MeasuredHostCosts;
use plf_core::trace::{parse_jsonl, TraceEvent};
use plf_core::{KernelId, KernelOp};
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// One kernel's aggregate across every source in the trace.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KernelRow {
    /// Which kernel.
    pub kernel: KernelId,
    /// Invocations summed over sources.
    pub calls: u64,
    /// Pattern-sites summed over sources.
    pub sites: u64,
    /// Wall time summed over sources, nanoseconds.
    pub total_ns: u64,
    /// Fraction of the summed kernel time spent in this kernel.
    pub share: f64,
    /// Call-weighted mean of the sources' median latencies, ns.
    pub p50_ns: u64,
    /// Call-weighted mean of the sources' p95 latencies, ns.
    pub p95_ns: u64,
    /// Call-weighted mean of the sources' p99 latencies, ns.
    pub p99_ns: u64,
}

/// One concrete kernel entry point's aggregate across every source,
/// with the modeled roofline cost carried by v5 `op` events.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OpRow {
    /// Which entry point.
    pub op: KernelOp,
    /// Invocations summed over sources.
    pub calls: u64,
    /// Pattern-sites summed over sources.
    pub sites: u64,
    /// Wall time summed over sources, nanoseconds.
    pub total_ns: u64,
    /// Modeled floating-point operations.
    pub flops: u64,
    /// Modeled bytes read from the site-major arrays.
    pub bytes_read: u64,
    /// Modeled bytes written.
    pub bytes_written: u64,
}

impl OpRow {
    /// Achieved GFLOP/s (`flops / total_ns`); 0 with no timing.
    pub fn gflops(&self) -> f64 {
        if self.total_ns == 0 {
            0.0
        } else {
            self.flops as f64 / self.total_ns as f64
        }
    }

    /// Achieved GB/s over read+write traffic; 0 with no timing.
    pub fn gbps(&self) -> f64 {
        if self.total_ns == 0 {
            0.0
        } else {
            (self.bytes_read + self.bytes_written) as f64 / self.total_ns as f64
        }
    }

    /// Arithmetic intensity, flops per byte of traffic.
    pub fn arithmetic_intensity(&self) -> f64 {
        let bytes = self.bytes_read + self.bytes_written;
        if bytes == 0 {
            0.0
        } else {
            self.flops as f64 / bytes as f64
        }
    }
}

/// Calibrated machine peaks from the `meta` event, used to place each
/// op on the roofline. Zero fields mean "not calibrated".
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct Roofline {
    /// Single-core FMA peak, MFLOP/s.
    pub peak_mflops: u64,
    /// Single-core STREAM-triad bandwidth, MB/s.
    pub peak_mbps: u64,
}

impl Roofline {
    /// True when both peaks were measured.
    pub fn is_calibrated(&self) -> bool {
        self.peak_mflops > 0 && self.peak_mbps > 0
    }

    /// The ridge point: arithmetic intensity (flop/byte) above which
    /// the machine is compute-bound.
    pub fn ridge(&self) -> f64 {
        if self.peak_mbps == 0 {
            0.0
        } else {
            self.peak_mflops as f64 / self.peak_mbps as f64
        }
    }

    /// Attainable GFLOP/s at intensity `ai`:
    /// `min(peak_flops, ai × peak_bandwidth)`.
    pub fn attainable_gflops(&self, ai: f64) -> f64 {
        let peak = self.peak_mflops as f64 / 1e3;
        let bw_limited = ai * self.peak_mbps as f64 / 1e3;
        peak.min(bw_limited)
    }

    /// Fraction of the attainable roof an op achieves; `None` when the
    /// roofline is uncalibrated or the op has no timing.
    pub fn fraction_of_roof(&self, row: &OpRow) -> Option<f64> {
        if !self.is_calibrated() || row.total_ns == 0 {
            return None;
        }
        let attainable = self.attainable_gflops(row.arithmetic_intensity());
        (attainable > 0.0).then(|| row.gflops() / attainable)
    }
}

/// Fork/join synchronization totals and the derived overhead fraction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RegionSummary {
    /// Parallel regions executed.
    pub count: u64,
    /// Summed fork-barrier latency, ns.
    pub fork_total_ns: u64,
    /// Summed join-barrier latency, ns.
    pub join_total_ns: u64,
    /// Estimated wall time spent inside regions (the master blocks
    /// through fork and join, so this is their sum), ns.
    pub wall_ns: u64,
    /// Fraction of region wall time not covered by the busiest
    /// worker's kernel time: `(wall − max_busy) / wall`, clamped to
    /// `[0, 1]`. Pure synchronization + scheduling overhead.
    pub overhead_fraction: f64,
}

/// One worker's busy time, as seen through its kernel events.
#[derive(Clone, Debug, PartialEq)]
pub struct WorkerRow {
    /// Source label (e.g. `"worker2"`).
    pub source: String,
    /// Summed kernel wall time, ns.
    pub busy_ns: u64,
    /// Pattern-sites processed (summed over kernels and calls).
    pub sites: u64,
}

/// Aggregate of one span name across all tracks.
#[derive(Clone, Debug, PartialEq)]
pub struct SpanRow {
    /// Span name (e.g. `"spr_round"`).
    pub name: String,
    /// Closed spans with this name.
    pub count: u64,
    /// Summed duration, ns. Nested spans of the same name both count.
    pub total_ns: u64,
}

/// Everything `trace-report` prints, in analyzable form.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceReport {
    /// Schema version from the `meta` event, if present.
    pub version: Option<u64>,
    /// Resolved kernel backend from the `meta` event (`"simd"`,
    /// `"vector"`, …); `None` for pre-v3 traces, which did not record
    /// it.
    pub backend: Option<String>,
    /// Resolved site-repeat compression mode from the `meta` event
    /// (`"on"` / `"off"`); `None` for pre-v4 traces.
    pub site_repeats: Option<String>,
    /// Spans lost to ring-buffer overflow, from the v5 `meta` event
    /// (0 for older traces).
    pub spans_dropped: u64,
    /// Calibrated host peaks from the v5 `meta` event; uncalibrated
    /// (all-zero) for older traces or hosts without `HOST_ROOFLINE.json`.
    pub roofline: Roofline,
    /// The replicated-search transport from the v6 `meta` event
    /// (`"threads"`, `"uds"`); `None` for non-replicated runs and
    /// pre-v6 traces.
    pub transport: Option<String>,
    /// Measured collectives from the v6 `meta` event (summed over
    /// ranks); 0 for non-replicated runs and pre-v6 traces.
    pub wire_ops: u64,
    /// Total measured in-collective wall time, ns (summed over ranks).
    pub wire_ns: u64,
    /// Per-kernel aggregates, descending by total time.
    pub kernels: Vec<KernelRow>,
    /// Per-entry-point aggregates with modeled costs, descending by
    /// total time; empty for pre-v5 traces.
    pub ops: Vec<OpRow>,
    /// Summed kernel time across all sources, ns.
    pub total_kernel_ns: u64,
    /// Fork/join summary; `None` for serial traces.
    pub regions: Option<RegionSummary>,
    /// Per-worker busy time, sorted by source label; empty for serial.
    pub workers: Vec<WorkerRow>,
    /// `max(busy) / mean(busy)` over workers (1.0 = perfect balance);
    /// `None` with fewer than two workers.
    pub imbalance: Option<f64>,
    /// Span aggregates, descending by total time.
    pub spans: Vec<SpanRow>,
    /// Counter/gauge readings (`name`, `kind`, `value`), sorted.
    pub metrics: Vec<(String, String, u64)>,
    /// Measured kernel cost fits; `None` if no kernel events.
    pub costs: Option<MeasuredHostCosts>,
}

impl TraceReport {
    /// Builds a report from parsed trace events.
    pub fn from_events(events: &[TraceEvent]) -> TraceReport {
        let mut version = None;
        let mut backend = None;
        let mut site_repeats = None;
        let mut spans_dropped = 0u64;
        let mut roofline = Roofline::default();
        let mut transport = None;
        let mut wire_ops = 0u64;
        let mut wire_ns = 0u64;
        // kernel -> (calls, sites, total, Σcalls·p50, Σcalls·p95, Σcalls·p99)
        let mut per_kernel: BTreeMap<&'static str, (KernelId, [u64; 3], [u128; 3])> =
            BTreeMap::new();
        let mut per_op: BTreeMap<usize, OpRow> = BTreeMap::new();
        let mut per_worker: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        let mut region_count = 0u64;
        let mut fork_total = 0u64;
        let mut join_total = 0u64;
        let mut spans: BTreeMap<String, (u64, u64)> = BTreeMap::new();
        let mut metrics = Vec::new();

        for e in events {
            match e {
                TraceEvent::Meta {
                    version: v,
                    backend: b,
                    site_repeats: sr,
                    spans_dropped: sd,
                    roofline_mflops,
                    roofline_mbps,
                    transport: tp,
                    wire_ops: wo,
                    wire_ns: wn,
                } => {
                    version = Some(*v);
                    if !b.is_empty() {
                        backend = Some(b.clone());
                    }
                    if !sr.is_empty() {
                        site_repeats = Some(sr.clone());
                    }
                    spans_dropped += sd;
                    if *roofline_mflops > 0 {
                        roofline.peak_mflops = *roofline_mflops;
                    }
                    if *roofline_mbps > 0 {
                        roofline.peak_mbps = *roofline_mbps;
                    }
                    if !tp.is_empty() {
                        transport = Some(tp.clone());
                    }
                    wire_ops += wo;
                    wire_ns += wn;
                }
                TraceEvent::Op {
                    op,
                    calls,
                    sites,
                    total_ns,
                    flops,
                    bytes_read,
                    bytes_written,
                    ..
                } => {
                    let row = per_op.entry(op.index()).or_insert(OpRow {
                        op: *op,
                        calls: 0,
                        sites: 0,
                        total_ns: 0,
                        flops: 0,
                        bytes_read: 0,
                        bytes_written: 0,
                    });
                    row.calls += calls;
                    row.sites += sites;
                    row.total_ns += total_ns;
                    row.flops += flops;
                    row.bytes_read += bytes_read;
                    row.bytes_written += bytes_written;
                }
                TraceEvent::Kernel {
                    source,
                    kernel,
                    calls,
                    sites,
                    total_ns,
                    p50_ns,
                    p95_ns,
                    p99_ns,
                    ..
                } => {
                    let entry = per_kernel
                        .entry(kernel.paper_name())
                        .or_insert((*kernel, [0; 3], [0; 3]));
                    entry.1[0] += calls;
                    entry.1[1] += sites;
                    entry.1[2] += total_ns;
                    entry.2[0] += *calls as u128 * *p50_ns as u128;
                    entry.2[1] += *calls as u128 * *p95_ns as u128;
                    entry.2[2] += *calls as u128 * *p99_ns as u128;
                    if source.starts_with("worker") {
                        let w = per_worker.entry(source.clone()).or_insert((0, 0));
                        w.0 += total_ns;
                        w.1 += sites;
                    }
                }
                TraceEvent::Region {
                    count,
                    fork_total_ns,
                    join_total_ns,
                    ..
                } => {
                    region_count += count;
                    fork_total += fork_total_ns;
                    join_total += join_total_ns;
                }
                TraceEvent::Span { name, dur_ns, .. } => {
                    let s = spans.entry(name.clone()).or_insert((0, 0));
                    s.0 += 1;
                    s.1 += dur_ns;
                }
                TraceEvent::Metric {
                    name, kind, value, ..
                } => metrics.push((name.clone(), kind.clone(), *value)),
                TraceEvent::MetricHist {
                    name,
                    count,
                    total_ns,
                    ..
                } => metrics.push((
                    format!("{name} (hist total, n={count})"),
                    "hist".into(),
                    *total_ns,
                )),
                TraceEvent::Unknown { .. } => {}
            }
        }

        let total_kernel_ns: u64 = per_kernel.values().map(|(_, agg, _)| agg[2]).sum();
        let mut kernels: Vec<KernelRow> = per_kernel
            .into_values()
            .map(|(kernel, [calls, sites, total_ns], q)| {
                let weighted = |sum: u128| {
                    if calls == 0 {
                        0
                    } else {
                        (sum / calls as u128) as u64
                    }
                };
                KernelRow {
                    kernel,
                    calls,
                    sites,
                    total_ns,
                    share: if total_kernel_ns == 0 {
                        0.0
                    } else {
                        total_ns as f64 / total_kernel_ns as f64
                    },
                    p50_ns: weighted(q[0]),
                    p95_ns: weighted(q[1]),
                    p99_ns: weighted(q[2]),
                }
            })
            .collect();
        kernels.sort_by_key(|k| std::cmp::Reverse(k.total_ns));
        let mut ops: Vec<OpRow> = per_op.into_values().collect();
        ops.sort_by_key(|o| std::cmp::Reverse(o.total_ns));

        let workers: Vec<WorkerRow> = per_worker
            .into_iter()
            .map(|(source, (busy_ns, sites))| WorkerRow {
                source,
                busy_ns,
                sites,
            })
            .collect();

        let imbalance = if workers.len() >= 2 {
            let max = workers.iter().map(|w| w.busy_ns).max().unwrap_or(0) as f64;
            let mean = workers.iter().map(|w| w.busy_ns).sum::<u64>() as f64 / workers.len() as f64;
            (mean > 0.0).then(|| max / mean)
        } else {
            None
        };

        let regions = (region_count > 0).then(|| {
            let wall_ns = fork_total + join_total;
            let max_busy = workers.iter().map(|w| w.busy_ns).max().unwrap_or(0);
            RegionSummary {
                count: region_count,
                fork_total_ns: fork_total,
                join_total_ns: join_total,
                wall_ns,
                overhead_fraction: if wall_ns == 0 {
                    0.0
                } else {
                    (wall_ns.saturating_sub(max_busy)) as f64 / wall_ns as f64
                },
            }
        });

        let mut spans: Vec<SpanRow> = spans
            .into_iter()
            .map(|(name, (count, total_ns))| SpanRow {
                name,
                count,
                total_ns,
            })
            .collect();
        spans.sort_by_key(|s| std::cmp::Reverse(s.total_ns));
        metrics.sort();

        let costs = MeasuredHostCosts::from_events(events).ok();

        TraceReport {
            version,
            backend,
            site_repeats,
            spans_dropped,
            roofline,
            transport,
            wire_ops,
            wire_ns,
            kernels,
            ops,
            total_kernel_ns,
            regions,
            workers,
            imbalance,
            spans,
            metrics,
            costs,
        }
    }

    /// Parses a JSONL document and builds the report.
    pub fn from_jsonl(text: &str) -> Result<TraceReport, plf_core::trace::TraceError> {
        Ok(TraceReport::from_events(&parse_jsonl(text)?))
    }

    /// Renders the report as the text `phylomic trace-report` prints.
    pub fn render(&self) -> String {
        let mut s = String::new();
        let ms = |ns: u64| ns as f64 / 1e6;
        if let Some(v) = self.version {
            let _ = writeln!(s, "trace schema v{v}");
        }
        if let Some(b) = &self.backend {
            let _ = writeln!(s, "kernel backend: {b}");
        }
        if let Some(sr) = &self.site_repeats {
            let _ = writeln!(s, "site repeats: {sr}");
        }
        if let Some(tp) = &self.transport {
            let _ = writeln!(s, "transport: {tp}");
            if self.wire_ops > 0 {
                let measured_us = self.wire_ns as f64 / self.wire_ops as f64 / 1e3;
                let modeled_us = crate::calibration::allreduce_latency_s(
                    crate::model::Interconnect::SharedMemory,
                ) * 1e6;
                let _ = writeln!(
                    s,
                    "collectives: {} measured, mean {measured_us:.2} µs on the wire \
                     (micsim modeled shared-memory allreduce: {modeled_us:.2} µs)",
                    self.wire_ops
                );
            }
        }
        if self.spans_dropped > 0 {
            let _ = writeln!(
                s,
                "WARNING: {} spans dropped to ring-buffer overflow; span totals undercount",
                self.spans_dropped
            );
        }

        let _ = writeln!(s, "\n== kernel time shares ==");
        let _ = writeln!(
            s,
            "{:<16} {:>10} {:>12} {:>11} {:>7} {:>9} {:>9} {:>9}",
            "kernel", "calls", "sites", "total ms", "share", "p50 ns", "p95 ns", "p99 ns"
        );
        for k in &self.kernels {
            let _ = writeln!(
                s,
                "{:<16} {:>10} {:>12} {:>11.3} {:>6.1}% {:>9} {:>9} {:>9}",
                k.kernel.paper_name(),
                k.calls,
                k.sites,
                ms(k.total_ns),
                k.share * 100.0,
                k.p50_ns,
                k.p95_ns,
                k.p99_ns
            );
        }
        let _ = writeln!(s, "total kernel time {:.3} ms", ms(self.total_kernel_ns));

        if !self.ops.is_empty() {
            let _ = writeln!(s, "\n== op roofline (modeled flops/bytes) ==");
            if self.roofline.is_calibrated() {
                let _ = writeln!(
                    s,
                    "host peaks: {:.2} GFLOP/s compute, {:.2} GB/s bandwidth (ridge {:.3} flop/byte)",
                    self.roofline.peak_mflops as f64 / 1e3,
                    self.roofline.peak_mbps as f64 / 1e3,
                    self.roofline.ridge()
                );
            } else {
                let _ = writeln!(
                    s,
                    "host peaks: uncalibrated (run `phylomic calibrate` to enable % of roof)"
                );
            }
            let _ = writeln!(
                s,
                "{:<20} {:>10} {:>9} {:>9} {:>7} {:>7} {:>8}",
                "op", "calls", "GFLOP/s", "GB/s", "AI", "% roof", "bound"
            );
            for o in &self.ops {
                let (pct, bound) = match self.roofline.fraction_of_roof(o) {
                    Some(f) => (
                        format!("{:.1}", f * 100.0),
                        if o.arithmetic_intensity() < self.roofline.ridge() {
                            "memory"
                        } else {
                            "compute"
                        },
                    ),
                    None => ("-".to_string(), "-"),
                };
                let _ = writeln!(
                    s,
                    "{:<20} {:>10} {:>9.3} {:>9.3} {:>7.3} {:>7} {:>8}",
                    o.op.name(),
                    o.calls,
                    o.gflops(),
                    o.gbps(),
                    o.arithmetic_intensity(),
                    pct,
                    bound
                );
            }
        }

        if let Some(r) = &self.regions {
            let _ = writeln!(s, "\n== fork/join regions ==");
            let _ = writeln!(
                s,
                "regions {}  fork {:.3} ms  join {:.3} ms  wall {:.3} ms",
                r.count,
                ms(r.fork_total_ns),
                ms(r.join_total_ns),
                ms(r.wall_ns)
            );
            let _ = writeln!(
                s,
                "overhead fraction {:.1}% (region wall not covered by busiest worker)",
                r.overhead_fraction * 100.0
            );
        }

        if !self.workers.is_empty() {
            let _ = writeln!(s, "\n== per-worker load ==");
            for w in &self.workers {
                let _ = writeln!(
                    s,
                    "{:<10} busy {:>11.3} ms  sites {:>12}",
                    w.source,
                    ms(w.busy_ns),
                    w.sites
                );
            }
            if let Some(i) = self.imbalance {
                let _ = writeln!(s, "imbalance (slowest/mean) {i:.3}");
            }
        }

        if !self.spans.is_empty() {
            let _ = writeln!(s, "\n== span totals ==");
            for sp in &self.spans {
                let _ = writeln!(
                    s,
                    "{:<18} count {:>8}  total {:>11.3} ms",
                    sp.name,
                    sp.count,
                    ms(sp.total_ns)
                );
            }
        }

        if !self.metrics.is_empty() {
            let _ = writeln!(s, "\n== metrics ==");
            for (name, kind, value) in &self.metrics {
                let _ = writeln!(s, "{name:<40} {kind:<8} {value}");
            }
        }

        if let Some(c) = &self.costs {
            let _ = writeln!(s, "\n== calibration cost table (MeasuredHostCosts) ==");
            let _ = writeln!(
                s,
                "{:<16} {:>14} {:>14} {:>8}",
                "kernel", "per-call ns", "per-site ns", "samples"
            );
            for kernel in KernelId::ALL {
                let f = c.fit(kernel);
                if f.samples == 0 {
                    continue;
                }
                let _ = writeln!(
                    s,
                    "{:<16} {:>14.1} {:>14.3} {:>8}",
                    kernel.paper_name(),
                    f.per_call_ns,
                    f.per_site_ns,
                    f.samples
                );
            }
            let _ = writeln!(
                s,
                "region fork {:.1} ns  join {:.1} ns (mean per region)",
                c.region_fork_ns, c.region_join_ns
            );
        }
        s
    }

    /// Renders the report as a single JSON object
    /// (`phylomic trace-report --format json`), for downstream tooling
    /// that would otherwise scrape the text tables.
    pub fn render_json(&self) -> String {
        fn esc(s: &str) -> String {
            let mut out = String::with_capacity(s.len());
            for c in s.chars() {
                match c {
                    '"' => out.push_str("\\\""),
                    '\\' => out.push_str("\\\\"),
                    '\n' => out.push_str("\\n"),
                    '\t' => out.push_str("\\t"),
                    '\r' => out.push_str("\\r"),
                    c if (c as u32) < 0x20 => {
                        let _ = write!(out, "\\u{:04x}", c as u32);
                    }
                    c => out.push(c),
                }
            }
            out
        }
        fn opt_str(v: &Option<String>) -> String {
            match v {
                Some(s) => format!("\"{}\"", esc(s)),
                None => "null".into(),
            }
        }
        let mut s = String::new();
        s.push('{');
        let _ = write!(
            s,
            "\"version\":{},",
            self.version.map_or("null".into(), |v| v.to_string())
        );
        let _ = write!(s, "\"backend\":{},", opt_str(&self.backend));
        let _ = write!(s, "\"site_repeats\":{},", opt_str(&self.site_repeats));
        let _ = write!(s, "\"transport\":{},", opt_str(&self.transport));
        let _ = write!(
            s,
            "\"wire_ops\":{},\"wire_ns\":{},",
            self.wire_ops, self.wire_ns
        );
        let _ = write!(s, "\"spans_dropped\":{},", self.spans_dropped);
        let _ = write!(
            s,
            "\"roofline\":{{\"peak_mflops\":{},\"peak_mbps\":{}}},",
            self.roofline.peak_mflops, self.roofline.peak_mbps
        );
        let _ = write!(s, "\"total_kernel_ns\":{},", self.total_kernel_ns);
        s.push_str("\"kernels\":[");
        for (i, k) in self.kernels.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"kernel\":\"{}\",\"calls\":{},\"sites\":{},\"total_ns\":{},\"share\":{:.6},\"p50_ns\":{},\"p95_ns\":{},\"p99_ns\":{}}}",
                k.kernel.paper_name(),
                k.calls,
                k.sites,
                k.total_ns,
                k.share,
                k.p50_ns,
                k.p95_ns,
                k.p99_ns
            );
        }
        s.push_str("],\"ops\":[");
        for (i, o) in self.ops.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let pct = match self.roofline.fraction_of_roof(o) {
                Some(f) => format!("{:.6}", f),
                None => "null".into(),
            };
            let _ = write!(
                s,
                "{{\"op\":\"{}\",\"calls\":{},\"sites\":{},\"total_ns\":{},\"flops\":{},\"bytes_read\":{},\"bytes_written\":{},\"gflops\":{:.6},\"gbps\":{:.6},\"arithmetic_intensity\":{:.6},\"fraction_of_roof\":{}}}",
                o.op.name(),
                o.calls,
                o.sites,
                o.total_ns,
                o.flops,
                o.bytes_read,
                o.bytes_written,
                o.gflops(),
                o.gbps(),
                o.arithmetic_intensity(),
                pct
            );
        }
        s.push_str("],\"regions\":");
        match &self.regions {
            Some(r) => {
                let _ = write!(
                    s,
                    "{{\"count\":{},\"fork_total_ns\":{},\"join_total_ns\":{},\"wall_ns\":{},\"overhead_fraction\":{:.6}}}",
                    r.count, r.fork_total_ns, r.join_total_ns, r.wall_ns, r.overhead_fraction
                );
            }
            None => s.push_str("null"),
        }
        s.push_str(",\"workers\":[");
        for (i, w) in self.workers.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"source\":\"{}\",\"busy_ns\":{},\"sites\":{}}}",
                esc(&w.source),
                w.busy_ns,
                w.sites
            );
        }
        s.push_str("],\"imbalance\":");
        match self.imbalance {
            Some(i) => {
                let _ = write!(s, "{i:.6}");
            }
            None => s.push_str("null"),
        }
        s.push_str(",\"spans\":[");
        for (i, sp) in self.spans.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"name\":\"{}\",\"count\":{},\"total_ns\":{}}}",
                esc(&sp.name),
                sp.count,
                sp.total_ns
            );
        }
        s.push_str("],\"metrics\":[");
        for (i, (name, kind, value)) in self.metrics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            let _ = write!(
                s,
                "{{\"name\":\"{}\",\"kind\":\"{}\",\"value\":{}}}",
                esc(name),
                esc(kind),
                value
            );
        }
        s.push_str("]}");
        s.push('\n');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kernel_event(
        source: &str,
        kernel: KernelId,
        calls: u64,
        sites: u64,
        total: u64,
    ) -> TraceEvent {
        TraceEvent::Kernel {
            source: source.into(),
            kernel,
            calls,
            sites,
            total_ns: total,
            min_ns: total / calls.max(1),
            max_ns: total / calls.max(1),
            p50_ns: total / calls.max(1),
            p95_ns: total / calls.max(1),
            p99_ns: total / calls.max(1),
        }
    }

    fn forkjoin_events() -> Vec<TraceEvent> {
        vec![
            TraceEvent::Meta {
                version: 6,
                backend: "simd".into(),
                site_repeats: "on".into(),
                spans_dropped: 2,
                roofline_mflops: 10_000,
                roofline_mbps: 20_000,
                transport: "uds".into(),
                wire_ops: 40,
                wire_ns: 400_000,
            },
            kernel_event("worker0", KernelId::Newview, 10, 1000, 6_000_000),
            kernel_event("worker1", KernelId::Newview, 10, 500, 3_000_000),
            kernel_event("worker0", KernelId::Evaluate, 5, 500, 1_000_000),
            kernel_event("worker1", KernelId::Evaluate, 5, 250, 500_000),
            TraceEvent::Op {
                source: "worker0".into(),
                op: KernelOp::NewviewIi,
                calls: 10,
                sites: 1000,
                total_ns: 6_000_000,
                flops: 272_000,
                bytes_read: 264_000,
                bytes_written: 132_000,
            },
            TraceEvent::Op {
                source: "worker1".into(),
                op: KernelOp::NewviewIi,
                calls: 10,
                sites: 500,
                total_ns: 3_000_000,
                flops: 136_000,
                bytes_read: 132_000,
                bytes_written: 66_000,
            },
            TraceEvent::Region {
                source: "master".into(),
                count: 15,
                fork_total_ns: 1_000_000,
                join_total_ns: 9_000_000,
                fork_max_ns: 200_000,
                join_max_ns: 1_000_000,
            },
            TraceEvent::Span {
                source: "master".into(),
                name: "search".into(),
                start_ns: 0,
                dur_ns: 12_000_000,
                depth: 0,
            },
            TraceEvent::Metric {
                source: "process".into(),
                name: "spr.moves.accepted".into(),
                kind: "counter".into(),
                value: 3,
            },
        ]
    }

    #[test]
    fn report_computes_shares_imbalance_and_overhead() {
        let r = TraceReport::from_events(&forkjoin_events());
        assert_eq!(r.version, Some(6));
        assert_eq!(r.backend.as_deref(), Some("simd"));
        assert_eq!(r.site_repeats.as_deref(), Some("on"));
        assert_eq!(r.total_kernel_ns, 10_500_000);
        // newview dominates and sorts first.
        assert_eq!(r.kernels[0].kernel, KernelId::Newview);
        assert!((r.kernels[0].share - 9.0 / 10.5).abs() < 1e-9);
        // worker0 busy 7ms, worker1 busy 3.5ms → imbalance 7/5.25.
        assert_eq!(r.workers.len(), 2);
        let imb = r.imbalance.unwrap();
        assert!((imb - 7.0 / 5.25).abs() < 1e-9, "{imb}");
        // wall 10ms, max busy 7ms → overhead 30%.
        let reg = r.regions.unwrap();
        assert_eq!(reg.count, 15);
        assert!((reg.overhead_fraction - 0.3).abs() < 1e-9);
        assert!(r.costs.is_some());
        assert_eq!(r.spans[0].name, "search");
        assert_eq!(r.metrics[0].0, "spr.moves.accepted");
    }

    #[test]
    fn op_rows_merge_sources_and_place_on_roofline() {
        let r = TraceReport::from_events(&forkjoin_events());
        assert_eq!(r.spans_dropped, 2);
        assert_eq!(
            r.roofline,
            Roofline {
                peak_mflops: 10_000,
                peak_mbps: 20_000,
            }
        );
        assert_eq!(r.ops.len(), 1);
        let o = &r.ops[0];
        assert_eq!(o.op, KernelOp::NewviewIi);
        assert_eq!((o.calls, o.sites, o.total_ns), (20, 1500, 9_000_000));
        assert_eq!(o.flops, 408_000);
        assert_eq!(o.bytes_read + o.bytes_written, 594_000);
        // 408 kflop / 9 ms ≈ 0.04533 GFLOP/s; AI = 408/594 flop/byte.
        assert!((o.gflops() - 408.0 / 9000.0).abs() < 1e-9);
        assert!((o.arithmetic_intensity() - 408.0 / 594.0).abs() < 1e-9);
        // Ridge = 10/20 = 0.5 flop/byte; AI ≈ 0.687 > ridge → compute
        // bound, attainable = 10 GFLOP/s.
        let f = r.roofline.fraction_of_roof(o).unwrap();
        assert!((f - o.gflops() / 10.0).abs() < 1e-9, "{f}");
        // Render shows the roofline table and the drop warning.
        let text = r.render();
        assert!(text.contains("op roofline"), "{text}");
        assert!(text.contains("newview_ii"), "{text}");
        assert!(text.contains("compute"), "{text}");
        assert!(text.contains("2 spans dropped"), "{text}");
    }

    #[test]
    fn uncalibrated_roofline_renders_placeholders() {
        let events = vec![TraceEvent::Op {
            source: "serial".into(),
            op: KernelOp::EvaluateIi,
            calls: 1,
            sites: 100,
            total_ns: 10_000,
            flops: 18_100,
            bytes_read: 26_800,
            bytes_written: 0,
        }];
        let r = TraceReport::from_events(&events);
        assert!(!r.roofline.is_calibrated());
        assert!(r.roofline.fraction_of_roof(&r.ops[0]).is_none());
        let text = r.render();
        assert!(text.contains("uncalibrated"), "{text}");
        assert!(!text.contains("spans dropped"), "{text}");
    }

    #[test]
    fn render_json_roundtrips_key_fields() {
        let r = TraceReport::from_events(&forkjoin_events());
        let json = r.render_json();
        // Structural smoke checks: scraping tools key on these fields.
        for needle in [
            r#""version":6"#,
            r#""backend":"simd""#,
            r#""spans_dropped":2"#,
            r#""peak_mflops":10000"#,
            r#""kernel":"newview""#,
            r#""op":"newview_ii""#,
            r#""flops":408000"#,
            r#""imbalance":"#,
            r#""overhead_fraction":"#,
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        // Balanced braces/brackets outside strings → parseable shape.
        let (mut depth, mut in_str, mut esc_next) = (0i64, false, false);
        for c in json.chars() {
            if esc_next {
                esc_next = false;
                continue;
            }
            match c {
                '\\' if in_str => esc_next = true,
                '"' => in_str = !in_str,
                '{' | '[' if !in_str => depth += 1,
                '}' | ']' if !in_str => depth -= 1,
                _ => {}
            }
            assert!(depth >= 0);
        }
        assert_eq!(depth, 0);
        assert!(!in_str);
    }

    #[test]
    fn render_mentions_every_section() {
        let text = TraceReport::from_events(&forkjoin_events()).render();
        for needle in [
            "kernel time shares",
            "newview",
            "fork/join regions",
            "overhead fraction",
            "per-worker load",
            "imbalance (slowest/mean)",
            "span totals",
            "metrics",
            "calibration cost table",
        ] {
            assert!(text.contains(needle), "missing {needle:?} in:\n{text}");
        }
    }

    #[test]
    fn serial_trace_reports_without_regions_or_workers() {
        let events = vec![kernel_event("serial", KernelId::Newview, 4, 400, 2_000_000)];
        let r = TraceReport::from_events(&events);
        assert!(r.regions.is_none());
        assert!(r.workers.is_empty());
        assert!(r.imbalance.is_none());
        assert_eq!(r.kernels.len(), 1);
        assert!((r.kernels[0].share - 1.0).abs() < 1e-12);
        // Render stays valid with the parallel sections absent.
        let text = r.render();
        assert!(!text.contains("fork/join regions"));
    }

    #[test]
    fn empty_trace_yields_empty_report() {
        let r = TraceReport::from_events(&[]);
        assert!(r.kernels.is_empty() && r.costs.is_none());
        assert_eq!(r.total_kernel_ns, 0);
    }

    #[test]
    fn from_jsonl_roundtrip() {
        let doc = plf_core::trace::write_jsonl(&forkjoin_events());
        let r = TraceReport::from_jsonl(&doc).unwrap();
        assert_eq!(r, TraceReport::from_events(&forkjoin_events()));
    }
}
