//! The execution-time model.

use crate::calibration as cal;
use crate::kernel_model::kernel_model;
use crate::platform::{Platform, PlatformKind};
use crate::workload::WorkloadTrace;
use plf_core::KernelId;

/// How kernels reach the coprocessor (§III-B / §V-C).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// The whole program runs on the device; kernel invocations are
    /// plain function calls.
    Native,
    /// The host invokes each kernel through the offload runtime,
    /// paying the PCIe + runtime latency per invocation.
    Offload,
}

/// Transport behind cross-rank AllReduce operations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Interconnect {
    /// Ranks in one coherent memory domain.
    SharedMemory,
    /// MIC-to-MIC over PCIe, Intel MPI 4.1.2 (20 µs measured).
    PciePeerToPeer,
    /// MIC-to-MIC over PCIe, Intel MPI 4.0.3 (35 µs measured).
    PcieOldMpi,
    /// Node-to-node QLogic InfiniBand (<5 µs measured).
    InfiniBand,
}

/// A complete machine configuration for one Table III row.
#[derive(Clone, Copy, Debug)]
pub struct MachineConfig {
    /// Hardware description (Table I row).
    pub platform: Platform,
    /// MPI ranks per device (per card for MICs, total for CPU boxes).
    pub ranks_per_device: u32,
    /// OpenMP threads per rank (1 = pure MPI).
    pub threads_per_rank: u32,
    /// Native or offload execution.
    pub mode: ExecMode,
    /// Transport for cross-device AllReduces.
    pub interconnect: Interconnect,
}

impl MachineConfig {
    /// Total ranks across all devices.
    pub fn total_ranks(&self) -> u32 {
        self.ranks_per_device * self.platform.num_devices()
    }

    /// Workers (rank × thread) per device.
    pub fn workers_per_device(&self) -> u32 {
        self.ranks_per_device * self.threads_per_rank
    }
}

/// Where the predicted time goes.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct TimeBreakdown {
    /// Roofline kernel compute time (includes the granularity
    /// inflation for under-filled threads).
    pub compute_s: f64,
    /// Parallel-region synchronization (OpenMP barriers / call
    /// overhead).
    pub sync_s: f64,
    /// AllReduce communication.
    pub comm_s: f64,
    /// Offload invocation latency (zero in native mode).
    pub offload_s: f64,
    /// Fixed serial startup.
    pub serial_s: f64,
}

impl TimeBreakdown {
    /// Total predicted wall time in seconds.
    pub fn total(&self) -> f64 {
        self.compute_s + self.sync_s + self.comm_s + self.offload_s + self.serial_s
    }
}

/// Roofline time per pattern-site of `kernel` on one device of
/// `platform`, in seconds.
pub fn site_time(platform: &Platform, kernel: KernelId) -> f64 {
    let m = kernel_model(kernel);
    let flops = platform.per_device_gflops() * 1e9 * cal::flop_efficiency(platform.kind);
    let bw = platform.per_device_bw() * 1e9 * cal::bandwidth_efficiency(platform.kind);
    (m.flops_per_site / flops).max(m.bytes_per_site / bw)
}

/// Per-kernel speedup of one platform over another (Figure 3 when the
/// pair is Phi vs E5-2680).
pub fn kernel_speedup(fast: &Platform, baseline: &Platform, kernel: KernelId) -> f64 {
    site_time(baseline, kernel) / site_time(fast, kernel)
}

/// Predicts the wall time of executing `trace` on `config`.
pub fn predict_time(config: &MachineConfig, trace: &WorkloadTrace) -> TimeBreakdown {
    let p = &config.platform;
    let devices = p.num_devices() as f64;
    let workers_dev = config.workers_per_device() as f64;

    // Compute: every kernel's sites are split across devices; threads
    // within a device share its roofline. Granularity inflates the
    // time when per-thread shares shrink (§VI-B2).
    let mut compute_s = 0.0;
    for k in KernelId::ALL {
        let c = trace.stats.get(k);
        if c.calls == 0 {
            continue;
        }
        let sites_per_call = c.sites as f64 / c.calls as f64;
        let sites_per_thread = (sites_per_call / (devices * workers_dev)).max(1e-9);
        let granularity = 1.0 + cal::GRANULARITY_SITES / sites_per_thread;
        compute_s += c.sites as f64 / devices * site_time(p, k) * granularity;
    }

    // Synchronization: each invocation is one parallel region.
    let regions = trace.stats.total_calls() as f64;
    let sync_s = match p.kind {
        PlatformKind::Mic if config.threads_per_rank > 1 => {
            regions * cal::OMP_REGION_OVERHEAD_PER_THREAD_S * config.threads_per_rank as f64
        }
        PlatformKind::Mic => {
            // Pure MPI on the card: no OpenMP barrier, but every rank
            // pays the per-call overhead and the AllReduce below grows
            // with the rank count.
            regions * cal::CPU_CALL_OVERHEAD_S
        }
        _ => regions * cal::CPU_CALL_OVERHEAD_S,
    };

    // Communication: AllReduce cost = latency × log2(total ranks),
    // with the intra-MIC penalty for pure-MPI rank counts.
    let total_ranks = config.total_ranks() as f64;
    let comm_s = if total_ranks > 1.0 {
        let per_op = if p.kind == PlatformKind::Mic && config.threads_per_rank == 1 {
            // Pure MPI on the card: the software loopback stack
            // serializes the reduction across all on-card ranks.
            cal::INTRA_MIC_MPI_BASE_S * config.ranks_per_device as f64
        } else {
            let hops = total_ranks.log2().ceil().max(1.0);
            cal::allreduce_latency_s(config.interconnect) * hops
        };
        trace.allreduces as f64 * per_op
    } else {
        0.0
    };

    let offload_s = match config.mode {
        ExecMode::Native => 0.0,
        ExecMode::Offload => regions * cal::OFFLOAD_INVOCATION_LATENCY_S,
    };

    TimeBreakdown {
        compute_s,
        sync_s,
        comm_s,
        offload_s,
        serial_s: cal::SERIAL_OVERHEAD_S,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::platform::{XEON_E5_2680_2S, XEON_PHI_5110P_1S};

    fn phi_native() -> MachineConfig {
        MachineConfig {
            platform: XEON_PHI_5110P_1S,
            ranks_per_device: 2,
            threads_per_rank: 118,
            mode: ExecMode::Native,
            interconnect: Interconnect::SharedMemory,
        }
    }

    #[test]
    fn fig3_kernel_speedups_in_paper_bands() {
        let f = |k| kernel_speedup(&XEON_PHI_5110P_1S, &XEON_E5_2680_2S, k);
        let ds = f(KernelId::DerivativeSum);
        assert!((2.5..3.1).contains(&ds), "derivativeSum {ds}");
        for (k, name) in [
            (KernelId::Newview, "newview"),
            (KernelId::Evaluate, "evaluate"),
            (KernelId::DerivativeCore, "derivativeCore"),
        ] {
            let s = f(k);
            assert!((1.7..2.2).contains(&s), "{name} speedup {s}");
            assert!(s < ds, "{name} must trail derivativeSum");
        }
    }

    #[test]
    fn offload_mode_at_least_doubles_small_run_time() {
        // §V-C: offload overhead comparable to / exceeding compute.
        let trace = WorkloadTrace::synthetic_search(50_000);
        let native = predict_time(&phi_native(), &trace);
        let mut off_cfg = phi_native();
        off_cfg.mode = ExecMode::Offload;
        let off = predict_time(&off_cfg, &trace);
        assert!(
            off.total() > 1.8 * native.total(),
            "offload {} vs native {}",
            off.total(),
            native.total()
        );
        assert!(off.offload_s > 0.0 && native.offload_s == 0.0);
    }

    #[test]
    fn compute_scales_linearly_with_sites() {
        let cfg = phi_native();
        let t1 = predict_time(&cfg, &WorkloadTrace::synthetic_search(1_000_000));
        let t2 = predict_time(&cfg, &WorkloadTrace::synthetic_search(2_000_000));
        // Compute scales ~linearly; the small constant offset is the
        // per-thread granularity term, which does not grow with sites.
        let ratio = t2.compute_s / t1.compute_s;
        assert!((1.85..2.05).contains(&ratio), "ratio {ratio}");
        // Sync does not scale with sites.
        assert!((t1.sync_s - t2.sync_s).abs() < 1e-12);
    }

    #[test]
    fn pure_mpi_on_mic_is_much_slower_than_hybrid() {
        // §V-D: "An attempt to run ExaML in this configuration
        // resulted in a substantial slowdown".
        let trace = WorkloadTrace::synthetic_search(100_000);
        let hybrid = predict_time(&phi_native(), &trace);
        let pure_mpi = MachineConfig {
            platform: XEON_PHI_5110P_1S,
            ranks_per_device: 120,
            threads_per_rank: 1,
            mode: ExecMode::Native,
            interconnect: Interconnect::SharedMemory,
        };
        let pm = predict_time(&pure_mpi, &trace);
        assert!(
            pm.total() > 2.0 * hybrid.total(),
            "pure MPI {} vs hybrid {}",
            pm.total(),
            hybrid.total()
        );
    }

    #[test]
    fn breakdown_total_is_sum() {
        let t = predict_time(&phi_native(), &WorkloadTrace::synthetic_search(10_000));
        let sum = t.compute_s + t.sync_s + t.comm_s + t.offload_s + t.serial_s;
        assert!((t.total() - sum).abs() < 1e-12);
    }
}
