//! Energy model (§VI-B4).
//!
//! The paper estimates `E[Wh] = MaxTDP[W] × RunTime[s] / 3600` and
//! normalizes against the CPU baseline to obtain relative savings
//! (Figure 5).

use crate::systems::{table3, SystemId};
use crate::workload::WorkloadTrace;

/// Energy in watt-hours for a run of `seconds` on hardware with the
/// given TDP.
pub fn energy_wh(max_tdp_w: f64, seconds: f64) -> f64 {
    max_tdp_w * seconds / 3600.0
}

/// Figure 5 series: per size, the relative energy savings of each
/// system vs the E5-2680 baseline (`E_baseline / E_system`; >1 means
/// the system is more energy-efficient).
pub fn fig5_energy_savings(trace: &WorkloadTrace) -> Vec<(u64, Vec<(SystemId, f64)>)> {
    table3(trace)
        .into_iter()
        .map(|(size, row)| {
            let e_base = row
                .iter()
                .find(|(s, _)| *s == SystemId::E5_2680)
                .map(|(s, c)| energy_wh(s.config().platform.max_tdp_w, c.time_s))
                .expect("baseline present");
            let savings = row
                .into_iter()
                .map(|(s, c)| {
                    let e = energy_wh(s.config().platform.max_tdp_w, c.time_s);
                    (s, e_base / e)
                })
                .collect();
            (size, savings)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_formula_matches_paper() {
        // 225 W for 3600 s is exactly 225 Wh.
        assert!((energy_wh(225.0, 3600.0) - 225.0).abs() < 1e-12);
        assert!((energy_wh(260.0, 1800.0) - 130.0).abs() < 1e-12);
    }

    #[test]
    fn single_mic_reaches_large_savings_on_big_data() {
        // Figure 5: up to ≈2.3× less energy on the largest datasets.
        let trace = WorkloadTrace::synthetic_search(10_000);
        let series = fig5_energy_savings(&trace);
        let (_, last) = series.last().unwrap();
        let phi1 = last.iter().find(|(s, _)| *s == SystemId::Phi1).unwrap().1;
        assert!((2.0..2.7).contains(&phi1), "Phi1 savings {phi1}");
    }

    #[test]
    fn second_card_reduces_energy_efficiency() {
        // Figure 5: "Adding a second MIC card reduces the energy
        // efficiency on all datasets."
        let trace = WorkloadTrace::synthetic_search(10_000);
        for (size, row) in fig5_energy_savings(&trace) {
            let get = |id| row.iter().find(|(s, _)| *s == id).unwrap().1;
            assert!(
                get(SystemId::Phi2) <= get(SystemId::Phi1) + 1e-9,
                "size {size}"
            );
        }
    }

    #[test]
    fn dual_mic_still_beats_cpus_on_large_data() {
        // Figure 5: "for alignments over 500K sites, the double-MIC
        // configuration is still significantly more efficient than
        // both CPU systems".
        let trace = WorkloadTrace::synthetic_search(10_000);
        for (size, row) in fig5_energy_savings(&trace) {
            if size >= 500_000 {
                let get = |id| row.iter().find(|(s, _)| *s == id).unwrap().1;
                assert!(get(SystemId::Phi2) > get(SystemId::E5_2680), "size {size}");
                assert!(get(SystemId::Phi2) > get(SystemId::E5_2630), "size {size}");
            }
        }
    }

    #[test]
    fn baseline_savings_is_one() {
        let trace = WorkloadTrace::synthetic_search(10_000);
        for (_, row) in fig5_energy_savings(&trace) {
            let b = row.iter().find(|(s, _)| *s == SystemId::E5_2680).unwrap().1;
            assert!((b - 1.0).abs() < 1e-12);
        }
    }
}
