//! Per-site operation counts of the four PLF kernels (DNA, GTR+Γ).
//!
//! Derived from the kernel structure in `plf-core` (and §IV/§V of the
//! paper): a CLA site is 16 doubles (128 B), `newview` reads two child
//! CLAs and streams one out, etc. `derivativeSum` is charged as the
//! paper characterizes it — a pure element-wise multiply (Figure 2) —
//! because in RAxML the eigen-basis projection that our Rust kernel
//! folds in is amortized into `newview`'s transformed storage.

use plf_core::KernelId;

/// Static cost model of one kernel.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct KernelModel {
    /// Floating-point operations per pattern-site.
    pub flops_per_site: f64,
    /// Bytes moved to/from memory per pattern-site (CLA traffic;
    /// P-matrices and LUTs stay cache-resident).
    pub bytes_per_site: f64,
}

/// Cost model for a kernel:
///
/// * `newview` — two fused 4×4 mat-vecs per category (256 flops) plus
///   16 multiplies; reads 2 CLAs (256 B), streams 1 CLA out (128 B).
/// * `evaluate` — one mat-vec (128 flops), 32 reduction flops, one
///   `log` (~40 flop-equivalents); reads 2 CLAs.
/// * `derivativeSum` — 16 multiplies; reads 2 CLAs, streams the
///   sumtable out.
/// * `derivativeCore` — three 16-wide weighted reductions (96 flops)
///   plus divisions (~4 flop-equivalents ×1); reads the sumtable plus
///   the weight vector.
pub fn kernel_model(kernel: KernelId) -> KernelModel {
    match kernel {
        KernelId::Newview => KernelModel {
            flops_per_site: 280.0,
            bytes_per_site: 384.0,
        },
        KernelId::Evaluate => KernelModel {
            flops_per_site: 200.0,
            bytes_per_site: 256.0,
        },
        KernelId::DerivativeSum => KernelModel {
            flops_per_site: 16.0,
            bytes_per_site: 384.0,
        },
        KernelId::DerivativeCore => KernelModel {
            flops_per_site: 100.0,
            bytes_per_site: 136.0,
        },
    }
}

/// Arithmetic intensity (flops per byte) of a kernel.
pub fn arithmetic_intensity(kernel: KernelId) -> f64 {
    let m = kernel_model(kernel);
    m.flops_per_site / m.bytes_per_site
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derivative_sum_is_most_memory_bound() {
        // The paper's Figure 3 rationale: derivativeSum is a "simple
        // element-wise multiplication ... which can be efficiently
        // vectorized" and is purely bandwidth-limited.
        let ds = arithmetic_intensity(KernelId::DerivativeSum);
        for k in [
            KernelId::Newview,
            KernelId::Evaluate,
            KernelId::DerivativeCore,
        ] {
            assert!(ds < arithmetic_intensity(k), "{k:?}");
        }
    }

    #[test]
    fn cla_traffic_consistent_with_site_stride() {
        // newview reads 2 CLAs and writes 1: 3 × 128 B.
        let m = kernel_model(KernelId::Newview);
        assert_eq!(m.bytes_per_site, 3.0 * 128.0);
        let e = kernel_model(KernelId::Evaluate);
        assert_eq!(e.bytes_per_site, 2.0 * 128.0);
    }
}
