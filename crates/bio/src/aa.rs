//! 20-bit encoded amino-acid alphabet with IUPAC ambiguity support.
//!
//! The protein counterpart of [`crate::alphabet`], supporting the
//! paper's §VII extension. Each residue is a 20-bit mask in the
//! canonical ARNDCQEGHILKMFPSTWYV order; `B` (Asx) is D|N, `Z` (Glx)
//! is E|Q, `J` is I|L, and `X`/`-`/`?`/`*` are fully undetermined.

use crate::error::BioError;

/// Number of amino-acid states.
pub const NUM_AA_STATES: usize = 20;

/// Canonical residue order (matches PAML/RAxML conventions).
pub const AA_CHARS: [char; NUM_AA_STATES] = [
    'A', 'R', 'N', 'D', 'C', 'Q', 'E', 'G', 'H', 'I', 'L', 'K', 'M', 'F', 'P', 'S', 'T', 'W', 'Y',
    'V',
];

/// Mask of all 20 states.
const ALL: u32 = (1 << NUM_AA_STATES) - 1;

/// A 20-bit encoded amino-acid character (possibly ambiguous). The
/// wrapped mask is always non-zero and within 20 bits.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct AaCode(u32);

impl AaCode {
    /// Creates a code from a raw bitmask.
    pub fn from_bits(bits: u32) -> Result<Self, BioError> {
        if bits == 0 || bits > ALL {
            Err(BioError::InvalidCode((bits & 0xff) as u8))
        } else {
            Ok(AaCode(bits))
        }
    }

    /// The unambiguous code of state index `s`.
    ///
    /// # Panics
    /// Panics when `s >= 20`.
    pub fn from_state(s: usize) -> Self {
        assert!(s < NUM_AA_STATES);
        AaCode(1 << s)
    }

    /// Parses a one-letter amino-acid code (case-insensitive).
    pub fn from_char(c: char) -> Result<Self, BioError> {
        let upper = c.to_ascii_uppercase();
        if let Some(s) = AA_CHARS.iter().position(|&a| a == upper) {
            return Ok(AaCode(1 << s));
        }
        let state_bit = |ch: char| 1u32 << AA_CHARS.iter().position(|&a| a == ch).unwrap();
        let bits = match upper {
            'B' => state_bit('D') | state_bit('N'),
            'Z' => state_bit('E') | state_bit('Q'),
            'J' => state_bit('I') | state_bit('L'),
            'X' | '-' | '?' | '*' | '.' => ALL,
            other => return Err(BioError::InvalidChar(other)),
        };
        Ok(AaCode(bits))
    }

    /// The canonical character: the residue letter when unambiguous,
    /// `B`/`Z`/`J` for the standard two-fold ambiguities, `X`
    /// otherwise.
    pub fn to_char(self) -> char {
        if let Some(s) = self.state() {
            return AA_CHARS[s];
        }
        let of = |ch: char| 1u32 << AA_CHARS.iter().position(|&a| a == ch).unwrap();
        match self.0 {
            b if b == of('D') | of('N') => 'B',
            b if b == of('E') | of('Q') => 'Z',
            b if b == of('I') | of('L') => 'J',
            _ => 'X',
        }
    }

    /// Raw 20-bit mask.
    #[inline]
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Whether exactly one residue is compatible.
    #[inline]
    pub fn is_unambiguous(self) -> bool {
        self.0.count_ones() == 1
    }

    /// Whether the code is fully undetermined.
    #[inline]
    pub fn is_gap(self) -> bool {
        self.0 == ALL
    }

    /// State index for an unambiguous code.
    #[inline]
    pub fn state(self) -> Option<usize> {
        if self.is_unambiguous() {
            Some(self.0.trailing_zeros() as usize)
        } else {
            None
        }
    }

    /// Whether state `s` is compatible with this code.
    #[inline]
    pub fn allows(self, s: usize) -> bool {
        debug_assert!(s < NUM_AA_STATES);
        self.0 & (1 << s) != 0
    }

    /// Iterator over compatible state indices.
    pub fn states(self) -> impl Iterator<Item = usize> {
        let bits = self.0;
        (0..NUM_AA_STATES).filter(move |&s| bits & (1 << s) != 0)
    }
}

impl std::fmt::Debug for AaCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AaCode({})", self.to_char())
    }
}

/// Parses a protein sequence string into codes (whitespace ignored).
pub fn parse_aa_sequence(s: &str) -> Result<Vec<AaCode>, BioError> {
    s.chars()
        .filter(|c| !c.is_whitespace())
        .map(AaCode::from_char)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_residues_roundtrip() {
        for (i, &c) in AA_CHARS.iter().enumerate() {
            let code = AaCode::from_char(c).unwrap();
            assert_eq!(code.state(), Some(i));
            assert_eq!(code.to_char(), c);
            assert_eq!(AaCode::from_state(i), code);
        }
    }

    #[test]
    fn ambiguity_codes() {
        let b = AaCode::from_char('B').unwrap();
        assert!(b.allows(2) && b.allows(3)); // N=2, D=3
        assert_eq!(b.states().count(), 2);
        assert_eq!(b.to_char(), 'B');
        let z = AaCode::from_char('z').unwrap();
        assert_eq!(z.states().count(), 2);
        assert_eq!(z.to_char(), 'Z');
        let j = AaCode::from_char('J').unwrap();
        assert!(j.allows(9) && j.allows(10)); // I, L
    }

    #[test]
    fn gap_aliases() {
        for c in ['X', '-', '?', '*', '.'] {
            let code = AaCode::from_char(c).unwrap();
            assert!(code.is_gap());
            assert_eq!(code.states().count(), 20);
            assert_eq!(code.to_char(), 'X');
        }
    }

    #[test]
    fn invalid_rejected() {
        assert!(AaCode::from_char('U').is_err()); // selenocysteine unsupported
        assert!(AaCode::from_char('1').is_err());
        assert!(AaCode::from_bits(0).is_err());
        assert!(AaCode::from_bits(1 << 20).is_err());
    }

    #[test]
    fn parse_sequence() {
        let codes = parse_aa_sequence("ARND CQEG").unwrap();
        assert_eq!(codes.len(), 8);
        assert_eq!(codes[0].state(), Some(0));
        assert!(parse_aa_sequence("AR#").is_err());
    }
}
