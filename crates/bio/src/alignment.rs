//! Rectangular multiple sequence alignments.

use crate::alphabet::{DnaCode, NUM_STATES};
use crate::error::BioError;
use crate::sequence::Sequence;

/// A multiple sequence alignment: `n` taxa × `m` sites, all rows the
/// same length, taxon names unique.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Alignment {
    sequences: Vec<Sequence>,
    width: usize,
}

impl Alignment {
    /// Builds an alignment from sequences, validating rectangularity and
    /// name uniqueness.
    pub fn new(sequences: Vec<Sequence>) -> Result<Self, BioError> {
        let width = match sequences.first() {
            None => return Err(BioError::EmptyAlignment),
            Some(s) => s.len(),
        };
        if width == 0 {
            return Err(BioError::EmptyAlignment);
        }
        let mut names = std::collections::HashSet::new();
        for s in &sequences {
            if s.len() != width {
                return Err(BioError::RaggedAlignment {
                    name: s.name().to_string(),
                    len: s.len(),
                    expected: width,
                });
            }
            if !names.insert(s.name().to_string()) {
                return Err(BioError::DuplicateName(s.name().to_string()));
            }
        }
        Ok(Alignment { sequences, width })
    }

    /// Number of taxa (`n`).
    pub fn num_taxa(&self) -> usize {
        self.sequences.len()
    }

    /// Alignment width in sites (`m`).
    pub fn num_sites(&self) -> usize {
        self.width
    }

    /// The sequences, in row order.
    pub fn sequences(&self) -> &[Sequence] {
        &self.sequences
    }

    /// Row `t`.
    pub fn sequence(&self, t: usize) -> &Sequence {
        &self.sequences[t]
    }

    /// All taxon names, in row order.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.sequences.iter().map(|s| s.name())
    }

    /// Index of the taxon with the given name.
    pub fn taxon_index(&self, name: &str) -> Option<usize> {
        self.sequences.iter().position(|s| s.name() == name)
    }

    /// The alignment column at site `site` (one code per taxon).
    pub fn column(&self, site: usize) -> Vec<DnaCode> {
        self.sequences.iter().map(|s| s.get(site)).collect()
    }

    /// Empirical base frequencies over all unambiguous characters, with
    /// a pseudocount of 1 per state so no frequency is ever zero.
    pub fn empirical_frequencies(&self) -> [f64; NUM_STATES] {
        let mut counts = [1.0f64; NUM_STATES];
        for s in &self.sequences {
            for c in s.codes() {
                if let Some(state) = c.state() {
                    counts[state] += 1.0;
                }
            }
        }
        let total: f64 = counts.iter().sum();
        counts.map(|c| c / total)
    }

    /// Extracts the contiguous site range `[from, to)` as a new
    /// alignment (used for partitioned analyses).
    pub fn slice_sites(&self, from: usize, to: usize) -> Result<Alignment, BioError> {
        if from >= to || to > self.width {
            return Err(BioError::EmptyAlignment);
        }
        let sequences = self
            .sequences
            .iter()
            .map(|s| Sequence::new(s.name(), s.codes()[from..to].to_vec()))
            .collect();
        Alignment::new(sequences)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy() -> Alignment {
        Alignment::new(vec![
            Sequence::from_str_named("a", "ACGT").unwrap(),
            Sequence::from_str_named("b", "ACGA").unwrap(),
            Sequence::from_str_named("c", "TCGA").unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn dimensions() {
        let a = toy();
        assert_eq!(a.num_taxa(), 3);
        assert_eq!(a.num_sites(), 4);
    }

    #[test]
    fn ragged_rejected() {
        let r = Alignment::new(vec![
            Sequence::from_str_named("a", "ACGT").unwrap(),
            Sequence::from_str_named("b", "ACG").unwrap(),
        ]);
        assert!(matches!(r, Err(BioError::RaggedAlignment { .. })));
    }

    #[test]
    fn duplicate_names_rejected() {
        let r = Alignment::new(vec![
            Sequence::from_str_named("a", "AC").unwrap(),
            Sequence::from_str_named("a", "GT").unwrap(),
        ]);
        assert!(matches!(r, Err(BioError::DuplicateName(_))));
    }

    #[test]
    fn empty_rejected() {
        assert!(matches!(
            Alignment::new(vec![]),
            Err(BioError::EmptyAlignment)
        ));
        let zero_width = Sequence::from_str_named("a", "").unwrap();
        assert!(Alignment::new(vec![zero_width]).is_err());
    }

    #[test]
    fn column_extraction() {
        let a = toy();
        let col0: String = a.column(0).iter().map(|c| c.to_char()).collect();
        assert_eq!(col0, "AAT");
    }

    #[test]
    fn empirical_frequencies_sum_to_one_and_reflect_counts() {
        let a = toy();
        let f = a.empirical_frequencies();
        let sum: f64 = f.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        // 'C' and 'G' appear 3 times each; 'A' 4 times; 'T' 2 times.
        assert!(f[0] > f[3]);
    }

    #[test]
    fn pseudocount_prevents_zero_frequencies() {
        let a = Alignment::new(vec![
            Sequence::from_str_named("a", "AAAA").unwrap(),
            Sequence::from_str_named("b", "AAAA").unwrap(),
        ])
        .unwrap();
        let f = a.empirical_frequencies();
        assert!(f.iter().all(|&x| x > 0.0));
    }

    #[test]
    fn slicing() {
        let a = toy();
        let s = a.slice_sites(1, 3).unwrap();
        assert_eq!(s.num_sites(), 2);
        assert_eq!(s.sequence(0).to_iupac_string(), "CG");
        assert!(a.slice_sites(3, 3).is_err());
        assert!(a.slice_sites(0, 9).is_err());
    }

    #[test]
    fn taxon_lookup() {
        let a = toy();
        assert_eq!(a.taxon_index("b"), Some(1));
        assert_eq!(a.taxon_index("zz"), None);
    }
}
