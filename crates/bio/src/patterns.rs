//! Site-pattern compression.
//!
//! Identical alignment columns contribute identical per-site likelihood
//! terms, so likelihood programs collapse them into unique *patterns*
//! with integer multiplicities (weights). The paper's Table III sizes
//! datasets in "alignment patterns"; this module is what turns an
//! [`Alignment`] into that representation.

use crate::alignment::Alignment;
use crate::alphabet::DnaCode;
use crate::error::BioError;
use std::collections::HashMap;

/// One unique alignment column together with its multiplicity.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SitePattern {
    /// One code per taxon, in alignment row order.
    pub column: Vec<DnaCode>,
    /// Number of original alignment sites exhibiting this column.
    pub weight: u32,
}

/// A pattern-compressed alignment: the tip data actually fed to the
/// likelihood kernels.
///
/// Layout: per-taxon contiguous code rows over patterns (not columns),
/// which is the access order of `newview` tip cases.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CompressedAlignment {
    names: Vec<String>,
    /// `rows[t][p]` = code of taxon `t` at pattern `p`.
    rows: Vec<Vec<DnaCode>>,
    weights: Vec<u32>,
    original_sites: usize,
    /// Map pattern index -> first original site exhibiting it.
    representative_site: Vec<usize>,
}

impl CompressedAlignment {
    /// Compresses an alignment into unique weighted patterns.
    ///
    /// Pattern order is order of first appearance, which makes the
    /// compression deterministic and the mapping back to sites stable.
    pub fn from_alignment(aln: &Alignment) -> Self {
        let n = aln.num_taxa();
        let m = aln.num_sites();
        let mut index: HashMap<Vec<u8>, usize> = HashMap::new();
        let mut rows: Vec<Vec<DnaCode>> = vec![Vec::new(); n];
        let mut weights: Vec<u32> = Vec::new();
        let mut representative_site = Vec::new();

        let mut key = Vec::with_capacity(n);
        for site in 0..m {
            key.clear();
            for t in 0..n {
                key.push(aln.sequence(t).get(site).bits());
            }
            match index.get(&key) {
                Some(&p) => weights[p] += 1,
                None => {
                    let p = weights.len();
                    index.insert(key.clone(), p);
                    weights.push(1);
                    representative_site.push(site);
                    for t in 0..n {
                        rows[t].push(aln.sequence(t).get(site));
                    }
                    debug_assert_eq!(rows[0].len(), p + 1);
                }
            }
        }

        CompressedAlignment {
            names: aln.names().map(str::to_string).collect(),
            rows,
            weights,
            original_sites: m,
            representative_site,
        }
    }

    /// Builds a compressed alignment directly from per-taxon pattern
    /// rows and weights (used by simulators that generate patterns
    /// without materializing the full alignment).
    pub fn from_parts(
        names: Vec<String>,
        rows: Vec<Vec<DnaCode>>,
        weights: Vec<u32>,
    ) -> Result<Self, BioError> {
        if rows.is_empty() || weights.is_empty() {
            return Err(BioError::EmptyAlignment);
        }
        if names.len() != rows.len() {
            return Err(BioError::EmptyAlignment);
        }
        for r in &rows {
            if r.len() != weights.len() {
                return Err(BioError::RaggedAlignment {
                    name: "<pattern row>".into(),
                    len: r.len(),
                    expected: weights.len(),
                });
            }
        }
        let original_sites = weights.iter().map(|&w| w as usize).sum();
        let representative_site = {
            // Representative sites are synthetic here: cumulative weight
            // offsets, i.e. patterns laid out consecutively.
            let mut v = Vec::with_capacity(weights.len());
            let mut acc = 0usize;
            for &w in &weights {
                v.push(acc);
                acc += w as usize;
            }
            v
        };
        Ok(CompressedAlignment {
            names,
            rows,
            weights,
            original_sites,
            representative_site,
        })
    }

    /// Number of taxa.
    pub fn num_taxa(&self) -> usize {
        self.rows.len()
    }

    /// Number of unique patterns.
    pub fn num_patterns(&self) -> usize {
        self.weights.len()
    }

    /// Width of the original (uncompressed) alignment.
    pub fn original_sites(&self) -> usize {
        self.original_sites
    }

    /// Pattern multiplicities.
    pub fn weights(&self) -> &[u32] {
        &self.weights
    }

    /// Taxon names, in row order.
    pub fn names(&self) -> &[String] {
        &self.names
    }

    /// Codes of taxon `t` across patterns.
    pub fn row(&self, t: usize) -> &[DnaCode] {
        &self.rows[t]
    }

    /// Index of the taxon with the given name.
    pub fn taxon_index(&self, name: &str) -> Option<usize> {
        self.names.iter().position(|n| n == name)
    }

    /// First original site that exhibits pattern `p`.
    pub fn representative_site(&self, p: usize) -> usize {
        self.representative_site[p]
    }

    /// One weighted pattern.
    pub fn pattern(&self, p: usize) -> SitePattern {
        SitePattern {
            column: self.rows.iter().map(|r| r[p]).collect(),
            weight: self.weights[p],
        }
    }

    /// Empirical base frequencies weighted by pattern multiplicity, with
    /// a pseudocount of 1 per state.
    pub fn empirical_frequencies(&self) -> [f64; 4] {
        let mut counts = [1.0f64; 4];
        for (p, &w) in self.weights.iter().enumerate() {
            for row in &self.rows {
                if let Some(state) = row[p].state() {
                    counts[state] += w as f64;
                }
            }
        }
        let total: f64 = counts.iter().sum();
        counts.map(|c| c / total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sequence::Sequence;

    fn aln(rows: &[(&str, &str)]) -> Alignment {
        Alignment::new(
            rows.iter()
                .map(|(n, s)| Sequence::from_str_named(*n, s).unwrap())
                .collect(),
        )
        .unwrap()
    }

    #[test]
    fn identical_columns_collapse() {
        let a = aln(&[("a", "AAGA"), ("b", "CCTC"), ("c", "GGAG")]);
        let c = CompressedAlignment::from_alignment(&a);
        assert_eq!(c.num_patterns(), 2);
        assert_eq!(c.weights(), &[3, 1]);
        assert_eq!(c.original_sites(), 4);
    }

    #[test]
    fn weights_sum_to_original_width() {
        let a = aln(&[("a", "ACGTACGTAC"), ("b", "ACGTACGTCC")]);
        let c = CompressedAlignment::from_alignment(&a);
        let total: u32 = c.weights().iter().sum();
        assert_eq!(total as usize, a.num_sites());
    }

    #[test]
    fn pattern_order_is_first_appearance() {
        let a = aln(&[("a", "GATG"), ("b", "GATG")]);
        let c = CompressedAlignment::from_alignment(&a);
        assert_eq!(c.num_patterns(), 3);
        assert_eq!(c.row(0)[0].to_char(), 'G');
        assert_eq!(c.row(0)[1].to_char(), 'A');
        assert_eq!(c.row(0)[2].to_char(), 'T');
        assert_eq!(c.representative_site(0), 0);
        assert_eq!(c.representative_site(2), 2);
    }

    #[test]
    fn ambiguity_distinguishes_patterns() {
        // Column {A,N} differs from column {A,A}.
        let a = aln(&[("a", "AA"), ("b", "AN")]);
        let c = CompressedAlignment::from_alignment(&a);
        assert_eq!(c.num_patterns(), 2);
    }

    #[test]
    fn pattern_accessor_matches_rows() {
        let a = aln(&[("a", "ACA"), ("b", "GTG")]);
        let c = CompressedAlignment::from_alignment(&a);
        let p = c.pattern(0);
        assert_eq!(p.weight, 2);
        assert_eq!(p.column.len(), 2);
        assert_eq!(p.column[1].to_char(), 'G');
    }

    #[test]
    fn from_parts_validates() {
        use crate::alphabet::DnaCode;
        let a = DnaCode::from_char('A').unwrap();
        let ok = CompressedAlignment::from_parts(
            vec!["x".into(), "y".into()],
            vec![vec![a, a], vec![a, a]],
            vec![2, 3],
        )
        .unwrap();
        assert_eq!(ok.original_sites(), 5);
        assert_eq!(ok.representative_site(1), 2);

        let ragged = CompressedAlignment::from_parts(
            vec!["x".into(), "y".into()],
            vec![vec![a], vec![a, a]],
            vec![1, 1],
        );
        assert!(ragged.is_err());
        let empty = CompressedAlignment::from_parts(vec![], vec![], vec![]);
        assert!(empty.is_err());
    }

    #[test]
    fn frequencies_respect_weights() {
        let a = aln(&[("a", "AAAG"), ("b", "AAAG")]);
        let c = CompressedAlignment::from_alignment(&a);
        let f = c.empirical_frequencies();
        assert!(f[0] > f[2]);
        assert!((f.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }
}
