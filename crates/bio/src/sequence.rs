//! A named, 4-bit encoded DNA sequence.

use crate::alphabet::DnaCode;
use crate::error::BioError;

/// A named DNA sequence stored as 4-bit codes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Sequence {
    name: String,
    codes: Vec<DnaCode>,
}

impl Sequence {
    /// Creates a sequence from pre-encoded codes.
    pub fn new(name: impl Into<String>, codes: Vec<DnaCode>) -> Self {
        Sequence {
            name: name.into(),
            codes,
        }
    }

    /// Parses a sequence from an ASCII string of IUPAC characters.
    /// Whitespace inside the string is ignored (PHYLIP interleaving).
    pub fn from_str_named(name: impl Into<String>, s: &str) -> Result<Self, BioError> {
        let mut codes = Vec::with_capacity(s.len());
        for c in s.chars() {
            if c.is_whitespace() {
                continue;
            }
            codes.push(DnaCode::from_char(c)?);
        }
        Ok(Sequence {
            name: name.into(),
            codes,
        })
    }

    /// Taxon name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of characters.
    pub fn len(&self) -> usize {
        self.codes.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.codes.is_empty()
    }

    /// The encoded characters.
    pub fn codes(&self) -> &[DnaCode] {
        &self.codes
    }

    /// Character at position `i`.
    pub fn get(&self, i: usize) -> DnaCode {
        self.codes[i]
    }

    /// Renders the sequence as an IUPAC character string.
    pub fn to_iupac_string(&self) -> String {
        self.codes.iter().map(|c| c.to_char()).collect()
    }

    /// Fraction of fully undetermined characters (gaps / `N`).
    pub fn gap_fraction(&self) -> f64 {
        if self.codes.is_empty() {
            return 0.0;
        }
        let gaps = self.codes.iter().filter(|c| c.is_gap()).count();
        gaps as f64 / self.codes.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_render_roundtrip() {
        let s = Sequence::from_str_named("t1", "ACGTNRY").unwrap();
        assert_eq!(s.len(), 7);
        assert_eq!(s.to_iupac_string(), "ACGTNRY");
        assert_eq!(s.name(), "t1");
    }

    #[test]
    fn whitespace_ignored() {
        let s = Sequence::from_str_named("t", "AC GT\tAC\nGT").unwrap();
        assert_eq!(s.to_iupac_string(), "ACGTACGT");
    }

    #[test]
    fn invalid_char_propagates() {
        assert!(Sequence::from_str_named("t", "ACZ").is_err());
    }

    #[test]
    fn gap_fraction_counts_only_full_gaps() {
        let s = Sequence::from_str_named("t", "A-N?R").unwrap();
        // '-', 'N', '?' are gaps; 'R' is partial ambiguity, not a gap.
        assert!((s.gap_fraction() - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn empty_sequence() {
        let s = Sequence::from_str_named("t", "").unwrap();
        assert!(s.is_empty());
        assert_eq!(s.gap_fraction(), 0.0);
    }
}
