#![warn(missing_docs)]
#![allow(clippy::needless_range_loop)] // index loops mirror the paper's kernel notation; reference constants keep full printed precision
//! Biological sequence substrate for the phylomic workspace.
//!
//! This crate provides everything the likelihood machinery needs to know
//! about molecular data:
//!
//! * a 4-bit encoded DNA alphabet with full IUPAC ambiguity support
//!   ([`alphabet`]),
//! * named sequences and rectangular multiple sequence alignments
//!   ([`sequence`], [`alignment`]),
//! * site-pattern compression — collapsing identical alignment columns
//!   into weighted *patterns*, the unit in which the paper's Table III
//!   reports dataset sizes ([`patterns`]),
//! * FASTA and (relaxed) PHYLIP readers and writers ([`fasta`],
//!   [`phylip`]).
//!
//! The encoding convention follows RAxML: a DNA character is a 4-bit
//! mask over the states `A=1, C=2, G=4, T=8`; ambiguity codes are unions
//! of bits and the fully-undetermined state (`-`, `?`, `N`) is `0b1111`.
//! This makes tip-state likelihood lookup a table index, which is what
//! the tip-handling fast paths in `plf-core` rely on.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod aa;
pub mod alignment;
pub mod alphabet;
pub mod error;
pub mod fasta;
pub mod patterns;
pub mod phylip;
pub mod sequence;

pub use alignment::Alignment;
pub use alphabet::{DnaCode, NUM_DNA_CODES, NUM_STATES};
pub use error::BioError;
pub use patterns::{CompressedAlignment, SitePattern};
pub use sequence::Sequence;
