//! Error type shared by the sequence substrate.

/// Errors produced while constructing or parsing sequence data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BioError {
    /// A character that is not a valid IUPAC nucleotide code.
    InvalidChar(char),
    /// A raw bitmask outside `1..=15`.
    InvalidCode(u8),
    /// Sequences of unequal length were combined into an alignment.
    RaggedAlignment {
        /// Name of the offending sequence.
        name: String,
        /// Its length.
        len: usize,
        /// The expected alignment width.
        expected: usize,
    },
    /// An alignment with no taxa or no sites.
    EmptyAlignment,
    /// Two sequences in one alignment share a name.
    DuplicateName(String),
    /// A malformed input file.
    Parse {
        /// 1-based line number where the problem was detected.
        line: usize,
        /// Human-readable description.
        msg: String,
    },
    /// An I/O failure while reading or writing.
    Io(String),
}

impl std::fmt::Display for BioError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BioError::InvalidChar(c) => write!(f, "invalid nucleotide character {c:?}"),
            BioError::InvalidCode(b) => write!(f, "invalid 4-bit nucleotide mask {b:#06b}"),
            BioError::RaggedAlignment {
                name,
                len,
                expected,
            } => write!(
                f,
                "sequence {name:?} has length {len}, expected {expected} (ragged alignment)"
            ),
            BioError::EmptyAlignment => write!(f, "alignment has no taxa or no sites"),
            BioError::DuplicateName(n) => write!(f, "duplicate taxon name {n:?}"),
            BioError::Parse { line, msg } => write!(f, "parse error at line {line}: {msg}"),
            BioError::Io(msg) => write!(f, "I/O error: {msg}"),
        }
    }
}

impl std::error::Error for BioError {}

impl From<std::io::Error> for BioError {
    fn from(e: std::io::Error) -> Self {
        BioError::Io(e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = BioError::RaggedAlignment {
            name: "taxon1".into(),
            len: 5,
            expected: 10,
        };
        let s = e.to_string();
        assert!(s.contains("taxon1") && s.contains('5') && s.contains("10"));
    }

    #[test]
    fn io_error_converts() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e: BioError = io.into();
        assert!(matches!(e, BioError::Io(_)));
    }
}
