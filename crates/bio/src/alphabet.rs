//! 4-bit DNA alphabet with IUPAC ambiguity codes.
//!
//! Each nucleotide character is a bitmask over the four states in RAxML
//! order `A=0b0001, C=0b0010, G=0b0100, T=0b1000`. An ambiguity code is
//! the union of the bits of its compatible states; the fully
//! undetermined characters (`N`, `?`, `-`, `X`, `O`) map to `0b1111`.
//! Code `0` is never produced by parsing and is rejected everywhere.

use crate::error::BioError;

/// Number of unambiguous DNA states.
pub const NUM_STATES: usize = 4;

/// Number of distinct 4-bit codes (`1..=15` are valid; `0` is invalid).
pub const NUM_DNA_CODES: usize = 16;

/// A 4-bit encoded DNA character (possibly ambiguous).
///
/// The wrapped value is always in `1..=15`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DnaCode(u8);

/// The four unambiguous states, indexable by state number 0..4.
pub const UNAMBIGUOUS: [DnaCode; NUM_STATES] = [
    DnaCode(0b0001), // A
    DnaCode(0b0010), // C
    DnaCode(0b0100), // G
    DnaCode(0b1000), // T
];

/// The fully undetermined character (gap / `N`).
pub const GAP: DnaCode = DnaCode(0b1111);

impl DnaCode {
    /// Creates a code from a raw 4-bit mask.
    ///
    /// Returns an error when the mask is `0` (no compatible state) or
    /// exceeds 4 bits.
    pub fn from_bits(bits: u8) -> Result<Self, BioError> {
        if bits == 0 || bits > 0b1111 {
            Err(BioError::InvalidCode(bits))
        } else {
            Ok(DnaCode(bits))
        }
    }

    /// Creates the unambiguous code for state index `state` (0=A, 1=C,
    /// 2=G, 3=T).
    ///
    /// # Panics
    /// Panics when `state >= 4`.
    pub fn from_state(state: usize) -> Self {
        UNAMBIGUOUS[state]
    }

    /// Parses an ASCII IUPAC nucleotide character (case-insensitive).
    pub fn from_char(c: char) -> Result<Self, BioError> {
        let bits = match c.to_ascii_uppercase() {
            'A' => 0b0001,
            'C' => 0b0010,
            'G' => 0b0100,
            'T' | 'U' => 0b1000,
            'M' => 0b0011, // A|C
            'R' => 0b0101, // A|G
            'W' => 0b1001, // A|T
            'S' => 0b0110, // C|G
            'Y' => 0b1010, // C|T
            'K' => 0b1100, // G|T
            'V' => 0b0111, // A|C|G
            'H' => 0b1011, // A|C|T
            'D' => 0b1101, // A|G|T
            'B' => 0b1110, // C|G|T
            'N' | '?' | '-' | 'X' | 'O' | '.' => 0b1111,
            other => return Err(BioError::InvalidChar(other)),
        };
        Ok(DnaCode(bits))
    }

    /// The canonical IUPAC character for this code.
    pub fn to_char(self) -> char {
        const CHARS: [char; 16] = [
            '!', 'A', 'C', 'M', 'G', 'R', 'S', 'V', 'T', 'W', 'Y', 'H', 'K', 'D', 'B', 'N',
        ];
        CHARS[self.0 as usize]
    }

    /// Raw 4-bit mask, guaranteed in `1..=15`.
    #[inline]
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Whether the code identifies exactly one state.
    #[inline]
    pub fn is_unambiguous(self) -> bool {
        self.0.count_ones() == 1
    }

    /// Whether the code is the fully undetermined character.
    #[inline]
    pub fn is_gap(self) -> bool {
        self.0 == 0b1111
    }

    /// State index for an unambiguous code, `None` otherwise.
    #[inline]
    pub fn state(self) -> Option<usize> {
        if self.is_unambiguous() {
            Some(self.0.trailing_zeros() as usize)
        } else {
            None
        }
    }

    /// Whether state index `s` is compatible with this code.
    #[inline]
    pub fn allows(self, s: usize) -> bool {
        debug_assert!(s < NUM_STATES);
        self.0 & (1 << s) != 0
    }

    /// Iterator over the state indices compatible with this code.
    pub fn states(self) -> impl Iterator<Item = usize> {
        let bits = self.0;
        (0..NUM_STATES).filter(move |&s| bits & (1 << s) != 0)
    }

    /// All 15 valid codes, in mask order.
    pub fn all() -> impl Iterator<Item = DnaCode> {
        (1u8..=15).map(DnaCode)
    }
}

impl std::fmt::Debug for DnaCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "DnaCode({})", self.to_char())
    }
}

impl std::fmt::Display for DnaCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.to_char())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unambiguous_roundtrip() {
        for (i, c) in ['A', 'C', 'G', 'T'].iter().enumerate() {
            let code = DnaCode::from_char(*c).unwrap();
            assert!(code.is_unambiguous());
            assert_eq!(code.state(), Some(i));
            assert_eq!(code.to_char(), *c);
            assert_eq!(DnaCode::from_state(i), code);
        }
    }

    #[test]
    fn ambiguity_masks_are_unions() {
        let r = DnaCode::from_char('R').unwrap();
        assert_eq!(r.bits(), 0b0101);
        assert!(r.allows(0) && r.allows(2));
        assert!(!r.allows(1) && !r.allows(3));
        assert_eq!(r.states().collect::<Vec<_>>(), vec![0, 2]);
    }

    #[test]
    fn gap_aliases() {
        for c in ['N', '?', '-', 'X', 'o', 'n', '.'] {
            assert!(DnaCode::from_char(c).unwrap().is_gap(), "char {c}");
        }
        assert_eq!(GAP.to_char(), 'N');
    }

    #[test]
    fn lowercase_accepted() {
        assert_eq!(
            DnaCode::from_char('g').unwrap(),
            DnaCode::from_char('G').unwrap()
        );
    }

    #[test]
    fn uracil_maps_to_t() {
        assert_eq!(
            DnaCode::from_char('U').unwrap(),
            DnaCode::from_char('T').unwrap()
        );
    }

    #[test]
    fn invalid_char_rejected() {
        assert!(matches!(
            DnaCode::from_char('Z'),
            Err(BioError::InvalidChar('Z'))
        ));
        assert!(DnaCode::from_char('1').is_err());
    }

    #[test]
    fn zero_mask_rejected() {
        assert!(DnaCode::from_bits(0).is_err());
        assert!(DnaCode::from_bits(16).is_err());
        assert!(DnaCode::from_bits(0b1111).is_ok());
    }

    #[test]
    fn all_codes_roundtrip_via_char() {
        for code in DnaCode::all() {
            let back = DnaCode::from_char(code.to_char()).unwrap();
            assert_eq!(code, back);
        }
    }

    #[test]
    fn all_yields_fifteen() {
        assert_eq!(DnaCode::all().count(), 15);
    }
}
