//! Relaxed sequential PHYLIP reading and writing.
//!
//! RAxML and ExaML consume "relaxed" PHYLIP: a header line with the
//! number of taxa and sites, then one record per taxon where the name is
//! whitespace-delimited (no 10-character limit) and the sequence may
//! continue over following lines until the declared width is reached.

use crate::alignment::Alignment;
use crate::error::BioError;
use crate::sequence::Sequence;
use std::io::{BufRead, Write};

/// Parses relaxed sequential PHYLIP text.
pub fn parse<R: BufRead>(reader: R) -> Result<Alignment, BioError> {
    let mut lines = reader.lines().enumerate();

    // Header: two whitespace-separated integers.
    let (header_line, header) = loop {
        match lines.next() {
            None => {
                return Err(BioError::Parse {
                    line: 0,
                    msg: "empty PHYLIP input".into(),
                })
            }
            Some((i, line)) => {
                let line = line?;
                if !line.trim().is_empty() {
                    break (i + 1, line);
                }
            }
        }
    };
    let mut it = header.split_whitespace();
    let parse_int = |tok: Option<&str>, what: &str| -> Result<usize, BioError> {
        tok.ok_or_else(|| BioError::Parse {
            line: header_line,
            msg: format!("missing {what} in header"),
        })?
        .parse()
        .map_err(|_| BioError::Parse {
            line: header_line,
            msg: format!("invalid {what} in header"),
        })
    };
    let ntaxa = parse_int(it.next(), "taxon count")?;
    let nsites = parse_int(it.next(), "site count")?;
    if ntaxa == 0 || nsites == 0 {
        return Err(BioError::EmptyAlignment);
    }

    let mut sequences = Vec::with_capacity(ntaxa);
    let mut current: Option<(String, String)> = None;

    for (i, line) in lines {
        let lineno = i + 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        match current.as_mut() {
            None => {
                let mut toks = trimmed.splitn(2, char::is_whitespace);
                let name = toks.next().unwrap().to_string();
                let data: String = toks
                    .next()
                    .unwrap_or("")
                    .chars()
                    .filter(|c| !c.is_whitespace())
                    .collect();
                current = Some((name, data));
            }
            Some((_, data)) => {
                data.extend(trimmed.chars().filter(|c| !c.is_whitespace()));
            }
        }
        if let Some((name, data)) = current.as_ref() {
            if data.len() > nsites {
                return Err(BioError::Parse {
                    line: lineno,
                    msg: format!(
                        "sequence {name:?} longer ({}) than declared width {nsites}",
                        data.len()
                    ),
                });
            }
            if data.len() == nsites {
                let (name, data) = current.take().unwrap();
                sequences.push(Sequence::from_str_named(name, &data)?);
            }
        }
    }

    if let Some((name, data)) = current {
        return Err(BioError::Parse {
            line: 0,
            msg: format!(
                "sequence {name:?} truncated: {} of {nsites} characters",
                data.len()
            ),
        });
    }
    if sequences.len() != ntaxa {
        return Err(BioError::Parse {
            line: 0,
            msg: format!("expected {ntaxa} taxa, found {}", sequences.len()),
        });
    }
    Alignment::new(sequences)
}

/// Parses PHYLIP from a string.
pub fn parse_str(s: &str) -> Result<Alignment, BioError> {
    parse(std::io::Cursor::new(s))
}

/// Writes an alignment in relaxed sequential PHYLIP format.
pub fn write<W: Write>(aln: &Alignment, mut out: W) -> Result<(), BioError> {
    writeln!(out, "{} {}", aln.num_taxa(), aln.num_sites())?;
    for s in aln.sequences() {
        writeln!(out, "{} {}", s.name(), s.to_iupac_string())?;
    }
    Ok(())
}

/// Renders an alignment to a PHYLIP string.
pub fn to_string(aln: &Alignment) -> String {
    let mut buf = Vec::new();
    write(aln, &mut buf).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("PHYLIP output is ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic() {
        let a = parse_str("2 4\nalpha ACGT\nbeta  TGCA\n").unwrap();
        assert_eq!(a.num_taxa(), 2);
        assert_eq!(a.sequence(1).to_iupac_string(), "TGCA");
    }

    #[test]
    fn multiline_records() {
        let a = parse_str("2 8\na ACGT\nACGT\nb TTTT\nAAAA\n").unwrap();
        assert_eq!(a.sequence(0).to_iupac_string(), "ACGTACGT");
        assert_eq!(a.sequence(1).to_iupac_string(), "TTTTAAAA");
    }

    #[test]
    fn spaces_inside_sequence_allowed() {
        let a = parse_str("1 8\na ACGT ACGT\n").unwrap();
        assert_eq!(a.num_sites(), 8);
    }

    #[test]
    fn header_errors() {
        assert!(parse_str("").is_err());
        assert!(parse_str("x y\n").is_err());
        assert!(parse_str("2\n").is_err());
        assert!(parse_str("0 4\n").is_err());
    }

    #[test]
    fn truncated_sequence_rejected() {
        let r = parse_str("2 8\na ACGT\nb ACGTACGT\n");
        assert!(r.is_err());
    }

    #[test]
    fn overlong_sequence_rejected() {
        let r = parse_str("1 4\na ACGTA\n");
        assert!(r.is_err());
    }

    #[test]
    fn wrong_taxon_count_rejected() {
        let r = parse_str("3 4\na ACGT\nb ACGT\n");
        assert!(r.is_err());
    }

    #[test]
    fn roundtrip() {
        let a = parse_str("3 6\nt1 ACGTNN\nt2 AARYKM\nt3 TTTTTT\n").unwrap();
        let b = parse_str(&to_string(&a)).unwrap();
        assert_eq!(a, b);
    }
}
