//! FASTA reading and writing.

use crate::alignment::Alignment;
use crate::error::BioError;
use crate::sequence::Sequence;
use std::io::{BufRead, Write};

/// Parses FASTA text into an [`Alignment`].
///
/// Header lines start with `>`; the taxon name is the first whitespace
/// separated token after it. Sequence data may span multiple lines.
pub fn parse<R: BufRead>(reader: R) -> Result<Alignment, BioError> {
    let mut sequences = Vec::new();
    let mut name: Option<String> = None;
    let mut data = String::new();

    let mut flush = |name: &mut Option<String>, data: &mut String, line: usize| {
        if let Some(n) = name.take() {
            if data.is_empty() {
                return Err(BioError::Parse {
                    line,
                    msg: format!("record {n:?} has no sequence data"),
                });
            }
            sequences.push(Sequence::from_str_named(n, data)?);
            data.clear();
        }
        Ok(())
    };

    let mut lineno = 0usize;
    for line in reader.lines() {
        lineno += 1;
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        if let Some(rest) = trimmed.strip_prefix('>') {
            flush(&mut name, &mut data, lineno)?;
            let n = rest.split_whitespace().next().unwrap_or("").to_string();
            if n.is_empty() {
                return Err(BioError::Parse {
                    line: lineno,
                    msg: "empty FASTA header".into(),
                });
            }
            name = Some(n);
        } else {
            if name.is_none() {
                return Err(BioError::Parse {
                    line: lineno,
                    msg: "sequence data before first header".into(),
                });
            }
            data.push_str(trimmed);
        }
    }
    flush(&mut name, &mut data, lineno)?;
    Alignment::new(sequences)
}

/// Parses FASTA from a string.
pub fn parse_str(s: &str) -> Result<Alignment, BioError> {
    parse(std::io::Cursor::new(s))
}

/// Writes an alignment as FASTA, wrapping sequence lines at `width`
/// characters (a `width` of 0 means no wrapping).
pub fn write<W: Write>(aln: &Alignment, mut out: W, width: usize) -> Result<(), BioError> {
    for s in aln.sequences() {
        writeln!(out, ">{}", s.name())?;
        let rendered = s.to_iupac_string();
        if width == 0 {
            writeln!(out, "{rendered}")?;
        } else {
            for chunk in rendered.as_bytes().chunks(width) {
                out.write_all(chunk)?;
                out.write_all(b"\n")?;
            }
        }
    }
    Ok(())
}

/// Renders an alignment to a FASTA string with 70-column wrapping.
pub fn to_string(aln: &Alignment) -> String {
    let mut buf = Vec::new();
    write(aln, &mut buf, 70).expect("writing to Vec cannot fail");
    String::from_utf8(buf).expect("FASTA output is ASCII")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_basic() {
        let a = parse_str(">a\nACGT\n>b\nAC\nGT\n").unwrap();
        assert_eq!(a.num_taxa(), 2);
        assert_eq!(a.sequence(1).to_iupac_string(), "ACGT");
    }

    #[test]
    fn header_takes_first_token() {
        let a = parse_str(">taxon_1 some description here\nACGT\n>b\nACGT\n").unwrap();
        assert_eq!(a.names().next().unwrap(), "taxon_1");
    }

    #[test]
    fn blank_lines_ignored() {
        let a = parse_str("\n>a\n\nAC\nGT\n\n>b\nACGT\n").unwrap();
        assert_eq!(a.num_sites(), 4);
    }

    #[test]
    fn data_before_header_rejected() {
        assert!(matches!(
            parse_str("ACGT\n>a\nACGT\n"),
            Err(BioError::Parse { line: 1, .. })
        ));
    }

    #[test]
    fn empty_record_rejected() {
        assert!(parse_str(">a\n>b\nACGT\n").is_err());
        assert!(parse_str(">a\nACGT\n>b\n").is_err());
    }

    #[test]
    fn empty_header_rejected() {
        assert!(parse_str(">\nACGT\n").is_err());
    }

    #[test]
    fn roundtrip() {
        let a = parse_str(">a\nACGTRYKM\n>b\nNNNNACGT\n").unwrap();
        let text = to_string(&a);
        let b = parse_str(&text).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn wrapping_at_width() {
        let a = parse_str(">a\nACGTACGT\n>b\nACGTACGT\n").unwrap();
        let mut buf = Vec::new();
        write(&a, &mut buf, 4).unwrap();
        let text = String::from_utf8(buf).unwrap();
        assert!(text.contains("ACGT\nACGT"));
        let b = parse_str(&text).unwrap();
        assert_eq!(a, b);
    }
}
