//! Topology rearrangements: NNI and SPR.
//!
//! RAxML-Light's search is built on *subtree pruning and regrafting*
//! (SPR) with a bounded regraft radius; *nearest-neighbor interchange*
//! (NNI) is the radius-1 special case, also used for local polishing.
//! Both moves preserve every arena invariant, so a search loop can
//! apply them in place.

use crate::error::TreeError;
use crate::tree::{EdgeId, NodeId, Tree};

/// Which of the two possible NNI rearrangements around an edge.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NniVariant {
    /// Swap the first neighbor of `u` with the first neighbor of `v`.
    First,
    /// Swap the first neighbor of `u` with the second neighbor of `v`.
    Second,
}

/// Performs a nearest-neighbor interchange across internal edge `e`.
///
/// Writing `e = (u, v)` with neighbor subtrees `A, B` on `u` and
/// `C, D` on `v` (in ascending edge-id order), the tree `((A,B),(C,D))`
/// becomes `((C,B),(A,D))` (variant `First`) or `((D,B),(C,A))`
/// (variant `Second`). Returns the pair of subtree edges that were
/// swapped; feeding that pair back into [`nni_swap`] undoes the move.
pub fn nni(tree: &mut Tree, e: EdgeId, variant: NniVariant) -> Result<(EdgeId, EdgeId), TreeError> {
    let (u, v) = tree.endpoints(e);
    if tree.is_tip(u) || tree.is_tip(v) {
        return Err(TreeError::InvalidMove(format!(
            "NNI requires an internal edge, edge {e} touches a tip"
        )));
    }
    let mut ua: Vec<EdgeId> = tree
        .incident(u)
        .iter()
        .copied()
        .filter(|&x| x != e)
        .collect();
    let mut va: Vec<EdgeId> = tree
        .incident(v)
        .iter()
        .copied()
        .filter(|&x| x != e)
        .collect();
    ua.sort_unstable();
    va.sort_unstable();
    debug_assert_eq!(ua.len(), 2);
    debug_assert_eq!(va.len(), 2);
    let ea = ua[0];
    let ec = match variant {
        NniVariant::First => va[0],
        NniVariant::Second => va[1],
    };
    nni_swap(tree, e, ea, ec)?;
    Ok((ea, ec))
}

/// Swaps the two subtrees hanging off edges `x` and `y`, which must be
/// attached to opposite endpoints of internal edge `e`. Calling
/// `nni_swap` twice with the same arguments is the identity.
pub fn nni_swap(tree: &mut Tree, e: EdgeId, x: EdgeId, y: EdgeId) -> Result<(), TreeError> {
    let (u, v) = tree.endpoints(e);
    if tree.is_tip(u) || tree.is_tip(v) {
        return Err(TreeError::InvalidMove(format!(
            "NNI requires an internal edge, edge {e} touches a tip"
        )));
    }
    let side_of = |edge: EdgeId| -> Option<NodeId> {
        if edge == e {
            return None;
        }
        if tree.incident(u).contains(&edge) {
            Some(u)
        } else if tree.incident(v).contains(&edge) {
            Some(v)
        } else {
            None
        }
    };
    match (side_of(x), side_of(y)) {
        (Some(su), Some(sv)) if su != sv => {
            tree.reattach_edge(x, su, sv);
            tree.reattach_edge(y, sv, su);
            debug_assert!(tree.validate().is_ok());
            Ok(())
        }
        _ => Err(TreeError::InvalidMove(format!(
            "edges {x} and {y} are not on opposite ends of edge {e}"
        ))),
    }
}

/// Description of an applied SPR move, sufficient to undo it.
#[derive(Clone, Copy, Debug)]
pub struct SprUndo {
    prune_edge: EdgeId,
    /// The inner attachment node that was dissolved and re-used.
    attachment: NodeId,
    /// Edge that was extended when the attachment node was dissolved.
    merged_edge: EdgeId,
    /// Its original endpoint lengths (merged_edge, removed_edge).
    merged_lengths: (f64, f64),
    /// The node the merged edge originally connected to `attachment`.
    merged_far: NodeId,
    /// The edge that was split at regraft time.
    regraft_edge: EdgeId,
    /// Original length of the regraft edge.
    regraft_length: f64,
    /// Endpoint of the regraft edge that was re-pointed at
    /// `attachment`.
    regraft_moved_end: NodeId,
    /// The edge re-used as the second half of the split.
    reused_edge: EdgeId,
}

/// Prunes the subtree hanging off `prune_edge` on the side of
/// `subtree_root`, and regrafts it into `regraft_edge`.
///
/// `prune_edge = (r, p)` where `r = subtree_root`; `p` must be an inner
/// node (the attachment point that travels with the pruned branch).
/// `regraft_edge` must lie in the remaining tree, not be incident to
/// `p`, and not be `prune_edge` itself.
///
/// The regraft edge `(s, t)` is split in half around `p`. Returns an
/// [`SprUndo`] that [`spr_undo`] can use to restore the exact previous
/// tree (topology and branch lengths).
pub fn spr(
    tree: &mut Tree,
    prune_edge: EdgeId,
    subtree_root: NodeId,
    regraft_edge: EdgeId,
) -> Result<SprUndo, TreeError> {
    let p = tree.other_end(prune_edge, subtree_root);
    if tree.is_tip(p) {
        return Err(TreeError::InvalidMove(
            "prune attachment point must be an inner node".into(),
        ));
    }
    if regraft_edge == prune_edge {
        return Err(TreeError::InvalidMove(
            "regraft onto the pruned edge".into(),
        ));
    }
    let others: Vec<EdgeId> = tree
        .incident(p)
        .iter()
        .copied()
        .filter(|&x| x != prune_edge)
        .collect();
    debug_assert_eq!(others.len(), 2);
    let (keep, drop) = (others[0], others[1]);
    if regraft_edge == keep || regraft_edge == drop {
        return Err(TreeError::InvalidMove(
            "regraft edge is incident to the attachment point".into(),
        ));
    }
    // The regraft edge must be on the *remaining* side, otherwise the
    // move would disconnect the tree. A node is on the remaining side
    // iff it is reachable from `p` without crossing the prune edge.
    {
        let (s, t) = tree.endpoints(regraft_edge);
        if !reachable_without(tree, p, s, prune_edge) || !reachable_without(tree, p, t, prune_edge)
        {
            return Err(TreeError::InvalidMove(
                "regraft edge lies inside the pruned subtree".into(),
            ));
        }
    }

    let keep_far = tree.other_end(keep, p);
    let drop_far = tree.other_end(drop, p);
    let (lk, ld) = (tree.length(keep), tree.length(drop));

    // Dissolve p: extend `keep` to reach drop_far, unhook `drop`.
    tree.reattach_edge(keep, p, drop_far);
    tree.set_length(keep, lk + ld)?;
    tree.detach_edge(drop, drop_far);
    tree.detach_edge(drop, p);

    // Split the regraft edge around p, re-using `drop` as the second
    // half.
    let (_s, t) = tree.endpoints(regraft_edge);
    let lre = tree.length(regraft_edge);
    let half = (lre / 2.0).max(crate::tree::BL_MIN);
    tree.reattach_edge(regraft_edge, t, p);
    tree.set_length(regraft_edge, half)?;
    tree.attach_edge(drop, p, t, half)?;

    debug_assert!(tree.validate().is_ok());
    Ok(SprUndo {
        prune_edge,
        attachment: p,
        merged_edge: keep,
        merged_lengths: (lk, ld),
        merged_far: keep_far,
        regraft_edge,
        regraft_length: lre,
        regraft_moved_end: t,
        reused_edge: drop,
    })
}

/// Reverts an SPR performed by [`spr`]. Must be called on the same tree
/// with no intervening modifications.
pub fn spr_undo(tree: &mut Tree, undo: SprUndo) -> Result<(), TreeError> {
    let p = undo.attachment;
    // Unsplit the regraft edge.
    let t = undo.regraft_moved_end;
    tree.detach_edge(undo.reused_edge, t);
    tree.detach_edge(undo.reused_edge, p);
    tree.reattach_edge(undo.regraft_edge, p, t);
    tree.set_length(undo.regraft_edge, undo.regraft_length)?;
    // Re-insert p into the merged edge.
    let far = tree.other_end(undo.merged_edge, undo.merged_far);
    tree.reattach_edge(undo.merged_edge, far, p);
    tree.set_length(undo.merged_edge, undo.merged_lengths.0)?;
    tree.attach_edge(undo.reused_edge, p, far, undo.merged_lengths.1)?;
    let _ = undo.prune_edge;
    debug_assert!(tree.validate().is_ok());
    Ok(())
}

/// Whether `target` is reachable from `from` without crossing `cut`.
fn reachable_without(tree: &Tree, from: NodeId, target: NodeId, cut: EdgeId) -> bool {
    let mut seen = vec![false; tree.num_nodes()];
    let mut stack = vec![from];
    seen[from] = true;
    while let Some(v) = stack.pop() {
        if v == target {
            return true;
        }
        for &e in tree.incident(v) {
            if e == cut {
                continue;
            }
            let w = tree.other_end(e, v);
            if !seen[w] {
                seen[w] = true;
                stack.push(w);
            }
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::newick::parse;

    fn six_taxon() -> Tree {
        parse("((a:0.1,b:0.2):0.3,c:0.4,(d:0.5,(e:0.6,f:0.7):0.8):0.9);").unwrap()
    }

    #[test]
    fn nni_changes_topology() {
        let mut t = six_taxon();
        let orig = t.clone();
        let e = t.internal_edges().next().unwrap();
        nni(&mut t, e, NniVariant::First).unwrap();
        t.validate().unwrap();
        assert!(t.rf_distance(&orig) > 0);
    }

    #[test]
    fn nni_swap_is_involutive() {
        let mut t = six_taxon();
        let orig = t.clone();
        for e in orig.internal_edges() {
            for v in [NniVariant::First, NniVariant::Second] {
                let (x, y) = nni(&mut t, e, v).unwrap();
                nni_swap(&mut t, e, x, y).unwrap();
                assert_eq!(t.rf_distance(&orig), 0, "edge {e} variant {v:?}");
            }
        }
    }

    #[test]
    fn nni_swap_rejects_same_side_edges() {
        let mut t = six_taxon();
        let e = t.internal_edges().next().unwrap();
        let (u, _v) = t.endpoints(e);
        let on_u: Vec<_> = t.incident(u).iter().copied().filter(|&x| x != e).collect();
        assert!(nni_swap(&mut t, e, on_u[0], on_u[1]).is_err());
        assert!(nni_swap(&mut t, e, e, on_u[0]).is_err());
    }

    #[test]
    fn nni_variants_differ() {
        let t0 = six_taxon();
        let e = t0.internal_edges().next().unwrap();
        let mut t1 = t0.clone();
        let mut t2 = t0.clone();
        nni(&mut t1, e, NniVariant::First).unwrap();
        nni(&mut t2, e, NniVariant::Second).unwrap();
        assert!(t1.rf_distance(&t2) > 0);
    }

    #[test]
    fn nni_rejects_terminal_edge() {
        let mut t = six_taxon();
        let a = t.tip_by_name("a").unwrap();
        let e = t.incident(a)[0];
        assert!(nni(&mut t, e, NniVariant::First).is_err());
    }

    #[test]
    fn spr_moves_subtree() {
        let mut t = six_taxon();
        let orig = t.clone();
        // Prune tip a (attachment = inner node joining a, b).
        let a = t.tip_by_name("a").unwrap();
        let prune = t.incident(a)[0];
        // Regraft onto f's pendant edge.
        let f = t.tip_by_name("f").unwrap();
        let target = t.incident(f)[0];
        spr(&mut t, prune, a, target).unwrap();
        t.validate().unwrap();
        assert!(t.rf_distance(&orig) > 0);
        // a and f are now adjacent through one inner node.
        let pa = t.other_end(t.incident(a)[0], a);
        let pf = t.other_end(t.incident(f)[0], f);
        assert_eq!(pa, pf);
    }

    #[test]
    fn spr_undo_restores_everything() {
        let t0 = six_taxon();
        let a = t0.tip_by_name("a").unwrap();
        let prune = t0.incident(a)[0];
        for target in t0.edge_ids() {
            let mut t = t0.clone();
            match spr(&mut t, prune, a, target) {
                Ok(undo) => {
                    spr_undo(&mut t, undo).unwrap();
                    assert_eq!(t.rf_distance(&t0), 0, "target {target}");
                    assert!(
                        (t.total_length() - t0.total_length()).abs() < 1e-9,
                        "target {target}"
                    );
                }
                Err(_) => continue, // invalid target, fine
            }
        }
    }

    #[test]
    fn spr_rejects_pruned_side_targets() {
        let mut t = six_taxon();
        // Prune the (e,f) cherry: prune_edge is the edge from the
        // ef-inner node up toward d's inner node.
        let e_tip = t.tip_by_name("e").unwrap();
        let ef_inner = t.other_end(t.incident(e_tip)[0], e_tip);
        // Find the edge from ef_inner that leads away from e and f.
        let f_tip = t.tip_by_name("f").unwrap();
        let up_edge = t
            .incident(ef_inner)
            .iter()
            .copied()
            .find(|&x| {
                let o = t.other_end(x, ef_inner);
                o != e_tip && o != f_tip
            })
            .unwrap();
        // Regrafting onto e's pendant edge (inside the pruned subtree)
        // must fail. Note subtree_root = ef_inner side.
        let e_pendant = t.incident(e_tip)[0];
        assert!(spr(&mut t, up_edge, ef_inner, e_pendant).is_err());
    }

    #[test]
    fn spr_rejects_adjacent_and_self_targets() {
        let mut t = six_taxon();
        let a = t.tip_by_name("a").unwrap();
        let prune = t.incident(a)[0];
        assert!(spr(&mut t, prune, a, prune).is_err());
        let p = t.other_end(prune, a);
        for &e in t.clone().incident(p) {
            if e != prune {
                assert!(spr(&mut t, prune, a, e).is_err());
            }
        }
    }

    #[test]
    fn spr_preserves_tip_set() {
        let mut t = six_taxon();
        let d = t.tip_by_name("d").unwrap();
        let prune = t.incident(d)[0];
        let b = t.tip_by_name("b").unwrap();
        let target = t.incident(b)[0];
        spr(&mut t, prune, d, target).unwrap();
        let mut names: Vec<_> = t.tip_names().to_vec();
        names.sort();
        assert_eq!(names, ["a", "b", "c", "d", "e", "f"]);
    }
}
