#![warn(missing_docs)]
//! Unrooted binary phylogenetic trees.
//!
//! The tree representation mirrors what RAxML-family codes use: `n`
//! tips (ids `0..n`, carrying taxon names) and `n − 2` inner nodes of
//! degree three (ids `n..2n−2`), connected by `2n − 3` undirected edges
//! carrying branch lengths. There is no root; likelihood evaluation
//! places a *virtual root* on an arbitrary edge (§IV of the paper).
//!
//! Modules:
//! * [`tree`] — the arena type, node/edge accessors, invariants;
//! * [`newick`] — Newick parsing and printing;
//! * [`build`] — random, caterpillar, and balanced tree constructors;
//! * [`traverse`] — directed post-order traversals used to schedule
//!   `newview` calls;
//! * [`moves`] — NNI and SPR topology moves for tree search;
//! * [`error`] — error type.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod build;
pub mod consensus;
pub mod error;
pub mod moves;
pub mod newick;
pub mod traverse;
#[allow(clippy::module_inception)]
pub mod tree;

pub use error::TreeError;
pub use tree::{EdgeId, NodeId, Tree};
