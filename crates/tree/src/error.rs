//! Tree error type.

/// Errors from tree construction, parsing, and topology moves.
#[derive(Debug, Clone, PartialEq)]
pub enum TreeError {
    /// Fewer than three taxa: no unrooted binary topology exists.
    TooFewTaxa(usize),
    /// Newick syntax problem at a byte offset.
    Newick {
        /// Byte position in the input.
        pos: usize,
        /// Description of the problem.
        msg: String,
    },
    /// A multifurcating (non-binary) input topology.
    NotBinary,
    /// A move was requested on an edge where it is undefined
    /// (e.g. NNI on a terminal edge).
    InvalidMove(String),
    /// A node or edge id outside the arena.
    BadId(String),
    /// A non-finite or negative branch length.
    BadBranchLength(f64),
}

impl std::fmt::Display for TreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TreeError::TooFewTaxa(n) => write!(f, "need at least 3 taxa, got {n}"),
            TreeError::Newick { pos, msg } => write!(f, "newick error at byte {pos}: {msg}"),
            TreeError::NotBinary => write!(f, "tree is not binary (multifurcation found)"),
            TreeError::InvalidMove(m) => write!(f, "invalid move: {m}"),
            TreeError::BadId(m) => write!(f, "bad id: {m}"),
            TreeError::BadBranchLength(x) => write!(f, "bad branch length {x}"),
        }
    }
}

impl std::error::Error for TreeError {}
