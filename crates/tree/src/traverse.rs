//! Directed traversals.
//!
//! The PLF computes conditional likelihood arrays *toward* a virtual
//! root: for the root edge `(a, b)` every inner node's CLA must be
//! oriented away from the root edge. These traversals produce the
//! post-order schedules that drive `newview` calls.

use crate::tree::{EdgeId, NodeId, Tree};

/// A directed view of a node: `node` looking away from `toward_edge`
/// (i.e. `toward_edge` leads toward the virtual root).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct Directed {
    /// The node whose subtree is described.
    pub node: NodeId,
    /// The incident edge pointing toward the root side.
    pub toward_edge: EdgeId,
}

/// The two children of an inner node seen from direction `toward_edge`:
/// each child is `(connecting edge, child node)`.
///
/// # Panics
/// Panics when `node` is a tip or `toward_edge` is not incident.
pub fn children(tree: &Tree, node: NodeId, toward_edge: EdgeId) -> [(EdgeId, NodeId); 2] {
    assert!(!tree.is_tip(node), "tips have no children");
    let mut out = [(usize::MAX, usize::MAX); 2];
    let mut k = 0;
    for &e in tree.incident(node) {
        if e == toward_edge {
            continue;
        }
        assert!(k < 2, "toward_edge {toward_edge} not incident to {node}");
        out[k] = (e, tree.other_end(e, node));
        k += 1;
    }
    assert_eq!(k, 2, "toward_edge {toward_edge} not incident to {node}");
    out
}

/// Post-order sequence of *inner* nodes in the subtree hanging off
/// `side` when edge `e` is cut; each entry is directed toward `e`.
///
/// Children always precede parents, so executing `newview` in this
/// order yields valid CLAs for every listed node. Tips are omitted:
/// their "CLA" is the encoded sequence data itself.
pub fn postorder_inner(tree: &Tree, e: EdgeId, side: NodeId) -> Vec<Directed> {
    let mut order = Vec::new();
    // Iterative post-order: stack of (node, toward_edge, expanded?).
    let mut stack = vec![(side, e, false)];
    while let Some((node, toward, expanded)) = stack.pop() {
        if tree.is_tip(node) {
            continue;
        }
        if expanded {
            order.push(Directed {
                node,
                toward_edge: toward,
            });
        } else {
            stack.push((node, toward, true));
            for (ce, child) in children(tree, node, toward) {
                stack.push((child, ce, false));
            }
        }
    }
    order
}

/// Post-order schedule for evaluating the likelihood at virtual-root
/// edge `root`: all inner nodes of both sides, children first.
pub fn full_schedule(tree: &Tree, root: EdgeId) -> Vec<Directed> {
    let (a, b) = tree.endpoints(root);
    let mut order = postorder_inner(tree, root, a);
    order.extend(postorder_inner(tree, root, b));
    order
}

/// Breadth-first list of edges within `radius` hops of `start`
/// (excluding `start` itself). Distance counts nodes crossed. Used for
/// RAxML-style bounded SPR regrafting.
pub fn edges_within(tree: &Tree, start: EdgeId, radius: usize) -> Vec<EdgeId> {
    let mut dist = vec![usize::MAX; tree.num_edges()];
    dist[start] = 0;
    let mut queue = std::collections::VecDeque::from([start]);
    let mut result = Vec::new();
    while let Some(e) = queue.pop_front() {
        if dist[e] >= radius {
            continue;
        }
        let (a, b) = tree.endpoints(e);
        for node in [a, b] {
            for &e2 in tree.incident(node) {
                if dist[e2] == usize::MAX {
                    dist[e2] = dist[e] + 1;
                    result.push(e2);
                    queue.push_back(e2);
                }
            }
        }
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::newick::parse;

    fn six_taxon() -> Tree {
        parse("((a:0.1,b:0.1):0.1,c:0.1,(d:0.1,(e:0.1,f:0.1):0.1):0.1);").unwrap()
    }

    #[test]
    fn children_excludes_root_direction() {
        let t = six_taxon();
        let a = t.tip_by_name("a").unwrap();
        let e = t.incident(a)[0];
        let inner = t.other_end(e, a);
        // From the inner node joining a and b, looking toward a's edge:
        let kids = children(&t, inner, e);
        let kid_nodes: Vec<_> = kids.iter().map(|(_, n)| *n).collect();
        assert!(kid_nodes.contains(&t.tip_by_name("b").unwrap()));
        assert!(!kid_nodes.contains(&a));
    }

    #[test]
    fn postorder_children_before_parents() {
        let t = six_taxon();
        // Root on a's pendant edge: the far side contains all 4 inner
        // nodes.
        let a = t.tip_by_name("a").unwrap();
        let e = t.incident(a)[0];
        let side = t.other_end(e, a);
        let order = postorder_inner(&t, e, side);
        assert_eq!(order.len(), t.num_inner());
        // Every node's children (inner ones) must appear earlier.
        let pos: std::collections::HashMap<_, _> =
            order.iter().enumerate().map(|(i, d)| (d.node, i)).collect();
        for d in &order {
            for (_, child) in children(&t, d.node, d.toward_edge) {
                if !t.is_tip(child) {
                    assert!(pos[&child] < pos[&d.node]);
                }
            }
        }
    }

    #[test]
    fn full_schedule_covers_all_inner_nodes_once() {
        let t = six_taxon();
        for root in t.edge_ids() {
            let sched = full_schedule(&t, root);
            let mut nodes: Vec<_> = sched.iter().map(|d| d.node).collect();
            nodes.sort_unstable();
            nodes.dedup();
            assert_eq!(nodes.len(), t.num_inner(), "root edge {root}");
        }
    }

    #[test]
    fn tip_side_is_empty() {
        let t = six_taxon();
        let a = t.tip_by_name("a").unwrap();
        let e = t.incident(a)[0];
        assert!(postorder_inner(&t, e, a).is_empty());
    }

    #[test]
    fn edges_within_radius_grows() {
        let t = six_taxon();
        let e0 = 0;
        let r1 = edges_within(&t, e0, 1);
        let r3 = edges_within(&t, e0, 3);
        assert!(r1.len() < r3.len());
        assert!(!r1.contains(&e0));
        // Radius large enough reaches all other edges.
        let all = edges_within(&t, e0, 100);
        assert_eq!(all.len(), t.num_edges() - 1);
    }
}
