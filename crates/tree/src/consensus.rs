//! Majority-rule consensus from split frequencies.
//!
//! Bayesian samplers and bootstrap analyses summarize a tree set by
//! the splits appearing in more than half the trees; those splits are
//! always mutually compatible and define a (possibly multifurcating)
//! consensus. This module computes the majority split set and reports
//! it with support values — the summary downstream users expect next
//! to an MCMC run.

use std::collections::BTreeMap;

/// One consensus split with its support.
#[derive(Clone, Debug, PartialEq)]
pub struct SupportedSplit {
    /// Canonical side of the bipartition (sorted tip names, smaller
    /// side).
    pub split: Vec<String>,
    /// Fraction of input trees containing the split.
    pub support: f64,
}

/// Computes the majority-rule consensus splits (support > `threshold`,
/// which must be ≥ 0.5 for the result to be guaranteed compatible).
///
/// Input: split frequencies as produced by
/// `phylo_search::mcmc::McmcResult::split_frequencies` or by counting
/// `Tree::splits()` over a tree sample.
pub fn majority_splits(
    frequencies: &BTreeMap<Vec<String>, f64>,
    threshold: f64,
) -> Vec<SupportedSplit> {
    assert!(
        (0.5..=1.0).contains(&threshold),
        "majority threshold must be in [0.5, 1]"
    );
    let mut out: Vec<SupportedSplit> = frequencies
        .iter()
        .filter(|(_, &f)| f > threshold)
        .map(|(s, &f)| SupportedSplit {
            split: s.clone(),
            support: f,
        })
        .collect();
    out.sort_by(|a, b| {
        b.support
            .partial_cmp(&a.support)
            .unwrap()
            .then_with(|| a.split.cmp(&b.split))
    });
    out
}

/// Counts split frequencies across a sample of trees (all over the
/// same taxa).
pub fn split_frequencies(trees: &[crate::Tree]) -> BTreeMap<Vec<String>, f64> {
    let mut counts: BTreeMap<Vec<String>, usize> = BTreeMap::new();
    for t in trees {
        for s in t.splits() {
            *counts.entry(s).or_insert(0) += 1;
        }
    }
    let n = trees.len().max(1) as f64;
    counts.into_iter().map(|(k, v)| (k, v as f64 / n)).collect()
}

/// Checks pairwise compatibility of a split set over `taxa` (every
/// pair must be nested or disjoint on the same side). Majority-rule
/// splits always pass; useful as a sanity check on hand-built sets.
pub fn splits_compatible(splits: &[Vec<String>], taxa: &[String]) -> bool {
    let side_set = |s: &[String]| -> Vec<bool> { taxa.iter().map(|t| s.contains(t)).collect() };
    let sets: Vec<Vec<bool>> = splits.iter().map(|s| side_set(s)).collect();
    for i in 0..sets.len() {
        for j in (i + 1)..sets.len() {
            let (a, b) = (&sets[i], &sets[j]);
            // Compatible iff one of the four intersections
            // (A∩B, A∩B̄, Ā∩B, Ā∩B̄) is empty.
            let mut ab = false;
            let mut a_nb = false;
            let mut na_b = false;
            let mut na_nb = false;
            for k in 0..taxa.len() {
                match (a[k], b[k]) {
                    (true, true) => ab = true,
                    (true, false) => a_nb = true,
                    (false, true) => na_b = true,
                    (false, false) => na_nb = true,
                }
            }
            if ab && a_nb && na_b && na_nb {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::newick;

    fn t(s: &str) -> crate::Tree {
        newick::parse(s).unwrap()
    }

    #[test]
    fn unanimous_sample_keeps_all_splits() {
        let trees = vec![
            t("((a:1,b:1):1,c:1,(d:1,e:1):1);"),
            t("((a:1,b:1):1,c:1,(d:1,e:1):1);"),
            t("((a:1,b:1):1,c:1,(d:1,e:1):1);"),
        ];
        let freqs = split_frequencies(&trees);
        let maj = majority_splits(&freqs, 0.5);
        assert_eq!(maj.len(), 2);
        assert!(maj.iter().all(|s| (s.support - 1.0).abs() < 1e-12));
    }

    #[test]
    fn conflicting_split_drops_out() {
        // ab|cde twice, ac|bde once: ab survives (2/3), ac does not.
        let trees = vec![
            t("((a:1,b:1):1,c:1,(d:1,e:1):1);"),
            t("((a:1,b:1):1,d:1,(c:1,e:1):1);"),
            t("((a:1,c:1):1,b:1,(d:1,e:1):1);"),
        ];
        let freqs = split_frequencies(&trees);
        let maj = majority_splits(&freqs, 0.5);
        let has = |names: &[&str]| {
            maj.iter()
                .any(|s| s.split == names.iter().map(|x| x.to_string()).collect::<Vec<_>>())
        };
        assert!(has(&["a", "b"]), "{maj:?}");
        assert!(!has(&["a", "c"]));
        // The de|abc split canonicalizes to its lexicographically
        // smaller side, ["a","b","c"]; it appears in 2 of 3 trees.
        assert!(has(&["a", "b", "c"]), "{maj:?}");
    }

    #[test]
    fn majority_splits_are_compatible() {
        let trees = vec![
            t("((a:1,b:1):1,c:1,((d:1,e:1):1,f:1):1);"),
            t("((a:1,b:1):1,d:1,((c:1,e:1):1,f:1):1);"),
            t("((a:1,b:1):1,e:1,((d:1,c:1):1,f:1):1);"),
        ];
        let taxa: Vec<String> = ["a", "b", "c", "d", "e", "f"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        let freqs = split_frequencies(&trees);
        let maj = majority_splits(&freqs, 0.5);
        let splits: Vec<Vec<String>> = maj.into_iter().map(|s| s.split).collect();
        assert!(splits_compatible(&splits, &taxa));
    }

    #[test]
    fn incompatible_splits_detected() {
        let taxa: Vec<String> = ["a", "b", "c", "d"].iter().map(|s| s.to_string()).collect();
        let ab = vec!["a".to_string(), "b".to_string()];
        let ac = vec!["a".to_string(), "c".to_string()];
        assert!(!splits_compatible(&[ab.clone(), ac], &taxa));
        let cd = vec!["c".to_string(), "d".to_string()];
        assert!(splits_compatible(&[ab, cd], &taxa));
    }

    #[test]
    #[should_panic]
    fn sub_half_threshold_rejected() {
        majority_splits(&BTreeMap::new(), 0.3);
    }
}
