//! Newick parsing and printing for unrooted binary trees.
//!
//! Rooted inputs (top level with two children) are accepted and the
//! degree-2 root is suppressed by merging its two incident branches,
//! which is the standard convention for unrooted likelihood programs.
//! Multifurcations anywhere else are rejected — the PLF arena is
//! strictly binary.

use crate::error::TreeError;
use crate::tree::{NodeId, Tree};

/// Default branch length used when the input omits one.
pub const DEFAULT_LENGTH: f64 = 0.1;

/// Intermediate rooted node produced by the parser.
struct RNode {
    name: Option<String>,
    length: Option<f64>,
    children: Vec<RNode>,
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T, TreeError> {
        Err(TreeError::Newick {
            pos: self.pos,
            msg: msg.into(),
        })
    }

    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, c: u8) -> Result<(), TreeError> {
        let found = self.peek();
        if found == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!(
                "expected {:?}, found {:?}",
                c as char,
                found.map(|b| b as char)
            ))
        }
    }

    fn subtree(&mut self) -> Result<RNode, TreeError> {
        let mut node = if self.peek() == Some(b'(') {
            self.pos += 1;
            let mut children = vec![self.subtree()?];
            while self.peek() == Some(b',') {
                self.pos += 1;
                children.push(self.subtree()?);
            }
            self.expect(b')')?;
            RNode {
                name: None,
                length: None,
                children,
            }
        } else {
            RNode {
                name: None,
                length: None,
                children: Vec::new(),
            }
        };
        // Optional label (tip name or ignored support value).
        let label = self.label();
        if node.children.is_empty() {
            match label {
                Some(l) if !l.is_empty() => node.name = Some(l),
                _ => return self.err("tip without a name"),
            }
        }
        // Optional branch length.
        if self.peek() == Some(b':') {
            self.pos += 1;
            node.length = Some(self.number()?);
        }
        Ok(node)
    }

    fn label(&mut self) -> Option<String> {
        self.skip_ws();
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'\'') {
            // Quoted label.
            self.pos += 1;
            let s = self.pos;
            while self.pos < self.bytes.len() && self.bytes[self.pos] != b'\'' {
                self.pos += 1;
            }
            let label = String::from_utf8_lossy(&self.bytes[s..self.pos]).into_owned();
            self.pos = (self.pos + 1).min(self.bytes.len());
            return Some(label);
        }
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b":,();".contains(&b) || b.is_ascii_whitespace() {
                break;
            }
            self.pos += 1;
        }
        if self.pos > start {
            Some(String::from_utf8_lossy(&self.bytes[start..self.pos]).into_owned())
        } else {
            None
        }
    }

    fn number(&mut self) -> Result<f64, TreeError> {
        self.skip_ws();
        let start = self.pos;
        while self.pos < self.bytes.len() {
            let b = self.bytes[self.pos];
            if b.is_ascii_digit() || b"+-.eE".contains(&b) {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return self.err("expected a number");
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()
            .and_then(|s| s.parse::<f64>().ok())
            .ok_or(TreeError::Newick {
                pos: start,
                msg: "malformed number".into(),
            })
    }
}

/// Parses a Newick string into an unrooted binary [`Tree`].
///
/// Tip ids are assigned in order of first appearance in the input.
pub fn parse(input: &str) -> Result<Tree, TreeError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    let root = p.subtree()?;
    p.expect(b';')?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return p.err("trailing characters after ';'");
    }

    // Collect tips in appearance order.
    let mut names = Vec::new();
    collect_names(&root, &mut names)?;
    let n = names.len();
    if n < 3 {
        return Err(TreeError::TooFewTaxa(n));
    }
    let name_id =
        |name: &str| -> NodeId { names.iter().position(|x| x == name).expect("collected") };
    {
        // Duplicate tip names would silently merge leaves.
        let mut sorted = names.clone();
        sorted.sort();
        sorted.dedup();
        if sorted.len() != n {
            return Err(TreeError::Newick {
                pos: 0,
                msg: "duplicate tip names".into(),
            });
        }
    }

    struct Builder {
        adj: Vec<Vec<usize>>,
        edges: Vec<crate::tree::Edge>,
        next_inner: NodeId,
    }
    impl Builder {
        fn link(&mut self, a: NodeId, b: NodeId, length: f64) -> Result<(), TreeError> {
            let length = Tree::check_length(length)?;
            let id = self.edges.len();
            self.edges.push(crate::tree::Edge { a, b, length });
            self.adj[a].push(id);
            self.adj[b].push(id);
            Ok(())
        }
    }

    let mut b = Builder {
        adj: vec![Vec::new(); 2 * n - 2],
        edges: Vec::with_capacity(2 * n - 3),
        next_inner: n,
    };

    // Recursively converts a rooted node to an arena node id.
    fn convert(
        node: &RNode,
        b: &mut Builder,
        name_id: &dyn Fn(&str) -> NodeId,
    ) -> Result<NodeId, TreeError> {
        if node.children.is_empty() {
            return Ok(name_id(node.name.as_ref().expect("tips are named")));
        }
        if node.children.len() != 2 {
            return Err(TreeError::NotBinary);
        }
        let inner = b.next_inner;
        b.next_inner += 1;
        for ch in &node.children {
            let cid = convert(ch, b, name_id)?;
            b.link(inner, cid, ch.length.unwrap_or(DEFAULT_LENGTH))?;
        }
        Ok(inner)
    }

    match root.children.len() {
        0 | 1 => {
            return Err(TreeError::Newick {
                pos: 0,
                msg: "top level must have 2 or 3 children".into(),
            })
        }
        2 => {
            // Rooted input: suppress the root by joining the two child
            // subtrees with one edge of summed length.
            let c0 = convert(&root.children[0], &mut b, &name_id)?;
            let c1 = convert(&root.children[1], &mut b, &name_id)?;
            let l = root.children[0].length.unwrap_or(DEFAULT_LENGTH)
                + root.children[1].length.unwrap_or(DEFAULT_LENGTH);
            b.link(c0, c1, l)?;
        }
        3 => {
            let inner = b.next_inner;
            b.next_inner += 1;
            for ch in &root.children {
                let cid = convert(ch, &mut b, &name_id)?;
                b.link(inner, cid, ch.length.unwrap_or(DEFAULT_LENGTH))?;
            }
        }
        _ => return Err(TreeError::NotBinary),
    }

    Tree::from_parts(names, b.adj, b.edges)
}

fn collect_names(node: &RNode, names: &mut Vec<String>) -> Result<(), TreeError> {
    if node.children.is_empty() {
        names.push(node.name.clone().expect("parser names all tips"));
    }
    for ch in &node.children {
        collect_names(ch, names)?;
    }
    Ok(())
}

/// Renders the tree as an unrooted Newick string with three top-level
/// children, rooted for display at the inner node adjacent to tip 0.
pub fn to_newick(tree: &Tree) -> String {
    let start_tip = 0;
    let anchor = tree.other_end(tree.incident(start_tip)[0], start_tip);
    let mut out = String::with_capacity(tree.num_taxa() * 16);
    out.push('(');
    let mut first = true;
    for (e, child) in tree.neighbors(anchor) {
        if !first {
            out.push(',');
        }
        first = false;
        write_subtree(tree, child, e, &mut out);
    }
    out.push_str(");");
    out
}

fn write_subtree(tree: &Tree, node: NodeId, in_edge: usize, out: &mut String) {
    if tree.is_tip(node) {
        out.push_str(tree.tip_name(node));
    } else {
        out.push('(');
        let mut first = true;
        for (e, child) in tree.neighbors(node) {
            if e == in_edge {
                continue;
            }
            if !first {
                out.push(',');
            }
            first = false;
            write_subtree(tree, child, e, out);
        }
        out.push(')');
    }
    out.push(':');
    // f64 Display prints the shortest representation that round-trips
    // exactly — checkpoint/restart depends on this.
    out.push_str(&format!("{}", tree.length(in_edge)));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_unrooted_triplet() {
        let t = parse("(a:0.1,b:0.2,c:0.3);").unwrap();
        assert_eq!(t.num_taxa(), 3);
        assert!((t.total_length() - 0.6).abs() < 1e-9);
    }

    #[test]
    fn parse_rooted_input_suppresses_root() {
        let t = parse("((a:0.1,b:0.1):0.05,(c:0.1,d:0.1):0.05);").unwrap();
        assert_eq!(t.num_taxa(), 4);
        assert_eq!(t.num_edges(), 5);
        // The two root-adjacent half-branches merge: 0.05 + 0.05.
        let splits = t.splits();
        assert_eq!(splits.len(), 1);
        t.validate().unwrap();
    }

    #[test]
    fn missing_lengths_get_default() {
        let t = parse("(a,b,(c,d));").unwrap();
        assert_eq!(t.num_taxa(), 4);
        for e in t.edge_ids() {
            assert!(t.length(e) > 0.0);
        }
    }

    #[test]
    fn inner_labels_ignored() {
        let t = parse("((a:0.1,b:0.1)95:0.1,c:0.1,d:0.1);").unwrap();
        assert_eq!(t.num_taxa(), 4);
    }

    #[test]
    fn quoted_names() {
        let t = parse("('taxon one':0.1,'b b':0.1,c:0.1);").unwrap();
        assert!(t.tip_by_name("taxon one").is_some());
        assert!(t.tip_by_name("b b").is_some());
    }

    #[test]
    fn scientific_notation_lengths() {
        let t = parse("(a:1e-3,b:2.5E-2,c:1.0e0);").unwrap();
        assert!((t.total_length() - (0.001 + 0.025 + 1.0)).abs() < 1e-12);
    }

    #[test]
    fn multifurcation_rejected() {
        assert!(matches!(
            parse("((a:1,b:1,c:1):1,d:1,e:1);"),
            Err(TreeError::NotBinary)
        ));
        assert!(parse("(a:1,b:1,c:1,d:1);").is_err());
    }

    #[test]
    fn syntax_errors_rejected() {
        assert!(parse("(a:0.1,b:0.2,c:0.3)").is_err()); // no ';'
        assert!(parse("(a:0.1,b:0.2,c:0.3); junk").is_err());
        assert!(parse("(a:0.1,b:0.2,c:);").is_err());
        assert!(parse("(a,b,(c,));").is_err());
        assert!(parse("(a:0.1,b:0.2);").is_err()); // 2 taxa
    }

    #[test]
    fn duplicate_names_rejected() {
        assert!(parse("(a:1,a:1,b:1);").is_err());
    }

    #[test]
    fn roundtrip_topology_and_lengths() {
        let s = "((a:0.11,b:0.07):0.31,c:0.05,(d:0.2,(e:0.17,f:0.13):0.09):0.41);";
        let t = parse(s).unwrap();
        let t2 = parse(&to_newick(&t)).unwrap();
        assert_eq!(t.rf_distance(&t2), 0);
        assert!((t.total_length() - t2.total_length()).abs() < 1e-8);
    }

    #[test]
    fn negative_length_clamped_or_rejected() {
        // Negative lengths are invalid; parser raises BadBranchLength.
        assert!(parse("(a:-0.5,b:0.1,c:0.1);").is_err());
    }
}
