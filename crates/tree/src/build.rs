//! Tree constructors: random, caterpillar, and balanced topologies.

use crate::error::TreeError;
use crate::tree::{EdgeId, NodeId, Tree};
use rand::Rng;

/// Incrementally grows an unrooted binary tree by stepwise taxon
/// addition, the same mechanism RAxML uses for randomized starting
/// trees. `Clone` allows trial insertions (parsimony scoring of every
/// candidate edge) without committing.
#[derive(Clone)]
pub struct StepwiseBuilder {
    tree: Tree,
    /// Next taxon id to attach (`3..num_taxa`).
    next_tip: NodeId,
    /// Next inner node id to allocate.
    next_inner: NodeId,
    target_taxa: usize,
}

impl StepwiseBuilder {
    /// Starts from the triplet of the first three names.
    ///
    /// `names` must contain at least three entries; all of them are
    /// reserved tip ids up front so node numbering matches the final
    /// tree.
    pub fn new(names: &[String], initial_length: f64) -> Result<Self, TreeError> {
        let n = names.len();
        let t = Tree::star_in_arena(names.to_vec(), initial_length)?;
        Ok(StepwiseBuilder {
            tree: t,
            next_tip: 3,
            next_inner: n + 1, // inner node `n` is used by the triplet
            target_taxa: n,
        })
    }

    /// Edges currently present (attachment candidates).
    pub fn current_edges(&self) -> Vec<EdgeId> {
        (0..self.edge_count()).collect()
    }

    fn edge_count(&self) -> usize {
        // Edges grow by 2 per attached taxon: 3 + 2*(attached - 3).
        3 + 2 * (self.next_tip - 3)
    }

    /// Attaches the next taxon by splitting `edge`; the new inner node
    /// sits in the middle of `edge` and the new pendant branch gets
    /// `pendant_length`.
    pub fn attach_next(&mut self, edge: EdgeId, pendant_length: f64) -> Result<(), TreeError> {
        if self.next_tip >= self.target_taxa {
            return Err(TreeError::InvalidMove("all taxa already attached".into()));
        }
        if edge >= self.edge_count() {
            return Err(TreeError::BadId(format!("edge {edge} not yet present")));
        }
        let tip = self.next_tip;
        let inner = self.next_inner;
        self.tree
            .split_edge_attach(edge, inner, tip, pendant_length)?;
        self.next_tip += 1;
        self.next_inner += 1;
        Ok(())
    }

    /// Finishes the build; fails if taxa remain unattached.
    pub fn finish(self) -> Result<Tree, TreeError> {
        if self.next_tip != self.target_taxa {
            return Err(TreeError::InvalidMove(format!(
                "only {} of {} taxa attached",
                self.next_tip, self.target_taxa
            )));
        }
        self.tree.validate()?;
        Ok(self.tree)
    }
}

/// A uniformly random topology grown by stepwise addition at a random
/// edge, with every branch length drawn from `Exp(1/mean_length)`.
pub fn random_tree<R: Rng>(
    names: &[String],
    mean_length: f64,
    rng: &mut R,
) -> Result<Tree, TreeError> {
    let exp = move |rng: &mut R| -> f64 {
        let u: f64 = rng.random::<f64>();
        // Inverse CDF of the exponential distribution; clamp away 0.
        (-(1.0 - u).ln() * mean_length).max(1e-6)
    };
    let mut b = StepwiseBuilder::new(names, exp(rng))?;
    for _ in 3..names.len() {
        let edges = b.current_edges();
        let pick = edges[rng.random_range(0..edges.len())];
        b.attach_next(pick, exp(rng))?;
    }
    let mut t = b.finish()?;
    // Randomize every branch length (the builder reused split halves).
    for e in 0..t.num_edges() {
        t.set_length(e, exp(rng))?;
    }
    Ok(t)
}

/// A caterpillar (fully pectinate) topology: taxa attach successively
/// to the previous taxon's pendant edge. Worst case for balanced
/// traversal depth.
pub fn caterpillar(names: &[String], branch_length: f64) -> Result<Tree, TreeError> {
    let mut b = StepwiseBuilder::new(names, branch_length)?;
    for tip in 3..names.len() {
        // Pendant edge of the previously attached taxon is always the
        // most recently created pendant edge; find it by scanning.
        let prev_tip = tip - 1;
        let t = b.peek();
        let e = t.incident(prev_tip)[0];
        b.attach_next(e, branch_length)?;
    }
    b.finish()
}

/// An (approximately) balanced topology built by recursive bisection,
/// rendered via Newick and re-parsed. Best case for traversal depth.
pub fn balanced(names: &[String], branch_length: f64) -> Result<Tree, TreeError> {
    if names.len() < 3 {
        return Err(TreeError::TooFewTaxa(names.len()));
    }
    // Render a recursively bisected rooted topology (no trailing
    // branch length; the caller appends one) and let the Newick parser
    // suppress the degree-2 root.
    fn rec(names: &[String], l: f64) -> String {
        match names {
            [single] => single.clone(),
            _ => {
                let mid = names.len() / 2;
                format!(
                    "({}:{l},{}:{l})",
                    rec(&names[..mid], l),
                    rec(&names[mid..], l)
                )
            }
        }
    }
    let mid = names.len() / 2;
    let newick = format!(
        "({}:{branch_length},{}:{branch_length});",
        rec(&names[..mid], branch_length),
        rec(&names[mid..], branch_length)
    );
    crate::newick::parse(&newick)
}

/// Generates `n` taxon names `t0, t1, …` (test/bench convenience).
pub fn default_names(n: usize) -> Vec<String> {
    (0..n).map(|i| format!("t{i}")).collect()
}

impl StepwiseBuilder {
    /// Read-only view of the tree under construction.
    pub fn peek(&self) -> &Tree {
        &self.tree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn random_tree_valid_for_various_sizes() {
        let mut rng = SmallRng::seed_from_u64(7);
        for n in [3usize, 4, 5, 8, 15, 40] {
            let t = random_tree(&default_names(n), 0.1, &mut rng).unwrap();
            assert_eq!(t.num_taxa(), n);
            assert_eq!(t.num_edges(), 2 * n - 3);
            t.validate().unwrap();
        }
    }

    #[test]
    fn random_trees_differ_across_seeds() {
        let names = default_names(12);
        let a = random_tree(&names, 0.1, &mut SmallRng::seed_from_u64(1)).unwrap();
        let b = random_tree(&names, 0.1, &mut SmallRng::seed_from_u64(2)).unwrap();
        // Overwhelmingly likely to be different topologies.
        assert!(a.rf_distance(&b) > 0);
    }

    #[test]
    fn caterpillar_is_pectinate() {
        let t = caterpillar(&default_names(10), 0.05).unwrap();
        t.validate().unwrap();
        // A caterpillar over n taxa has exactly n-3 internal edges and
        // its splits are nested: sizes 2, 3, ..., n-2 on one side.
        let mut sizes: Vec<usize> = t.splits().iter().map(|s| s.len()).collect();
        sizes.sort_unstable();
        assert_eq!(sizes.len(), 7);
        for w in &sizes {
            assert!(*w >= 2);
        }
    }

    #[test]
    fn balanced_has_small_depth() {
        let t = balanced(&default_names(16), 0.05).unwrap();
        t.validate().unwrap();
        assert_eq!(t.num_taxa(), 16);
    }

    #[test]
    fn builder_rejects_overattachment() {
        let names = default_names(3);
        let mut b = StepwiseBuilder::new(&names, 0.1).unwrap();
        assert!(b.attach_next(0, 0.1).is_err());
    }

    #[test]
    fn builder_rejects_future_edge() {
        let names = default_names(5);
        let mut b = StepwiseBuilder::new(&names, 0.1).unwrap();
        assert!(b.attach_next(99, 0.1).is_err());
    }

    #[test]
    fn unfinished_build_rejected() {
        let names = default_names(5);
        let b = StepwiseBuilder::new(&names, 0.1).unwrap();
        assert!(b.finish().is_err());
    }

    #[test]
    fn too_few_names() {
        assert!(StepwiseBuilder::new(&default_names(2), 0.1).is_err());
        assert!(balanced(&default_names(2), 0.1).is_err());
    }
}
