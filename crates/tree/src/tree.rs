//! The unrooted binary tree arena.

use crate::error::TreeError;

/// Node identifier. Tips are `0..num_taxa`, inner nodes follow.
pub type NodeId = usize;

/// Edge identifier, `0..(2·num_taxa − 3)` on a complete tree.
pub type EdgeId = usize;

/// Minimum branch length accepted anywhere (matches RAxML's
/// `zmin`-style clamping).
pub const BL_MIN: f64 = 1e-8;

/// Maximum branch length accepted anywhere.
pub const BL_MAX: f64 = 100.0;

#[derive(Clone, Copy, Debug, PartialEq)]
pub(crate) struct Edge {
    pub a: NodeId,
    pub b: NodeId,
    pub length: f64,
}

/// An unrooted binary tree over `n ≥ 3` named tips.
///
/// Invariants (checked by [`Tree::validate`] and preserved by all
/// public operations): tips have degree 1, inner nodes degree 3, the
/// graph is connected with `2n − 2` nodes and `2n − 3` edges, and all
/// branch lengths lie in `[BL_MIN, BL_MAX]`.
#[derive(Clone, Debug)]
pub struct Tree {
    num_taxa: usize,
    names: Vec<String>,
    /// `adj[node]` = edge ids incident to `node`.
    adj: Vec<Vec<EdgeId>>,
    edges: Vec<Edge>,
}

impl Tree {
    /// Creates the unique 3-taxon star tree with the given branch
    /// lengths from each tip to the single inner node (id 3).
    pub fn triplet(names: [&str; 3], lengths: [f64; 3]) -> Result<Self, TreeError> {
        let mut t = Tree {
            num_taxa: 3,
            names: names.iter().map(|s| s.to_string()).collect(),
            adj: vec![Vec::new(); 4],
            edges: Vec::with_capacity(3),
        };
        for (tip, &length) in lengths.iter().enumerate() {
            t.push_edge(tip, 3, length)?;
        }
        t.validate()?;
        Ok(t)
    }

    pub(crate) fn push_edge(
        &mut self,
        a: NodeId,
        b: NodeId,
        length: f64,
    ) -> Result<EdgeId, TreeError> {
        let length = Self::check_length(length)?;
        let id = self.edges.len();
        self.edges.push(Edge { a, b, length });
        self.adj[a].push(id);
        self.adj[b].push(id);
        Ok(id)
    }

    pub(crate) fn check_length(length: f64) -> Result<f64, TreeError> {
        if !length.is_finite() || length < 0.0 {
            return Err(TreeError::BadBranchLength(length));
        }
        Ok(length.clamp(BL_MIN, BL_MAX))
    }

    /// Creates a partially built tree whose node arena is sized for the
    /// full taxon set (`2n − 2` slots), containing only the initial
    /// triplet of tips 0, 1, 2 joined at inner node `n`. Used by the
    /// stepwise builder; the result does NOT satisfy [`Tree::validate`]
    /// until all taxa are attached.
    pub(crate) fn star_in_arena(
        names: Vec<String>,
        initial_length: f64,
    ) -> Result<Self, TreeError> {
        let n = names.len();
        if n < 3 {
            return Err(TreeError::TooFewTaxa(n));
        }
        let mut t = Tree {
            num_taxa: n,
            names,
            adj: vec![Vec::new(); 2 * n - 2],
            edges: Vec::with_capacity(2 * n - 3),
        };
        for tip in 0..3 {
            t.push_edge(tip, n, initial_length)?;
        }
        Ok(t)
    }

    /// Splits `edge` = (a, b) at a fresh inner node and hangs a fresh
    /// tip off it. The kept edge id becomes (a, inner) with half the
    /// original length, a new edge (inner, b) gets the other half, and
    /// the pendant edge (inner, tip) gets `pendant_length`.
    pub(crate) fn split_edge_attach(
        &mut self,
        edge: EdgeId,
        inner: NodeId,
        tip: NodeId,
        pendant_length: f64,
    ) -> Result<(), TreeError> {
        if inner >= self.adj.len() || tip >= self.num_taxa {
            return Err(TreeError::BadId(format!(
                "split ids out of range: inner={inner}, tip={tip}"
            )));
        }
        if !self.adj[inner].is_empty() || !self.adj[tip].is_empty() {
            return Err(TreeError::BadId(format!(
                "split targets already attached: inner={inner}, tip={tip}"
            )));
        }
        let (a, b) = self.endpoints(edge);
        let half = Self::check_length(self.edges[edge].length / 2.0)?;
        // Re-point the kept edge's `b` endpoint at the new inner node.
        self.reattach_edge(edge, b, inner);
        self.edges[edge].length = half;
        let _ = a;
        self.push_edge(inner, b, half)?;
        self.push_edge(inner, tip, pendant_length)?;
        Ok(())
    }

    /// Builds a tree from raw parts (used by the Newick parser and the
    /// constructors in [`crate::build`]); validates all invariants.
    pub(crate) fn from_parts(
        names: Vec<String>,
        adj: Vec<Vec<EdgeId>>,
        edges: Vec<Edge>,
    ) -> Result<Self, TreeError> {
        let t = Tree {
            num_taxa: names.len(),
            names,
            adj,
            edges,
        };
        t.validate()?;
        Ok(t)
    }

    /// Number of tips.
    pub fn num_taxa(&self) -> usize {
        self.num_taxa
    }

    /// Total number of nodes (`2n − 2`).
    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    /// Number of inner nodes (`n − 2`).
    pub fn num_inner(&self) -> usize {
        self.num_nodes() - self.num_taxa
    }

    /// Number of edges (`2n − 3`).
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Whether `node` is a tip.
    pub fn is_tip(&self, node: NodeId) -> bool {
        node < self.num_taxa
    }

    /// Name of tip `node`.
    ///
    /// # Panics
    /// Panics when `node` is not a tip.
    pub fn tip_name(&self, node: NodeId) -> &str {
        assert!(self.is_tip(node), "node {node} is not a tip");
        &self.names[node]
    }

    /// All tip names in id order.
    pub fn tip_names(&self) -> &[String] {
        &self.names
    }

    /// Id of the tip with the given name.
    pub fn tip_by_name(&self, name: &str) -> Option<NodeId> {
        self.names.iter().position(|n| n == name)
    }

    /// The two endpoints of an edge.
    pub fn endpoints(&self, e: EdgeId) -> (NodeId, NodeId) {
        let edge = &self.edges[e];
        (edge.a, edge.b)
    }

    /// Branch length of an edge.
    pub fn length(&self, e: EdgeId) -> f64 {
        self.edges[e].length
    }

    /// Sets the branch length of an edge, clamped to `[BL_MIN, BL_MAX]`.
    pub fn set_length(&mut self, e: EdgeId, length: f64) -> Result<(), TreeError> {
        self.edges[e].length = Self::check_length(length)?;
        Ok(())
    }

    /// The endpoint of `e` that is not `node`.
    ///
    /// # Panics
    /// Panics when `node` is not an endpoint of `e`.
    pub fn other_end(&self, e: EdgeId, node: NodeId) -> NodeId {
        let edge = &self.edges[e];
        if edge.a == node {
            edge.b
        } else {
            assert_eq!(edge.b, node, "node {node} not on edge {e}");
            edge.a
        }
    }

    /// Edges incident to `node` (1 for tips, 3 for inner nodes).
    pub fn incident(&self, node: NodeId) -> &[EdgeId] {
        &self.adj[node]
    }

    /// Neighbor nodes of `node` with the connecting edge.
    pub fn neighbors(&self, node: NodeId) -> impl Iterator<Item = (EdgeId, NodeId)> + '_ {
        self.adj[node]
            .iter()
            .map(move |&e| (e, self.other_end(e, node)))
    }

    /// All edge ids.
    pub fn edge_ids(&self) -> impl Iterator<Item = EdgeId> {
        0..self.edges.len()
    }

    /// All internal edges (both endpoints inner nodes).
    pub fn internal_edges(&self) -> impl Iterator<Item = EdgeId> + '_ {
        self.edge_ids().filter(move |&e| {
            let (a, b) = self.endpoints(e);
            !self.is_tip(a) && !self.is_tip(b)
        })
    }

    /// The edge connecting `a` and `b`, if any.
    pub fn edge_between(&self, a: NodeId, b: NodeId) -> Option<EdgeId> {
        self.adj[a]
            .iter()
            .copied()
            .find(|&e| self.other_end(e, a) == b)
    }

    /// Sum of all branch lengths.
    pub fn total_length(&self) -> f64 {
        self.edges.iter().map(|e| e.length).sum()
    }

    /// Checks every structural invariant; returns a description of the
    /// first violation.
    pub fn validate(&self) -> Result<(), TreeError> {
        if self.num_taxa < 3 {
            return Err(TreeError::TooFewTaxa(self.num_taxa));
        }
        let n = self.num_taxa;
        if self.adj.len() != 2 * n - 2 {
            return Err(TreeError::BadId(format!(
                "expected {} nodes, found {}",
                2 * n - 2,
                self.adj.len()
            )));
        }
        if self.edges.len() != 2 * n - 3 {
            return Err(TreeError::BadId(format!(
                "expected {} edges, found {}",
                2 * n - 3,
                self.edges.len()
            )));
        }
        for (node, inc) in self.adj.iter().enumerate() {
            let want = if node < n { 1 } else { 3 };
            if inc.len() != want {
                return Err(TreeError::BadId(format!(
                    "node {node} has degree {}, expected {want}",
                    inc.len()
                )));
            }
            for &e in inc {
                let edge = self.edges.get(e).ok_or_else(|| {
                    TreeError::BadId(format!("node {node} references missing edge {e}"))
                })?;
                if edge.a != node && edge.b != node {
                    return Err(TreeError::BadId(format!(
                        "edge {e} does not touch node {node}"
                    )));
                }
            }
        }
        for (i, e) in self.edges.iter().enumerate() {
            if !(BL_MIN..=BL_MAX).contains(&e.length) {
                return Err(TreeError::BadBranchLength(e.length));
            }
            if e.a == e.b {
                return Err(TreeError::BadId(format!("edge {i} is a self-loop")));
            }
        }
        // Connectivity via DFS.
        let mut seen = vec![false; self.adj.len()];
        let mut stack = vec![0usize];
        seen[0] = true;
        let mut count = 1;
        while let Some(v) = stack.pop() {
            for &e in &self.adj[v] {
                let w = self.other_end(e, v);
                if !seen[w] {
                    seen[w] = true;
                    count += 1;
                    stack.push(w);
                }
            }
        }
        if count != self.adj.len() {
            return Err(TreeError::BadId(format!(
                "tree is disconnected: reached {count} of {} nodes",
                self.adj.len()
            )));
        }
        Ok(())
    }

    /// Replaces one endpoint of an edge; internal helper for moves.
    pub(crate) fn reattach_edge(&mut self, e: EdgeId, from: NodeId, to: NodeId) {
        let edge = &mut self.edges[e];
        if edge.a == from {
            edge.a = to;
        } else {
            debug_assert_eq!(edge.b, from);
            edge.b = to;
        }
        let pos = self.adj[from]
            .iter()
            .position(|&x| x == e)
            .expect("edge not in adjacency of endpoint");
        self.adj[from].swap_remove(pos);
        self.adj[to].push(e);
    }

    /// Removes edge `e` from `node`'s adjacency list only; the edge
    /// record stays allocated so its id can be re-used by a later
    /// [`Tree::attach_edge`]. Internal helper for SPR.
    pub(crate) fn detach_edge(&mut self, e: EdgeId, node: NodeId) {
        let pos = self.adj[node]
            .iter()
            .position(|&x| x == e)
            .expect("edge not attached to node");
        self.adj[node].swap_remove(pos);
    }

    /// Re-purposes a detached edge record to connect `a` and `b`.
    pub(crate) fn attach_edge(
        &mut self,
        e: EdgeId,
        a: NodeId,
        b: NodeId,
        length: f64,
    ) -> Result<(), TreeError> {
        let length = Self::check_length(length)?;
        self.edges[e] = Edge { a, b, length };
        self.adj[a].push(e);
        self.adj[b].push(e);
        Ok(())
    }

    /// Computes the unrooted topology's set of non-trivial splits
    /// (bipartitions), each represented as the lexicographically
    /// smaller side's sorted tip *names* — name-based so trees with
    /// different internal tip numbering (e.g. after a Newick
    /// round-trip) compare correctly. Used for Robinson-Foulds
    /// distances in tests and the search.
    pub fn splits(&self) -> Vec<Vec<String>> {
        let mut result = Vec::new();
        for e in self.internal_edges() {
            let (a, _b) = self.endpoints(e);
            let mut side: Vec<String> = self
                .tips_behind(e, a)
                .into_iter()
                .map(|t| self.names[t].clone())
                .collect();
            side.sort_unstable();
            let mut complement: Vec<String> = self
                .names
                .iter()
                .filter(|n| !side.contains(n))
                .cloned()
                .collect();
            complement.sort_unstable();
            let canon = if side < complement { side } else { complement };
            result.push(canon);
        }
        result.sort();
        result
    }

    /// Tip ids in the component containing `side` after removing edge
    /// `e`.
    pub fn tips_behind(&self, e: EdgeId, side: NodeId) -> Vec<NodeId> {
        let mut tips = Vec::new();
        let mut stack = vec![side];
        let mut seen = vec![false; self.num_nodes()];
        seen[side] = true;
        while let Some(v) = stack.pop() {
            if self.is_tip(v) {
                tips.push(v);
            }
            for &e2 in &self.adj[v] {
                if e2 == e {
                    continue;
                }
                let w = self.other_end(e2, v);
                if !seen[w] {
                    seen[w] = true;
                    stack.push(w);
                }
            }
        }
        tips
    }

    /// Robinson-Foulds distance to another tree over the same taxa.
    pub fn rf_distance(&self, other: &Tree) -> usize {
        let a = self.splits();
        let b = other.splits();
        let in_both = a.iter().filter(|s| b.contains(s)).count();
        (a.len() - in_both) + (b.len() - in_both)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triplet_structure() {
        let t = Tree::triplet(["a", "b", "c"], [0.1, 0.2, 0.3]).unwrap();
        assert_eq!(t.num_taxa(), 3);
        assert_eq!(t.num_nodes(), 4);
        assert_eq!(t.num_edges(), 3);
        assert_eq!(t.num_inner(), 1);
        assert!(t.is_tip(0) && t.is_tip(2) && !t.is_tip(3));
        assert_eq!(t.tip_name(1), "b");
        assert_eq!(t.tip_by_name("c"), Some(2));
        assert!((t.total_length() - 0.6).abs() < 1e-12);
        t.validate().unwrap();
    }

    #[test]
    fn other_end_and_neighbors() {
        let t = Tree::triplet(["a", "b", "c"], [0.1, 0.1, 0.1]).unwrap();
        let e = t.incident(0)[0];
        assert_eq!(t.other_end(e, 0), 3);
        assert_eq!(t.other_end(e, 3), 0);
        let nbrs: Vec<NodeId> = t.neighbors(3).map(|(_, n)| n).collect();
        assert_eq!(nbrs.len(), 3);
        assert!(nbrs.contains(&0) && nbrs.contains(&1) && nbrs.contains(&2));
    }

    #[test]
    fn set_length_clamps() {
        let mut t = Tree::triplet(["a", "b", "c"], [0.1, 0.1, 0.1]).unwrap();
        t.set_length(0, 1e-30).unwrap();
        assert_eq!(t.length(0), BL_MIN);
        t.set_length(0, 1e9).unwrap();
        assert_eq!(t.length(0), BL_MAX);
        assert!(t.set_length(0, f64::NAN).is_err());
        assert!(t.set_length(0, -1.0).is_err());
    }

    #[test]
    fn edge_between() {
        let t = Tree::triplet(["a", "b", "c"], [0.1, 0.1, 0.1]).unwrap();
        assert!(t.edge_between(0, 3).is_some());
        assert!(t.edge_between(0, 1).is_none());
    }

    #[test]
    fn triplet_has_no_internal_edges_or_splits() {
        let t = Tree::triplet(["a", "b", "c"], [0.1, 0.1, 0.1]).unwrap();
        assert_eq!(t.internal_edges().count(), 0);
        assert!(t.splits().is_empty());
    }
}
