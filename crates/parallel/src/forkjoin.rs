//! The fork-join (RAxML-Light PThreads) scheme.
//!
//! A single master runs the search; persistent worker threads each own
//! a [`LikelihoodEngine`] over one contiguous slice of the alignment
//! patterns. Every likelihood operation becomes a parallel region:
//! the master publishes one job in a shared slot, releases the workers
//! through the sense-reversing [`SenseBarrier`] (*fork*), each worker
//! writes its partial result into its own slot of a shared reply
//! array, and a second barrier pass (*join*) hands the array back to
//! the master, which reduces it in place — "master and worker
//! processes have to communicate at least twice per parallel
//! region/kernel" (§V-D), which is exactly the synchronization cost
//! `micsim` charges this scheme.
//!
//! There are no channels and no locks on the fast path: the barrier's
//! acquire/release pairs are the only synchronization, and the job and
//! reply slots are plain memory whose ownership alternates between
//! master and workers in barrier-separated windows — the
//! [`RegionProtocol`] extracted into [`crate::slot`], where the
//! interleave model tests exercise it directly. The master also
//! times both barrier waits of every region, so the per-region
//! fork/join latency distribution lands in [`KernelStats`] next to the
//! kernel timings.

use crate::barrier::BarrierToken;
use crate::fault::FaultPlan;
use crate::slot::RegionProtocol;
use crate::sync::thread::{self, JoinHandle};
use phylo_bio::CompressedAlignment;
use phylo_models::GtrParams;
use phylo_search::Evaluator;
use phylo_tree::{EdgeId, Tree};
use plf_core::{EngineConfig, KernelStats, LikelihoodEngine};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;
use std::time::Instant;

/// Splits `n` items into `k` contiguous, balanced ranges. When
/// `k > n`, the trailing ranges are empty — workers holding them
/// contribute identity partials (0 log-likelihood, 0 derivatives).
pub fn split_ranges(n: usize, k: usize) -> Vec<std::ops::Range<usize>> {
    assert!(k >= 1);
    (0..k).map(|i| (i * n / k)..((i + 1) * n / k)).collect()
}

/// One broadcast work item. The master writes it into the shared slot
/// before the fork barrier; every worker reads it (by reference — the
/// tree snapshot is shared through the `Arc`, not cloned per worker)
/// between fork and join.
#[derive(Default)]
enum Job {
    /// Initial state before the first region.
    #[default]
    Idle,
    Eval(Arc<Tree>, EdgeId),
    Prepare(Arc<Tree>, EdgeId),
    Derivatives(f64),
    SetAlpha(f64),
    SetModel(GtrParams),
    TakeStats,
    Shutdown,
}

impl Job {
    /// Span name a worker records while executing this job.
    fn span_name(&self) -> &'static str {
        match self {
            Job::Eval(..) => "job.eval",
            Job::Prepare(..) => "job.prepare",
            Job::Derivatives(_) => "job.derivatives",
            Job::SetAlpha(_) => "job.set_alpha",
            Job::SetModel(_) => "job.set_model",
            Job::TakeStats => "job.take_stats",
            Job::Idle | Job::Shutdown => "job.control",
        }
    }
}

/// One worker's partial result, written into its private slot of the
/// shared reply array between fork and join.
#[derive(Default)]
enum Reply {
    /// Slot not yet filled this region.
    #[default]
    None,
    Scalar(f64),
    Pair(f64, f64),
    Stats(Box<KernelStats>),
    Done,
    /// The worker's job panicked; the message is surfaced to the
    /// master, which re-panics instead of hanging or silently
    /// mis-reducing.
    Panicked(String),
}

/// Master handle of the fork-join scheme; implements
/// [`phylo_search::Evaluator`] so the unmodified search drives it.
pub struct ForkJoinEvaluator {
    shared: Arc<RegionProtocol<Job, Reply>>,
    handles: Vec<JoinHandle<()>>,
    token: BarrierToken,
    /// Master-side stats: fork/join latency of every parallel region.
    local: KernelStats,
    alpha: f64,
    params: GtrParams,
    /// Parallel regions dispatched (each costs one fork + one join
    /// synchronization).
    regions: u64,
}

impl ForkJoinEvaluator {
    /// Spawns `num_workers` workers over balanced pattern slices.
    /// Worker counts beyond the pattern count are fine: the surplus
    /// workers own empty slices and return identity partials.
    pub fn new(
        tree: &Tree,
        aln: &CompressedAlignment,
        config: EngineConfig,
        num_workers: usize,
    ) -> Self {
        Self::with_fault_plan(tree, aln, config, num_workers, None)
    }

    /// Like [`Self::new`], but with a scripted [`FaultPlan`] whose
    /// job-panic faults fire inside the matching worker's job (caught
    /// and surfaced like any other job panic — never a hang).
    pub fn with_fault_plan(
        tree: &Tree,
        aln: &CompressedAlignment,
        config: EngineConfig,
        num_workers: usize,
        fault_plan: Option<Arc<FaultPlan>>,
    ) -> Self {
        assert!(num_workers >= 1);
        let shared = Arc::new(RegionProtocol::new(num_workers, Job::Idle));
        plf_core::span::set_thread_label("master");
        plf_core::metrics::gauge("forkjoin.workers").set(num_workers as u64);
        let handles = split_ranges(aln.num_patterns(), num_workers)
            .into_iter()
            .enumerate()
            .map(|(idx, range)| {
                // Expose the static pattern partition: the spread of
                // these gauges is the load-imbalance bound the paper's
                // Fig. 4 efficiency discussion starts from.
                plf_core::metrics::gauge(&format!("forkjoin.worker.{idx}.sites"))
                    .set(range.len() as u64);
                let engine = LikelihoodEngine::with_range(tree, aln, config, range);
                let shared = Arc::clone(&shared);
                let plan = fault_plan.clone();
                thread::spawn(move || {
                    // If the worker unwinds outside the caught job
                    // region, mark the protocol dead so the master's
                    // fork/join fails instead of spinning forever.
                    let guard = PoisonOnUnwind {
                        proto: &shared,
                        rank: idx,
                    };
                    worker_loop(&shared, idx, engine, plan.as_deref());
                    std::mem::forget(guard);
                })
            })
            .collect();
        ForkJoinEvaluator {
            shared,
            handles,
            token: BarrierToken::new(),
            local: KernelStats::new(),
            alpha: config.alpha,
            params: GtrParams {
                rates: [1.0; 6],
                freqs: aln.empirical_frequencies(),
            },
            regions: 0,
        }
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.handles.len()
    }

    /// Parallel regions dispatched so far.
    pub fn regions(&self) -> u64 {
        self.regions
    }

    /// Master-side statistics: the fork/join latency histogram of
    /// every parallel region (the kernel counters live in the
    /// workers; see [`Self::take_stats`]).
    pub fn master_stats(&self) -> &KernelStats {
        &self.local
    }

    /// Runs one parallel region: publish `job`, fork, join, collect
    /// the reply array. Both barrier waits are timed into the
    /// region-latency stats.
    ///
    /// # Panics
    /// Re-panics with the worker's message if any worker's job
    /// panicked, after the region completes — the pool itself stays
    /// joinable, so `Drop` still shuts the workers down cleanly. A
    /// worker that *died* (unwound outside the caught job region)
    /// poisons the protocol; the master then panics with a
    /// rank-naming message instead of hanging at the barrier.
    fn region(&mut self, job: Job) -> Vec<Reply> {
        self.regions += 1;
        regions_counter().inc();
        self.shared.publish_job(job);
        let t0 = Instant::now();
        {
            let _fork = plf_core::span::enter("fork.wait");
            if let Err(p) = self.shared.fork(&mut self.token) {
                panic!("fork-join worker {} died; pool is poisoned", p.rank);
            }
        }
        let t1 = Instant::now();
        {
            let _join = plf_core::span::enter("join.wait");
            if let Err(p) = self.shared.join(&mut self.token) {
                panic!("fork-join worker {} died; pool is poisoned", p.rank);
            }
        }
        let t2 = Instant::now();
        self.local
            .record_region(saturating_ns(t1 - t0), saturating_ns(t2 - t1));
        let replies = self.shared.drain_replies();
        if let Some(Reply::Panicked(msg)) = replies.iter().find(|r| matches!(r, Reply::Panicked(_)))
        {
            panic!("fork-join worker panicked: {msg}");
        }
        replies
    }

    /// Collects and resets per-worker kernel statistics, merged
    /// together with the master's region-latency stats.
    pub fn take_stats(&mut self) -> KernelStats {
        let mut total = KernelStats::new();
        for s in self.take_stats_per_worker() {
            total.merge(&s);
        }
        total.merge(&self.local);
        self.local.reset();
        total
    }

    /// Collects and resets per-worker kernel statistics, one entry
    /// per worker in worker order. Master-side region latencies stay
    /// in [`Self::master_stats`] (use [`Self::take_stats`] for the
    /// merged view).
    pub fn take_stats_per_worker(&mut self) -> Vec<KernelStats> {
        self.region(Job::TakeStats)
            .into_iter()
            .map(|r| match r {
                Reply::Stats(s) => *s,
                _ => unreachable!("stats job returns stats"),
            })
            .collect()
    }
}

/// `Duration` → `u64` nanoseconds, saturating.
fn saturating_ns(d: std::time::Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

/// Cached handle for the `forkjoin.regions` counter.
fn regions_counter() -> &'static plf_core::metrics::Counter {
    static C: std::sync::OnceLock<plf_core::metrics::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| plf_core::metrics::counter("forkjoin.regions"))
}

/// Best-effort extraction of a panic payload message.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Drop guard a worker arms for its whole run: leaked (`mem::forget`)
/// on the normal shutdown path, it only ever drops during an unwind —
/// where it poisons the protocol so the master and siblings fail fast
/// instead of deadlocking at the next barrier pass.
struct PoisonOnUnwind<'a> {
    proto: &'a RegionProtocol<Job, Reply>,
    rank: usize,
}

impl Drop for PoisonOnUnwind<'_> {
    fn drop(&mut self) {
        self.proto.poison(self.rank);
    }
}

/// The worker side of the protocol: wait at the fork barrier, run the
/// broadcast job against the worker's engine slice, publish the
/// partial result, wait at the join barrier. A panicking job is
/// caught and reported as [`Reply::Panicked`]; the worker stays in
/// the loop so neither barrier ever deadlocks. A poisoned barrier
/// pass (a sibling died) makes the worker exit cleanly.
fn worker_loop(
    proto: &RegionProtocol<Job, Reply>,
    idx: usize,
    mut engine: LikelihoodEngine,
    fault_plan: Option<&FaultPlan>,
) {
    plf_core::span::set_thread_label(&format!("worker{idx}"));
    let mut token = BarrierToken::new();
    let mut region: u64 = 0;
    loop {
        {
            let _idle = plf_core::span::enter("idle");
            if proto.fork(&mut token).is_err() {
                return;
            }
        }
        region += 1;
        // `None` means Shutdown: exit before the join barrier (the
        // master skips it too).
        let reply = proto.read_job(|job| {
            if matches!(job, Job::Shutdown) {
                return None;
            }
            let _job_span = plf_core::span::enter(job.span_name());
            Some(
                catch_unwind(AssertUnwindSafe(|| {
                    if let Some(plan) = fault_plan {
                        if plan.job_panics(idx, region) {
                            panic!("injected fault: worker {idx} panics in region {region}");
                        }
                    }
                    match job {
                        Job::Eval(tree, edge) => Reply::Scalar(engine.log_likelihood(tree, *edge)),
                        Job::Prepare(tree, edge) => {
                            engine.prepare_branch(tree, *edge);
                            Reply::Done
                        }
                        Job::Derivatives(t) => {
                            let (d1, d2) = engine.branch_derivatives(*t);
                            Reply::Pair(d1, d2)
                        }
                        Job::SetAlpha(a) => {
                            engine.set_alpha(*a);
                            Reply::Done
                        }
                        Job::SetModel(p) => {
                            engine.set_model(*p);
                            Reply::Done
                        }
                        Job::TakeStats => {
                            let s = engine.stats().clone();
                            engine.reset_stats();
                            Reply::Stats(Box::new(s))
                        }
                        Job::Idle | Job::Shutdown => unreachable!("not dispatched as work"),
                    }
                }))
                .unwrap_or_else(|p| Reply::Panicked(panic_message(p))),
            )
        });
        let Some(reply) = reply else {
            return;
        };
        proto.write_reply(idx, reply);
        if proto.join(&mut token).is_err() {
            return;
        }
    }
}

impl Evaluator for ForkJoinEvaluator {
    fn log_likelihood(&mut self, tree: &Tree, root_edge: EdgeId) -> f64 {
        let snapshot = Arc::new(tree.clone());
        self.region(Job::Eval(snapshot, root_edge))
            .into_iter()
            .map(|r| match r {
                Reply::Scalar(x) => x,
                _ => unreachable!("eval returns scalar"),
            })
            .sum()
    }

    fn prepare_branch(&mut self, tree: &Tree, edge: EdgeId) {
        let snapshot = Arc::new(tree.clone());
        self.region(Job::Prepare(snapshot, edge));
    }

    fn branch_derivatives(&mut self, t: f64) -> (f64, f64) {
        let mut d1 = 0.0;
        let mut d2 = 0.0;
        for r in self.region(Job::Derivatives(t)) {
            match r {
                Reply::Pair(a, b) => {
                    d1 += a;
                    d2 += b;
                }
                _ => unreachable!("derivatives return a pair"),
            }
        }
        (d1, d2)
    }

    fn set_alpha(&mut self, alpha: f64) {
        self.alpha = alpha;
        self.region(Job::SetAlpha(alpha));
    }

    fn set_model(&mut self, params: GtrParams) {
        self.params = params;
        self.region(Job::SetModel(params));
    }

    fn alpha(&self) -> f64 {
        self.alpha
    }

    fn model(&self) -> GtrParams {
        self.params
    }
}

impl Drop for ForkJoinEvaluator {
    fn drop(&mut self) {
        // Every worker is blocked at the fork barrier — including
        // workers whose last job panicked (the panic was caught and
        // the worker kept cycling). Publish Shutdown and release them;
        // they exit before the join barrier, so the master must not
        // wait at it either. On a poisoned pool the fork fails
        // immediately and the workers have already exited through
        // their own poisoned barrier passes — joining stays safe.
        self.shared.publish_job(Job::Shutdown);
        let _ = self.shared.fork(&mut self.token);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_models::{DiscreteGamma, Gtr};
    use phylo_tree::build::{default_names, random_tree};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn dataset() -> (Tree, CompressedAlignment) {
        let mut rng = SmallRng::seed_from_u64(60);
        let names = default_names(9);
        let tree = random_tree(&names, 0.15, &mut rng).unwrap();
        let g = Gtr::new(GtrParams::jc69());
        let gamma = DiscreteGamma::new(0.9);
        let aln = phylo_seqgen::simulate_alignment(&tree, g.eigen(), &gamma, 700, &mut rng);
        (tree, CompressedAlignment::from_alignment(&aln))
    }

    fn small_dataset(patterns_target: usize) -> (Tree, CompressedAlignment) {
        let mut rng = SmallRng::seed_from_u64(61);
        let names = default_names(5);
        let tree = random_tree(&names, 0.2, &mut rng).unwrap();
        let g = Gtr::new(GtrParams::jc69());
        let gamma = DiscreteGamma::new(1.1);
        let aln =
            phylo_seqgen::simulate_alignment(&tree, g.eigen(), &gamma, patterns_target, &mut rng);
        (tree, CompressedAlignment::from_alignment(&aln))
    }

    #[test]
    fn split_ranges_cover_everything() {
        for (n, k) in [(10, 3), (7, 7), (100, 8), (5, 1), (3, 5)] {
            let ranges = split_ranges(n, k);
            assert_eq!(ranges.len(), k);
            let total: usize = ranges.iter().map(|r| r.len()).sum();
            assert_eq!(total, n);
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges[k - 1].end, n);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
        }
    }

    #[test]
    fn split_ranges_more_workers_than_items() {
        let ranges = split_ranges(2, 6);
        assert_eq!(ranges.iter().map(|r| r.len()).sum::<usize>(), 2);
        assert!(ranges.iter().any(|r| r.is_empty()));
        // Still a valid contiguous partition.
        for w in ranges.windows(2) {
            assert_eq!(w[0].end, w[1].start);
        }
    }

    #[test]
    fn matches_single_engine_likelihood() {
        let (tree, aln) = dataset();
        let cfg = EngineConfig::default();
        let mut single = LikelihoodEngine::new(&tree, &aln, cfg);
        for workers in [1, 2, 4] {
            let mut fj = ForkJoinEvaluator::new(&tree, &aln, cfg, workers);
            for e in [0usize, 3, 7] {
                let a = single.log_likelihood(&tree, e);
                let b = fj.log_likelihood(&tree, e);
                assert!(
                    (a - b).abs() < 1e-9,
                    "workers={workers} edge={e}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn simd_backend_under_forkjoin_matches_scalar_serial() {
        // Workers stream their newview CLAs with non-temporal stores;
        // the kernel-exit sfence must publish them before the barrier
        // hands control back to the master, or this cross-thread
        // comparison could read stale CLA contents.
        use plf_core::KernelKind;
        let (tree, aln) = dataset();
        let mut scalar = LikelihoodEngine::new(
            &tree,
            &aln,
            EngineConfig {
                kernel: KernelKind::Scalar,
                ..EngineConfig::default()
            },
        );
        let cfg = EngineConfig {
            kernel: KernelKind::Simd,
            ..EngineConfig::default()
        };
        for workers in [2, 4] {
            let mut fj = ForkJoinEvaluator::new(&tree, &aln, cfg, workers);
            for e in [0usize, 2, 5] {
                let a = scalar.log_likelihood(&tree, e);
                let b = fj.log_likelihood(&tree, e);
                assert!(
                    (a - b).abs() < 1e-9,
                    "workers={workers} edge={e}: {a} vs {b}"
                );
            }
        }
    }

    #[test]
    fn matches_single_engine_derivatives() {
        let (tree, aln) = dataset();
        let cfg = EngineConfig::default();
        let mut single = LikelihoodEngine::new(&tree, &aln, cfg);
        let mut fj = ForkJoinEvaluator::new(&tree, &aln, cfg, 3);
        for e in [1usize, 5] {
            Evaluator::prepare_branch(&mut single, &tree, e);
            fj.prepare_branch(&tree, e);
            let t = tree.length(e);
            let (a1, a2) = Evaluator::branch_derivatives(&mut single, t);
            let (b1, b2) = fj.branch_derivatives(t);
            assert!((a1 - b1).abs() < 1e-8, "{a1} vs {b1}");
            assert!((a2 - b2).abs() < 1e-8, "{a2} vs {b2}");
        }
    }

    #[test]
    fn more_workers_than_patterns_is_exact_not_nan() {
        let (tree, aln) = small_dataset(40);
        let n = aln.num_patterns();
        let cfg = EngineConfig::default();
        let mut single = LikelihoodEngine::new(&tree, &aln, cfg);
        let expect = single.log_likelihood(&tree, 0);
        Evaluator::prepare_branch(&mut single, &tree, 1);
        let (e1, e2) = Evaluator::branch_derivatives(&mut single, tree.length(1));
        // Strictly more workers than patterns: surplus workers own
        // empty slices and must contribute exact identity partials.
        for workers in [n + 1, n + 5, 2 * n] {
            let mut fj = ForkJoinEvaluator::new(&tree, &aln, cfg, workers);
            let got = fj.log_likelihood(&tree, 0);
            assert!(got.is_finite(), "workers={workers}: logL {got}");
            assert!(
                (got - expect).abs() < 1e-9,
                "workers={workers}: {got} vs {expect}"
            );
            fj.prepare_branch(&tree, 1);
            let (d1, d2) = fj.branch_derivatives(tree.length(1));
            assert!(d1.is_finite() && d2.is_finite(), "workers={workers}");
            assert!((d1 - e1).abs() < 1e-8, "workers={workers}: {d1} vs {e1}");
            assert!((d2 - e2).abs() < 1e-8, "workers={workers}: {d2} vs {e2}");
        }
    }

    #[test]
    fn model_updates_propagate() {
        let (tree, aln) = dataset();
        let cfg = EngineConfig::default();
        let mut fj = ForkJoinEvaluator::new(&tree, &aln, cfg, 2);
        let l1 = fj.log_likelihood(&tree, 0);
        fj.set_alpha(0.2);
        let l2 = fj.log_likelihood(&tree, 0);
        assert!((l1 - l2).abs() > 1e-6, "alpha change must shift likelihood");
        assert_eq!(fj.alpha(), 0.2);
    }

    #[test]
    fn stats_account_all_workers() {
        let (tree, aln) = dataset();
        let mut fj = ForkJoinEvaluator::new(&tree, &aln, EngineConfig::default(), 4);
        fj.log_likelihood(&tree, 0);
        let stats = fj.take_stats();
        // All pattern-sites processed exactly once per newview level:
        // total evaluate sites equals the full pattern count.
        assert_eq!(
            stats.get(plf_core::KernelId::Evaluate).sites as usize,
            aln.num_patterns()
        );
        assert_eq!(stats.get(plf_core::KernelId::Evaluate).calls, 4);
        // Regions: eval + stats = 2 so far.
        assert_eq!(fj.regions(), 2);
        // Both regions' fork/join latencies were recorded and merged
        // into the combined stats.
        assert_eq!(stats.regions().count, 2);
        assert_eq!(stats.regions().fork.count(), 2);
        assert_eq!(stats.regions().join.count(), 2);
    }

    #[test]
    fn per_worker_stats_sum_to_merged() {
        let (tree, aln) = dataset();
        let mut fj = ForkJoinEvaluator::new(&tree, &aln, EngineConfig::default(), 3);
        fj.log_likelihood(&tree, 0);
        let per = fj.take_stats_per_worker();
        assert_eq!(per.len(), 3);
        let sites: u64 = per
            .iter()
            .map(|s| s.get(plf_core::KernelId::Evaluate).sites)
            .sum();
        assert_eq!(sites as usize, aln.num_patterns());
        // Each worker timed its own evaluate call.
        for s in &per {
            assert_eq!(s.timing(plf_core::KernelId::Evaluate).count(), 1);
        }
        // Region latencies live master-side.
        assert_eq!(fj.master_stats().regions().count, 2);
    }

    #[test]
    fn worker_panic_surfaces_as_error_not_hang() {
        let (tree, aln) = dataset();
        let cfg = EngineConfig::default();
        let mut fj = ForkJoinEvaluator::new(&tree, &aln, cfg, 3);
        // An out-of-range edge makes every worker's engine panic
        // inside the job; the master must observe a panic promptly
        // rather than deadlock on the join barrier, and Drop must
        // still shut the pool down.
        let bogus_edge = tree.num_edges() + 100;
        let res =
            std::panic::catch_unwind(AssertUnwindSafe(|| fj.log_likelihood(&tree, bogus_edge)));
        let err = res.expect_err("bogus edge must fail loudly");
        let msg = panic_message(err);
        assert!(
            msg.contains("fork-join worker panicked"),
            "unexpected message: {msg}"
        );
        // The pool survived the failed region: further work and a
        // clean Drop both still complete.
        let l = fj.log_likelihood(&tree, 0);
        assert!(l.is_finite());
        drop(fj);
    }

    #[test]
    fn full_search_under_forkjoin_matches_serial() {
        let (tree0, aln) = dataset();
        let names = tree0.tip_names().to_vec();
        let start = random_tree(&names, 0.1, &mut SmallRng::seed_from_u64(2)).unwrap();
        let cfg = EngineConfig::default();
        let search = phylo_search::MlSearch::new(phylo_search::SearchConfig {
            max_rounds: 3,
            optimize_model: false,
            ..Default::default()
        });

        let mut t_serial = start.clone();
        let mut serial = LikelihoodEngine::new(&t_serial, &aln, cfg);
        let r_serial = search.run(&mut serial, &mut t_serial);

        let mut t_fj = start.clone();
        let mut fj = ForkJoinEvaluator::new(&t_fj, &aln, cfg, 3);
        let r_fj = search.run(&mut fj, &mut t_fj);

        assert_eq!(t_serial.rf_distance(&t_fj), 0);
        assert!(
            (r_serial.log_likelihood - r_fj.log_likelihood).abs() < 1e-7,
            "{} vs {}",
            r_serial.log_likelihood,
            r_fj.log_likelihood
        );
    }

    proptest::proptest! {
        #![proptest_config(proptest::ProptestConfig::with_cases(12))]
        /// Fork-join log-likelihood equals the single engine to 1e-9
        /// for every worker count from 1 to twice the pattern count
        /// (sampled), including the empty-slice regime.
        fn forkjoin_matches_single_for_any_worker_count(
            seed in 0u64..1_000,
            len in 20usize..120,
        ) {
            let mut rng = SmallRng::seed_from_u64(seed);
            let names = default_names(6);
            let tree = random_tree(&names, 0.2, &mut rng).unwrap();
            let g = Gtr::new(GtrParams::jc69());
            let gamma = DiscreteGamma::new(0.8);
            let aln = phylo_seqgen::simulate_alignment(&tree, g.eigen(), &gamma, len, &mut rng);
            let aln = CompressedAlignment::from_alignment(&aln);
            let n = aln.num_patterns();
            let cfg = EngineConfig::default();
            let mut single = LikelihoodEngine::new(&tree, &aln, cfg);
            let expect = single.log_likelihood(&tree, 0);
            use rand::Rng;
            for _ in 0..3 {
                let workers = rng.random_range(1..=2 * n);
                let mut fj = ForkJoinEvaluator::new(&tree, &aln, cfg, workers);
                let got = fj.log_likelihood(&tree, 0);
                proptest::prop_assert!(
                    (got - expect).abs() < 1e-9,
                    "workers={} n={}: {} vs {}", workers, n, got, expect
                );
            }
        }
    }
}
