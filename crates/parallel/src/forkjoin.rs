//! The fork-join (RAxML-Light PThreads) scheme.
//!
//! A single master runs the search; persistent worker threads each own
//! a [`LikelihoodEngine`] over one contiguous slice of the alignment
//! patterns. Every likelihood operation becomes a parallel region:
//! the master broadcasts a job, the workers compute their partial
//! results, and the master reduces the replies — "master and worker
//! processes have to communicate at least twice per parallel
//! region/kernel" (§V-D), which is exactly the synchronization cost
//! `micsim` charges this scheme.

use crossbeam::channel::{bounded, Receiver, Sender};
use phylo_bio::CompressedAlignment;
use phylo_models::GtrParams;
use phylo_search::Evaluator;
use phylo_tree::{EdgeId, Tree};
use plf_core::{EngineConfig, KernelStats, LikelihoodEngine};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Splits `n` items into `k` contiguous, balanced ranges.
pub fn split_ranges(n: usize, k: usize) -> Vec<std::ops::Range<usize>> {
    assert!(k >= 1);
    (0..k)
        .map(|i| (i * n / k)..((i + 1) * n / k))
        .collect()
}

enum Job {
    Eval(Arc<Tree>, EdgeId),
    Prepare(Arc<Tree>, EdgeId),
    Derivatives(f64),
    SetAlpha(f64),
    SetModel(GtrParams),
    TakeStats,
    Shutdown,
}

enum Reply {
    Scalar(f64),
    Pair(f64, f64),
    Stats(Box<KernelStats>),
    Done,
}

struct Worker {
    jobs: Sender<Job>,
    replies: Receiver<Reply>,
    handle: Option<JoinHandle<()>>,
}

/// Master handle of the fork-join scheme; implements
/// [`phylo_search::Evaluator`] so the unmodified search drives it.
pub struct ForkJoinEvaluator {
    workers: Vec<Worker>,
    alpha: f64,
    params: GtrParams,
    /// Parallel regions dispatched (each costs one fork + one join
    /// synchronization).
    regions: u64,
}

impl ForkJoinEvaluator {
    /// Spawns `num_workers` workers over balanced pattern slices.
    pub fn new(
        tree: &Tree,
        aln: &CompressedAlignment,
        config: EngineConfig,
        num_workers: usize,
    ) -> Self {
        assert!(num_workers >= 1);
        let ranges = split_ranges(aln.num_patterns(), num_workers);
        let workers = ranges
            .into_iter()
            .map(|range| {
                let (job_tx, job_rx) = bounded::<Job>(1);
                let (reply_tx, reply_rx) = bounded::<Reply>(1);
                let mut engine = LikelihoodEngine::with_range(tree, aln, config, range);
                let handle = std::thread::spawn(move || {
                    while let Ok(job) = job_rx.recv() {
                        let reply = match job {
                            Job::Eval(tree, edge) => {
                                Reply::Scalar(engine.log_likelihood(&tree, edge))
                            }
                            Job::Prepare(tree, edge) => {
                                engine.prepare_branch(&tree, edge);
                                Reply::Done
                            }
                            Job::Derivatives(t) => {
                                let (d1, d2) = engine.branch_derivatives(t);
                                Reply::Pair(d1, d2)
                            }
                            Job::SetAlpha(a) => {
                                engine.set_alpha(a);
                                Reply::Done
                            }
                            Job::SetModel(p) => {
                                engine.set_model(p);
                                Reply::Done
                            }
                            Job::TakeStats => {
                                let s = engine.stats().clone();
                                engine.reset_stats();
                                Reply::Stats(Box::new(s))
                            }
                            Job::Shutdown => break,
                        };
                        reply_tx.send(reply).expect("master alive");
                    }
                });
                Worker {
                    jobs: job_tx,
                    replies: reply_rx,
                    handle: Some(handle),
                }
            })
            .collect();
        ForkJoinEvaluator {
            workers,
            alpha: config.alpha,
            params: GtrParams {
                rates: [1.0; 6],
                freqs: aln.empirical_frequencies(),
            },
            regions: 0,
        }
    }

    /// Number of worker threads.
    pub fn num_workers(&self) -> usize {
        self.workers.len()
    }

    /// Parallel regions dispatched so far.
    pub fn regions(&self) -> u64 {
        self.regions
    }

    fn broadcast(&mut self, make: impl Fn() -> Job) -> Vec<Reply> {
        self.regions += 1;
        for w in &self.workers {
            w.jobs.send(make()).expect("worker alive");
        }
        self.workers
            .iter()
            .map(|w| w.replies.recv().expect("worker alive"))
            .collect()
    }

    /// Collects and resets per-worker kernel statistics, merged.
    pub fn take_stats(&mut self) -> KernelStats {
        let mut total = KernelStats::new();
        for r in self.broadcast(|| Job::TakeStats) {
            match r {
                Reply::Stats(s) => total.merge(&s),
                _ => unreachable!("stats job returns stats"),
            }
        }
        total
    }
}

impl Evaluator for ForkJoinEvaluator {
    fn log_likelihood(&mut self, tree: &Tree, root_edge: EdgeId) -> f64 {
        let snapshot = Arc::new(tree.clone());
        self.broadcast(|| Job::Eval(Arc::clone(&snapshot), root_edge))
            .into_iter()
            .map(|r| match r {
                Reply::Scalar(x) => x,
                _ => unreachable!("eval returns scalar"),
            })
            .sum()
    }

    fn prepare_branch(&mut self, tree: &Tree, edge: EdgeId) {
        let snapshot = Arc::new(tree.clone());
        self.broadcast(|| Job::Prepare(Arc::clone(&snapshot), edge));
    }

    fn branch_derivatives(&mut self, t: f64) -> (f64, f64) {
        let mut d1 = 0.0;
        let mut d2 = 0.0;
        for r in self.broadcast(|| Job::Derivatives(t)) {
            match r {
                Reply::Pair(a, b) => {
                    d1 += a;
                    d2 += b;
                }
                _ => unreachable!("derivatives return a pair"),
            }
        }
        (d1, d2)
    }

    fn set_alpha(&mut self, alpha: f64) {
        self.alpha = alpha;
        self.broadcast(|| Job::SetAlpha(alpha));
    }

    fn set_model(&mut self, params: GtrParams) {
        self.params = params;
        self.broadcast(|| Job::SetModel(params));
    }

    fn alpha(&self) -> f64 {
        self.alpha
    }

    fn model(&self) -> GtrParams {
        self.params
    }
}

impl Drop for ForkJoinEvaluator {
    fn drop(&mut self) {
        for w in &self.workers {
            let _ = w.jobs.send(Job::Shutdown);
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_models::{DiscreteGamma, Gtr};
    use phylo_tree::build::{default_names, random_tree};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn dataset() -> (Tree, CompressedAlignment) {
        let mut rng = SmallRng::seed_from_u64(60);
        let names = default_names(9);
        let tree = random_tree(&names, 0.15, &mut rng).unwrap();
        let g = Gtr::new(GtrParams::jc69());
        let gamma = DiscreteGamma::new(0.9);
        let aln = phylo_seqgen::simulate_alignment(&tree, g.eigen(), &gamma, 700, &mut rng);
        (tree, CompressedAlignment::from_alignment(&aln))
    }

    #[test]
    fn split_ranges_cover_everything() {
        for (n, k) in [(10, 3), (7, 7), (100, 8), (5, 1), (3, 5)] {
            let ranges = split_ranges(n, k);
            assert_eq!(ranges.len(), k);
            let total: usize = ranges.iter().map(|r| r.len()).sum();
            assert_eq!(total, n);
            assert_eq!(ranges[0].start, 0);
            assert_eq!(ranges[k - 1].end, n);
            for w in ranges.windows(2) {
                assert_eq!(w[0].end, w[1].start);
            }
        }
    }

    #[test]
    fn matches_single_engine_likelihood() {
        let (tree, aln) = dataset();
        let cfg = EngineConfig::default();
        let mut single = LikelihoodEngine::new(&tree, &aln, cfg);
        for workers in [1, 2, 4] {
            let mut fj = ForkJoinEvaluator::new(&tree, &aln, cfg, workers);
            for e in [0usize, 3, 7] {
                let a = single.log_likelihood(&tree, e);
                let b = fj.log_likelihood(&tree, e);
                assert!((a - b).abs() < 1e-9, "workers={workers} edge={e}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn matches_single_engine_derivatives() {
        let (tree, aln) = dataset();
        let cfg = EngineConfig::default();
        let mut single = LikelihoodEngine::new(&tree, &aln, cfg);
        let mut fj = ForkJoinEvaluator::new(&tree, &aln, cfg, 3);
        for e in [1usize, 5] {
            Evaluator::prepare_branch(&mut single, &tree, e);
            fj.prepare_branch(&tree, e);
            let t = tree.length(e);
            let (a1, a2) = Evaluator::branch_derivatives(&mut single, t);
            let (b1, b2) = fj.branch_derivatives(t);
            assert!((a1 - b1).abs() < 1e-8, "{a1} vs {b1}");
            assert!((a2 - b2).abs() < 1e-8, "{a2} vs {b2}");
        }
    }

    #[test]
    fn model_updates_propagate() {
        let (tree, aln) = dataset();
        let cfg = EngineConfig::default();
        let mut fj = ForkJoinEvaluator::new(&tree, &aln, cfg, 2);
        let l1 = fj.log_likelihood(&tree, 0);
        fj.set_alpha(0.2);
        let l2 = fj.log_likelihood(&tree, 0);
        assert!((l1 - l2).abs() > 1e-6, "alpha change must shift likelihood");
        assert_eq!(fj.alpha(), 0.2);
    }

    #[test]
    fn stats_account_all_workers() {
        let (tree, aln) = dataset();
        let mut fj = ForkJoinEvaluator::new(&tree, &aln, EngineConfig::default(), 4);
        fj.log_likelihood(&tree, 0);
        let stats = fj.take_stats();
        // All pattern-sites processed exactly once per newview level:
        // total evaluate sites equals the full pattern count.
        assert_eq!(
            stats.get(plf_core::KernelId::Evaluate).sites as usize,
            aln.num_patterns()
        );
        assert_eq!(stats.get(plf_core::KernelId::Evaluate).calls, 4);
        // Regions: eval + stats = 2 so far.
        assert_eq!(fj.regions(), 2);
    }

    #[test]
    fn full_search_under_forkjoin_matches_serial() {
        let (tree0, aln) = dataset();
        let names = tree0.tip_names().to_vec();
        let start = random_tree(&names, 0.1, &mut SmallRng::seed_from_u64(2)).unwrap();
        let cfg = EngineConfig::default();
        let search = phylo_search::MlSearch::new(phylo_search::SearchConfig {
            max_rounds: 3,
            optimize_model: false,
            ..Default::default()
        });

        let mut t_serial = start.clone();
        let mut serial = LikelihoodEngine::new(&t_serial, &aln, cfg);
        let r_serial = search.run(&mut serial, &mut t_serial);

        let mut t_fj = start.clone();
        let mut fj = ForkJoinEvaluator::new(&t_fj, &aln, cfg, 3);
        let r_fj = search.run(&mut fj, &mut t_fj);

        assert_eq!(t_serial.rf_distance(&t_fj), 0);
        assert!(
            (r_serial.log_likelihood - r_fj.log_likelihood).abs() < 1e-7,
            "{} vs {}",
            r_serial.log_likelihood,
            r_fj.log_likelihood
        );
    }
}
