//! A sense-reversing spin/park barrier built from atomics.
//!
//! The kernels synchronize thousands of times per second with very
//! little work between barriers (the paper's §VI-B2 attributes the
//! MIC's small-alignment losses to exactly this sync overhead), so the
//! barrier spins briefly before parking — the standard adaptive
//! strategy for HPC worker pools.

use crate::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use crate::sync::{hint, thread};

/// Ordering of the final sense-flip store that releases the waiters.
///
/// `Release` is load-bearing: it is what makes every write performed
/// before a thread's barrier arrival visible to every thread after the
/// barrier (the waiters' `Acquire` loads pair with it). The
/// `seed-ordering-bug` feature deliberately weakens it to `Relaxed` so
/// the interleave model checker's detection of the resulting stale
/// read can be demonstrated (tests/interleave_models.rs); it must
/// never be enabled in production builds.
const SENSE_FLIP: Ordering = if cfg!(feature = "seed-ordering-bug") {
    Ordering::Relaxed
} else {
    Ordering::Release
};

/// A reusable barrier for a fixed set of `n` threads.
///
/// Unlike `std::sync::Barrier`, arrival order never matters and the
/// barrier is sense-reversing: alternate waits flip a shared "sense"
/// flag, so the same object can be reused back-to-back without a
/// second synchronization round.
pub struct SenseBarrier {
    total: usize,
    arrived: AtomicUsize,
    sense: AtomicBool,
}

impl SenseBarrier {
    /// Creates a barrier for `n ≥ 1` threads.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "barrier needs at least one participant");
        SenseBarrier {
            total: n,
            arrived: AtomicUsize::new(0),
            sense: AtomicBool::new(false),
        }
    }

    /// Number of participating threads.
    pub fn participants(&self) -> usize {
        self.total
    }

    /// Blocks until all `n` threads have called `wait`. The thread's
    /// local sense must alternate between calls; callers use
    /// [`BarrierToken`] to track it.
    pub fn wait(&self, token: &mut BarrierToken) {
        #[cfg(feature = "span-trace")]
        waits_counter().inc();
        let my_sense = !token.sense;
        token.sense = my_sense;
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            // Last arrival: reset the counter and release everyone.
            self.arrived.store(0, Ordering::Release);
            self.sense.store(my_sense, SENSE_FLIP);
        } else {
            let mut spins = 0u32;
            while self.sense.load(Ordering::Acquire) != my_sense {
                spins += 1;
                if spins < 10_000 {
                    hint::spin_loop();
                } else {
                    thread::yield_now();
                }
            }
        }
    }
}

/// Cached handle for the `barrier.waits` counter. Compiled out with the
/// `span-trace` feature so the uninstrumented barrier stays a pure
/// spin — `wait` is the hottest synchronization point in the scheme.
#[cfg(feature = "span-trace")]
fn waits_counter() -> &'static plf_core::metrics::Counter {
    static C: std::sync::OnceLock<plf_core::metrics::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| plf_core::metrics::counter("barrier.waits"))
}

/// Per-thread sense state for a [`SenseBarrier`].
#[derive(Clone, Copy, Debug, Default)]
pub struct BarrierToken {
    sense: bool,
}

impl BarrierToken {
    /// A fresh token (matches a freshly constructed barrier).
    pub fn new() -> Self {
        BarrierToken { sense: false }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn single_thread_never_blocks() {
        let b = SenseBarrier::new(1);
        let mut t = BarrierToken::new();
        for _ in 0..100 {
            b.wait(&mut t);
        }
    }

    #[test]
    fn phases_are_totally_ordered() {
        // Every thread increments a phase counter between barrier
        // waits; after each wait, all threads must observe the same
        // phase total — any barrier violation shows up as a torn read.
        const THREADS: usize = 8;
        const PHASES: usize = 200;
        let barrier = Arc::new(SenseBarrier::new(THREADS));
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    let mut token = BarrierToken::new();
                    for phase in 0..PHASES {
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait(&mut token);
                        let seen = counter.load(Ordering::Relaxed);
                        assert_eq!(seen as usize, (phase + 1) * THREADS, "phase {phase}");
                        barrier.wait(&mut token);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    #[should_panic]
    fn zero_participants_rejected() {
        SenseBarrier::new(0);
    }
}
