//! A sense-reversing spin/park barrier built from atomics.
//!
//! The kernels synchronize thousands of times per second with very
//! little work between barriers (the paper's §VI-B2 attributes the
//! MIC's small-alignment losses to exactly this sync overhead), so the
//! barrier spins briefly before parking — the standard adaptive
//! strategy for HPC worker pools.
//!
//! # Poison epoch
//!
//! A fixed-count barrier has a brutal failure mode: if one participant
//! dies, everyone else waits forever — the deadlock ExaML-style
//! replicated searches hit when a scheduler kills one rank
//! mid-collective. The barrier therefore carries a *poison epoch*: a
//! dying participant calls [`SenseBarrier::poison`] with its rank
//! before unwinding, and every blocked or future [`SenseBarrier::wait`]
//! returns [`Poisoned`] within a bounded number of spin iterations
//! instead of hanging. Poisoning is permanent — the group is dead and
//! the caller must tear it down and (optionally) rebuild with the
//! survivors.

use crate::sync::atomic::{AtomicUsize, Ordering};
use crate::sync::{hint, thread};

/// Ordering of the final sense-flip store that releases the waiters.
///
/// `Release` is load-bearing: it is what makes every write performed
/// before a thread's barrier arrival visible to every thread after the
/// barrier (the waiters' `Acquire` loads pair with it). The
/// `seed-ordering-bug` feature deliberately weakens it to `Relaxed` so
/// the interleave model checker's detection of the resulting stale
/// read can be demonstrated (tests/interleave_models.rs); it must
/// never be enabled in production builds.
const SENSE_FLIP: Ordering = if cfg!(feature = "seed-ordering-bug") {
    Ordering::Relaxed
} else {
    Ordering::Release
};

/// Barrier state-word values: the shared sense in normal operation…
const SENSE_FALSE: usize = 0;
/// …its flipped phase…
const SENSE_TRUE: usize = 1;
/// …and `POISON_BASE + rank` once participant `rank` has died. Sense
/// and poison share one word so a blocked waiter watches a *single*
/// location: eventual visibility of a store to that word (which C11
/// guarantees in finite time) is then sufficient for the waiter to
/// observe either release — a two-word design would let the poison
/// store hide behind an endlessly-fresh sense word.
const POISON_BASE: usize = 2;

/// Error returned by [`SenseBarrier::wait`] once the group is
/// poisoned: participant `rank` died and the barrier will never
/// complete again.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Poisoned {
    /// The rank that poisoned the group (first poisoner wins).
    pub rank: usize,
}

impl std::fmt::Display for Poisoned {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "barrier poisoned by failed participant {}", self.rank)
    }
}

impl std::error::Error for Poisoned {}

/// A reusable barrier for a fixed set of `n` threads.
///
/// Unlike `std::sync::Barrier`, arrival order never matters and the
/// barrier is sense-reversing: alternate waits flip a shared "sense"
/// flag, so the same object can be reused back-to-back without a
/// second synchronization round.
pub struct SenseBarrier {
    total: usize,
    arrived: AtomicUsize,
    /// The single word waiters spin on: [`SENSE_FALSE`]/[`SENSE_TRUE`]
    /// while healthy, `POISON_BASE + rank` once dead.
    state: AtomicUsize,
}

impl SenseBarrier {
    /// Creates a barrier for `n ≥ 1` threads.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1, "barrier needs at least one participant");
        SenseBarrier {
            total: n,
            arrived: AtomicUsize::new(0),
            state: AtomicUsize::new(SENSE_FALSE),
        }
    }

    /// Number of participating threads.
    pub fn participants(&self) -> usize {
        self.total
    }

    /// Marks the group as dead on behalf of failed participant
    /// `rank`. Idempotent; the first poisoner wins. Every blocked and
    /// future [`Self::wait`] returns `Err(Poisoned)` promptly.
    pub fn poison(&self, rank: usize) {
        let mut cur = self.state.load(Ordering::Acquire);
        loop {
            if cur >= POISON_BASE {
                return; // first poisoner already won
            }
            match self.state.compare_exchange_weak(
                cur,
                POISON_BASE + rank,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }

    /// The poisoner's rank, if the group is dead.
    pub fn poisoned(&self) -> Option<usize> {
        match self.state.load(Ordering::Acquire) {
            s if s >= POISON_BASE => Some(s - POISON_BASE),
            _ => None,
        }
    }

    /// Blocks until all `n` threads have called `wait`, or until the
    /// group is poisoned — a poisoned wait returns `Err` within a
    /// bounded number of spin iterations rather than hanging. The
    /// thread's local sense must alternate between calls; callers use
    /// [`BarrierToken`] to track it.
    pub fn wait(&self, token: &mut BarrierToken) -> Result<(), Poisoned> {
        #[cfg(feature = "span-trace")]
        waits_counter().inc();
        if let Some(rank) = self.poisoned() {
            return Err(Poisoned { rank });
        }
        let my_sense = !token.sense;
        token.sense = my_sense;
        if self.arrived.fetch_add(1, Ordering::AcqRel) + 1 == self.total {
            // Last arrival: reset the counter and release everyone by
            // flipping the sense — unless a participant died since the
            // entry check (a poison marker must never be overwritten,
            // so the flip is a compare-exchange against the old
            // sense, the only other value the word can hold).
            self.arrived.store(0, Ordering::Release);
            match self.state.compare_exchange(
                (!my_sense) as usize,
                my_sense as usize,
                SENSE_FLIP,
                Ordering::Acquire,
            ) {
                Ok(_) => Ok(()),
                Err(seen) => {
                    debug_assert!(seen >= POISON_BASE, "unexpected barrier state {seen}");
                    Err(Poisoned {
                        rank: seen.saturating_sub(POISON_BASE),
                    })
                }
            }
        } else {
            let mut spins = 0u32;
            loop {
                let s = self.state.load(Ordering::Acquire);
                if s >= POISON_BASE {
                    return Err(Poisoned {
                        rank: s - POISON_BASE,
                    });
                }
                if (s == SENSE_TRUE) == my_sense {
                    return Ok(());
                }
                spins += 1;
                if spins < 10_000 {
                    hint::spin_loop();
                } else {
                    thread::yield_now();
                }
            }
        }
    }
}

/// Cached handle for the `barrier.waits` counter. Compiled out with the
/// `span-trace` feature so the uninstrumented barrier stays a pure
/// spin — `wait` is the hottest synchronization point in the scheme.
#[cfg(feature = "span-trace")]
fn waits_counter() -> &'static plf_core::metrics::Counter {
    static C: std::sync::OnceLock<plf_core::metrics::Counter> = std::sync::OnceLock::new();
    C.get_or_init(|| plf_core::metrics::counter("barrier.waits"))
}

/// Per-thread sense state for a [`SenseBarrier`].
#[derive(Clone, Copy, Debug, Default)]
pub struct BarrierToken {
    sense: bool,
}

impl BarrierToken {
    /// A fresh token (matches a freshly constructed barrier).
    pub fn new() -> Self {
        BarrierToken { sense: false }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn single_thread_never_blocks() {
        let b = SenseBarrier::new(1);
        let mut t = BarrierToken::new();
        for _ in 0..100 {
            b.wait(&mut t).unwrap();
        }
    }

    #[test]
    fn phases_are_totally_ordered() {
        // Every thread increments a phase counter between barrier
        // waits; after each wait, all threads must observe the same
        // phase total — any barrier violation shows up as a torn read.
        const THREADS: usize = 8;
        const PHASES: usize = 200;
        let barrier = Arc::new(SenseBarrier::new(THREADS));
        let counter = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..THREADS)
            .map(|_| {
                let barrier = Arc::clone(&barrier);
                let counter = Arc::clone(&counter);
                std::thread::spawn(move || {
                    let mut token = BarrierToken::new();
                    for phase in 0..PHASES {
                        counter.fetch_add(1, Ordering::Relaxed);
                        barrier.wait(&mut token).unwrap();
                        let seen = counter.load(Ordering::Relaxed);
                        assert_eq!(seen as usize, (phase + 1) * THREADS, "phase {phase}");
                        barrier.wait(&mut token).unwrap();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn poisoned_barrier_fails_fast_instead_of_hanging() {
        let b = SenseBarrier::new(2);
        b.poison(1);
        assert_eq!(b.poisoned(), Some(1));
        let mut t = BarrierToken::new();
        // Only one of two participants arrives: without poison this
        // would spin forever.
        assert_eq!(b.wait(&mut t), Err(Poisoned { rank: 1 }));
        // Permanently dead.
        assert_eq!(b.wait(&mut t), Err(Poisoned { rank: 1 }));
    }

    #[test]
    fn poison_releases_an_already_blocked_waiter() {
        let b = Arc::new(SenseBarrier::new(3));
        let waiters: Vec<_> = (0..2)
            .map(|_| {
                let b = Arc::clone(&b);
                std::thread::spawn(move || {
                    let mut t = BarrierToken::new();
                    b.wait(&mut t)
                })
            })
            .collect();
        // Let both block at the barrier, then kill the third rank.
        std::thread::sleep(std::time::Duration::from_millis(20));
        b.poison(2);
        for w in waiters {
            assert_eq!(w.join().unwrap(), Err(Poisoned { rank: 2 }));
        }
    }

    #[test]
    fn first_poisoner_wins() {
        let b = SenseBarrier::new(2);
        b.poison(0);
        b.poison(1);
        assert_eq!(b.poisoned(), Some(0));
    }

    #[test]
    #[should_panic]
    fn zero_participants_rejected() {
        SenseBarrier::new(0);
    }
}
