//! Real-transport communicators: the [`Comm`] collectives over OS
//! processes and sockets.
//!
//! [`crate::comm::ThreadComm`] shares memory between threads of one
//! process; this module adds [`SocketComm`], the same deterministic
//! collectives over a length-prefixed frame protocol on Unix domain
//! sockets (TCP loopback behind the `tcp-transport` feature). Rank 0
//! lives in the supervisor process and hosts a reduction *hub*; every
//! rank (including rank 0) connects to the hub, deposits its
//! contribution, and receives the rank-order sum — bit-identical to
//! the in-thread reduction, so replicated searches stay in lockstep
//! across transports.
//!
//! # Failure model
//!
//! A dead peer must surface as a structured error, never a hang:
//!
//! * every stream carries read/write timeouts
//!   ([`TransportConfig`]); a silent peer bounds the caller's wait and
//!   returns [`CommError::Timeout`] as a local backstop;
//! * the hub poisons the group on the first EOF, protocol violation,
//!   misuse, or abort frame, and broadcasts a `Poison` frame so every
//!   blocked rank fails promptly with [`CommError::PeerFailed`] —
//!   the socket equivalent of the poisoned
//!   [`crate::barrier::SenseBarrier`];
//! * a rank that must abandon the run (panic, checkpoint failure)
//!   sends an `Abort` frame before dying, so the supervisor can
//!   classify the cause (checkpoint beats panic beats collective,
//!   same priority as the in-thread supervisor);
//! * child processes are owned by a kill-on-drop [`ChildSet`]: no
//!   orphan can outlive the supervisor.
//!
//! Per-collective sequence numbers detect de-synchronized ranks (a
//! lockstep violation poisons the group instead of silently summing
//! mismatched collectives).

use crate::comm::{Comm, SelfComm, ThreadComm};
use std::time::Duration;

/// Measured time spent inside collectives ("on the wire"), per rank.
///
/// For [`SocketComm`] this is the frame round-trip through the hub;
/// for [`ThreadComm`] the deposit/barrier/sum window. `micsim`'s
/// modeled AllReduce latency can be validated against
/// [`WireStats::mean_ns`] of a real run (see `trace-report`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WireStats {
    /// Completed collectives measured.
    pub ops: u64,
    /// Total nanoseconds across all measured collectives.
    pub total_ns: u64,
    /// Slowest single collective, nanoseconds.
    pub max_ns: u64,
}

impl WireStats {
    /// Records one collective of `ns` nanoseconds.
    pub fn record(&mut self, ns: u64) {
        self.ops += 1;
        self.total_ns += ns;
        self.max_ns = self.max_ns.max(ns);
    }

    /// Mean nanoseconds per collective (0 when nothing was measured).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.ops).unwrap_or(0)
    }

    /// Accumulates another rank's measurements.
    pub fn merge(&mut self, other: &WireStats) {
        self.ops += other.ops;
        self.total_ns += other.total_ns;
        self.max_ns = self.max_ns.max(other.max_ns);
    }
}

/// A [`Comm`] that knows what transport backs it and how long its
/// collectives took. Implemented by every communicator in this crate
/// so callers (the CLI, the trace writer) can report the resolved
/// transport uniformly.
pub trait CommTransport: Comm {
    /// Short transport name recorded in the trace meta event
    /// (`"self"`, `"threads"`, `"uds"`, `"tcp"`).
    fn transport_name(&self) -> &'static str;
    /// Measured wire time of this participant's collectives.
    fn wire_stats(&self) -> WireStats;
}

impl CommTransport for SelfComm {
    fn transport_name(&self) -> &'static str {
        "self"
    }
    fn wire_stats(&self) -> WireStats {
        // Single-rank collectives never touch a wire.
        WireStats::default()
    }
}

impl CommTransport for ThreadComm {
    fn transport_name(&self) -> &'static str {
        "threads"
    }
    fn wire_stats(&self) -> WireStats {
        self.measured_wire()
    }
}

/// Which transport backs a replicated run (`--transport`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TransportKind {
    /// In-process threads over shared memory (the PR 4 scheme).
    Threads,
    /// One OS process per rank over Unix domain sockets.
    Uds,
    /// One OS process per rank over TCP loopback.
    #[cfg(feature = "tcp-transport")]
    Tcp,
}

impl TransportKind {
    /// The flag spelling / trace meta name.
    pub fn name(&self) -> &'static str {
        match self {
            TransportKind::Threads => "threads",
            TransportKind::Uds => "uds",
            #[cfg(feature = "tcp-transport")]
            TransportKind::Tcp => "tcp",
        }
    }

    /// True when ranks are OS processes joined by sockets.
    pub fn is_socket(&self) -> bool {
        !matches!(self, TransportKind::Threads)
    }
}

impl std::fmt::Display for TransportKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for TransportKind {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "threads" => Ok(TransportKind::Threads),
            "uds" => Ok(TransportKind::Uds),
            #[cfg(feature = "tcp-transport")]
            "tcp" => Ok(TransportKind::Tcp),
            #[cfg(not(feature = "tcp-transport"))]
            "tcp" => Err("tcp transport requires the `tcp-transport` cargo feature".into()),
            other => Err(format!(
                "unknown transport {other:?} (expected threads, uds or tcp)"
            )),
        }
    }
}

/// Socket-transport tuning: payload contract and the timeouts that
/// turn silent peers into structured errors.
#[derive(Clone, Debug)]
pub struct TransportConfig {
    /// Maximum AllReduce payload in doubles (the same contract
    /// [`crate::comm::ThreadCommGroup::new`] enforces; both the client
    /// and the hub check it).
    pub max_len: usize,
    /// How long a rank waits for a collective reply before giving up
    /// with [`CommError::Timeout`].
    pub read_timeout: Duration,
    /// How long a frame write may block.
    pub write_timeout: Duration,
    /// How long the hub waits for all ranks to connect, and a rank
    /// retries connecting to a not-yet-listening hub.
    pub accept_deadline: Duration,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            max_len: crate::comm::DEFAULT_MAX_LEN,
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            accept_deadline: Duration::from_secs(10),
        }
    }
}

impl TransportConfig {
    /// The default configuration with the `PHYLOMIC_WIRE_TIMEOUT_MS`
    /// environment override applied to the read/write timeouts (the
    /// kill-matrix tests shrink them so dead-peer detection is fast).
    pub fn from_env() -> Self {
        let mut cfg = TransportConfig::default();
        if let Ok(v) = std::env::var("PHYLOMIC_WIRE_TIMEOUT_MS") {
            if let Ok(ms) = v.trim().parse::<u64>() {
                let ms = ms.max(1);
                cfg.read_timeout = Duration::from_millis(ms);
                cfg.write_timeout = Duration::from_millis(ms);
            }
        }
        cfg
    }
}

/// The length-prefixed wire protocol shared by clients and the hub.
///
/// Every frame is a fixed 21-byte little-endian header —
/// `magic:u32 | kind:u8 | rank:u32 | seq:u64 | len:u32` — followed by
/// `len` payload bytes. `seq` is the sender's per-rank collective
/// ordinal (1-based, shared between AllReduce and Barrier); the hub
/// rejects any gap or replay as a lockstep violation.
#[cfg(unix)]
pub mod frame {
    use std::io::{self, Read, Write};

    /// Frame magic, `"PLFR"`.
    pub const MAGIC: u32 = 0x504C_4652;
    /// Header size in bytes.
    pub const HEADER_LEN: usize = 21;
    /// Upper bound on a frame payload; anything larger is a protocol
    /// violation (collective payloads are ≤ `max_len * 8` bytes,
    /// abort messages are truncated).
    pub const MAX_PAYLOAD: u32 = 1 << 20;

    /// Frame discriminator.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    #[repr(u8)]
    pub enum Kind {
        /// Client → hub: claim a rank (header `rank`), no payload.
        Hello = 1,
        /// Hub → client: handshake ack, payload `size:u32 max_len:u32`.
        HelloAck = 2,
        /// Client → hub: AllReduce contribution, payload f64-LE array.
        AllReduce = 3,
        /// Hub → client: the rank-order sum for `seq`.
        Sum = 4,
        /// Client → hub: barrier arrival, no payload.
        Barrier = 5,
        /// Hub → client: barrier release for `seq`.
        BarrierOk = 6,
        /// Hub → client: the group is dead; payload encodes the
        /// [`super::PoisonCause`].
        Poison = 7,
        /// Client → hub: the client rejected its own oversized
        /// payload; payload `len:u64` (the oversize length).
        Misuse = 8,
        /// Client → hub: structured abandonment (panic or checkpoint
        /// failure); payload is the encoded [`super::PoisonCause`]
        /// (an `Abort` variant carrying the class and message).
        Abort = 9,
        /// Client → hub: final per-rank report; payload is the encoded
        /// [`super::RankReport`].
        Result = 10,
    }

    impl Kind {
        fn from_u8(b: u8) -> Option<Kind> {
            Some(match b {
                1 => Kind::Hello,
                2 => Kind::HelloAck,
                3 => Kind::AllReduce,
                4 => Kind::Sum,
                5 => Kind::Barrier,
                6 => Kind::BarrierOk,
                7 => Kind::Poison,
                8 => Kind::Misuse,
                9 => Kind::Abort,
                10 => Kind::Result,
                _ => return None,
            })
        }
    }

    /// One decoded frame.
    #[derive(Clone, Debug, PartialEq)]
    pub struct Frame {
        /// Frame discriminator.
        pub kind: Kind,
        /// Sending rank (0 for hub-originated frames).
        pub rank: u32,
        /// Per-rank collective ordinal (0 for non-collective frames).
        pub seq: u64,
        /// Payload bytes, already length-validated.
        pub payload: Vec<u8>,
    }

    impl Frame {
        /// A payload-free frame.
        pub fn control(kind: Kind, rank: u32, seq: u64) -> Frame {
            Frame {
                kind,
                rank,
                seq,
                payload: Vec::new(),
            }
        }
    }

    /// Writes one frame (header + payload) and flushes.
    pub fn write_frame(w: &mut impl Write, f: &Frame) -> io::Result<()> {
        debug_assert!(f.payload.len() <= MAX_PAYLOAD as usize);
        let mut head = [0u8; HEADER_LEN];
        head[0..4].copy_from_slice(&MAGIC.to_le_bytes());
        head[4] = f.kind as u8;
        head[5..9].copy_from_slice(&f.rank.to_le_bytes());
        head[9..17].copy_from_slice(&f.seq.to_le_bytes());
        head[17..21].copy_from_slice(&(f.payload.len() as u32).to_le_bytes());
        w.write_all(&head)?;
        w.write_all(&f.payload)?;
        w.flush()
    }

    /// Reads one frame, validating magic, kind, and payload bound.
    pub fn read_frame(r: &mut impl Read) -> io::Result<Frame> {
        let mut head = [0u8; HEADER_LEN];
        r.read_exact(&mut head)?;
        let magic = u32::from_le_bytes(head[0..4].try_into().unwrap());
        if magic != MAGIC {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad frame magic {magic:#x}"),
            ));
        }
        let kind = Kind::from_u8(head[4]).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("bad frame kind {}", head[4]),
            )
        })?;
        let rank = u32::from_le_bytes(head[5..9].try_into().unwrap());
        let seq = u64::from_le_bytes(head[9..17].try_into().unwrap());
        let len = u32::from_le_bytes(head[17..21].try_into().unwrap());
        if len > MAX_PAYLOAD {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("frame payload {len} exceeds cap {MAX_PAYLOAD}"),
            ));
        }
        let mut payload = vec![0u8; len as usize];
        r.read_exact(&mut payload)?;
        Ok(Frame {
            kind,
            rank,
            seq,
            payload,
        })
    }

    /// Encodes an f64 slice as little-endian bytes.
    pub fn doubles_to_bytes(buf: &[f64]) -> Vec<u8> {
        let mut out = Vec::with_capacity(buf.len() * 8);
        for v in buf {
            out.extend_from_slice(&v.to_le_bytes());
        }
        out
    }

    /// Decodes a little-endian f64 array; errors on a ragged length.
    pub fn bytes_to_doubles(b: &[u8]) -> io::Result<Vec<f64>> {
        if !b.len().is_multiple_of(8) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("f64 payload of {} bytes is not a multiple of 8", b.len()),
            ));
        }
        Ok(b.chunks_exact(8)
            .map(|c| f64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }
}

#[cfg(unix)]
pub use unix_impl::*;

#[cfg(unix)]
mod unix_impl {
    use super::frame::{self, Frame, Kind};
    use super::{CommTransport, TransportConfig, TransportKind, WireStats};
    use crate::comm::{Comm, CommError, CommStats};
    use crate::fault::FaultPlan;
    use crate::replicated::{FtConfig, ReplicatedError, ReplicatedEvaluator, ReplicatedOutcome};
    use phylo_bio::CompressedAlignment;
    use phylo_search::checkpoint::Checkpoint;
    use phylo_search::{Evaluator, MlSearch};
    use phylo_tree::Tree;
    use plf_core::{EngineConfig, KernelStats, LikelihoodEngine};
    use std::collections::BTreeMap;
    use std::io;
    use std::os::unix::net::{UnixListener, UnixStream};
    use std::panic::{catch_unwind, AssertUnwindSafe};
    use std::path::{Path, PathBuf};
    use std::sync::{Arc, Condvar, Mutex};
    use std::time::{Duration, Instant};

    /// Why a socket group died. Carried in `Poison` frames and used by
    /// the supervisor for cause classification (checkpoint > panic >
    /// collective, mirroring the in-thread supervisor).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum PoisonCause {
        /// A rank's connection died (EOF, protocol violation, real
        /// `kill -9`).
        Peer {
            /// The dead rank.
            rank: usize,
        },
        /// A rank passed an oversized payload.
        Misuse {
            /// The misusing rank.
            rank: usize,
            /// Payload length it passed (doubles).
            len: usize,
            /// The group contract it violated.
            max_len: usize,
        },
        /// A rank abandoned the run deliberately and said why.
        Abort {
            /// The aborting rank.
            rank: usize,
            /// Panic or checkpoint failure.
            class: AbortClass,
            /// Human-readable cause.
            message: String,
        },
    }

    /// Why a rank sent an `Abort` frame.
    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    pub enum AbortClass {
        /// The rank body panicked outside the collectives.
        Panic,
        /// Loading or durably writing the checkpoint failed.
        Checkpoint,
    }

    impl PoisonCause {
        /// The rank whose failure killed the group.
        pub fn failed_rank(&self) -> usize {
            match *self {
                PoisonCause::Peer { rank }
                | PoisonCause::Misuse { rank, .. }
                | PoisonCause::Abort { rank, .. } => rank,
            }
        }

        /// What a *peer* of the failed rank observes: always
        /// [`CommError::PeerFailed`] (misuse surfaces as
        /// `PayloadTooLarge` only on the misusing rank itself, exactly
        /// like the in-thread transport).
        pub fn as_peer_error(&self) -> CommError {
            CommError::PeerFailed {
                rank: self.failed_rank(),
            }
        }

        /// Wire encoding: `tag:u8 rank:u64 a:u64 b:u64 msg...`.
        pub fn encode(&self) -> Vec<u8> {
            let (tag, rank, a, b, msg): (u8, usize, u64, u64, &str) = match self {
                PoisonCause::Peer { rank } => (1, *rank, 0, 0, ""),
                PoisonCause::Misuse { rank, len, max_len } => {
                    (2, *rank, *len as u64, *max_len as u64, "")
                }
                PoisonCause::Abort {
                    rank,
                    class: AbortClass::Panic,
                    message,
                } => (3, *rank, 0, 0, message.as_str()),
                PoisonCause::Abort {
                    rank,
                    class: AbortClass::Checkpoint,
                    message,
                } => (4, *rank, 0, 0, message.as_str()),
            };
            let mut out = Vec::with_capacity(25 + msg.len());
            out.push(tag);
            out.extend_from_slice(&(rank as u64).to_le_bytes());
            out.extend_from_slice(&a.to_le_bytes());
            out.extend_from_slice(&b.to_le_bytes());
            // Bound the message so the frame respects MAX_PAYLOAD.
            let msg = &msg.as_bytes()[..msg.len().min(4096)];
            out.extend_from_slice(msg);
            out
        }

        /// Decodes [`Self::encode`]'s format.
        pub fn decode(b: &[u8]) -> Option<PoisonCause> {
            if b.len() < 25 {
                return None;
            }
            let tag = b[0];
            let rank = u64::from_le_bytes(b[1..9].try_into().ok()?) as usize;
            let a = u64::from_le_bytes(b[9..17].try_into().ok()?);
            let bb = u64::from_le_bytes(b[17..25].try_into().ok()?);
            let message = String::from_utf8_lossy(&b[25..]).into_owned();
            Some(match tag {
                1 => PoisonCause::Peer { rank },
                2 => PoisonCause::Misuse {
                    rank,
                    len: a as usize,
                    max_len: bb as usize,
                },
                3 => PoisonCause::Abort {
                    rank,
                    class: AbortClass::Panic,
                    message,
                },
                4 => PoisonCause::Abort {
                    rank,
                    class: AbortClass::Checkpoint,
                    message,
                },
                _ => return None,
            })
        }
    }

    /// A rank's final report, sent in the `Result` frame so the
    /// supervisor can assert lockstep and aggregate wire metrics
    /// without re-running anything.
    #[derive(Clone, Copy, Debug, PartialEq)]
    pub struct RankReport {
        /// The rank's final reduced log-likelihood (must agree across
        /// ranks — the lockstep invariant).
        pub final_ll: f64,
        /// Collective counts of this rank.
        pub comm: CommStats,
        /// Measured wire time of this rank.
        pub wire: WireStats,
    }

    impl RankReport {
        /// Wire encoding: 7 little-endian u64-sized fields.
        pub fn encode(&self) -> Vec<u8> {
            let mut out = Vec::with_capacity(56);
            out.extend_from_slice(&self.final_ll.to_le_bytes());
            for v in [
                self.comm.allreduces,
                self.comm.bytes,
                self.comm.barriers,
                self.wire.ops,
                self.wire.total_ns,
                self.wire.max_ns,
            ] {
                out.extend_from_slice(&v.to_le_bytes());
            }
            out
        }

        /// Decodes [`Self::encode`]'s format.
        pub fn decode(b: &[u8]) -> Option<RankReport> {
            if b.len() != 56 {
                return None;
            }
            let u = |i: usize| u64::from_le_bytes(b[i..i + 8].try_into().unwrap());
            Some(RankReport {
                final_ll: f64::from_le_bytes(b[0..8].try_into().unwrap()),
                comm: CommStats {
                    allreduces: u(8),
                    bytes: u(16),
                    barriers: u(24),
                },
                wire: WireStats {
                    ops: u(32),
                    total_ns: u(40),
                    max_ns: u(48),
                },
            })
        }
    }

    /// Where the hub listens, in a form that survives `exec` into a
    /// child process (`uds:/path` or `tcp:127.0.0.1:port`).
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum Endpoint {
        /// A Unix-domain socket path.
        Uds(PathBuf),
        /// A TCP loopback address.
        #[cfg(feature = "tcp-transport")]
        Tcp(std::net::SocketAddr),
    }

    impl std::fmt::Display for Endpoint {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                Endpoint::Uds(p) => write!(f, "uds:{}", p.display()),
                #[cfg(feature = "tcp-transport")]
                Endpoint::Tcp(a) => write!(f, "tcp:{a}"),
            }
        }
    }

    impl std::str::FromStr for Endpoint {
        type Err = String;
        fn from_str(s: &str) -> Result<Self, Self::Err> {
            if let Some(p) = s.strip_prefix("uds:") {
                return Ok(Endpoint::Uds(PathBuf::from(p)));
            }
            #[cfg(feature = "tcp-transport")]
            if let Some(a) = s.strip_prefix("tcp:") {
                return a
                    .parse()
                    .map(Endpoint::Tcp)
                    .map_err(|e| format!("bad tcp endpoint {a:?}: {e}"));
            }
            Err(format!(
                "bad endpoint {s:?} (expected uds:PATH or tcp:ADDR)"
            ))
        }
    }

    /// A connected stream of either flavor. All frame I/O goes through
    /// this so the hub and client are transport-agnostic.
    #[derive(Debug)]
    pub(crate) enum Stream {
        Uds(UnixStream),
        #[cfg(feature = "tcp-transport")]
        Tcp(std::net::TcpStream),
    }

    impl Stream {
        /// Connects to `ep`, retrying while the hub is not yet
        /// listening, until `deadline` elapses.
        fn connect(ep: &Endpoint, deadline: Duration) -> io::Result<Stream> {
            let until = Instant::now() + deadline;
            loop {
                let attempt = match ep {
                    Endpoint::Uds(p) => UnixStream::connect(p).map(Stream::Uds),
                    #[cfg(feature = "tcp-transport")]
                    Endpoint::Tcp(a) => std::net::TcpStream::connect(a).map(Stream::Tcp),
                };
                match attempt {
                    Ok(s) => return Ok(s),
                    Err(e)
                        if matches!(
                            e.kind(),
                            io::ErrorKind::NotFound | io::ErrorKind::ConnectionRefused
                        ) && Instant::now() < until =>
                    {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(e) => return Err(e),
                }
            }
        }

        fn set_timeouts(&self, read: Option<Duration>, write: Option<Duration>) -> io::Result<()> {
            match self {
                Stream::Uds(s) => {
                    s.set_read_timeout(read)?;
                    s.set_write_timeout(write)
                }
                #[cfg(feature = "tcp-transport")]
                Stream::Tcp(s) => {
                    s.set_read_timeout(read)?;
                    s.set_write_timeout(write)
                }
            }
        }

        fn try_clone(&self) -> io::Result<Stream> {
            match self {
                Stream::Uds(s) => s.try_clone().map(Stream::Uds),
                #[cfg(feature = "tcp-transport")]
                Stream::Tcp(s) => s.try_clone().map(Stream::Tcp),
            }
        }

        fn shutdown(&self) -> io::Result<()> {
            match self {
                Stream::Uds(s) => s.shutdown(std::net::Shutdown::Both),
                #[cfg(feature = "tcp-transport")]
                Stream::Tcp(s) => s.shutdown(std::net::Shutdown::Both),
            }
        }
    }

    impl io::Read for Stream {
        fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
            match self {
                Stream::Uds(s) => io::Read::read(s, buf),
                #[cfg(feature = "tcp-transport")]
                Stream::Tcp(s) => io::Read::read(s, buf),
            }
        }
    }

    impl io::Write for Stream {
        fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
            match self {
                Stream::Uds(s) => io::Write::write(s, buf),
                #[cfg(feature = "tcp-transport")]
                Stream::Tcp(s) => io::Write::write(s, buf),
            }
        }
        fn flush(&mut self) -> io::Result<()> {
            match self {
                Stream::Uds(s) => io::Write::flush(s),
                #[cfg(feature = "tcp-transport")]
                Stream::Tcp(s) => io::Write::flush(s),
            }
        }
    }

    /// The hub's listening socket of either flavor.
    pub(crate) enum Listener {
        Uds(UnixListener),
        #[cfg(feature = "tcp-transport")]
        Tcp(std::net::TcpListener),
    }

    impl Listener {
        /// Binds a fresh endpoint for one attempt. UDS sockets get a
        /// pid- and tag-unique path under `dir` so degraded reruns
        /// never race a stale socket file.
        pub(crate) fn bind(
            kind: TransportKind,
            dir: &Path,
            tag: &str,
        ) -> io::Result<(Listener, Endpoint)> {
            match kind {
                TransportKind::Threads => {
                    Err(io::Error::other("threads transport has no socket endpoint"))
                }
                TransportKind::Uds => {
                    let path = dir.join(format!("phylomic-{}-{tag}.sock", std::process::id()));
                    let _ = std::fs::remove_file(&path);
                    let l = UnixListener::bind(&path)?;
                    Ok((Listener::Uds(l), Endpoint::Uds(path)))
                }
                #[cfg(feature = "tcp-transport")]
                TransportKind::Tcp => {
                    let l = std::net::TcpListener::bind("127.0.0.1:0")?;
                    let addr = l.local_addr()?;
                    Ok((Listener::Tcp(l), Endpoint::Tcp(addr)))
                }
            }
        }

        fn set_nonblocking(&self, v: bool) -> io::Result<()> {
            match self {
                Listener::Uds(l) => l.set_nonblocking(v),
                #[cfg(feature = "tcp-transport")]
                Listener::Tcp(l) => l.set_nonblocking(v),
            }
        }

        fn accept(&self) -> io::Result<Stream> {
            match self {
                Listener::Uds(l) => l.accept().map(|(s, _)| Stream::Uds(s)),
                #[cfg(feature = "tcp-transport")]
                Listener::Tcp(l) => l.accept().map(|(s, _)| Stream::Tcp(s)),
            }
        }
    }

    /// Kills the calling process with `SIGKILL`: no unwinding, no
    /// destructors, no atexit — the real job-scheduler kill the
    /// fault-tolerance stack must survive. Used by the scripted
    /// `kill9=` fault so the process-kill tests exercise genuine
    /// process death rather than a simulated one.
    pub fn sigkill_self() -> ! {
        #[cfg(all(target_arch = "x86_64", target_os = "linux"))]
        {
            let pid = std::process::id() as u64;
            // SAFETY: raw `kill(getpid(), SIGKILL)` via the x86_64
            // Linux syscall ABI (rax=62 SYS_kill, rdi=pid, rsi=sig;
            // rcx/r11 are kernel-clobbered). No memory is passed to
            // the kernel and the call does not return on success, so
            // no Rust invariants can be observed violated afterwards.
            unsafe {
                core::arch::asm!(
                    "syscall",
                    in("rax") 62u64,
                    in("rdi") pid,
                    in("rsi") 9u64,
                    out("rcx") _,
                    out("r11") _,
                    options(nostack),
                );
            }
        }
        // Non-x86_64/Linux targets (and the unreachable fallthrough):
        // abort() is the closest portable approximation — immediate
        // death without unwinding.
        std::process::abort()
    }

    /// One rank's socket communicator: the [`Comm`] collectives as
    /// frame round-trips through the supervisor's hub.
    pub struct SocketComm {
        stream: Stream,
        rank: usize,
        size: usize,
        max_len: usize,
        seq: u64,
        stats: CommStats,
        wire: WireStats,
        /// First failure; replayed on every later collective so the
        /// group stays dead exactly like a poisoned barrier.
        dead: Option<CommError>,
        fault_plan: Option<Arc<FaultPlan>>,
        kind_name: &'static str,
        read_timeout: Duration,
    }

    impl SocketComm {
        /// Connects to the hub at `ep`, claims `rank`, and completes
        /// the handshake (validating the hub's group size and payload
        /// contract against this rank's expectation).
        pub fn connect(
            ep: &Endpoint,
            rank: usize,
            ranks: usize,
            tcfg: &TransportConfig,
            fault_plan: Option<Arc<FaultPlan>>,
        ) -> io::Result<SocketComm> {
            let mut stream = Stream::connect(ep, tcfg.accept_deadline)?;
            stream.set_timeouts(Some(tcfg.read_timeout), Some(tcfg.write_timeout))?;
            frame::write_frame(&mut stream, &Frame::control(Kind::Hello, rank as u32, 0))?;
            let ack = frame::read_frame(&mut stream)?;
            if ack.kind != Kind::HelloAck || ack.payload.len() != 8 {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("handshake rejected (got {:?})", ack.kind),
                ));
            }
            let size = u32::from_le_bytes(ack.payload[0..4].try_into().unwrap()) as usize;
            let max_len = u32::from_le_bytes(ack.payload[4..8].try_into().unwrap()) as usize;
            if size != ranks {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("hub group size {size} != expected {ranks}"),
                ));
            }
            let kind_name = match ep {
                Endpoint::Uds(_) => "uds",
                #[cfg(feature = "tcp-transport")]
                Endpoint::Tcp(_) => "tcp",
            };
            Ok(SocketComm {
                stream,
                rank,
                size,
                max_len,
                seq: 0,
                stats: CommStats::default(),
                wire: WireStats::default(),
                dead: None,
                fault_plan,
                kind_name,
                read_timeout: tcfg.read_timeout,
            })
        }

        /// A detached sender for `Abort` frames, usable while the
        /// communicator itself is owned by the evaluator (the socket
        /// analogue of [`crate::comm::AbortHandle`]).
        pub fn abort_sender(&self) -> io::Result<AbortSender> {
            Ok(AbortSender {
                stream: self.stream.try_clone()?,
                rank: self.rank as u32,
            })
        }

        /// Sends this rank's final [`RankReport`]. The hub treats an
        /// EOF *after* a report as a clean exit, so call this last.
        pub fn send_result(&mut self, final_ll: f64) -> io::Result<()> {
            let report = RankReport {
                final_ll,
                comm: self.stats,
                wire: self.wire,
            };
            frame::write_frame(
                &mut self.stream,
                &Frame {
                    kind: Kind::Result,
                    rank: self.rank as u32,
                    seq: 0,
                    payload: report.encode(),
                },
            )
        }

        fn fail(&mut self, e: CommError) -> CommError {
            self.dead.get_or_insert(e.clone());
            e
        }

        fn io_to_comm(&self, e: &io::Error) -> CommError {
            match e.kind() {
                io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock => CommError::Timeout {
                    rank: self.rank,
                    millis: self.read_timeout.as_millis() as u64,
                },
                // EOF or a hard error on the hub connection: the
                // supervisor (rank 0's process) is gone.
                _ => CommError::PeerFailed { rank: 0 },
            }
        }

        /// Sends a collective frame and waits for the matching reply;
        /// a `Poison` frame or any stream failure becomes the
        /// appropriate [`CommError`].
        fn roundtrip(&mut self, send: Frame, want: Kind) -> Result<Frame, CommError> {
            if let Err(e) = frame::write_frame(&mut self.stream, &send) {
                let ce = self.io_to_comm(&e);
                return Err(self.fail(ce));
            }
            match frame::read_frame(&mut self.stream) {
                Ok(f) if f.kind == want && f.seq == send.seq => Ok(f),
                Ok(f) if f.kind == Kind::Poison => {
                    let ce = PoisonCause::decode(&f.payload)
                        .map(|c| c.as_peer_error())
                        .unwrap_or(CommError::PeerFailed { rank: 0 });
                    Err(self.fail(ce))
                }
                Ok(_) => Err(self.fail(CommError::PeerFailed { rank: 0 })),
                Err(e) => {
                    let ce = self.io_to_comm(&e);
                    Err(self.fail(ce))
                }
            }
        }
    }

    impl Comm for SocketComm {
        fn rank(&self) -> usize {
            self.rank
        }

        fn size(&self) -> usize {
            self.size
        }

        fn try_allreduce_sum(&mut self, buf: &mut [f64]) -> Result<(), CommError> {
            if let Some(e) = &self.dead {
                return Err(e.clone());
            }
            let n = self.stats.allreduces + 1;
            if let Some(plan) = &self.fault_plan {
                if plan.kills_at_allreduce(self.rank, n) {
                    // Real process death: the hub sees a raw EOF, the
                    // exact signature of a scheduler kill.
                    sigkill_self();
                }
                if plan.dies_at_allreduce(self.rank, n) {
                    // Simulated death (plan portability with the
                    // threads transport): close the connection so the
                    // hub poisons the group, then unwind locally.
                    let _ = self.stream.shutdown();
                    let rank = self.rank;
                    return Err(self.fail(CommError::PeerFailed { rank }));
                }
            }
            let len = buf.len();
            if len > self.max_len {
                // Tell the hub (so peers fail promptly with a named
                // culprit), then report the contract violation
                // locally — identical split to ThreadComm.
                let mut f = Frame::control(Kind::Misuse, self.rank as u32, self.seq + 1);
                f.payload = (len as u64).to_le_bytes().to_vec();
                let _ = frame::write_frame(&mut self.stream, &f);
                let (rank, max_len) = (self.rank, self.max_len);
                return Err(self.fail(CommError::PayloadTooLarge { rank, len, max_len }));
            }
            self.seq += 1;
            let t0 = Instant::now();
            let reply = self.roundtrip(
                Frame {
                    kind: Kind::AllReduce,
                    rank: self.rank as u32,
                    seq: self.seq,
                    payload: frame::doubles_to_bytes(buf),
                },
                Kind::Sum,
            )?;
            let sum = match frame::bytes_to_doubles(&reply.payload) {
                Ok(v) if v.len() == len => v,
                _ => return Err(self.fail(CommError::PeerFailed { rank: 0 })),
            };
            buf.copy_from_slice(&sum);
            self.wire.record(t0.elapsed().as_nanos() as u64);
            self.stats.allreduces += 1;
            self.stats.bytes += (len * 8) as u64;
            Ok(())
        }

        fn try_barrier(&mut self) -> Result<(), CommError> {
            if let Some(e) = &self.dead {
                return Err(e.clone());
            }
            self.seq += 1;
            let t0 = Instant::now();
            self.roundtrip(
                Frame::control(Kind::Barrier, self.rank as u32, self.seq),
                Kind::BarrierOk,
            )?;
            self.wire.record(t0.elapsed().as_nanos() as u64);
            self.stats.barriers += 1;
            Ok(())
        }

        fn stats(&self) -> CommStats {
            self.stats
        }
    }

    impl CommTransport for SocketComm {
        fn transport_name(&self) -> &'static str {
            self.kind_name
        }
        fn wire_stats(&self) -> WireStats {
            self.wire
        }
    }

    /// Detached `Abort`-frame sender (see [`SocketComm::abort_sender`]).
    pub struct AbortSender {
        stream: Stream,
        rank: u32,
    }

    impl AbortSender {
        /// Tells the hub this rank is abandoning the run. Best-effort:
        /// if the hub is already gone there is nobody left to inform.
        pub fn abort(&mut self, class: AbortClass, message: &str) {
            let cause = PoisonCause::Abort {
                rank: self.rank as usize,
                class,
                message: message.to_string(),
            };
            let mut f = Frame::control(Kind::Abort, self.rank, 0);
            f.payload = cause.encode();
            let _ = frame::write_frame(&mut self.stream, &f);
        }
    }

    /// What the hub observed by the time the group finished or died.
    #[derive(Clone, Debug)]
    pub struct HubOutcome {
        /// Per-rank final reports, rank order; `None` for ranks that
        /// never reported (died, or the group was poisoned first).
        pub results: Vec<Option<RankReport>>,
        /// Why the group died, if it did.
        pub poison: Option<PoisonCause>,
    }

    /// One in-flight collective being assembled by the hub.
    struct Assembly {
        kind: CollectiveKind,
        contrib: Vec<Option<Vec<f64>>>,
        done: usize,
    }

    #[derive(Clone, Copy, Debug, PartialEq, Eq)]
    enum CollectiveKind {
        AllReduce(usize),
        Barrier,
    }

    struct HubState {
        poison: Option<PoisonCause>,
        pending: BTreeMap<u64, Assembly>,
        last_seq: Vec<u64>,
        results: Vec<Option<RankReport>>,
        eof: Vec<bool>,
        /// Bumped on every deposit/report so the dispatcher's idle
        /// watchdog can tell progress from a wedged group.
        progress: u64,
    }

    impl HubState {
        fn set_poison(&mut self, cause: PoisonCause) {
            // First poisoner wins, like the sense barrier.
            if self.poison.is_none() {
                self.poison = Some(cause);
            }
            self.progress += 1;
        }
    }

    struct HubShared {
        state: Mutex<HubState>,
        cv: Condvar,
    }

    /// Per-connection reader: validates frames from one rank and
    /// deposits them into the shared state. Exits on poison, clean
    /// EOF-after-result, or any connection failure (which poisons).
    fn hub_reader(rank: usize, mut stream: Stream, shared: Arc<HubShared>, max_len: usize) {
        loop {
            match frame::read_frame(&mut stream) {
                Ok(f) => {
                    let mut st = shared.state.lock().unwrap();
                    if st.poison.is_some() {
                        return;
                    }
                    if f.rank as usize != rank {
                        st.set_poison(PoisonCause::Peer { rank });
                        shared.cv.notify_all();
                        return;
                    }
                    match f.kind {
                        Kind::AllReduce | Kind::Barrier => {
                            if f.seq != st.last_seq[rank] + 1 {
                                // Lockstep violation: gap or replay.
                                st.set_poison(PoisonCause::Peer { rank });
                                shared.cv.notify_all();
                                return;
                            }
                            st.last_seq[rank] = f.seq;
                            let (ckind, vals) = if f.kind == Kind::AllReduce {
                                match frame::bytes_to_doubles(&f.payload) {
                                    Ok(v) if v.len() <= max_len => {
                                        (CollectiveKind::AllReduce(v.len()), v)
                                    }
                                    _ => {
                                        st.set_poison(PoisonCause::Misuse {
                                            rank,
                                            len: f.payload.len() / 8,
                                            max_len,
                                        });
                                        shared.cv.notify_all();
                                        return;
                                    }
                                }
                            } else {
                                (CollectiveKind::Barrier, Vec::new())
                            };
                            let ranks = st.eof.len();
                            let entry = st.pending.entry(f.seq).or_insert_with(|| Assembly {
                                kind: ckind,
                                contrib: vec![None; ranks],
                                done: 0,
                            });
                            if entry.kind != ckind || entry.contrib[rank].is_some() {
                                st.set_poison(PoisonCause::Peer { rank });
                                shared.cv.notify_all();
                                return;
                            }
                            entry.contrib[rank] = Some(vals);
                            entry.done += 1;
                            st.progress += 1;
                            shared.cv.notify_all();
                        }
                        Kind::Misuse => {
                            let len = f
                                .payload
                                .get(0..8)
                                .map(|b| u64::from_le_bytes(b.try_into().unwrap()) as usize)
                                .unwrap_or(0);
                            st.set_poison(PoisonCause::Misuse { rank, len, max_len });
                            shared.cv.notify_all();
                            return;
                        }
                        Kind::Abort => {
                            let cause = PoisonCause::decode(&f.payload)
                                .unwrap_or(PoisonCause::Peer { rank });
                            st.set_poison(cause);
                            shared.cv.notify_all();
                            return;
                        }
                        Kind::Result => {
                            match RankReport::decode(&f.payload) {
                                Some(r) => st.results[rank] = Some(r),
                                None => {
                                    st.set_poison(PoisonCause::Peer { rank });
                                    shared.cv.notify_all();
                                    return;
                                }
                            }
                            st.progress += 1;
                            shared.cv.notify_all();
                        }
                        // Hub-originated kinds arriving *at* the hub
                        // are a protocol violation.
                        Kind::Hello
                        | Kind::HelloAck
                        | Kind::Sum
                        | Kind::BarrierOk
                        | Kind::Poison => {
                            st.set_poison(PoisonCause::Peer { rank });
                            shared.cv.notify_all();
                            return;
                        }
                    }
                }
                Err(e)
                    if matches!(
                        e.kind(),
                        io::ErrorKind::TimedOut | io::ErrorKind::WouldBlock
                    ) =>
                {
                    // Poll tick: keep reading unless the group died.
                    let st = shared.state.lock().unwrap();
                    if st.poison.is_some() || st.eof.iter().all(|&b| b) {
                        return;
                    }
                }
                Err(e) => {
                    let mut st = shared.state.lock().unwrap();
                    let clean =
                        e.kind() == io::ErrorKind::UnexpectedEof && st.results[rank].is_some();
                    if clean {
                        st.eof[rank] = true;
                        st.progress += 1;
                    } else if st.poison.is_none() {
                        // A raw EOF before the report IS rank death —
                        // this is where a real `kill -9` lands.
                        st.set_poison(PoisonCause::Peer { rank });
                    }
                    shared.cv.notify_all();
                    return;
                }
            }
        }
    }

    enum HubAction {
        Complete(u64, Assembly),
        Poisoned(PoisonCause),
        Done,
    }

    /// Reply loop: waits for complete collectives, sums them in rank
    /// order (bit-identical to [`crate::comm::ThreadComm`]'s
    /// reduction), and broadcasts replies. Exits by broadcasting
    /// `Poison` or after every rank reported and disconnected. An idle
    /// watchdog poisons a silently wedged group so the hub itself can
    /// never hang.
    fn hub_dispatch(
        shared: &HubShared,
        writers: &mut [Stream],
        tcfg: &TransportConfig,
    ) -> HubOutcome {
        let ranks = writers.len();
        let idle_limit = tcfg.read_timeout + Duration::from_secs(5);
        let mut seen_progress = 0u64;
        let mut last_change = Instant::now();
        loop {
            let action = {
                let mut st = shared.state.lock().unwrap();
                loop {
                    if let Some(c) = st.poison.clone() {
                        break HubAction::Poisoned(c);
                    }
                    let complete = st
                        .pending
                        .iter()
                        .next()
                        .filter(|(_, a)| a.done == ranks)
                        .map(|(&s, _)| s);
                    if let Some(seq) = complete {
                        let a = st.pending.remove(&seq).unwrap();
                        break HubAction::Complete(seq, a);
                    }
                    if st.results.iter().all(Option::is_some) && st.eof.iter().all(|&b| b) {
                        break HubAction::Done;
                    }
                    if st.progress != seen_progress {
                        seen_progress = st.progress;
                        last_change = Instant::now();
                    } else if last_change.elapsed() > idle_limit {
                        let missing = st
                            .results
                            .iter()
                            .position(Option::is_none)
                            .unwrap_or_default();
                        st.set_poison(PoisonCause::Peer { rank: missing });
                        continue;
                    }
                    let (guard, _) = shared
                        .cv
                        .wait_timeout(st, Duration::from_millis(100))
                        .unwrap();
                    st = guard;
                }
            };
            match action {
                HubAction::Complete(seq, a) => {
                    let reply = match a.kind {
                        CollectiveKind::AllReduce(len) => {
                            let mut sum = vec![0.0f64; len];
                            // Rank order: the determinism contract.
                            for r in 0..ranks {
                                let c = a.contrib[r].as_ref().expect("complete assembly");
                                for (o, &v) in sum.iter_mut().zip(c) {
                                    *o += v;
                                }
                            }
                            Frame {
                                kind: Kind::Sum,
                                rank: 0,
                                seq,
                                payload: frame::doubles_to_bytes(&sum),
                            }
                        }
                        CollectiveKind::Barrier => Frame::control(Kind::BarrierOk, 0, seq),
                    };
                    for (r, w) in writers.iter_mut().enumerate() {
                        if frame::write_frame(w, &reply).is_err() {
                            let mut st = shared.state.lock().unwrap();
                            st.set_poison(PoisonCause::Peer { rank: r });
                            shared.cv.notify_all();
                            break;
                        }
                    }
                }
                HubAction::Poisoned(cause) => {
                    let mut f = Frame::control(Kind::Poison, cause.failed_rank() as u32, 0);
                    f.payload = cause.encode();
                    for w in writers.iter_mut() {
                        // Best-effort: already-dead connections are
                        // exactly the ones that do not need telling.
                        let _ = frame::write_frame(w, &f);
                        let _ = w.shutdown();
                    }
                    let st = shared.state.lock().unwrap();
                    return HubOutcome {
                        results: st.results.clone(),
                        poison: Some(cause),
                    };
                }
                HubAction::Done => {
                    for w in writers.iter_mut() {
                        let _ = w.shutdown();
                    }
                    let st = shared.state.lock().unwrap();
                    return HubOutcome {
                        results: st.results.clone(),
                        poison: None,
                    };
                }
            }
        }
    }

    /// Runs the hub to completion: accepts `ranks` handshakes, spawns
    /// one reader per connection, dispatches replies, joins readers.
    pub(crate) fn run_hub(listener: Listener, ranks: usize, tcfg: &TransportConfig) -> HubOutcome {
        let empty = |cause: Option<PoisonCause>| HubOutcome {
            results: vec![None; ranks],
            poison: cause,
        };
        // Accept phase: nonblocking accept polled against the deadline
        // so a rank that dies before connecting cannot park the hub.
        if listener.set_nonblocking(true).is_err() {
            return empty(Some(PoisonCause::Peer { rank: 0 }));
        }
        let deadline = Instant::now() + tcfg.accept_deadline;
        let mut conns: Vec<Option<Stream>> = (0..ranks).map(|_| None).collect();
        let mut connected = 0usize;
        while connected < ranks && Instant::now() < deadline {
            match listener.accept() {
                Ok(mut s) => {
                    if s.set_timeouts(Some(tcfg.read_timeout), Some(tcfg.write_timeout))
                        .is_err()
                    {
                        continue;
                    }
                    match frame::read_frame(&mut s) {
                        Ok(f)
                            if f.kind == Kind::Hello
                                && (f.rank as usize) < ranks
                                && conns[f.rank as usize].is_none() =>
                        {
                            let mut ack = Frame::control(Kind::HelloAck, 0, 0);
                            ack.payload.extend_from_slice(&(ranks as u32).to_le_bytes());
                            ack.payload
                                .extend_from_slice(&(tcfg.max_len as u32).to_le_bytes());
                            if frame::write_frame(&mut s, &ack).is_ok() {
                                conns[f.rank as usize] = Some(s);
                                connected += 1;
                            }
                        }
                        _ => {} // bad handshake: drop the connection
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(Duration::from_millis(2));
                }
                Err(_) => break,
            }
        }
        if connected < ranks {
            let missing = conns.iter().position(Option::is_none).unwrap_or_default();
            let cause = PoisonCause::Peer { rank: missing };
            let mut f = Frame::control(Kind::Poison, missing as u32, 0);
            f.payload = cause.encode();
            for s in conns.iter_mut().flatten() {
                let _ = frame::write_frame(s, &f);
                let _ = s.shutdown();
            }
            return empty(Some(cause));
        }
        let shared = Arc::new(HubShared {
            state: Mutex::new(HubState {
                poison: None,
                pending: BTreeMap::new(),
                last_seq: vec![0; ranks],
                results: vec![None; ranks],
                eof: vec![false; ranks],
                progress: 0,
            }),
            cv: Condvar::new(),
        });
        let mut writers = Vec::with_capacity(ranks);
        let mut readers = Vec::with_capacity(ranks);
        for (r, slot) in conns.into_iter().enumerate() {
            let stream = slot.expect("all ranks connected");
            let writer = match stream.try_clone() {
                Ok(w) => w,
                Err(_) => {
                    shared
                        .state
                        .lock()
                        .unwrap()
                        .set_poison(PoisonCause::Peer { rank: r });
                    break;
                }
            };
            // Readers poll on a short timeout so they notice poison
            // promptly even when their rank goes silent.
            let _ = stream.set_timeouts(Some(Duration::from_millis(100)), Some(tcfg.write_timeout));
            writers.push(writer);
            let shared = Arc::clone(&shared);
            let max_len = tcfg.max_len;
            readers.push(std::thread::spawn(move || {
                hub_reader(r, stream, shared, max_len)
            }));
        }
        let out = hub_dispatch(&shared, &mut writers, tcfg);
        for h in readers {
            let _ = h.join();
        }
        out
    }

    /// Kill-on-drop ownership of the spawned rank processes: whatever
    /// path the supervisor exits by (success, classified error, panic),
    /// no child outlives it.
    #[derive(Debug, Default)]
    pub struct ChildSet {
        children: Vec<(usize, std::process::Child)>,
    }

    impl ChildSet {
        /// An empty set.
        pub fn new() -> Self {
            Self::default()
        }

        /// Takes ownership of `child` (rank `rank`).
        pub fn push(&mut self, rank: usize, child: std::process::Child) {
            self.children.push((rank, child));
        }

        /// OS pids of the still-owned children.
        pub fn pids(&self) -> Vec<u32> {
            self.children.iter().map(|(_, c)| c.id()).collect()
        }

        /// Polls for voluntary exits until `deadline`, then kills and
        /// reaps whatever is left. Returns true when every child
        /// exited on its own.
        pub fn reap(&mut self, deadline: Duration) -> bool {
            let until = Instant::now() + deadline;
            let mut all_voluntary = true;
            loop {
                self.children
                    .retain_mut(|(_, c)| !matches!(c.try_wait(), Ok(Some(_))));
                if self.children.is_empty() {
                    return all_voluntary;
                }
                if Instant::now() >= until {
                    all_voluntary = false;
                    for (_, c) in &mut self.children {
                        let _ = c.kill();
                        let _ = c.wait();
                    }
                    self.children.clear();
                    return all_voluntary;
                }
                std::thread::sleep(Duration::from_millis(5));
            }
        }
    }

    impl Drop for ChildSet {
        fn drop(&mut self) {
            for (_, c) in &mut self.children {
                // Idempotent on already-reaped children; kill errors
                // on exited-but-unwaited ones are fine — wait() below
                // is the part that prevents zombies.
                let _ = c.kill();
                let _ = c.wait();
            }
        }
    }

    /// Everything a spawner needs to exec one child rank.
    #[derive(Clone, Debug)]
    pub struct RankSpec {
        /// The child's rank in `1..ranks` (rank 0 is the supervisor).
        pub rank: usize,
        /// Group size of this attempt.
        pub ranks: usize,
        /// 1-based attempt ordinal; degraded respawns increment it so
        /// the spawner can withhold one-shot fault injection from
        /// reruns (a fresh process has fresh fault latches).
        pub attempt: u32,
        /// Where the hub listens.
        pub endpoint: Endpoint,
    }

    type Rank0Ok = (
        phylo_search::SearchResult,
        KernelStats,
        CommStats,
        WireStats,
    );

    /// Fault-tolerant replicated search over OS processes.
    ///
    /// The process analogue of
    /// [`crate::replicated::run_replicated_ft`]: rank 0 runs in the
    /// calling thread of the supervisor process (which also hosts the
    /// hub); ranks `1..n` are spawned via `spawn_child`, which execs
    /// the CLI's hidden `_rank` entry so every process rebuilds
    /// identical, seeded search inputs. With [`FtConfig::degrade`], a
    /// rank failure re-splits over one fewer rank, reloads the
    /// checkpoint, and respawns — against *real* process death,
    /// including `kill -9`.
    ///
    /// `TransportKind::Threads` is rejected here — callers route it to
    /// [`crate::replicated::run_replicated_ft`].
    #[allow(clippy::too_many_arguments)]
    pub fn run_sharded_ft(
        tree: &Tree,
        aln: &CompressedAlignment,
        config: EngineConfig,
        search: MlSearch,
        ft: &FtConfig,
        kind: TransportKind,
        tcfg: &TransportConfig,
        socket_dir: &Path,
        spawn_child: &mut dyn FnMut(&RankSpec) -> io::Result<std::process::Child>,
    ) -> Result<ReplicatedOutcome, ReplicatedError> {
        assert!(ft.num_ranks >= 1);
        if !kind.is_socket() {
            return Err(ReplicatedError::Transport(
                "run_sharded_ft needs a socket transport (uds/tcp)".into(),
            ));
        }
        let mut ranks = ft.num_ranks;
        let mut attempt = 0u32;
        loop {
            attempt += 1;
            match attempt_sharded(
                tree,
                aln,
                config,
                search,
                ranks,
                attempt,
                ft,
                kind,
                tcfg,
                socket_dir,
                spawn_child,
            ) {
                Ok(out) => return Ok(out),
                Err(e) => {
                    let recoverable = matches!(
                        e,
                        ReplicatedError::Comm(_) | ReplicatedError::RankPanicked { .. }
                    );
                    if !(ft.degrade && recoverable) {
                        return Err(e);
                    }
                    if ranks <= 1 {
                        return Err(ReplicatedError::NoSurvivors);
                    }
                    ranks -= 1;
                    plf_core::metrics::counter("replicated.degrades").inc();
                }
            }
        }
    }

    /// One attempt at `ranks` processes: bind, spawn hub + children,
    /// run rank 0 locally, join, reap, classify.
    #[allow(clippy::too_many_arguments)]
    fn attempt_sharded(
        tree: &Tree,
        aln: &CompressedAlignment,
        config: EngineConfig,
        search: MlSearch,
        ranks: usize,
        attempt: u32,
        ft: &FtConfig,
        kind: TransportKind,
        tcfg: &TransportConfig,
        socket_dir: &Path,
        spawn_child: &mut dyn FnMut(&RankSpec) -> io::Result<std::process::Child>,
    ) -> Result<ReplicatedOutcome, ReplicatedError> {
        let tag = format!("r{ranks}-a{attempt}");
        let (listener, endpoint) = Listener::bind(kind, socket_dir, &tag)
            .map_err(|e| ReplicatedError::Transport(format!("bind {kind}: {e}")))?;
        let verbose = std::env::var("PHYLOMIC_TRANSPORT_VERBOSE").as_deref() == Ok("1");
        let hub = {
            let tcfg = tcfg.clone();
            std::thread::spawn(move || run_hub(listener, ranks, &tcfg))
        };
        let mut children = ChildSet::new();
        let mut spawn_err = None;
        for rank in 1..ranks {
            let spec = RankSpec {
                rank,
                ranks,
                attempt,
                endpoint: endpoint.clone(),
            };
            match spawn_child(&spec) {
                Ok(c) => {
                    if verbose {
                        println!("transport: spawned rank {rank} pid {}", c.id());
                    }
                    children.push(rank, c);
                }
                Err(e) => {
                    spawn_err = Some(ReplicatedError::Transport(format!(
                        "spawning rank {rank}: {e}"
                    )));
                    break;
                }
            }
        }
        let rank0 = match spawn_err {
            // A failed spawn leaves the hub one Hello short; it exits
            // at its accept deadline and the children are killed on
            // drop. Rank 0 never starts.
            Some(e) => Err(e),
            None => run_rank0(tree, aln, config, search, ranks, &endpoint, ft, tcfg),
        };
        let hub_out = hub.join().unwrap_or(HubOutcome {
            results: vec![None; ranks],
            poison: Some(PoisonCause::Peer { rank: 0 }),
        });
        // The hub has exited, so surviving children are either done or
        // already failing on a dead socket; give them a moment to exit
        // voluntarily, then enforce kill-on-drop semantics.
        children.reap(Duration::from_secs(5));
        match &endpoint {
            Endpoint::Uds(p) => {
                let _ = std::fs::remove_file(p);
            }
            #[cfg(feature = "tcp-transport")]
            Endpoint::Tcp(_) => {}
        }
        classify_sharded(rank0, hub_out, kind)
    }

    /// Rank 0's body, run in the supervisor: the same shape as one
    /// rank of the in-thread supervisor, over a [`SocketComm`].
    #[allow(clippy::too_many_arguments)]
    fn run_rank0(
        tree: &Tree,
        aln: &CompressedAlignment,
        config: EngineConfig,
        search: MlSearch,
        ranks: usize,
        endpoint: &Endpoint,
        ft: &FtConfig,
        tcfg: &TransportConfig,
    ) -> Result<Rank0Ok, ReplicatedError> {
        let comm = SocketComm::connect(endpoint, 0, ranks, tcfg, ft.fault_plan.clone())
            .map_err(|e| ReplicatedError::Transport(format!("rank 0 connect: {e}")))?;
        let mut panic_aborter = comm
            .abort_sender()
            .map_err(|e| ReplicatedError::Transport(format!("rank 0 abort channel: {e}")))?;
        let mut saver_aborter = comm
            .abort_sender()
            .map_err(|e| ReplicatedError::Transport(format!("rank 0 abort channel: {e}")))?;
        // Load before any collective: every rank (children included)
        // loads before its first collective, and rank 0 can only write
        // a *new* snapshot after a full round of collectives — so all
        // ranks provably resume from the same snapshot.
        let resume = match &ft.checkpoint {
            Some(p) if p.exists() => Some(Checkpoint::load(p).map_err(|e| {
                ReplicatedError::Checkpoint(format!("loading {}: {e}", p.display()))
            })?),
            _ => None,
        };
        let range = crate::forkjoin::split_ranges(aln.num_patterns(), ranks)[0].clone();
        let ckpt_path = ft.checkpoint.as_deref();
        let retry = ft.retry;
        let plan = ft.fault_plan.clone();
        let caught = catch_unwind(AssertUnwindSafe(
            move || -> Result<Rank0Ok, ReplicatedError> {
                let mut local_tree = tree.clone();
                let engine = LikelihoodEngine::with_range(&local_tree, aln, config, range);
                let mut eval = ReplicatedEvaluator::new(engine, comm);
                let mut ckpt_attempts: u64 = 0;
                let result = search
                    .run_resumable(&mut eval, &mut local_tree, resume.as_ref(), |cp| {
                        let Some(path) = ckpt_path else { return Ok(()) };
                        let saved = match &plan {
                            Some(plan) => cp.save_with_retry_injected(path, &retry, &mut || {
                                ckpt_attempts += 1;
                                plan.checkpoint_write_error(ckpt_attempts)
                            }),
                            None => cp.save_with_retry(path, &retry),
                        };
                        saved.map_err(|e| {
                            let msg = format!("checkpoint write to {} failed: {e}", path.display());
                            // Tell the hub first so the children fail
                            // promptly with the true cause.
                            saver_aborter.abort(AbortClass::Checkpoint, &msg);
                            msg
                        })
                    })
                    .map_err(ReplicatedError::Checkpoint)?;
                let final_ll = eval.log_likelihood(&local_tree, 0);
                let (engine, mut comm) = eval.into_parts();
                let wire = comm.wire_stats();
                let comm_stats = comm.stats();
                comm.send_result(final_ll)
                    .map_err(|e| ReplicatedError::Transport(format!("rank 0 result: {e}")))?;
                Ok((result, engine.stats().clone(), comm_stats, wire))
            },
        ));
        match caught {
            Ok(r) => r,
            Err(payload) => {
                if let Some(ce) = payload.downcast_ref::<CommError>() {
                    // The hub learned of the failure through the wire
                    // already (poison or our EOF); no abort needed.
                    return Err(ReplicatedError::Comm(ce.clone()));
                }
                let message = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
                panic_aborter.abort(AbortClass::Panic, &message);
                Err(ReplicatedError::RankPanicked { rank: 0, message })
            }
        }
    }

    /// Merges the supervisor-side result with the hub's observation,
    /// with the in-thread supervisor's cause priority: checkpoint >
    /// panic > collective > transport plumbing.
    fn classify_sharded(
        rank0: Result<Rank0Ok, ReplicatedError>,
        hub: HubOutcome,
        kind: TransportKind,
    ) -> Result<ReplicatedOutcome, ReplicatedError> {
        let poison_err = hub.poison.as_ref().map(|c| match c {
            PoisonCause::Peer { rank } => {
                ReplicatedError::Comm(CommError::PeerFailed { rank: *rank })
            }
            PoisonCause::Misuse { rank, len, max_len } => {
                ReplicatedError::Comm(CommError::PayloadTooLarge {
                    rank: *rank,
                    len: *len,
                    max_len: *max_len,
                })
            }
            PoisonCause::Abort {
                rank,
                class: AbortClass::Panic,
                message,
            } => ReplicatedError::RankPanicked {
                rank: *rank,
                message: message.clone(),
            },
            PoisonCause::Abort {
                class: AbortClass::Checkpoint,
                message,
                ..
            } => ReplicatedError::Checkpoint(message.clone()),
        });
        let mut ckpt = None;
        let mut panic = None;
        let mut comm = None;
        let mut transport = None;
        let mut rank0_ok = None;
        for e in [rank0.map(|ok| rank0_ok = Some(ok)).err(), poison_err] {
            match e {
                Some(e @ ReplicatedError::Checkpoint(_)) => ckpt.get_or_insert(e),
                Some(e @ ReplicatedError::RankPanicked { .. }) => panic.get_or_insert(e),
                Some(e @ ReplicatedError::Comm(_)) => comm.get_or_insert(e),
                Some(e) => transport.get_or_insert(e),
                None => continue,
            };
        }
        if let Some(e) = ckpt.or(panic).or(comm).or(transport) {
            return Err(e);
        }
        let (result, kernel_stats, comm_stats, _wire0) =
            rank0_ok.expect("no error implies rank 0 completed");
        let mut rank_likelihoods = Vec::with_capacity(hub.results.len());
        let mut wire = WireStats::default();
        for (r, report) in hub.results.iter().enumerate() {
            match report {
                Some(rep) => {
                    rank_likelihoods.push(rep.final_ll);
                    wire.merge(&rep.wire);
                }
                None => {
                    return Err(ReplicatedError::Transport(format!(
                        "rank {r} finished without reporting"
                    )))
                }
            }
        }
        Ok(ReplicatedOutcome {
            result,
            rank_likelihoods,
            // Child kernel stats stay in their processes; these are
            // rank 0's (documented on ReplicatedOutcome).
            kernel_stats,
            comm_stats,
            transport: kind.name().to_string(),
            wire,
        })
    }

    /// Inputs of a child rank process (the CLI's hidden `_rank`
    /// subcommand builds these from its pass-through flags; seeded
    /// determinism guarantees they equal the supervisor's).
    pub struct ChildRankArgs<'a> {
        /// This process's rank in `1..ranks`.
        pub rank: usize,
        /// Group size.
        pub ranks: usize,
        /// Where the hub listens.
        pub endpoint: Endpoint,
        /// Starting tree (identical on every rank).
        pub tree: &'a Tree,
        /// The full alignment; this rank evaluates its
        /// `split_ranges` slice.
        pub aln: &'a CompressedAlignment,
        /// Engine configuration.
        pub config: EngineConfig,
        /// The search (deterministic; keeps ranks in lockstep).
        pub search: MlSearch,
        /// Checkpoint to resume from if it exists (children never
        /// write it — rank 0 is the single writer).
        pub checkpoint: Option<&'a Path>,
        /// Socket tuning; must match the supervisor's.
        pub tcfg: TransportConfig,
        /// Scripted faults for this process (only passed on the first
        /// attempt; a respawned child runs fault-free).
        pub fault_plan: Option<Arc<FaultPlan>>,
    }

    /// Body of a child rank process: connect, resume, search in
    /// lockstep, report, exit. Errors are returned for the CLI to
    /// print; the *classification* travels through the hub (Abort
    /// frames / EOF), not the exit code.
    pub fn run_rank(a: ChildRankArgs<'_>) -> Result<(), String> {
        let ChildRankArgs {
            rank,
            ranks,
            endpoint,
            tree,
            aln,
            config,
            search,
            checkpoint,
            tcfg,
            fault_plan,
        } = a;
        let comm = SocketComm::connect(&endpoint, rank, ranks, &tcfg, fault_plan)
            .map_err(|e| format!("rank {rank} connect to {endpoint}: {e}"))?;
        let mut aborter = comm
            .abort_sender()
            .map_err(|e| format!("rank {rank} abort channel: {e}"))?;
        let resume = match checkpoint {
            Some(p) if p.exists() => match Checkpoint::load(p) {
                Ok(cp) => Some(cp),
                Err(e) => {
                    let msg = format!("rank {rank} loading {}: {e}", p.display());
                    aborter.abort(AbortClass::Checkpoint, &msg);
                    return Err(msg);
                }
            },
            _ => None,
        };
        let range = crate::forkjoin::split_ranges(aln.num_patterns(), ranks)[rank].clone();
        let caught = catch_unwind(AssertUnwindSafe(move || -> Result<(), String> {
            let mut local_tree = tree.clone();
            let engine = LikelihoodEngine::with_range(&local_tree, aln, config, range);
            let mut eval = ReplicatedEvaluator::new(engine, comm);
            search
                .run_resumable(&mut eval, &mut local_tree, resume.as_ref(), |_| Ok(()))
                .map_err(|e| format!("rank {rank} search: {e}"))?;
            let final_ll = eval.log_likelihood(&local_tree, 0);
            let (_engine, mut comm) = eval.into_parts();
            comm.send_result(final_ll)
                .map_err(|e| format!("rank {rank} result: {e}"))
        }));
        match caught {
            Ok(r) => r,
            Err(payload) => {
                if let Some(ce) = payload.downcast_ref::<CommError>() {
                    // Expected lockstep failure path: the hub already
                    // knows (it poisoned us, or sees our EOF).
                    return Err(format!("rank {rank} collective failed: {ce}"));
                }
                let message = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
                aborter.abort(AbortClass::Panic, &message);
                Err(format!("rank {rank} panicked: {message}"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_stats_record_mean_and_merge() {
        let mut w = WireStats::default();
        assert_eq!(w.mean_ns(), 0, "empty stats have a zero mean");
        w.record(100);
        w.record(300);
        assert_eq!(w.ops, 2);
        assert_eq!(w.total_ns, 400);
        assert_eq!(w.max_ns, 300);
        assert_eq!(w.mean_ns(), 200);

        let mut other = WireStats::default();
        other.record(1_000);
        w.merge(&other);
        assert_eq!(w.ops, 3);
        assert_eq!(w.total_ns, 1_400);
        assert_eq!(w.max_ns, 1_000);
    }

    #[test]
    fn transport_kind_parses_and_prints() {
        assert_eq!(
            "threads".parse::<TransportKind>(),
            Ok(TransportKind::Threads)
        );
        assert_eq!("uds".parse::<TransportKind>(), Ok(TransportKind::Uds));
        assert!(!TransportKind::Threads.is_socket());
        assert!(TransportKind::Uds.is_socket());
        assert_eq!(TransportKind::Uds.to_string(), "uds");
        #[cfg(not(feature = "tcp-transport"))]
        assert!("tcp"
            .parse::<TransportKind>()
            .unwrap_err()
            .contains("tcp-transport"));
        assert!("mpi".parse::<TransportKind>().is_err());
    }

    #[test]
    fn transport_config_env_override_applies_to_timeouts() {
        // Set + clear around the call; tests in this module run
        // single-threaded per process most of the time but keep the
        // window tiny regardless.
        std::env::set_var("PHYLOMIC_WIRE_TIMEOUT_MS", "250");
        let cfg = TransportConfig::from_env();
        std::env::remove_var("PHYLOMIC_WIRE_TIMEOUT_MS");
        assert_eq!(cfg.read_timeout, Duration::from_millis(250));
        assert_eq!(cfg.write_timeout, Duration::from_millis(250));
        assert_eq!(
            cfg.accept_deadline,
            TransportConfig::default().accept_deadline
        );
    }

    #[cfg(unix)]
    mod wire {
        use super::super::frame::{self, Frame, Kind};
        use super::super::*;
        use crate::comm::{CommError, CommStats};

        #[test]
        fn frame_roundtrips_through_a_buffer() {
            let f = Frame {
                kind: Kind::AllReduce,
                rank: 3,
                seq: 41,
                payload: frame::doubles_to_bytes(&[1.5, -2.25]),
            };
            let mut buf = Vec::new();
            frame::write_frame(&mut buf, &f).unwrap();
            assert_eq!(buf.len(), frame::HEADER_LEN + 16);
            let g = frame::read_frame(&mut buf.as_slice()).unwrap();
            assert_eq!(g.kind, Kind::AllReduce);
            assert_eq!(g.rank, 3);
            assert_eq!(g.seq, 41);
            assert_eq!(
                frame::bytes_to_doubles(&g.payload).unwrap(),
                vec![1.5, -2.25]
            );
        }

        #[test]
        fn frame_reader_rejects_garbage() {
            // Bad magic.
            let mut buf = Vec::new();
            frame::write_frame(&mut buf, &Frame::control(Kind::Barrier, 0, 1)).unwrap();
            buf[0] ^= 0xFF;
            assert!(frame::read_frame(&mut buf.as_slice()).is_err());

            // Unknown kind.
            let mut buf = Vec::new();
            frame::write_frame(&mut buf, &Frame::control(Kind::Barrier, 0, 1)).unwrap();
            buf[4] = 0xEE;
            assert!(frame::read_frame(&mut buf.as_slice()).is_err());

            // Truncated payload.
            let f = Frame {
                kind: Kind::AllReduce,
                rank: 0,
                seq: 1,
                payload: vec![0u8; 16],
            };
            let mut buf = Vec::new();
            frame::write_frame(&mut buf, &f).unwrap();
            buf.truncate(buf.len() - 3);
            assert!(frame::read_frame(&mut buf.as_slice()).is_err());

            // Odd-length double payload.
            assert!(frame::bytes_to_doubles(&[0u8; 9]).is_err());
        }

        #[test]
        fn poison_cause_roundtrips_all_variants() {
            for cause in [
                PoisonCause::Peer { rank: 2 },
                PoisonCause::Misuse {
                    rank: 1,
                    len: 99,
                    max_len: 8,
                },
                PoisonCause::Abort {
                    rank: 0,
                    class: AbortClass::Panic,
                    message: "boom 😀".to_string(),
                },
                PoisonCause::Abort {
                    rank: 3,
                    class: AbortClass::Checkpoint,
                    message: String::new(),
                },
            ] {
                let bytes = cause.encode();
                assert_eq!(PoisonCause::decode(&bytes), Some(cause.clone()));
                assert_eq!(
                    cause.as_peer_error(),
                    CommError::PeerFailed {
                        rank: cause.failed_rank()
                    }
                );
            }
            assert_eq!(PoisonCause::decode(&[1, 2, 3]), None, "short buffer");
            let mut bad = PoisonCause::Peer { rank: 0 }.encode();
            bad[0] = 99;
            assert_eq!(PoisonCause::decode(&bad), None, "unknown tag");
        }

        #[test]
        fn poison_cause_truncates_giant_messages() {
            let cause = PoisonCause::Abort {
                rank: 0,
                class: AbortClass::Panic,
                message: "x".repeat(1 << 16),
            };
            let bytes = cause.encode();
            assert!(bytes.len() <= 25 + 4096);
            match PoisonCause::decode(&bytes).unwrap() {
                PoisonCause::Abort { message, .. } => assert_eq!(message.len(), 4096),
                other => panic!("wrong variant: {other:?}"),
            }
        }

        #[test]
        fn rank_report_roundtrips() {
            let r = RankReport {
                final_ll: -1234.5678,
                comm: CommStats {
                    allreduces: 7,
                    bytes: 56,
                    barriers: 2,
                },
                wire: WireStats {
                    ops: 9,
                    total_ns: 12345,
                    max_ns: 5000,
                },
            };
            let bytes = r.encode();
            assert_eq!(bytes.len(), 56);
            assert_eq!(RankReport::decode(&bytes), Some(r));
            assert_eq!(RankReport::decode(&bytes[..55]), None);
        }

        #[test]
        fn endpoint_roundtrips_through_display() {
            let ep = Endpoint::Uds(std::path::PathBuf::from("/tmp/phylomic-1.sock"));
            let s = ep.to_string();
            assert_eq!(s, "uds:/tmp/phylomic-1.sock");
            assert_eq!(s.parse::<Endpoint>(), Ok(ep));
            assert!("bogus:/x".parse::<Endpoint>().is_err());
        }

        #[test]
        fn child_set_kills_on_drop() {
            let mut set = ChildSet::new();
            let child = std::process::Command::new("sleep")
                .arg("600")
                .spawn()
                .expect("spawn sleep");
            let pid = child.id();
            set.push(1, child);
            assert_eq!(set.pids(), vec![pid]);
            drop(set);
            // After Drop the process must be gone (kill + wait, so no
            // zombie either).
            let alive = std::path::Path::new(&format!("/proc/{pid}")).exists();
            assert!(!alive, "child {pid} survived ChildSet::drop");
        }

        #[test]
        fn child_set_reaps_exited_children_without_killing() {
            let mut set = ChildSet::new();
            let child = std::process::Command::new("true").spawn().expect("spawn");
            set.push(1, child);
            assert!(set.reap(Duration::from_secs(5)), "true exits promptly");
            assert!(set.pids().is_empty());
        }
    }
}
