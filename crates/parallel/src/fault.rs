//! Deterministic failure injection for the parallel schemes.
//!
//! Real tree searches run for days under job schedulers that kill
//! ranks mid-collective; RAxML-Light and ExaML survive only via
//! checkpoint/restart. Testing that survival path requires *replaying
//! identical failure schedules*, so faults here are scripted, not
//! random: a [`FaultPlan`] lists exactly which rank dies at which
//! collective, which fork-join job panics, and which checkpoint write
//! attempts see I/O errors. Each fault fires exactly once (one-shot),
//! so a degraded rerun of the same plan does not re-kill the group.
//!
//! The hook is zero-cost when off: every injection site holds an
//! `Option<Arc<FaultPlan>>` and the `None` branch is a single
//! predictable test. The CLI exposes the same schedules through
//! `--inject-fault` (e.g. `rank=2,allreduce=40`), so a failure seen in
//! a test is reproducible end to end through the binary.

use crate::sync::atomic::{AtomicBool, Ordering};

/// What a single scripted fault does when it fires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultKind {
    /// Rank `rank` dies (poisons the group and unwinds) immediately
    /// before performing its `allreduce`-th AllReduce (1-based).
    RankDeath {
        /// The rank that dies.
        rank: usize,
        /// Its fatal AllReduce ordinal, 1-based.
        allreduce: u64,
    },
    /// Fork-join worker `worker` panics inside the job of its
    /// `region`-th parallel region (1-based). The panic is caught by
    /// the worker loop and surfaced to the master as a structured
    /// error — the pool must not deadlock.
    JobPanic {
        /// The worker index that panics.
        worker: usize,
        /// Its fatal region ordinal, 1-based.
        region: u64,
    },
    /// Checkpoint write attempts `attempt .. attempt + count` (1-based
    /// ordinals over all attempts, retries included) fail with an
    /// injected I/O error before touching the filesystem.
    CheckpointWrite {
        /// First failing attempt ordinal, 1-based.
        attempt: u64,
        /// Number of consecutive failing attempts.
        count: u64,
    },
    /// Rank `rank`'s whole OS process is SIGKILLed immediately before
    /// its `allreduce`-th AllReduce (1-based). Under the socket
    /// transport this is a real `kill(getpid(), SIGKILL)` — no unwind,
    /// no poison frame, the peers learn of the death only from the
    /// closed connection. The in-thread transport has no process per
    /// rank, so it degrades to the same simulated death as
    /// [`FaultKind::RankDeath`].
    RankKill9 {
        /// The rank whose process is killed.
        rank: usize,
        /// Its fatal AllReduce ordinal, 1-based.
        allreduce: u64,
    },
}

/// One scripted fault plus its fired latch.
#[derive(Debug)]
struct Fault {
    kind: FaultKind,
    fired: AtomicBool,
}

impl Fault {
    fn new(kind: FaultKind) -> Self {
        Fault {
            kind,
            fired: AtomicBool::new(false),
        }
    }

    /// Latches the fault: true exactly once.
    fn fire_once(&self) -> bool {
        !self.fired.swap(true, Ordering::Relaxed)
    }
}

/// A replayable schedule of scripted faults, shared (via `Arc`) by
/// every injection site of a run.
#[derive(Debug, Default)]
pub struct FaultPlan {
    faults: Vec<Fault>,
}

impl FaultPlan {
    /// An empty plan (injects nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fault to the schedule.
    pub fn with(mut self, kind: FaultKind) -> Self {
        self.faults.push(Fault::new(kind));
        self
    }

    /// Convenience: rank `rank` dies at its `allreduce`-th AllReduce.
    pub fn rank_death(rank: usize, allreduce: u64) -> Self {
        Self::new().with(FaultKind::RankDeath { rank, allreduce })
    }

    /// Convenience: worker `worker` panics in its `region`-th job.
    pub fn job_panic(worker: usize, region: u64) -> Self {
        Self::new().with(FaultKind::JobPanic { worker, region })
    }

    /// Convenience: `count` consecutive checkpoint write attempts
    /// starting at the `attempt`-th fail.
    pub fn checkpoint_write_errors(attempt: u64, count: u64) -> Self {
        Self::new().with(FaultKind::CheckpointWrite { attempt, count })
    }

    /// Convenience: rank `rank`'s process is SIGKILLed at its
    /// `allreduce`-th AllReduce.
    pub fn rank_kill9(rank: usize, allreduce: u64) -> Self {
        Self::new().with(FaultKind::RankKill9 { rank, allreduce })
    }

    /// Number of scripted faults (fired or not).
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// True when the plan injects nothing.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// Parses the CLI grammar: `;`-separated faults, each a
    /// `,`-separated list of `key=value` pairs.
    ///
    /// * `rank=R,allreduce=N` — rank `R` dies at its `N`-th AllReduce.
    /// * `rank=R,kill9=N` — rank `R`'s process is SIGKILLed at its
    ///   `N`-th AllReduce (simulated death under `--transport threads`).
    /// * `rank=R,region=N` — fork-join worker `R` panics in its `N`-th
    ///   region's job.
    /// * `ckpt-write=N[,count=K]` — checkpoint write attempts
    ///   `N..N+K` fail (default `K = 1`).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::new();
        for part in spec.split(';') {
            let part = part.trim();
            if part.is_empty() {
                continue;
            }
            let mut kv = std::collections::HashMap::new();
            for pair in part.split(',') {
                let (k, v) = pair
                    .trim()
                    .split_once('=')
                    .ok_or_else(|| format!("fault term {pair:?} is not key=value"))?;
                let v: u64 = v
                    .trim()
                    .parse()
                    .map_err(|e| format!("fault value in {pair:?}: {e}"))?;
                if kv.insert(k.trim().to_string(), v).is_some() {
                    return Err(format!("duplicate fault key {k:?} in {part:?}"));
                }
            }
            let take = |kv: &mut std::collections::HashMap<String, u64>, k: &str| kv.remove(k);
            let kind = if let Some(attempt) = take(&mut kv, "ckpt-write") {
                let count = take(&mut kv, "count").unwrap_or(1);
                if attempt == 0 || count == 0 {
                    return Err("ckpt-write/count are 1-based and nonzero".into());
                }
                FaultKind::CheckpointWrite { attempt, count }
            } else {
                let rank = take(&mut kv, "rank")
                    .ok_or_else(|| format!("fault {part:?} needs rank= or ckpt-write="))?
                    as usize;
                match (
                    take(&mut kv, "allreduce"),
                    take(&mut kv, "region"),
                    take(&mut kv, "kill9"),
                ) {
                    (Some(n), None, None) if n > 0 => FaultKind::RankDeath { rank, allreduce: n },
                    (None, Some(n), None) if n > 0 => FaultKind::JobPanic {
                        worker: rank,
                        region: n,
                    },
                    (None, None, Some(n)) if n > 0 => FaultKind::RankKill9 { rank, allreduce: n },
                    (Some(0), None, None) | (None, Some(0), None) | (None, None, Some(0)) => {
                        return Err("allreduce/region/kill9 ordinals are 1-based".into())
                    }
                    _ => {
                        return Err(format!(
                            "fault {part:?} needs exactly one of allreduce=, region=, or kill9="
                        ))
                    }
                }
            };
            if !kv.is_empty() {
                let mut extra: Vec<_> = kv.into_keys().collect();
                extra.sort();
                return Err(format!("unknown fault keys {extra:?} in {part:?}"));
            }
            plan = plan.with(kind);
        }
        if plan.is_empty() {
            return Err("empty fault spec".into());
        }
        Ok(plan)
    }

    /// Injection hook for [`crate::comm::ThreadComm`]: does `rank` die
    /// right before its `n`-th AllReduce? Fires at most once per
    /// scripted fault.
    pub fn dies_at_allreduce(&self, rank: usize, n: u64) -> bool {
        self.faults.iter().any(|f| {
            matches!(f.kind, FaultKind::RankDeath { rank: r, allreduce } if r == rank && allreduce == n)
                && f.fire_once()
        })
    }

    /// Injection hook for [`crate::transport::SocketComm`] (and, as a
    /// simulated death, [`crate::comm::ThreadComm`]): is `rank`'s
    /// process SIGKILLed right before its `n`-th AllReduce? Fires at
    /// most once per scripted fault — though under a real kill the
    /// latch dies with the process, so the supervisor must also gate
    /// re-injection by attempt (degraded respawns run fault-free).
    pub fn kills_at_allreduce(&self, rank: usize, n: u64) -> bool {
        self.faults.iter().any(|f| {
            matches!(f.kind, FaultKind::RankKill9 { rank: r, allreduce } if r == rank && allreduce == n)
                && f.fire_once()
        })
    }

    /// Injection hook for the fork-join worker loop: does `worker`'s
    /// job panic in its `n`-th region? Fires at most once per
    /// scripted fault.
    pub fn job_panics(&self, worker: usize, n: u64) -> bool {
        self.faults.iter().any(|f| {
            matches!(f.kind, FaultKind::JobPanic { worker: w, region } if w == worker && region == n)
                && f.fire_once()
        })
    }

    /// Injection hook for checkpoint writers: the I/O error the `n`-th
    /// write attempt (1-based, retries included) must fail with, if
    /// any. Window faults (`count > 1`) fire on every attempt in their
    /// window; the latch only guards re-use by later runs of the same
    /// ordinal, so the window is checked positionally instead.
    pub fn checkpoint_write_error(&self, n: u64) -> Option<std::io::Error> {
        for f in &self.faults {
            if let FaultKind::CheckpointWrite { attempt, count } = f.kind {
                if n >= attempt && n - attempt < count {
                    return Some(std::io::Error::other(format!(
                        "injected checkpoint write failure (attempt {n})"
                    )));
                }
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_accepts_the_documented_grammar() {
        let p = FaultPlan::parse("rank=2,allreduce=40").unwrap();
        assert_eq!(p.len(), 1);
        assert!(p.dies_at_allreduce(2, 40));

        let p = FaultPlan::parse("rank=3,kill9=25").unwrap();
        assert_eq!(p.len(), 1);
        assert!(!p.dies_at_allreduce(3, 25), "kill9 is not a soft death");
        assert!(p.kills_at_allreduce(3, 25));
        assert!(!p.kills_at_allreduce(3, 25), "kill9 is one-shot");

        let p = FaultPlan::parse("rank=1,region=5; ckpt-write=3,count=2").unwrap();
        assert_eq!(p.len(), 2);
        assert!(p.job_panics(1, 5));
        assert!(p.checkpoint_write_error(3).is_some());
        assert!(p.checkpoint_write_error(4).is_some());
        assert!(p.checkpoint_write_error(5).is_none());
        assert!(p.checkpoint_write_error(2).is_none());
    }

    #[test]
    fn parse_rejects_malformed_specs() {
        for bad in [
            "",
            "rank=2",
            "rank=2,allreduce=40,region=1",
            "allreduce=40",
            "rank=two,allreduce=40",
            "rank=2,allreduce=0",
            "rank=2,region=0",
            "ckpt-write=0",
            "rank=2,allreduce=40,bogus=1",
            "rank 2",
            "rank=2,rank=3,allreduce=1",
            "rank=2,kill9=0",
            "rank=2,allreduce=1,kill9=2",
            "kill9=5",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn faults_fire_exactly_once() {
        let p = FaultPlan::rank_death(1, 7);
        assert!(!p.dies_at_allreduce(0, 7));
        assert!(!p.dies_at_allreduce(1, 6));
        assert!(p.dies_at_allreduce(1, 7));
        // Consumed: the degraded rerun must not be re-killed.
        assert!(!p.dies_at_allreduce(1, 7));

        let p = FaultPlan::job_panic(0, 2);
        assert!(p.job_panics(0, 2));
        assert!(!p.job_panics(0, 2));
    }
}
