//! Synchronization facade: `std` types in production, `interleave`
//! shims under the `interleave` cargo feature.
//!
//! Everything the barrier / fork-join / comm protocols use for
//! cross-thread synchronization goes through this module, so one
//! cargo feature swaps the entire lock-free layer onto the model
//! checker's tracked types. In production the facade is zero-cost:
//! the `atomic`/`hint`/`thread` modules are straight re-exports and
//! the [`cell::UnsafeCell`] wrapper's closure calls inline away.

#[cfg(feature = "interleave")]
pub(crate) use interleave::{cell, hint, sync::atomic, thread};

#[cfg(not(feature = "interleave"))]
pub(crate) use std::sync::atomic;

#[cfg(not(feature = "interleave"))]
pub(crate) mod hint {
    pub use std::hint::spin_loop;
}

#[cfg(not(feature = "interleave"))]
pub(crate) mod thread {
    pub use std::thread::{spawn, yield_now, JoinHandle};
}

#[cfg(not(feature = "interleave"))]
pub(crate) mod cell {
    /// Closure-scoped `UnsafeCell`, API-compatible with
    /// `interleave::cell::UnsafeCell`. The closures make every access
    /// a visible, auditable region; in this (std) mode they compile
    /// down to a plain pointer dereference.
    #[derive(Default)]
    pub struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

    impl<T> UnsafeCell<T> {
        /// Wraps a value.
        pub fn new(value: T) -> Self {
            Self(std::cell::UnsafeCell::new(value))
        }

        /// Runs `f` with a shared raw pointer to the contents.
        #[inline]
        pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            f(self.0.get() as *const T)
        }

        /// Runs `f` with an exclusive raw pointer to the contents.
        #[inline]
        pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.0.get())
        }
    }
}
