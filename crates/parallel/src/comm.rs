//! An MPI-like communicator over threads.
//!
//! ExaML's communication pattern is dominated by `MPI_Allreduce` calls
//! with tiny payloads — "usually just one or several doubles, for
//! instance, to sum over partial tree likelihoods after evaluate()"
//! (§VI-B3). [`Comm`] reproduces that interface; [`ThreadCommGroup`]
//! backs it with shared memory and the sense-reversing barrier.
//!
//! Reductions are *deterministic*: contributions are deposited into
//! per-rank slots and every rank sums them in rank order, so all ranks
//! compute bit-identical results regardless of arrival order (the
//! property ExaML relies on to keep its replicated searches in
//! lockstep).
//!
//! # Error model
//!
//! Collectives are fallible: when a rank dies it poisons the shared
//! barrier before unwinding (see [`crate::barrier`]), and every peer's
//! in-flight or future collective returns
//! [`CommError::PeerFailed`] within a bounded time instead of spinning
//! forever. The infallible [`Comm::allreduce_sum`] convenience panics
//! with the [`CommError`] as payload, which
//! [`crate::replicated::run_replicated_ft`] catches rank-side and
//! converts into a structured, joinable error.

use crate::barrier::{BarrierToken, Poisoned, SenseBarrier};
use crate::fault::FaultPlan;
use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::cell;
use std::sync::Arc;

/// Communication statistics, the input to `micsim`'s interconnect
/// model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Number of AllReduce operations.
    pub allreduces: u64,
    /// Total payload bytes reduced (per rank).
    pub bytes: u64,
    /// Number of bare barriers.
    pub barriers: u64,
}

/// A failed collective. Carried as a value through the fallible
/// `try_*` collectives and as a panic payload through the infallible
/// ones.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CommError {
    /// A peer died (or aborted) and poisoned the group; no collective
    /// on this communicator can ever complete again.
    PeerFailed {
        /// The failed peer's rank.
        rank: usize,
    },
    /// This rank passed an oversized payload. The group is poisoned
    /// so the misuse fails on *every* rank instead of hanging the
    /// well-behaved peers at the barrier.
    PayloadTooLarge {
        /// The misusing rank (the caller).
        rank: usize,
        /// Payload length passed.
        len: usize,
        /// Configured per-group maximum.
        max_len: usize,
    },
    /// A collective reply did not arrive within the configured read
    /// timeout (socket transports only; the in-thread transports
    /// detect death through the poisoned barrier instead). A local
    /// backstop: the caller cannot name the culprit, only that *it*
    /// gave up waiting.
    Timeout {
        /// The waiting rank (the caller).
        rank: usize,
        /// The timeout that elapsed, in milliseconds.
        millis: u64,
    },
}

impl CommError {
    /// The rank whose failure caused this error (for
    /// [`Self::Timeout`], the rank that gave up waiting).
    pub fn failed_rank(&self) -> usize {
        match *self {
            CommError::PeerFailed { rank }
            | CommError::PayloadTooLarge { rank, .. }
            | CommError::Timeout { rank, .. } => rank,
        }
    }
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::PeerFailed { rank } => write!(f, "peer rank {rank} failed mid-collective"),
            CommError::PayloadTooLarge { rank, len, max_len } => write!(
                f,
                "rank {rank} allreduce payload of {len} doubles exceeds group max_len {max_len}"
            ),
            CommError::Timeout { rank, millis } => write!(
                f,
                "rank {rank} timed out after {millis} ms waiting for a collective reply"
            ),
        }
    }
}

impl std::error::Error for CommError {}

/// Minimal MPI-flavored collective interface.
pub trait Comm {
    /// This participant's rank in `0..size()`.
    fn rank(&self) -> usize;
    /// Number of participants.
    fn size(&self) -> usize;
    /// In-place sum-AllReduce over `buf`; all ranks receive identical
    /// results, or all ranks receive an error (never a hang).
    fn try_allreduce_sum(&mut self, buf: &mut [f64]) -> Result<(), CommError>;
    /// Synchronization barrier; fails group-wide like
    /// [`Self::try_allreduce_sum`].
    fn try_barrier(&mut self) -> Result<(), CommError>;
    /// Statistics accumulated by this participant.
    fn stats(&self) -> CommStats;

    /// Infallible AllReduce for callers inside error-free contexts
    /// (the `Evaluator` hot path): panics with the [`CommError`] as
    /// payload so a supervising scope can downcast and classify it.
    fn allreduce_sum(&mut self, buf: &mut [f64]) {
        if let Err(e) = self.try_allreduce_sum(buf) {
            std::panic::panic_any(e);
        }
    }

    /// Infallible barrier; panics with the [`CommError`] payload.
    fn barrier(&mut self) {
        if let Err(e) = self.try_barrier() {
            std::panic::panic_any(e);
        }
    }
}

/// Default AllReduce payload contract, in doubles. Every transport
/// (Self/Thread/Socket) enforces the same bound so the choice of
/// `--transport` or rank count can never change error behavior: the
/// ExaML-style reductions carry 1–2 doubles, so 8 is generous.
pub const DEFAULT_MAX_LEN: usize = 8;

/// The trivial single-rank communicator.
///
/// Enforces the same `max_len` payload contract as the multi-rank
/// transports: an oversized payload returns
/// [`CommError::PayloadTooLarge`] and latches the communicator dead
/// (every later collective fails with [`CommError::PeerFailed`]),
/// exactly like a poisoned [`ThreadCommGroup`].
#[derive(Debug)]
pub struct SelfComm {
    stats: CommStats,
    max_len: usize,
    poisoned: bool,
}

impl Default for SelfComm {
    fn default() -> Self {
        Self::new()
    }
}

impl SelfComm {
    /// Creates a size-1 communicator with the [`DEFAULT_MAX_LEN`]
    /// payload contract.
    pub fn new() -> Self {
        Self::with_max_len(DEFAULT_MAX_LEN)
    }

    /// Creates a size-1 communicator with an explicit payload bound
    /// (the contract-parity tests sweep this).
    pub fn with_max_len(max_len: usize) -> Self {
        SelfComm {
            stats: CommStats::default(),
            max_len,
            poisoned: false,
        }
    }
}

impl Comm for SelfComm {
    fn rank(&self) -> usize {
        0
    }
    fn size(&self) -> usize {
        1
    }
    fn try_allreduce_sum(&mut self, buf: &mut [f64]) -> Result<(), CommError> {
        if self.poisoned {
            return Err(CommError::PeerFailed { rank: 0 });
        }
        let len = buf.len();
        if len > self.max_len {
            self.poisoned = true;
            return Err(CommError::PayloadTooLarge {
                rank: 0,
                len,
                max_len: self.max_len,
            });
        }
        self.stats.allreduces += 1;
        self.stats.bytes += (len * 8) as u64;
        Ok(())
    }
    fn try_barrier(&mut self) -> Result<(), CommError> {
        if self.poisoned {
            return Err(CommError::PeerFailed { rank: 0 });
        }
        self.stats.barriers += 1;
        Ok(())
    }
    fn stats(&self) -> CommStats {
        self.stats
    }
}

/// Shared state of a thread communicator group.
struct Shared {
    barrier: SenseBarrier,
    /// One deposit slot per rank. Each slot is only written by its
    /// owner between the deposit and read barriers, so the UnsafeCell
    /// access pattern is race-free.
    slots: Vec<SlotCell>,
    total_allreduces: AtomicU64,
}

/// A cache-line padded, interior-mutable deposit slot.
#[repr(align(64))]
struct SlotCell(cell::UnsafeCell<Vec<f64>>);

// SAFETY: slot i is written only by rank i, and reads happen strictly
// between the two barriers that bracket every write window; every
// access is closure-scoped through with/with_mut, which the interleave
// model test verifies race-free under all bounded interleavings. A
// poisoned barrier pass returns an error *without* entering the read
// window, so failed collectives never touch peer slots.
unsafe impl Sync for SlotCell {}

/// Factory for a group of `n` thread-backed communicator handles.
pub struct ThreadCommGroup {
    shared: Arc<Shared>,
    next_rank: usize,
    size: usize,
    max_len: usize,
    fault_plan: Option<Arc<FaultPlan>>,
}

impl ThreadCommGroup {
    /// Creates a group for `n` ranks with reduce payloads up to
    /// `max_len` doubles.
    pub fn new(n: usize, max_len: usize) -> Self {
        assert!(n >= 1);
        let shared = Arc::new(Shared {
            barrier: SenseBarrier::new(n),
            slots: (0..n)
                .map(|_| SlotCell(cell::UnsafeCell::new(vec![0.0; max_len])))
                .collect(),
            total_allreduces: AtomicU64::new(0),
        });
        ThreadCommGroup {
            shared,
            next_rank: 0,
            size: n,
            max_len,
            fault_plan: None,
        }
    }

    /// Attaches a scripted [`FaultPlan`] whose rank-death faults fire
    /// inside the handles' AllReduce calls. `None`-cost when unused.
    pub fn with_fault_plan(mut self, plan: Option<Arc<FaultPlan>>) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Takes the next rank's handle. Call exactly `n` times and move
    /// each handle into its thread.
    pub fn take(&mut self) -> ThreadComm {
        assert!(self.next_rank < self.size, "all ranks already taken");
        let rank = self.next_rank;
        self.next_rank += 1;
        ThreadComm {
            shared: Arc::clone(&self.shared),
            rank,
            size: self.size,
            max_len: self.max_len,
            token: BarrierToken::new(),
            stats: CommStats::default(),
            wire: crate::transport::WireStats::default(),
            fault_plan: self.fault_plan.clone(),
        }
    }

    /// Total AllReduce operations across the group's lifetime.
    pub fn total_allreduces(&self) -> u64 {
        self.shared.total_allreduces.load(Ordering::Relaxed)
    }
}

/// One rank's handle to a [`ThreadCommGroup`].
pub struct ThreadComm {
    shared: Arc<Shared>,
    rank: usize,
    size: usize,
    max_len: usize,
    token: BarrierToken,
    stats: CommStats,
    wire: crate::transport::WireStats,
    fault_plan: Option<Arc<FaultPlan>>,
}

impl ThreadComm {
    /// Poisons the group on behalf of this rank: every peer's blocked
    /// or future collective returns [`CommError::PeerFailed`] with
    /// this rank. Called by a rank that must abandon the lockstep
    /// search (fatal local error, failed checkpoint write) so its
    /// siblings fail fast instead of deadlocking.
    pub fn abort(&self) {
        self.shared.barrier.poison(self.rank);
    }

    /// The rank that poisoned this group, if any.
    pub fn poisoned(&self) -> Option<usize> {
        self.shared.barrier.poisoned()
    }

    /// A detached handle that can [`abort`](AbortHandle::abort) the
    /// group on behalf of this rank without borrowing the
    /// communicator — the supervising scope holds it across the
    /// region where the evaluator owns `self`, so a panic anywhere in
    /// the rank body can still mark the group dead.
    pub fn abort_handle(&self) -> AbortHandle {
        AbortHandle {
            shared: Arc::clone(&self.shared),
            rank: self.rank,
        }
    }

    /// Per-collective wall-time measured at the call boundary (the
    /// in-thread analogue of [`SocketComm`]'s wire time, used by the
    /// EXPERIMENTS.md latency comparison).
    ///
    /// [`SocketComm`]: crate::transport::SocketComm
    pub fn measured_wire(&self) -> crate::transport::WireStats {
        self.wire
    }

    fn wait(&mut self) -> Result<(), CommError> {
        self.shared
            .barrier
            .wait(&mut self.token)
            .map_err(|Poisoned { rank }| CommError::PeerFailed { rank })
    }
}

/// A clonable, communicator-independent poison handle for one rank of
/// a [`ThreadCommGroup`]. See [`ThreadComm::abort_handle`].
#[derive(Clone)]
pub struct AbortHandle {
    shared: Arc<Shared>,
    rank: usize,
}

impl AbortHandle {
    /// Poisons the group on behalf of the handle's rank (idempotent;
    /// the first poisoner group-wide wins).
    pub fn abort(&self) {
        self.shared.barrier.poison(self.rank);
    }

    /// The rank that poisoned the group, if any.
    pub fn poisoned(&self) -> Option<usize> {
        self.shared.barrier.poisoned()
    }
}

impl Comm for ThreadComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn try_allreduce_sum(&mut self, buf: &mut [f64]) -> Result<(), CommError> {
        let len = buf.len();
        if let Some(plan) = &self.fault_plan {
            // In-thread transport has no process to SIGKILL, so a
            // scripted `kill9` degrades to the same simulated death as
            // `die`: mark the group before unwinding so no sibling
            // spins forever at the barrier.
            if plan.dies_at_allreduce(self.rank, self.stats.allreduces + 1)
                || plan.kills_at_allreduce(self.rank, self.stats.allreduces + 1)
            {
                self.shared.barrier.poison(self.rank);
                return Err(CommError::PeerFailed { rank: self.rank });
            }
        }
        if len > self.max_len {
            // Misuse fails group-wide: poisoning first means the
            // peers already blocked at the barrier error out instead
            // of waiting for a deposit that will never come.
            self.shared.barrier.poison(self.rank);
            return Err(CommError::PayloadTooLarge {
                rank: self.rank,
                len,
                max_len: self.max_len,
            });
        }
        let t0 = std::time::Instant::now();
        // Deposit into our slot.
        self.shared.slots[self.rank].0.with_mut(|p| {
            // SAFETY: only rank `self.rank` writes slot `self.rank`,
            // and no rank reads it until after the barrier below.
            let slot = unsafe { &mut *p };
            slot[..len].copy_from_slice(buf);
        });
        self.wait()?;
        // Every rank sums the slots in rank order: deterministic and
        // identical everywhere.
        buf.fill(0.0);
        for r in 0..self.size {
            self.shared.slots[r].0.with(|p| {
                // SAFETY: between the two barriers all slots are
                // read-only.
                let slot = unsafe { &*p };
                for (o, &v) in buf.iter_mut().zip(&slot[..len]) {
                    *o += v;
                }
            });
        }
        self.wait()?;
        self.wire.record(t0.elapsed().as_nanos() as u64);
        self.stats.allreduces += 1;
        self.stats.bytes += (len * 8) as u64;
        if self.rank == 0 {
            self.shared.total_allreduces.fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    fn try_barrier(&mut self) -> Result<(), CommError> {
        let t0 = std::time::Instant::now();
        self.wait()?;
        self.wire.record(t0.elapsed().as_nanos() as u64);
        self.stats.barriers += 1;
        Ok(())
    }

    fn stats(&self) -> CommStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_comm_is_identity() {
        let mut c = SelfComm::new();
        let mut buf = [1.5, -2.0];
        c.allreduce_sum(&mut buf);
        assert_eq!(buf, [1.5, -2.0]);
        assert_eq!(c.stats().allreduces, 1);
        assert_eq!(c.stats().bytes, 16);
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        const N: usize = 6;
        let mut group = ThreadCommGroup::new(N, 4);
        let handles: Vec<_> = (0..N)
            .map(|_| group.take())
            .map(|mut comm| {
                std::thread::spawn(move || {
                    let r = comm.rank() as f64;
                    let mut buf = [r, 2.0 * r, 1.0];
                    comm.allreduce_sum(&mut buf);
                    buf
                })
            })
            .collect();
        let expect_r: f64 = (0..N).map(|r| r as f64).sum();
        for h in handles {
            let buf = h.join().unwrap();
            assert_eq!(buf[0], expect_r);
            assert_eq!(buf[1], 2.0 * expect_r);
            assert_eq!(buf[2], N as f64);
        }
        assert_eq!(group.total_allreduces(), 1);
    }

    #[test]
    fn repeated_allreduces_stay_consistent() {
        const N: usize = 4;
        const ROUNDS: usize = 500;
        let mut group = ThreadCommGroup::new(N, 1);
        let handles: Vec<_> = (0..N)
            .map(|_| group.take())
            .map(|mut comm| {
                std::thread::spawn(move || {
                    let mut acc = 0.0;
                    for round in 0..ROUNDS {
                        let mut buf = [comm.rank() as f64 + round as f64];
                        comm.allreduce_sum(&mut buf);
                        acc += buf[0];
                    }
                    acc
                })
            })
            .collect();
        let results: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in results.windows(2) {
            assert_eq!(w[0], w[1], "ranks disagree");
        }
        assert_eq!(group.total_allreduces(), ROUNDS as u64);
    }

    #[test]
    fn stats_track_bytes() {
        let mut group = ThreadCommGroup::new(1, 8);
        let mut c = group.take();
        let mut buf = [0.0; 5];
        c.allreduce_sum(&mut buf);
        c.allreduce_sum(&mut buf);
        c.barrier();
        let s = c.stats();
        assert_eq!(s.allreduces, 2);
        assert_eq!(s.bytes, 80);
        assert_eq!(s.barriers, 1);
    }

    /// Regression: an oversized payload on one rank used to trip a
    /// caller-side assert *before* that rank reached the barrier,
    /// hanging every sibling forever. The misuse must now fail on
    /// every rank within bounded time.
    #[test]
    fn oversized_payload_fails_group_wide_not_deadlocks() {
        let mut group = ThreadCommGroup::new(2, 2);
        let mut big = group.take();
        let mut ok = group.take();
        let peer = std::thread::spawn(move || {
            let mut buf = [1.0];
            ok.try_allreduce_sum(&mut buf)
        });
        let mut oversized = [0.0; 5];
        let local = big.try_allreduce_sum(&mut oversized);
        assert_eq!(
            local,
            Err(CommError::PayloadTooLarge {
                rank: 0,
                len: 5,
                max_len: 2
            })
        );
        // The well-behaved peer unblocks with a structured error
        // naming the misusing rank (no hang: join returns).
        assert_eq!(peer.join().unwrap(), Err(CommError::PeerFailed { rank: 0 }));
        // The group stays dead for both ranks.
        let mut buf = [1.0];
        assert_eq!(
            big.try_allreduce_sum(&mut buf),
            Err(CommError::PeerFailed { rank: 0 })
        );
    }

    #[test]
    fn scripted_rank_death_propagates_peer_failed() {
        let plan = Arc::new(FaultPlan::rank_death(1, 3));
        let mut group = ThreadCommGroup::new(2, 1).with_fault_plan(Some(Arc::clone(&plan)));
        let mut c0 = group.take();
        let mut c1 = group.take();
        let dying = std::thread::spawn(move || {
            for _ in 0..10 {
                let mut buf = [1.0];
                if let Err(e) = c1.try_allreduce_sum(&mut buf) {
                    return (e, c1.stats().allreduces);
                }
            }
            unreachable!("rank 1 must die at its 3rd allreduce");
        });
        let mut survivor_result = Ok(());
        for _ in 0..10 {
            let mut buf = [1.0];
            survivor_result = c0.try_allreduce_sum(&mut buf);
            if survivor_result.is_err() {
                break;
            }
        }
        let (death, completed) = dying.join().unwrap();
        assert_eq!(death, CommError::PeerFailed { rank: 1 });
        assert_eq!(completed, 2, "death strikes before the 3rd allreduce");
        assert_eq!(survivor_result, Err(CommError::PeerFailed { rank: 1 }));
    }

    #[test]
    fn abort_poisons_the_group() {
        let mut group = ThreadCommGroup::new(2, 1);
        let mut c0 = group.take();
        let c1 = group.take();
        let waiter = std::thread::spawn(move || {
            let mut buf = [0.5];
            c0.try_allreduce_sum(&mut buf)
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        c1.abort();
        assert_eq!(
            waiter.join().unwrap(),
            Err(CommError::PeerFailed { rank: 1 })
        );
        assert_eq!(c1.poisoned(), Some(1));
    }

    #[test]
    #[should_panic(expected = "all ranks already taken")]
    fn overtaking_rejected() {
        let mut group = ThreadCommGroup::new(1, 1);
        let _a = group.take();
        let _b = group.take();
    }
}
