//! An MPI-like communicator over threads.
//!
//! ExaML's communication pattern is dominated by `MPI_Allreduce` calls
//! with tiny payloads — "usually just one or several doubles, for
//! instance, to sum over partial tree likelihoods after evaluate()"
//! (§VI-B3). [`Comm`] reproduces that interface; [`ThreadCommGroup`]
//! backs it with shared memory and the sense-reversing barrier.
//!
//! Reductions are *deterministic*: contributions are deposited into
//! per-rank slots and every rank sums them in rank order, so all ranks
//! compute bit-identical results regardless of arrival order (the
//! property ExaML relies on to keep its replicated searches in
//! lockstep).

use crate::barrier::{BarrierToken, SenseBarrier};
use crate::sync::atomic::{AtomicU64, Ordering};
use crate::sync::cell;
use std::sync::Arc;

/// Communication statistics, the input to `micsim`'s interconnect
/// model.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommStats {
    /// Number of AllReduce operations.
    pub allreduces: u64,
    /// Total payload bytes reduced (per rank).
    pub bytes: u64,
    /// Number of bare barriers.
    pub barriers: u64,
}

/// Minimal MPI-flavored collective interface.
pub trait Comm {
    /// This participant's rank in `0..size()`.
    fn rank(&self) -> usize;
    /// Number of participants.
    fn size(&self) -> usize;
    /// In-place sum-AllReduce over `buf`; all ranks receive identical
    /// results.
    fn allreduce_sum(&mut self, buf: &mut [f64]);
    /// Synchronization barrier.
    fn barrier(&mut self);
    /// Statistics accumulated by this participant.
    fn stats(&self) -> CommStats;
}

/// The trivial single-rank communicator.
#[derive(Debug, Default)]
pub struct SelfComm {
    stats: CommStats,
}

impl SelfComm {
    /// Creates a size-1 communicator.
    pub fn new() -> Self {
        Self::default()
    }
}

impl Comm for SelfComm {
    fn rank(&self) -> usize {
        0
    }
    fn size(&self) -> usize {
        1
    }
    fn allreduce_sum(&mut self, buf: &mut [f64]) {
        self.stats.allreduces += 1;
        self.stats.bytes += (buf.len() * 8) as u64;
    }
    fn barrier(&mut self) {
        self.stats.barriers += 1;
    }
    fn stats(&self) -> CommStats {
        self.stats
    }
}

/// Shared state of a thread communicator group.
struct Shared {
    barrier: SenseBarrier,
    /// One deposit slot per rank. Each slot is only written by its
    /// owner between the deposit and read barriers, so the UnsafeCell
    /// access pattern is race-free.
    slots: Vec<SlotCell>,
    total_allreduces: AtomicU64,
}

/// A cache-line padded, interior-mutable deposit slot.
#[repr(align(64))]
struct SlotCell(cell::UnsafeCell<Vec<f64>>);

// SAFETY: slot i is written only by rank i, and reads happen strictly
// between the two barriers that bracket every write window; every
// access is closure-scoped through with/with_mut, which the interleave
// model test verifies race-free under all bounded interleavings.
unsafe impl Sync for SlotCell {}

/// Factory for a group of `n` thread-backed communicator handles.
pub struct ThreadCommGroup {
    shared: Arc<Shared>,
    next_rank: usize,
    size: usize,
}

impl ThreadCommGroup {
    /// Creates a group for `n` ranks with reduce payloads up to
    /// `max_len` doubles.
    pub fn new(n: usize, max_len: usize) -> Self {
        assert!(n >= 1);
        let shared = Arc::new(Shared {
            barrier: SenseBarrier::new(n),
            slots: (0..n)
                .map(|_| SlotCell(cell::UnsafeCell::new(vec![0.0; max_len])))
                .collect(),
            total_allreduces: AtomicU64::new(0),
        });
        ThreadCommGroup {
            shared,
            next_rank: 0,
            size: n,
        }
    }

    /// Takes the next rank's handle. Call exactly `n` times and move
    /// each handle into its thread.
    pub fn take(&mut self) -> ThreadComm {
        assert!(self.next_rank < self.size, "all ranks already taken");
        let rank = self.next_rank;
        self.next_rank += 1;
        ThreadComm {
            shared: Arc::clone(&self.shared),
            rank,
            size: self.size,
            token: BarrierToken::new(),
            stats: CommStats::default(),
        }
    }

    /// Total AllReduce operations across the group's lifetime.
    pub fn total_allreduces(&self) -> u64 {
        self.shared.total_allreduces.load(Ordering::Relaxed)
    }
}

/// One rank's handle to a [`ThreadCommGroup`].
pub struct ThreadComm {
    shared: Arc<Shared>,
    rank: usize,
    size: usize,
    token: BarrierToken,
    stats: CommStats,
}

impl Comm for ThreadComm {
    fn rank(&self) -> usize {
        self.rank
    }

    fn size(&self) -> usize {
        self.size
    }

    fn allreduce_sum(&mut self, buf: &mut [f64]) {
        let len = buf.len();
        // Deposit into our slot.
        self.shared.slots[self.rank].0.with_mut(|p| {
            // SAFETY: only rank `self.rank` writes slot `self.rank`,
            // and no rank reads it until after the barrier below.
            let slot = unsafe { &mut *p };
            assert!(len <= slot.len(), "allreduce payload exceeds max_len");
            slot[..len].copy_from_slice(buf);
        });
        self.shared.barrier.wait(&mut self.token);
        // Every rank sums the slots in rank order: deterministic and
        // identical everywhere.
        buf.fill(0.0);
        for r in 0..self.size {
            self.shared.slots[r].0.with(|p| {
                // SAFETY: between the two barriers all slots are
                // read-only.
                let slot = unsafe { &*p };
                for (o, &v) in buf.iter_mut().zip(&slot[..len]) {
                    *o += v;
                }
            });
        }
        self.shared.barrier.wait(&mut self.token);
        self.stats.allreduces += 1;
        self.stats.bytes += (len * 8) as u64;
        if self.rank == 0 {
            self.shared.total_allreduces.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn barrier(&mut self) {
        self.shared.barrier.wait(&mut self.token);
        self.stats.barriers += 1;
    }

    fn stats(&self) -> CommStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_comm_is_identity() {
        let mut c = SelfComm::new();
        let mut buf = [1.5, -2.0];
        c.allreduce_sum(&mut buf);
        assert_eq!(buf, [1.5, -2.0]);
        assert_eq!(c.stats().allreduces, 1);
        assert_eq!(c.stats().bytes, 16);
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        const N: usize = 6;
        let mut group = ThreadCommGroup::new(N, 4);
        let handles: Vec<_> = (0..N)
            .map(|_| group.take())
            .map(|mut comm| {
                std::thread::spawn(move || {
                    let r = comm.rank() as f64;
                    let mut buf = [r, 2.0 * r, 1.0];
                    comm.allreduce_sum(&mut buf);
                    buf
                })
            })
            .collect();
        let expect_r: f64 = (0..N).map(|r| r as f64).sum();
        for h in handles {
            let buf = h.join().unwrap();
            assert_eq!(buf[0], expect_r);
            assert_eq!(buf[1], 2.0 * expect_r);
            assert_eq!(buf[2], N as f64);
        }
        assert_eq!(group.total_allreduces(), 1);
    }

    #[test]
    fn repeated_allreduces_stay_consistent() {
        const N: usize = 4;
        const ROUNDS: usize = 500;
        let mut group = ThreadCommGroup::new(N, 1);
        let handles: Vec<_> = (0..N)
            .map(|_| group.take())
            .map(|mut comm| {
                std::thread::spawn(move || {
                    let mut acc = 0.0;
                    for round in 0..ROUNDS {
                        let mut buf = [comm.rank() as f64 + round as f64];
                        comm.allreduce_sum(&mut buf);
                        acc += buf[0];
                    }
                    acc
                })
            })
            .collect();
        let results: Vec<f64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        for w in results.windows(2) {
            assert_eq!(w[0], w[1], "ranks disagree");
        }
        assert_eq!(group.total_allreduces(), ROUNDS as u64);
    }

    #[test]
    fn stats_track_bytes() {
        let mut group = ThreadCommGroup::new(1, 8);
        let mut c = group.take();
        let mut buf = [0.0; 5];
        c.allreduce_sum(&mut buf);
        c.allreduce_sum(&mut buf);
        c.barrier();
        let s = c.stats();
        assert_eq!(s.allreduces, 2);
        assert_eq!(s.bytes, 80);
        assert_eq!(s.barriers, 1);
    }

    #[test]
    #[should_panic(expected = "all ranks already taken")]
    fn overtaking_rejected() {
        let mut group = ThreadCommGroup::new(1, 1);
        let _a = group.take();
        let _b = group.take();
    }
}
