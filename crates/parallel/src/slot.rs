//! The broadcast-job / reply-slot protocol, factored out of the
//! fork-join evaluator.
//!
//! [`RegionProtocol`] owns the shared memory of one parallel region
//! scheme: a single job slot the master broadcasts through, one
//! cache-line-padded reply slot per worker, and the sense-reversing
//! barrier whose passes delimit the exclusive-access windows. It is
//! generic over the job and reply types, which is what lets the
//! interleave model tests drive the *exact production protocol* with
//! small payloads (`u64`s instead of trees and engines) — the
//! synchronization under test is this struct, not the kernels.
//!
//! # Protocol windows
//!
//! ```text
//!            master                         worker i
//!   ┌─ publish_job(j)          (workers blocked at fork barrier)
//!   ├─ fork()      ──────────────► fork()
//!   │  (job read-only)             read_job(|j| …work…)
//!   │                              write_reply(i, r)   [slot i only]
//!   ├─ join()      ◄────────────── join()
//!   └─ drain_replies()         (workers blocked at next fork)
//! ```
//!
//! Every access goes through the closure-scoped
//! [`UnsafeCell`](crate::sync::cell::UnsafeCell) facade, so compiling
//! with `--features interleave` turns each window violation into a
//! model-checker data-race report instead of silent UB.

use crate::barrier::{BarrierToken, Poisoned, SenseBarrier};
use crate::sync::cell;

/// Pads a reply slot to its own cache line so workers completing at
/// the same time don't false-share.
#[repr(align(128))]
pub(crate) struct CachePadded<T>(pub(crate) cell::UnsafeCell<T>);

/// Shared state of a fork-join region scheme for one master plus
/// `workers` workers: broadcast job slot, per-worker reply slots, and
/// the barrier separating their ownership windows.
pub struct RegionProtocol<J, R> {
    barrier: SenseBarrier,
    job: cell::UnsafeCell<J>,
    replies: Vec<CachePadded<R>>,
}

// SAFETY: `job` and `replies` hold `UnsafeCell`s accessed without
// locks. Races are excluded by the barrier protocol, which alternates
// exclusive-access windows:
//
// 1. The master writes `job` (`publish_job`) only while every worker
//    is blocked at the fork barrier — the steady-state invariant
//    between regions.
// 2. Between fork and join, workers read `job` (shared, `read_job`)
//    and worker `i` writes only `replies[i]` (`write_reply`,
//    exclusive by index).
// 3. After the join barrier the master reads and clears `replies`
//    (`drain_replies`); workers are already blocked at the next fork.
//
// The barrier's AcqRel/Acquire/Release orderings make every write
// before a barrier pass visible to every thread after it; the
// interleave model tests exercise exactly these windows. SAFETY of
// the bounds: `J: Send + Sync` because the master moves jobs in and
// workers read them by reference; `R: Send` because replies move
// from workers to master.
unsafe impl<J: Send + Sync, R: Send> Sync for RegionProtocol<J, R> {}

impl<J, R: Default> RegionProtocol<J, R> {
    /// Creates the shared state for `workers` workers plus the
    /// master, with the job slot holding `initial_job` and every
    /// reply slot holding `R::default()`.
    pub fn new(workers: usize, initial_job: J) -> Self {
        assert!(workers >= 1, "protocol needs at least one worker");
        RegionProtocol {
            barrier: SenseBarrier::new(workers + 1),
            job: cell::UnsafeCell::new(initial_job),
            replies: (0..workers)
                .map(|_| CachePadded(cell::UnsafeCell::new(R::default())))
                .collect(),
        }
    }
}

impl<J, R> RegionProtocol<J, R> {
    /// Number of worker slots.
    pub fn workers(&self) -> usize {
        self.replies.len()
    }

    /// Master-side: broadcasts the next job. Must only be called in
    /// window 1 (every worker blocked at the fork barrier).
    pub fn publish_job(&self, job: J) {
        self.job.with_mut(|p| {
            // SAFETY: window 1 — workers are blocked at the fork
            // barrier, so the master holds exclusive access to the
            // job slot.
            unsafe { *p = job }
        });
    }

    /// A fork-barrier pass (master releases the workers into the
    /// job). Master and every worker must each call this once per
    /// region. Fails (promptly, no hang) once the protocol is
    /// poisoned by a dead participant.
    pub fn fork(&self, token: &mut BarrierToken) -> Result<(), Poisoned> {
        self.barrier.wait(token)
    }

    /// A join-barrier pass (workers hand the replies back). Master
    /// and every worker must each call this once per region — except
    /// for a shutdown region, where workers exit early and the master
    /// skips it too. Fails like [`Self::fork`] once poisoned.
    pub fn join(&self, token: &mut BarrierToken) -> Result<(), Poisoned> {
        self.barrier.wait(token)
    }

    /// Marks the protocol dead on behalf of participant `rank`
    /// (master = `workers()`, worker `i` = `i`): every blocked or
    /// future fork/join pass returns `Err(Poisoned)`. Called by a
    /// participant that must unwind outside the normal shutdown
    /// region so the others never deadlock.
    pub fn poison(&self, rank: usize) {
        self.barrier.poison(rank);
    }

    /// The poisoner's rank, if the protocol is dead.
    pub fn poisoned(&self) -> Option<usize> {
        self.barrier.poisoned()
    }

    /// Worker-side: reads the broadcast job. Must only be called in
    /// window 2 (between fork and join).
    pub fn read_job<T>(&self, f: impl FnOnce(&J) -> T) -> T {
        self.job.with(|p| {
            // SAFETY: window 2 — between fork and join the master
            // never touches the job slot and workers only read it.
            f(unsafe { &*p })
        })
    }

    /// Worker-side: deposits worker `idx`'s reply. Must only be
    /// called in window 2, by worker `idx` itself.
    pub fn write_reply(&self, idx: usize, reply: R) {
        self.replies[idx].0.with_mut(|p| {
            // SAFETY: window 2 — worker `idx` is the sole writer of
            // its own slot between fork and join.
            unsafe { *p = reply }
        });
    }

    /// Master-side: takes every reply, leaving `R::default()` behind.
    /// Must only be called in window 3 (after the join barrier).
    pub fn drain_replies(&self) -> Vec<R>
    where
        R: Default,
    {
        self.replies
            .iter()
            .map(|slot| {
                slot.0.with_mut(|p| {
                    // SAFETY: window 3 — the join barrier completed,
                    // so every worker has written its reply and moved
                    // on to the next fork wait; the master owns the
                    // reply array.
                    unsafe { std::mem::take(&mut *p) }
                })
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn one_region_roundtrip() {
        const WORKERS: usize = 3;
        let proto = Arc::new(RegionProtocol::<u64, u64>::new(WORKERS, 0));
        let handles: Vec<_> = (0..WORKERS)
            .map(|idx| {
                let proto = Arc::clone(&proto);
                std::thread::spawn(move || {
                    let mut token = BarrierToken::new();
                    proto.fork(&mut token).unwrap();
                    let job = proto.read_job(|j| *j);
                    proto.write_reply(idx, job * 10 + idx as u64);
                    proto.join(&mut token).unwrap();
                })
            })
            .collect();
        let mut token = BarrierToken::new();
        proto.publish_job(7);
        proto.fork(&mut token).unwrap();
        proto.join(&mut token).unwrap();
        let replies = proto.drain_replies();
        assert_eq!(replies, vec![70, 71, 72]);
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn drained_slots_reset_to_default() {
        let proto = RegionProtocol::<u64, u64>::new(2, 0);
        proto.write_reply(0, 5);
        assert_eq!(proto.drain_replies(), vec![5, 0]);
        assert_eq!(proto.drain_replies(), vec![0, 0]);
        assert_eq!(proto.workers(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        RegionProtocol::<u64, u64>::new(0, 0);
    }
}
