//! The replicated-search (ExaML) scheme.
//!
//! "Each process runs its own consistent (with all other processes)
//! copy of the tree search algorithm, and they only communicate if
//! information needs to be exchanged" (§V-D). Every rank owns an
//! alignment slice and a full copy of the tree; the only communication
//! is a tiny AllReduce inside `log_likelihood` (1 double) and
//! `branch_derivatives` (2 doubles). Because the communicator's
//! reductions are deterministic, all ranks take bit-identical search
//! decisions and stay in lockstep without any coordination messages.

use crate::comm::{Comm, CommStats, ThreadCommGroup};
use phylo_bio::CompressedAlignment;
use phylo_models::GtrParams;
use phylo_search::{Evaluator, MlSearch, SearchResult};
use phylo_tree::{EdgeId, Tree};
use plf_core::{EngineConfig, KernelStats, LikelihoodEngine};

/// An ExaML-style rank: a local engine plus a communicator. Implements
/// [`Evaluator`]; reductions happen transparently inside.
pub struct ReplicatedEvaluator<C: Comm> {
    engine: LikelihoodEngine,
    comm: C,
}

impl<C: Comm> ReplicatedEvaluator<C> {
    /// Wraps a rank-local engine and its communicator handle.
    pub fn new(engine: LikelihoodEngine, comm: C) -> Self {
        ReplicatedEvaluator { engine, comm }
    }

    /// The rank-local engine (for stats collection).
    pub fn engine(&self) -> &LikelihoodEngine {
        &self.engine
    }

    /// Communicator statistics of this rank.
    pub fn comm_stats(&self) -> CommStats {
        self.comm.stats()
    }

    /// Consumes the evaluator, returning its parts.
    pub fn into_parts(self) -> (LikelihoodEngine, C) {
        (self.engine, self.comm)
    }
}

impl<C: Comm> Evaluator for ReplicatedEvaluator<C> {
    fn log_likelihood(&mut self, tree: &Tree, root_edge: EdgeId) -> f64 {
        let mut buf = [self.engine.log_likelihood(tree, root_edge)];
        self.comm.allreduce_sum(&mut buf);
        buf[0]
    }

    fn prepare_branch(&mut self, tree: &Tree, edge: EdgeId) {
        // Purely local: the sumtable is a per-slice object.
        self.engine.prepare_branch(tree, edge);
    }

    fn branch_derivatives(&mut self, t: f64) -> (f64, f64) {
        let (d1, d2) = self.engine.branch_derivatives(t);
        let mut buf = [d1, d2];
        self.comm.allreduce_sum(&mut buf);
        (buf[0], buf[1])
    }

    fn set_alpha(&mut self, alpha: f64) {
        // Every rank executes the same deterministic search, so the
        // argument is already identical everywhere — no broadcast.
        self.engine.set_alpha(alpha);
    }

    fn set_model(&mut self, params: GtrParams) {
        self.engine.set_model(params);
    }

    fn alpha(&self) -> f64 {
        self.engine.alpha()
    }

    fn model(&self) -> GtrParams {
        *self.engine.model()
    }
}

/// Result of a replicated run.
#[derive(Clone, Debug)]
pub struct ReplicatedOutcome {
    /// Search result from rank 0 (identical on all ranks).
    pub result: SearchResult,
    /// Per-rank final log-likelihoods (must all agree; exposed so
    /// tests can assert lockstep).
    pub rank_likelihoods: Vec<f64>,
    /// Kernel statistics merged over all ranks.
    pub kernel_stats: KernelStats,
    /// Communication statistics of rank 0.
    pub comm_stats: CommStats,
}

/// Runs the full ML search under the replicated scheme with
/// `num_ranks` threads, starting from `tree`.
pub fn run_replicated(
    tree: &Tree,
    aln: &CompressedAlignment,
    config: EngineConfig,
    search: MlSearch,
    num_ranks: usize,
) -> ReplicatedOutcome {
    assert!(num_ranks >= 1);
    let ranges = crate::forkjoin::split_ranges(aln.num_patterns(), num_ranks);
    let mut group = ThreadCommGroup::new(num_ranks, 8);

    let outcomes: Vec<(SearchResult, f64, KernelStats, CommStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .map(|range| {
                let comm = group.take();
                let mut local_tree = tree.clone();
                scope.spawn(move || {
                    let engine = LikelihoodEngine::with_range(&local_tree, aln, config, range);
                    let mut eval = ReplicatedEvaluator::new(engine, comm);
                    let result = search.run(&mut eval, &mut local_tree);
                    let final_ll = eval.log_likelihood(&local_tree, 0);
                    let comm_stats = eval.comm_stats();
                    let (engine, _) = eval.into_parts();
                    (result, final_ll, engine.stats().clone(), comm_stats)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    let mut kernel_stats = KernelStats::new();
    for (_, _, s, _) in &outcomes {
        kernel_stats.merge(s);
    }
    let rank_likelihoods: Vec<f64> = outcomes.iter().map(|o| o.1).collect();
    let comm_stats = outcomes[0].3;
    let result = outcomes.into_iter().next().expect("≥1 rank").0;

    ReplicatedOutcome {
        result,
        rank_likelihoods,
        kernel_stats,
        comm_stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_models::{DiscreteGamma, Gtr};
    use phylo_search::SearchConfig;
    use phylo_tree::build::{default_names, random_tree};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn dataset() -> (Tree, CompressedAlignment) {
        let mut rng = SmallRng::seed_from_u64(31);
        let names = default_names(8);
        let tree = random_tree(&names, 0.12, &mut rng).unwrap();
        let g = Gtr::new(GtrParams::jc69());
        let gamma = DiscreteGamma::new(1.1);
        let aln = phylo_seqgen::simulate_alignment(&tree, g.eigen(), &gamma, 900, &mut rng);
        (tree, CompressedAlignment::from_alignment(&aln))
    }

    #[test]
    fn replicated_equals_serial_search() {
        let (tree0, aln) = dataset();
        let names = tree0.tip_names().to_vec();
        let start = random_tree(&names, 0.1, &mut SmallRng::seed_from_u64(6)).unwrap();
        let cfg = EngineConfig::default();
        let search = MlSearch::new(SearchConfig {
            max_rounds: 3,
            optimize_model: false,
            ..Default::default()
        });

        let mut t_serial = start.clone();
        let mut serial = LikelihoodEngine::new(&t_serial, &aln, cfg);
        let r_serial = search.run(&mut serial, &mut t_serial);

        for ranks in [1usize, 2, 5] {
            let out = run_replicated(&start, &aln, cfg, search, ranks);
            assert!(
                (out.result.log_likelihood - r_serial.log_likelihood).abs() < 1e-7,
                "ranks={ranks}: {} vs {}",
                out.result.log_likelihood,
                r_serial.log_likelihood
            );
            let parsed = phylo_tree::newick::parse(&out.result.newick).unwrap();
            assert_eq!(parsed.rf_distance(&t_serial), 0, "ranks={ranks}");
        }
    }

    #[test]
    fn all_ranks_in_lockstep() {
        let (tree, aln) = dataset();
        let cfg = EngineConfig::default();
        let search = MlSearch::new(SearchConfig {
            max_rounds: 2,
            optimize_model: true,
            ..Default::default()
        });
        let out = run_replicated(&tree, &aln, cfg, search, 4);
        for w in out.rank_likelihoods.windows(2) {
            assert_eq!(w[0], w[1], "ranks diverged: {:?}", out.rank_likelihoods);
        }
        assert!(out.comm_stats.allreduces > 0);
    }

    #[test]
    fn communication_is_tiny_per_operation() {
        // The ExaML signature: bytes per allreduce is 8 or 16.
        let (tree, aln) = dataset();
        let cfg = EngineConfig::default();
        let search = MlSearch::new(SearchConfig {
            max_rounds: 1,
            optimize_model: false,
            ..Default::default()
        });
        let out = run_replicated(&tree, &aln, cfg, search, 3);
        let per_op = out.comm_stats.bytes as f64 / out.comm_stats.allreduces as f64;
        assert!(per_op <= 16.0, "bytes per allreduce = {per_op}");
    }
}
