//! The replicated-search (ExaML) scheme.
//!
//! "Each process runs its own consistent (with all other processes)
//! copy of the tree search algorithm, and they only communicate if
//! information needs to be exchanged" (§V-D). Every rank owns an
//! alignment slice and a full copy of the tree; the only communication
//! is a tiny AllReduce inside `log_likelihood` (1 double) and
//! `branch_derivatives` (2 doubles). Because the communicator's
//! reductions are deterministic, all ranks take bit-identical search
//! decisions and stay in lockstep without any coordination messages.

use crate::comm::{Comm, CommError, CommStats, ThreadCommGroup, DEFAULT_MAX_LEN};
use crate::fault::FaultPlan;
use crate::transport::WireStats;
use phylo_bio::CompressedAlignment;
use phylo_models::GtrParams;
use phylo_search::checkpoint::{Checkpoint, RetryPolicy};
use phylo_search::{Evaluator, MlSearch, SearchResult};
use phylo_tree::{EdgeId, Tree};
use plf_core::{EngineConfig, KernelStats, LikelihoodEngine};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;
use std::sync::Arc;

/// An ExaML-style rank: a local engine plus a communicator. Implements
/// [`Evaluator`]; reductions happen transparently inside.
pub struct ReplicatedEvaluator<C: Comm> {
    engine: LikelihoodEngine,
    comm: C,
}

impl<C: Comm> ReplicatedEvaluator<C> {
    /// Wraps a rank-local engine and its communicator handle.
    pub fn new(engine: LikelihoodEngine, comm: C) -> Self {
        ReplicatedEvaluator { engine, comm }
    }

    /// The rank-local engine (for stats collection).
    pub fn engine(&self) -> &LikelihoodEngine {
        &self.engine
    }

    /// Communicator statistics of this rank.
    pub fn comm_stats(&self) -> CommStats {
        self.comm.stats()
    }

    /// Consumes the evaluator, returning its parts.
    pub fn into_parts(self) -> (LikelihoodEngine, C) {
        (self.engine, self.comm)
    }
}

impl<C: Comm> Evaluator for ReplicatedEvaluator<C> {
    fn log_likelihood(&mut self, tree: &Tree, root_edge: EdgeId) -> f64 {
        let mut buf = [self.engine.log_likelihood(tree, root_edge)];
        self.comm.allreduce_sum(&mut buf);
        buf[0]
    }

    fn prepare_branch(&mut self, tree: &Tree, edge: EdgeId) {
        // Purely local: the sumtable is a per-slice object.
        self.engine.prepare_branch(tree, edge);
    }

    fn branch_derivatives(&mut self, t: f64) -> (f64, f64) {
        let (d1, d2) = self.engine.branch_derivatives(t);
        let mut buf = [d1, d2];
        self.comm.allreduce_sum(&mut buf);
        (buf[0], buf[1])
    }

    fn set_alpha(&mut self, alpha: f64) {
        // Every rank executes the same deterministic search, so the
        // argument is already identical everywhere — no broadcast.
        self.engine.set_alpha(alpha);
    }

    fn set_model(&mut self, params: GtrParams) {
        self.engine.set_model(params);
    }

    fn alpha(&self) -> f64 {
        self.engine.alpha()
    }

    fn model(&self) -> GtrParams {
        *self.engine.model()
    }
}

/// Result of a replicated run.
#[derive(Clone, Debug)]
pub struct ReplicatedOutcome {
    /// Search result from rank 0 (identical on all ranks).
    pub result: SearchResult,
    /// Per-rank final log-likelihoods (must all agree; exposed so
    /// tests can assert lockstep).
    pub rank_likelihoods: Vec<f64>,
    /// Kernel statistics merged over all ranks (under the socket
    /// transport, rank 0's only — children report likelihoods and
    /// comm/wire stats, not full kernel counters).
    pub kernel_stats: KernelStats,
    /// Communication statistics of rank 0.
    pub comm_stats: CommStats,
    /// The transport that ran the collectives (`"threads"` or a
    /// socket kind name such as `"uds"`).
    pub transport: String,
    /// Per-collective wall-time at the communicator call boundary,
    /// merged over all ranks (wire time under the socket transport;
    /// barrier/handoff time in-thread).
    pub wire: WireStats,
}

/// Configuration of a fault-tolerant replicated run
/// ([`run_replicated_ft`]).
#[derive(Clone, Debug)]
pub struct FtConfig {
    /// Ranks to start with.
    pub num_ranks: usize,
    /// On a rank failure, re-split the pattern ranges over the
    /// survivors, reload the last checkpoint (if any), and resume
    /// with fewer ranks instead of returning the error.
    pub degrade: bool,
    /// Checkpoint file: loaded (if present) before the ranks spawn,
    /// written by rank 0 after every improvement round. The ranks run
    /// in lockstep (every decision follows deterministic AllReduce
    /// results), so a single writer needs no extra synchronization.
    pub checkpoint: Option<PathBuf>,
    /// Retry policy for checkpoint writes.
    pub retry: RetryPolicy,
    /// Scripted failures (rank deaths, checkpoint write errors); zero
    /// cost when `None`.
    pub fault_plan: Option<Arc<FaultPlan>>,
}

impl FtConfig {
    /// A plain configuration: no degradation, no checkpointing, no
    /// fault injection.
    pub fn new(num_ranks: usize) -> Self {
        FtConfig {
            num_ranks,
            degrade: false,
            checkpoint: None,
            retry: RetryPolicy::default(),
            fault_plan: None,
        }
    }
}

/// Structured failure of a replicated run: every rank has been joined
/// and the most causal error is reported (a checkpoint failure beats
/// the secondary collective errors it triggers on the sibling ranks).
#[derive(Clone, Debug, PartialEq)]
pub enum ReplicatedError {
    /// A collective failed; [`CommError::failed_rank`] names the rank
    /// whose death or misuse poisoned the group.
    Comm(CommError),
    /// A rank panicked outside the collectives (the panic was caught
    /// and the group poisoned, so the siblings failed promptly).
    RankPanicked {
        /// The panicking rank.
        rank: usize,
        /// The panic message, if it was a string.
        message: String,
    },
    /// Loading, applying, or durably writing the checkpoint failed
    /// (writes only after the bounded retries were exhausted).
    Checkpoint(String),
    /// Degradation ran out of ranks: the last survivor failed too.
    NoSurvivors,
    /// The transport layer itself failed outside any collective
    /// (socket bind/accept/handshake, child spawn, or a missing final
    /// report) — only the socket transport emits this.
    Transport(String),
}

impl std::fmt::Display for ReplicatedError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplicatedError::Comm(e) => write!(f, "collective failed: {e}"),
            ReplicatedError::RankPanicked { rank, message } => {
                write!(f, "rank {rank} panicked: {message}")
            }
            ReplicatedError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
            ReplicatedError::NoSurvivors => {
                write!(f, "all ranks failed; nothing left to degrade onto")
            }
            ReplicatedError::Transport(msg) => write!(f, "transport error: {msg}"),
        }
    }
}

impl std::error::Error for ReplicatedError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReplicatedError::Comm(e) => Some(e),
            _ => None,
        }
    }
}

/// Converts a caught rank panic into its structured cause: collectives
/// panic with a [`CommError`] payload (see [`Comm::allreduce_sum`]);
/// anything else is a genuine rank panic.
fn classify_panic(rank: usize, payload: Box<dyn std::any::Any + Send>) -> ReplicatedError {
    match payload.downcast::<CommError>() {
        Ok(e) => ReplicatedError::Comm(*e),
        Err(payload) => {
            let message = if let Some(s) = payload.downcast_ref::<&str>() {
                (*s).to_string()
            } else if let Some(s) = payload.downcast_ref::<String>() {
                s.clone()
            } else {
                "non-string panic payload".to_string()
            };
            ReplicatedError::RankPanicked { rank, message }
        }
    }
}

/// Runs the full ML search under the replicated scheme with
/// `num_ranks` threads, starting from `tree`.
///
/// Kept for plain (non-fault-tolerant) callers; panics if a rank
/// fails. Use [`run_replicated_ft`] to get structured errors,
/// checkpointing, and degraded restart.
pub fn run_replicated(
    tree: &Tree,
    aln: &CompressedAlignment,
    config: EngineConfig,
    search: MlSearch,
    num_ranks: usize,
) -> ReplicatedOutcome {
    run_replicated_ft(tree, aln, config, search, &FtConfig::new(num_ranks))
        .unwrap_or_else(|e| panic!("replicated run failed: {e}"))
}

/// Fault-tolerant replicated search.
///
/// Every rank body runs under `catch_unwind`; any unwinding rank
/// poisons the communicator group *before* its stack dies, so the
/// lockstep siblings blocked in a collective return
/// [`CommError::PeerFailed`] within bounded time instead of spinning
/// forever. All ranks are then joined and the failure is classified
/// ([`ReplicatedError`]). With [`FtConfig::degrade`], a rank failure
/// triggers a restart over one fewer rank: pattern ranges are
/// re-split, the last checkpoint is reloaded, and — because the
/// search is deterministic in the rank count only through the
/// *values* of the reductions, which are sliced-sum invariant — the
/// degraded run reaches the same final log-likelihood as an
/// uninterrupted run at that rank count.
pub fn run_replicated_ft(
    tree: &Tree,
    aln: &CompressedAlignment,
    config: EngineConfig,
    search: MlSearch,
    ft: &FtConfig,
) -> Result<ReplicatedOutcome, ReplicatedError> {
    assert!(ft.num_ranks >= 1);
    let mut ranks = ft.num_ranks;
    loop {
        match attempt_replicated(tree, aln, config, search, ranks, ft) {
            Ok(out) => return Ok(out),
            Err(e) => {
                let recoverable = matches!(
                    e,
                    ReplicatedError::Comm(_) | ReplicatedError::RankPanicked { .. }
                );
                if !(ft.degrade && recoverable) {
                    return Err(e);
                }
                if ranks <= 1 {
                    return Err(ReplicatedError::NoSurvivors);
                }
                ranks -= 1;
                plf_core::metrics::counter("replicated.degrades").inc();
            }
        }
    }
}

/// One attempt at `num_ranks`: spawn, supervise, join, classify.
fn attempt_replicated(
    tree: &Tree,
    aln: &CompressedAlignment,
    config: EngineConfig,
    search: MlSearch,
    num_ranks: usize,
    ft: &FtConfig,
) -> Result<ReplicatedOutcome, ReplicatedError> {
    // Load once, before the ranks spawn: all ranks resume from the
    // *same* snapshot (a torn read per rank could de-synchronize the
    // lockstep searches).
    let resume =
        match &ft.checkpoint {
            Some(p) if p.exists() => Some(Checkpoint::load(p).map_err(|e| {
                ReplicatedError::Checkpoint(format!("loading {}: {e}", p.display()))
            })?),
            _ => None,
        };
    let ranges = crate::forkjoin::split_ranges(aln.num_patterns(), num_ranks);
    let mut group =
        ThreadCommGroup::new(num_ranks, DEFAULT_MAX_LEN).with_fault_plan(ft.fault_plan.clone());
    let resume_ref = resume.as_ref();
    let ckpt_path = ft.checkpoint.as_deref();
    let retry = ft.retry;

    type RankOk = (SearchResult, f64, KernelStats, CommStats, WireStats);
    let rank_results: Vec<Result<RankOk, ReplicatedError>> = std::thread::scope(|scope| {
        let handles: Vec<_> = ranges
            .into_iter()
            .enumerate()
            .map(|(rank, range)| {
                let comm = group.take();
                let plan = ft.fault_plan.clone();
                scope.spawn(move || {
                    let abort = comm.abort_handle();
                    let saver_abort = abort.clone();
                    let caught = catch_unwind(AssertUnwindSafe(
                        move || -> Result<RankOk, ReplicatedError> {
                            let mut local_tree = tree.clone();
                            let engine =
                                LikelihoodEngine::with_range(&local_tree, aln, config, range);
                            let mut eval = ReplicatedEvaluator::new(engine, comm);
                            let mut ckpt_attempts: u64 = 0;
                            let result = search
                                .run_resumable(&mut eval, &mut local_tree, resume_ref, |cp| {
                                    if rank != 0 {
                                        return Ok(());
                                    }
                                    let Some(path) = ckpt_path else { return Ok(()) };
                                    let saved = match &plan {
                                        Some(plan) => {
                                            cp.save_with_retry_injected(path, &retry, &mut || {
                                                ckpt_attempts += 1;
                                                plan.checkpoint_write_error(ckpt_attempts)
                                            })
                                        }
                                        None => cp.save_with_retry(path, &retry),
                                    };
                                    saved.map_err(|e| {
                                        // The writer abandons the
                                        // lockstep run, so mark the
                                        // group before the siblings
                                        // block at the next collective.
                                        saver_abort.abort();
                                        format!(
                                            "checkpoint write to {} failed: {e}",
                                            path.display()
                                        )
                                    })
                                })
                                .map_err(ReplicatedError::Checkpoint)?;
                            let final_ll = eval.log_likelihood(&local_tree, 0);
                            let comm_stats = eval.comm_stats();
                            let (engine, comm) = eval.into_parts();
                            let wire = comm.measured_wire();
                            Ok((result, final_ll, engine.stats().clone(), comm_stats, wire))
                        },
                    ));
                    match caught {
                        Ok(r) => r,
                        Err(payload) => {
                            // ANY unwinding rank poisons the group:
                            // this is what bounds the siblings'
                            // blocking time (first poisoner wins, so
                            // re-poisoning after a collective already
                            // did is a no-op).
                            abort.abort();
                            Err(classify_panic(rank, payload))
                        }
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank panics are caught inside the thread"))
            .collect()
    });

    // Classify: the checkpoint failure that poisoned the group is the
    // cause; the siblings' PeerFailed errors are its effect. Likewise
    // a non-collective panic beats the secondary collective errors.
    let mut oks: Vec<RankOk> = Vec::new();
    let mut comm_err: Option<CommError> = None;
    let mut panic_err: Option<ReplicatedError> = None;
    let mut ckpt_err: Option<ReplicatedError> = None;
    for r in rank_results {
        match r {
            Ok(t) => oks.push(t),
            Err(ReplicatedError::Comm(e)) => {
                comm_err.get_or_insert(e);
            }
            Err(e @ ReplicatedError::RankPanicked { .. }) => {
                panic_err.get_or_insert(e);
            }
            Err(e @ ReplicatedError::Checkpoint(_)) => {
                ckpt_err.get_or_insert(e);
            }
            Err(ReplicatedError::NoSurvivors | ReplicatedError::Transport(_)) => {
                unreachable!("ranks never emit NoSurvivors/Transport")
            }
        }
    }
    if let Some(e) = ckpt_err {
        return Err(e);
    }
    if let Some(e) = panic_err {
        return Err(e);
    }
    if let Some(e) = comm_err {
        return Err(ReplicatedError::Comm(e));
    }

    let mut kernel_stats = KernelStats::new();
    let mut wire = WireStats::default();
    for (_, _, s, _, w) in &oks {
        kernel_stats.merge(s);
        wire.merge(w);
    }
    let rank_likelihoods: Vec<f64> = oks.iter().map(|o| o.1).collect();
    let comm_stats = oks[0].3;
    let result = oks.into_iter().next().expect("≥1 rank").0;

    Ok(ReplicatedOutcome {
        result,
        rank_likelihoods,
        kernel_stats,
        comm_stats,
        transport: "threads".to_string(),
        wire,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_models::{DiscreteGamma, Gtr};
    use phylo_search::SearchConfig;
    use phylo_tree::build::{default_names, random_tree};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn dataset() -> (Tree, CompressedAlignment) {
        let mut rng = SmallRng::seed_from_u64(31);
        let names = default_names(8);
        let tree = random_tree(&names, 0.12, &mut rng).unwrap();
        let g = Gtr::new(GtrParams::jc69());
        let gamma = DiscreteGamma::new(1.1);
        let aln = phylo_seqgen::simulate_alignment(&tree, g.eigen(), &gamma, 900, &mut rng);
        (tree, CompressedAlignment::from_alignment(&aln))
    }

    #[test]
    fn replicated_equals_serial_search() {
        let (tree0, aln) = dataset();
        let names = tree0.tip_names().to_vec();
        let start = random_tree(&names, 0.1, &mut SmallRng::seed_from_u64(6)).unwrap();
        let cfg = EngineConfig::default();
        let search = MlSearch::new(SearchConfig {
            max_rounds: 3,
            optimize_model: false,
            ..Default::default()
        });

        let mut t_serial = start.clone();
        let mut serial = LikelihoodEngine::new(&t_serial, &aln, cfg);
        let r_serial = search.run(&mut serial, &mut t_serial);

        for ranks in [1usize, 2, 5] {
            let out = run_replicated(&start, &aln, cfg, search, ranks);
            assert!(
                (out.result.log_likelihood - r_serial.log_likelihood).abs() < 1e-7,
                "ranks={ranks}: {} vs {}",
                out.result.log_likelihood,
                r_serial.log_likelihood
            );
            let parsed = phylo_tree::newick::parse(&out.result.newick).unwrap();
            assert_eq!(parsed.rf_distance(&t_serial), 0, "ranks={ranks}");
        }
    }

    #[test]
    fn all_ranks_in_lockstep() {
        let (tree, aln) = dataset();
        let cfg = EngineConfig::default();
        let search = MlSearch::new(SearchConfig {
            max_rounds: 2,
            optimize_model: true,
            ..Default::default()
        });
        let out = run_replicated(&tree, &aln, cfg, search, 4);
        for w in out.rank_likelihoods.windows(2) {
            assert_eq!(w[0], w[1], "ranks diverged: {:?}", out.rank_likelihoods);
        }
        assert!(out.comm_stats.allreduces > 0);
    }

    #[test]
    fn scripted_rank_death_yields_structured_error_not_hang() {
        let (tree, aln) = dataset();
        let cfg = EngineConfig::default();
        let search = MlSearch::new(SearchConfig {
            max_rounds: 2,
            optimize_model: false,
            ..Default::default()
        });
        let mut ft = FtConfig::new(3);
        ft.fault_plan = Some(Arc::new(FaultPlan::rank_death(1, 5)));
        // Without --degrade the failure is terminal, but every rank is
        // joined and the cause is structured (the test completing at
        // all is the no-hang property).
        let err = run_replicated_ft(&tree, &aln, cfg, search, &ft).unwrap_err();
        assert_eq!(
            err,
            ReplicatedError::Comm(CommError::PeerFailed { rank: 1 })
        );
    }

    #[test]
    fn degrade_restarts_on_survivors_and_matches_clean_lower_rank_run() {
        let (tree, aln) = dataset();
        let cfg = EngineConfig::default();
        let search = MlSearch::new(SearchConfig {
            max_rounds: 2,
            optimize_model: false,
            ..Default::default()
        });
        let clean = run_replicated(&tree, &aln, cfg, search, 2);

        let mut ft = FtConfig::new(3);
        ft.degrade = true;
        ft.fault_plan = Some(Arc::new(FaultPlan::rank_death(2, 3)));
        let out = run_replicated_ft(&tree, &aln, cfg, search, &ft).unwrap();
        assert_eq!(out.rank_likelihoods.len(), 2, "restarted on the survivors");
        // No checkpoint: the degraded attempt restarts from scratch at
        // 2 ranks, which is *exactly* the uninterrupted 2-rank run
        // (deterministic search, slice-sum-invariant reductions).
        assert!(
            (out.result.log_likelihood - clean.result.log_likelihood).abs() <= 1e-9,
            "degraded {} vs clean 2-rank {}",
            out.result.log_likelihood,
            clean.result.log_likelihood
        );
        assert_eq!(out.result.newick, clean.result.newick);
    }

    #[test]
    fn degradation_exhaustion_reports_no_survivors() {
        let (tree, aln) = dataset();
        let cfg = EngineConfig::default();
        let search = MlSearch::new(SearchConfig {
            max_rounds: 1,
            optimize_model: false,
            ..Default::default()
        });
        // Attempt 1 (2 ranks): rank 1 dies at its 1st AllReduce (rank
        // 0 has completed none, so its own fault stays unfired).
        // Attempt 2 (1 rank): rank 0 dies at its 2nd AllReduce.
        let plan = FaultPlan::new()
            .with(crate::fault::FaultKind::RankDeath {
                rank: 1,
                allreduce: 1,
            })
            .with(crate::fault::FaultKind::RankDeath {
                rank: 0,
                allreduce: 2,
            });
        let mut ft = FtConfig::new(2);
        ft.degrade = true;
        ft.fault_plan = Some(Arc::new(plan));
        let err = run_replicated_ft(&tree, &aln, cfg, search, &ft).unwrap_err();
        assert_eq!(err, ReplicatedError::NoSurvivors);
    }

    #[test]
    fn rank0_checkpoints_and_all_ranks_resume_in_lockstep() {
        let (tree, aln) = dataset();
        let cfg = EngineConfig::default();
        let dir = std::env::temp_dir().join(format!("phylomic-repl-ckpt-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("repl.ckp");
        let _ = std::fs::remove_file(&path);

        let mut ft = FtConfig::new(3);
        ft.checkpoint = Some(path.clone());
        let short = MlSearch::new(SearchConfig {
            max_rounds: 1,
            optimize_model: false,
            ..Default::default()
        });
        run_replicated_ft(&tree, &aln, cfg, short, &ft).unwrap();
        assert!(path.exists(), "rank 0 must write the checkpoint");
        let cp = Checkpoint::load(&path).unwrap();
        assert_eq!(cp.rounds_done, 1);

        // Resume: all ranks restart from the same snapshot and stay in
        // lockstep to an improved (never regressed) optimum.
        let full = MlSearch::new(SearchConfig {
            max_rounds: 4,
            optimize_model: false,
            ..Default::default()
        });
        let out = run_replicated_ft(&tree, &aln, cfg, full, &ft).unwrap();
        for w in out.rank_likelihoods.windows(2) {
            assert_eq!(w[0], w[1], "resumed ranks diverged");
        }
        assert!(out.result.log_likelihood >= cp.log_likelihood - 1e-9);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn persistent_checkpoint_write_failure_fails_group_without_hanging() {
        let (tree, aln) = dataset();
        let cfg = EngineConfig::default();
        let dir = std::env::temp_dir().join(format!("phylomic-repl-wfail-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let search = MlSearch::new(SearchConfig {
            max_rounds: 2,
            optimize_model: false,
            ..Default::default()
        });
        let mut ft = FtConfig::new(2);
        ft.checkpoint = Some(dir.join("wfail.ckp"));
        ft.retry = RetryPolicy {
            attempts: 3,
            base_backoff: std::time::Duration::ZERO,
        };
        // Every attempt (retries included) fails: rank 0 exhausts the
        // policy, poisons the group, and the error is classified as
        // the checkpoint failure, not the secondary PeerFailed.
        ft.fault_plan = Some(Arc::new(FaultPlan::checkpoint_write_errors(1, u64::MAX)));
        let err = run_replicated_ft(&tree, &aln, cfg, search, &ft).unwrap_err();
        match err {
            ReplicatedError::Checkpoint(msg) => {
                assert!(msg.contains("injected"), "unexpected cause: {msg}")
            }
            other => panic!("expected Checkpoint error, got {other:?}"),
        }
        assert!(!dir.join("wfail.ckp").exists(), "no write ever succeeded");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn communication_is_tiny_per_operation() {
        // The ExaML signature: bytes per allreduce is 8 or 16.
        let (tree, aln) = dataset();
        let cfg = EngineConfig::default();
        let search = MlSearch::new(SearchConfig {
            max_rounds: 1,
            optimize_model: false,
            ..Default::default()
        });
        let out = run_replicated(&tree, &aln, cfg, search, 3);
        let per_op = out.comm_stats.bytes as f64 / out.comm_stats.allreduces as f64;
        assert!(per_op <= 16.0, "bytes per allreduce = {per_op}");
    }
}
