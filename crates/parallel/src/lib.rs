#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
//! Parallelization schemes for the PLF.
//!
//! The paper contrasts two schemes (§V-C/§V-D):
//!
//! * **fork-join** (RAxML-Light, PThreads): one master runs the tree
//!   search; persistent workers each own a slice of the alignment and
//!   execute kernel jobs on demand, with two synchronizations per
//!   parallel region. Implemented in [`forkjoin`].
//! * **replicated search** (ExaML, MPI): every rank runs its own
//!   consistent copy of the search algorithm over its alignment slice
//!   and communicates only where information must be exchanged — tiny
//!   `AllReduce`s after `evaluate` and the derivative kernels.
//!   Implemented in [`replicated`] over the MPI-like [`comm::Comm`]
//!   abstraction.
//!
//! Both schemes implement `phylo_search::Evaluator`, so the identical
//! search code runs under either — the property that lets the paper
//! reuse one code base across PThreads, MPI, and hybrid MPI/OpenMP
//! configurations.
//!
//! Communication statistics (AllReduce counts and payload bytes) are
//! recorded by the communicator; `micsim` prices them with the paper's
//! measured latencies (20 µs MIC–MIC over PCIe, 5 µs InfiniBand,
//! §VI-B3).

pub mod balance;
pub mod barrier;
pub mod comm;
pub mod fault;
pub mod forkjoin;
pub mod replicated;
pub mod slot;
pub(crate) mod sync;
pub mod transport;

pub use barrier::{Poisoned, SenseBarrier};
pub use comm::{AbortHandle, Comm, CommError, CommStats, SelfComm, ThreadCommGroup};
pub use fault::FaultPlan;
pub use forkjoin::ForkJoinEvaluator;
pub use replicated::{
    run_replicated, run_replicated_ft, FtConfig, ReplicatedError, ReplicatedEvaluator,
    ReplicatedOutcome,
};
pub use slot::RegionProtocol;
#[cfg(unix)]
pub use transport::{run_rank, run_sharded_ft, ChildRankArgs, Endpoint, RankSpec, SocketComm};
pub use transport::{CommTransport, TransportConfig, TransportKind, WireStats};
