//! Load balancing for partitioned alignments (§VII future work).
//!
//! With a partitioned alignment, sites of different partitions evolve
//! under different models, so a worker's chunk must track which
//! partition each site belongs to. Two classic distribution
//! strategies:
//!
//! * **block-per-partition** — assign each partition to as few workers
//!   as possible (contiguous blocks). Minimizes per-worker partition
//!   count (fewer P-matrix sets per worker) but can leave workers idle
//!   when partition sizes are skewed or fewer than the worker count.
//! * **scatter** — split every partition across all workers
//!   (RAxML-style cyclic distribution). Perfectly balances sites at
//!   the cost of every worker touching every partition — "performance
//!   will degrade due to decreasing parallel block size" (§V-A) once
//!   partitions multiply.
//!
//! [`imbalance`] quantifies the resulting wall-clock penalty as
//! `max_load / mean_load`; the `ablation_partitions` bench binary
//! sweeps both strategies through the `micsim` model.

/// Per-worker share of one partition: `(partition index, sites)`.
pub type WorkerShare = Vec<(usize, usize)>;

/// An assignment of partitioned sites to workers.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Assignment {
    /// `shares[w]` lists the partitions (and site counts) worker `w`
    /// processes.
    pub shares: Vec<WorkerShare>,
}

impl Assignment {
    /// Total sites assigned to worker `w`.
    pub fn load(&self, w: usize) -> usize {
        self.shares[w].iter().map(|&(_, s)| s).sum()
    }

    /// All per-worker loads.
    pub fn loads(&self) -> Vec<usize> {
        (0..self.shares.len()).map(|w| self.load(w)).collect()
    }

    /// Number of distinct partitions worker `w` touches.
    pub fn partitions_touched(&self, w: usize) -> usize {
        self.shares[w].iter().filter(|&&(_, s)| s > 0).count()
    }

    /// Verifies every partition's sites are fully assigned.
    pub fn validate(&self, partition_sizes: &[usize]) -> Result<(), String> {
        let mut got = vec![0usize; partition_sizes.len()];
        for share in &self.shares {
            for &(p, s) in share {
                if p >= partition_sizes.len() {
                    return Err(format!("unknown partition {p}"));
                }
                got[p] += s;
            }
        }
        for (p, (&want, &have)) in partition_sizes.iter().zip(&got).enumerate() {
            if want != have {
                return Err(format!("partition {p}: assigned {have} of {want} sites"));
            }
        }
        Ok(())
    }
}

/// Wall-clock imbalance factor of an assignment: `max load / mean
/// load`. 1.0 is perfect; the parallel compute phase stretches by this
/// factor.
pub fn imbalance(a: &Assignment) -> f64 {
    let loads = a.loads();
    let max = *loads.iter().max().unwrap_or(&0) as f64;
    let total: usize = loads.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let mean = total as f64 / loads.len() as f64;
    max / mean
}

/// Block-per-partition distribution: walk the partitions in order and
/// cut them greedily into per-worker blocks of roughly
/// `total / workers` sites. Workers may end up owning zero sites when
/// partitions are coarse.
pub fn block_per_partition(partition_sizes: &[usize], workers: usize) -> Assignment {
    assert!(workers >= 1);
    let total: usize = partition_sizes.iter().sum();
    let target = (total as f64 / workers as f64).ceil() as usize;
    let mut shares: Vec<WorkerShare> = vec![Vec::new(); workers];
    let mut w = 0usize;
    let mut w_load = 0usize;
    for (p, &size) in partition_sizes.iter().enumerate() {
        let mut left = size;
        while left > 0 {
            let room = target.saturating_sub(w_load);
            if room == 0 && w + 1 < workers {
                w += 1;
                w_load = 0;
                continue;
            }
            let take = if w + 1 == workers {
                left
            } else {
                left.min(room.max(1))
            };
            shares[w].push((p, take));
            w_load += take;
            left -= take;
        }
    }
    Assignment { shares }
}

/// Whole-partition distribution: partitions are never split; each goes
/// entirely to the currently least-loaded worker. Minimizes model-set
/// duplication (every partition lives on exactly one worker) but is at
/// the mercy of partition-size skew — the naive strategy whose
/// degradation §V-A anticipates.
pub fn whole_partitions(partition_sizes: &[usize], workers: usize) -> Assignment {
    assert!(workers >= 1);
    let mut shares: Vec<WorkerShare> = vec![Vec::new(); workers];
    let mut loads = vec![0usize; workers];
    // Largest-first improves packing, as in classic LPT scheduling.
    let mut order: Vec<usize> = (0..partition_sizes.len()).collect();
    order.sort_by_key(|&p| std::cmp::Reverse(partition_sizes[p]));
    for p in order {
        let w = (0..workers)
            .min_by_key(|&w| loads[w])
            .expect("workers >= 1");
        shares[w].push((p, partition_sizes[p]));
        loads[w] += partition_sizes[p];
    }
    Assignment { shares }
}

/// Scatter distribution: every partition is split across all workers
/// as evenly as possible (worker `w` takes the `w`-th slice).
pub fn scatter_partitions(partition_sizes: &[usize], workers: usize) -> Assignment {
    assert!(workers >= 1);
    let mut shares: Vec<WorkerShare> = vec![Vec::new(); workers];
    for (p, &size) in partition_sizes.iter().enumerate() {
        for (w, share) in shares.iter_mut().enumerate() {
            let lo = w * size / workers;
            let hi = (w + 1) * size / workers;
            if hi > lo {
                share.push((p, hi - lo));
            }
        }
    }
    Assignment { shares }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_strategies_assign_everything() {
        let sizes = [1000usize, 50, 3, 777, 120];
        for workers in [1usize, 2, 7, 16] {
            for a in [
                block_per_partition(&sizes, workers),
                scatter_partitions(&sizes, workers),
            ] {
                a.validate(&sizes).unwrap();
                assert_eq!(a.shares.len(), workers);
            }
        }
    }

    #[test]
    fn scatter_is_nearly_perfectly_balanced() {
        let sizes = [10_000usize, 5, 3_333, 42];
        let a = scatter_partitions(&sizes, 8);
        assert!(imbalance(&a) < 1.05, "imbalance {}", imbalance(&a));
    }

    #[test]
    fn block_beats_scatter_on_partitions_touched() {
        // 16 partitions, 4 workers: block keeps ~4 partitions per
        // worker; scatter touches all 16 on every worker.
        let sizes = vec![500usize; 16];
        let block = block_per_partition(&sizes, 4);
        let scatter = scatter_partitions(&sizes, 4);
        for w in 0..4 {
            assert!(block.partitions_touched(w) <= 6);
            assert_eq!(scatter.partitions_touched(w), 16);
        }
    }

    #[test]
    fn whole_partition_strategy_suffers_on_skewed_partitions() {
        // One dominant partition that cannot be split: the worker
        // owning it carries nearly everything while the rest idle.
        let sizes = [10_000usize, 1, 1, 1];
        let whole = whole_partitions(&sizes, 4);
        whole.validate(&sizes).unwrap();
        let scatter = scatter_partitions(&sizes, 4);
        assert!(imbalance(&whole) > 3.5, "imbalance {}", imbalance(&whole));
        assert!(imbalance(&scatter) < 1.01);
        // Splitting block distribution also stays balanced here.
        let block = block_per_partition(&sizes, 4);
        assert!(imbalance(&block) < 1.01, "imbalance {}", imbalance(&block));
    }

    #[test]
    fn whole_partitions_balances_when_sizes_allow() {
        let sizes = [100usize, 100, 100, 100, 100, 100, 100, 100];
        let a = whole_partitions(&sizes, 4);
        a.validate(&sizes).unwrap();
        assert!((imbalance(&a) - 1.0).abs() < 1e-12);
        for w in 0..4 {
            assert_eq!(a.partitions_touched(w), 2);
        }
    }

    #[test]
    fn single_worker_trivial() {
        let sizes = [3usize, 9];
        for a in [
            block_per_partition(&sizes, 1),
            scatter_partitions(&sizes, 1),
        ] {
            assert_eq!(a.load(0), 12);
            assert!((imbalance(&a) - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn validate_catches_mismatches() {
        let a = Assignment {
            shares: vec![vec![(0, 5)]],
        };
        assert!(a.validate(&[6]).is_err());
        assert!(a.validate(&[5]).is_ok());
        let bad = Assignment {
            shares: vec![vec![(7, 5)]],
        };
        assert!(bad.validate(&[5]).is_err());
    }
}
