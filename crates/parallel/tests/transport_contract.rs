//! Cross-transport payload-contract parity.
//!
//! Every communicator — the trivial [`SelfComm`], the in-process
//! [`ThreadCommGroup`], and the socket-backed [`SocketComm`] — must
//! enforce the *same* AllReduce payload bound and fail the same way:
//! `PayloadTooLarge` naming the offending rank at `DEFAULT_MAX_LEN + 1`
//! doubles, success at exactly `DEFAULT_MAX_LEN`, and a latched
//! (`PeerFailed`) group afterwards. If the transports ever drift, the
//! choice of `--transport` would change error behavior, which the
//! replicated search treats as impossible.

use phylo_parallel::comm::{Comm, CommError, SelfComm, ThreadCommGroup, DEFAULT_MAX_LEN};

/// Drives one communicator through the shared contract script:
/// a full-width AllReduce succeeds, one double more fails with
/// `PayloadTooLarge{len, max_len}`, and the communicator is dead
/// (latched or poisoned) afterwards.
fn assert_contract<C: Comm>(comm: &mut C, transport: &str) {
    let mut ok = vec![1.0; DEFAULT_MAX_LEN];
    comm.try_allreduce_sum(&mut ok)
        .unwrap_or_else(|e| panic!("{transport}: full-width payload rejected: {e}"));
    assert_eq!(
        ok,
        vec![comm.size() as f64; DEFAULT_MAX_LEN],
        "{transport}: wrong sum"
    );

    let mut big = vec![1.0; DEFAULT_MAX_LEN + 1];
    match comm.try_allreduce_sum(&mut big) {
        Err(CommError::PayloadTooLarge { rank, len, max_len }) => {
            assert_eq!(rank, comm.rank(), "{transport}: wrong culprit rank");
            assert_eq!(len, DEFAULT_MAX_LEN + 1, "{transport}: wrong len");
            assert_eq!(max_len, DEFAULT_MAX_LEN, "{transport}: wrong bound");
        }
        other => panic!("{transport}: expected PayloadTooLarge, got {other:?}"),
    }

    // Misuse latches the group dead: the next collective must fail
    // too, not silently resume lockstep.
    let mut after = vec![0.0; 1];
    assert!(
        comm.try_allreduce_sum(&mut after).is_err(),
        "{transport}: collective succeeded after a contract violation"
    );
}

#[test]
fn self_comm_honors_the_shared_contract() {
    assert_contract(&mut SelfComm::new(), "self");
}

#[test]
fn thread_comm_honors_the_shared_contract() {
    // Single-rank group: the oversize check fires before any barrier,
    // so the script runs without peers...
    let mut group = ThreadCommGroup::new(1, DEFAULT_MAX_LEN);
    assert_contract(&mut group.take(), "threads(1)");

    // ...and with a peer present the errors are identical, while the
    // innocent rank sees the culprit named in its own failure.
    let mut group = ThreadCommGroup::new(2, DEFAULT_MAX_LEN);
    let mut offender = group.take();
    let mut innocent = group.take();
    let peer = std::thread::spawn(move || {
        let mut buf = vec![1.0; DEFAULT_MAX_LEN];
        // First collective matches the offender's successful one.
        innocent.try_allreduce_sum(&mut buf).unwrap();
        // The second blocks until the offender poisons the group.
        let err = innocent.try_allreduce_sum(&mut buf).unwrap_err();
        assert_eq!(err, CommError::PeerFailed { rank: 0 });
    });
    assert_contract(&mut offender, "threads(2)");
    peer.join().unwrap();
}

#[cfg(unix)]
mod socket {
    use super::*;
    use phylo_parallel::transport::frame::{self, Frame, Kind};
    use phylo_parallel::transport::{Endpoint, SocketComm, TransportConfig};
    use std::os::unix::net::UnixListener;

    /// A minimal single-client hub speaking just enough protocol for
    /// the contract script: ack the handshake with the group size and
    /// payload bound, echo AllReduce payloads back as `Sum` (a 1-rank
    /// sum is the identity), and go quiet after a `Misuse` frame the
    /// way the real hub poisons the group.
    fn one_rank_echo_hub(listener: UnixListener) -> std::thread::JoinHandle<()> {
        std::thread::spawn(move || {
            let (mut s, _) = listener.accept().expect("accept");
            let hello = frame::read_frame(&mut s).expect("hello");
            assert_eq!(hello.kind, Kind::Hello);
            let mut ack = Frame::control(Kind::HelloAck, 0, 0);
            ack.payload.extend_from_slice(&1u32.to_le_bytes());
            ack.payload
                .extend_from_slice(&(DEFAULT_MAX_LEN as u32).to_le_bytes());
            frame::write_frame(&mut s, &ack).expect("ack");
            loop {
                let f = match frame::read_frame(&mut s) {
                    Ok(f) => f,
                    Err(_) => return, // client hung up
                };
                match f.kind {
                    Kind::AllReduce => {
                        let reply = Frame {
                            kind: Kind::Sum,
                            rank: 0,
                            seq: f.seq,
                            payload: f.payload,
                        };
                        frame::write_frame(&mut s, &reply).expect("sum");
                    }
                    Kind::Misuse => return, // real hub poisons; we just stop
                    other => panic!("unexpected frame {other:?}"),
                }
            }
        })
    }

    #[test]
    fn socket_comm_honors_the_shared_contract() {
        let dir = std::env::temp_dir().join(format!("phylomic-contract-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("hub.sock");
        let _ = std::fs::remove_file(&path);
        let listener = UnixListener::bind(&path).unwrap();
        let hub = one_rank_echo_hub(listener);

        let tcfg = TransportConfig {
            read_timeout: std::time::Duration::from_secs(2),
            write_timeout: std::time::Duration::from_secs(2),
            ..TransportConfig::default()
        };
        let mut comm =
            SocketComm::connect(&Endpoint::Uds(path.clone()), 0, 1, &tcfg, None).unwrap();
        assert_contract(&mut comm, "uds");

        hub.join().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }
}
