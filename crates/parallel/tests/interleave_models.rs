//! Model-checking the production synchronization protocols.
//!
//! These tests compile the crate's barrier / region-protocol / comm
//! code against the `interleave` shims (`--features interleave`) and
//! explore every bounded interleaving and weak-memory outcome. They
//! are the machine-checked version of the SAFETY comments in
//! `slot.rs` and `comm.rs`.
//!
//! Run locally with:
//!
//! ```text
//! cargo test -p phylo-parallel --no-default-features \
//!     --features interleave --test interleave_models
//! ```
//!
//! The `seed-ordering-bug` feature weakens the barrier's sense-flip
//! store to `Relaxed`; the `seeded_*` test proves the checker catches
//! the resulting stale read (CI runs both configurations).
#![cfg(feature = "interleave")]

use interleave::sync::atomic::{AtomicU64, Ordering};
use interleave::Checker;
use phylo_parallel::barrier::BarrierToken;
use phylo_parallel::{RegionProtocol, SenseBarrier};
use std::sync::Arc;

/// The barrier phase-counter protocol: every participant increments a
/// relaxed counter *before* its barrier arrival; after the barrier,
/// every participant must observe all increments. This is exactly the
/// visibility guarantee fork-join reply collection relies on.
fn barrier_publishes_counter() {
    const THREADS: u64 = 2;
    let barrier = Arc::new(SenseBarrier::new(THREADS as usize));
    let counter = Arc::new(AtomicU64::new(0));
    let (b2, c2) = (Arc::clone(&barrier), Arc::clone(&counter));
    let t = interleave::thread::spawn(move || {
        let mut token = BarrierToken::new();
        c2.fetch_add(1, Ordering::Relaxed);
        b2.wait(&mut token).unwrap();
        assert_eq!(
            c2.load(Ordering::Relaxed),
            THREADS,
            "stale read after barrier"
        );
    });
    let mut token = BarrierToken::new();
    counter.fetch_add(1, Ordering::Relaxed);
    barrier.wait(&mut token).unwrap();
    assert_eq!(
        counter.load(Ordering::Relaxed),
        THREADS,
        "stale read after barrier"
    );
    t.join().unwrap();
}

/// With the production `Release` sense flip, no schedule can read a
/// stale counter after the barrier.
#[cfg(not(feature = "seed-ordering-bug"))]
#[test]
fn barrier_phase_counter_passes_exhaustively() {
    let report = Checker::new().check(barrier_publishes_counter);
    assert!(!report.truncated, "barrier model must be fully explored");
    assert!(report.iterations > 1, "exploration should branch");
}

/// With the seeded `Relaxed` sense flip, the checker must find the
/// schedule where a waiter leaves the barrier without happens-before
/// and reads the counter stale.
#[cfg(feature = "seed-ordering-bug")]
#[test]
fn seeded_relaxed_sense_flip_is_caught() {
    let v = Checker::new()
        .find_violation(barrier_publishes_counter)
        .expect("relaxed sense flip must allow a stale post-barrier read");
    assert!(
        v.message.contains("stale read after barrier"),
        "unexpected violation: {v}"
    );
}

/// Two sequential barrier phases: the sense reversal itself (reusing
/// the barrier back-to-back with alternating sense) is explored.
#[cfg(not(feature = "seed-ordering-bug"))]
#[test]
fn barrier_sense_reversal_two_phases() {
    let report = Checker::new().check(|| {
        let barrier = Arc::new(SenseBarrier::new(2));
        let counter = Arc::new(AtomicU64::new(0));
        let (b2, c2) = (Arc::clone(&barrier), Arc::clone(&counter));
        let t = interleave::thread::spawn(move || {
            let mut token = BarrierToken::new();
            for phase in 1u64..=2 {
                c2.fetch_add(1, Ordering::Relaxed);
                b2.wait(&mut token).unwrap();
                assert_eq!(c2.load(Ordering::Relaxed), 2 * phase, "phase {phase}");
                b2.wait(&mut token).unwrap();
            }
        });
        let mut token = BarrierToken::new();
        for phase in 1u64..=2 {
            counter.fetch_add(1, Ordering::Relaxed);
            barrier.wait(&mut token).unwrap();
            assert_eq!(counter.load(Ordering::Relaxed), 2 * phase, "phase {phase}");
            barrier.wait(&mut token).unwrap();
        }
        t.join().unwrap();
    });
    assert!(!report.truncated);
}

/// The full fork-join region protocol — job broadcast, per-worker
/// reply deposit, drain — on the production [`RegionProtocol`] with
/// small payloads: one master, two workers, one work region, then a
/// shutdown region. Any window violation (torn job read, reply race,
/// stale drain) fails the model.
#[cfg(not(feature = "seed-ordering-bug"))]
#[test]
fn region_protocol_broadcast_and_reply_collection() {
    const SHUTDOWN: u64 = u64::MAX;
    let report = Checker::new().check(|| {
        const WORKERS: usize = 2;
        let proto = Arc::new(RegionProtocol::<u64, u64>::new(WORKERS, 0));
        let handles: Vec<_> = (0..WORKERS)
            .map(|idx| {
                let proto = Arc::clone(&proto);
                interleave::thread::spawn(move || {
                    let mut token = BarrierToken::new();
                    loop {
                        proto.fork(&mut token).unwrap();
                        let job = proto.read_job(|j| *j);
                        if job == SHUTDOWN {
                            return;
                        }
                        proto.write_reply(idx, job * 10 + idx as u64);
                        proto.join(&mut token).unwrap();
                    }
                })
            })
            .collect();
        let mut token = BarrierToken::new();
        proto.publish_job(7);
        proto.fork(&mut token).unwrap();
        proto.join(&mut token).unwrap();
        let replies = proto.drain_replies();
        assert_eq!(replies, vec![70, 71], "lost or torn reply");
        proto.publish_job(SHUTDOWN);
        proto.fork(&mut token).unwrap();
        for h in handles {
            h.join().unwrap();
        }
    });
    assert!(report.iterations > 1, "exploration should branch");
}

/// The poison protocol is lost-wakeup-free: a dying participant
/// poisons the barrier and never arrives; the surviving waiter —
/// whether it blocked before or after the poison store — returns
/// `Err(Poisoned)` naming the dead rank in *every* explored
/// interleaving, never spinning forever. Deliberately ungated (runs
/// in both CI feature configurations): the poison word is read with
/// its own `Acquire` load at entry and on every spin iteration,
/// independent of the sense-flip store the `seed-ordering-bug`
/// feature weakens.
#[test]
fn barrier_poison_is_lost_wakeup_free() {
    let report = Checker::new().check(|| {
        let barrier = Arc::new(SenseBarrier::new(2));
        let b2 = Arc::clone(&barrier);
        let dying = interleave::thread::spawn(move || {
            // Rank 1 dies without ever arriving at the barrier.
            b2.poison(1);
        });
        let mut token = BarrierToken::new();
        let err = barrier
            .wait(&mut token)
            .expect_err("the only peer died; completing would be a lost wakeup");
        assert_eq!(err.rank, 1, "wrong poisoner reported");
        dying.join().unwrap();
    });
    assert!(!report.truncated, "poison model must be fully explored");
    assert!(report.iterations > 1, "exploration should branch");
}

/// The comm slot exchange: two ranks allreduce one double each; both
/// must compute the exact rank-ordered sum. Exercises SlotCell's
/// with/with_mut windows under all bounded interleavings.
#[cfg(not(feature = "seed-ordering-bug"))]
#[test]
fn comm_allreduce_slot_exchange() {
    use phylo_parallel::{Comm, ThreadCommGroup};
    let report = Checker::new().check(|| {
        let mut group = ThreadCommGroup::new(2, 1);
        let mut c0 = group.take();
        let mut c1 = group.take();
        let t = interleave::thread::spawn(move || {
            let mut buf = [2.0];
            c1.allreduce_sum(&mut buf);
            assert_eq!(buf[0], 3.0, "rank 1 sum wrong");
        });
        let mut buf = [1.0];
        c0.allreduce_sum(&mut buf);
        assert_eq!(buf[0], 3.0, "rank 0 sum wrong");
        t.join().unwrap();
    });
    assert!(report.iterations > 1, "exploration should branch");
}
