//! Stress test for the thread communicator's allreduce: many ranks,
//! many rounds, randomized payloads — and *bit-exact* determinism.
//!
//! The replicated-search scheme relies on every rank computing an
//! identical reduction result (rank-ordered summation), so the
//! assertion here is `to_bits` equality against an independently
//! computed expectation, not approximate equality. CI runs this in
//! `--release` so the barrier/slot fast paths are exercised with real
//! optimization (and without the model checker's serialization).

use phylo_parallel::{Comm, ThreadCommGroup};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

const RANKS: usize = 8;
const ROUNDS: usize = 400;
const MAX_LEN: usize = 16;

/// Rank `rank`'s contribution in `round`: derived from the seed only,
/// so every rank can reconstruct everyone's payload independently.
fn payload(rank: usize, round: usize, len: usize) -> Vec<f64> {
    let mut rng = SmallRng::seed_from_u64(0x5eed ^ ((rank as u64) << 32) ^ round as u64);
    (0..len)
        .map(|_| (rng.random::<f64>() - 0.5) * 1.0e3)
        .collect()
}

/// Shared per-round payload length in `1..=MAX_LEN`.
fn round_len(round: usize) -> usize {
    let mut rng = SmallRng::seed_from_u64(0x1e4 ^ round as u64);
    rng.random_range(1..=MAX_LEN)
}

#[test]
fn allreduce_is_bit_exact_under_stress() {
    let mut group = ThreadCommGroup::new(RANKS, MAX_LEN);
    let handles: Vec<_> = (0..RANKS)
        .map(|_| group.take())
        .map(|mut comm| {
            std::thread::spawn(move || {
                let rank = comm.rank();
                for round in 0..ROUNDS {
                    let len = round_len(round);
                    let mut buf = payload(rank, round, len);
                    comm.allreduce_sum(&mut buf);
                    // Reference: rank-ordered left-to-right summation,
                    // exactly the order allreduce_sum guarantees.
                    let mut expected = vec![0.0f64; len];
                    for r in 0..RANKS {
                        for (e, v) in expected.iter_mut().zip(payload(r, round, len)) {
                            *e += v;
                        }
                    }
                    for (i, (got, want)) in buf.iter().zip(&expected).enumerate() {
                        assert_eq!(
                            got.to_bits(),
                            want.to_bits(),
                            "rank {rank} round {round} element {i}: {got:e} != {want:e}"
                        );
                    }
                }
                comm.stats()
            })
        })
        .collect();
    for h in handles {
        let stats = h.join().unwrap();
        assert_eq!(stats.allreduces, ROUNDS as u64);
    }
    assert_eq!(group.total_allreduces(), ROUNDS as u64);
}
