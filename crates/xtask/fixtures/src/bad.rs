//! Lint fixture: deliberately violates every file-level rule. Never
//! compiled — `fixtures/` is skipped by the workspace walk and linted
//! explicitly by tests/lint_fixtures.rs, which pins the line numbers.
use std::sync::atomic::{AtomicBool, Ordering};

pub struct Racy(std::cell::UnsafeCell<u64>);

unsafe impl Sync for Racy {}

pub fn publish(flag: &AtomicBool) {
    flag.store(true, Ordering::Relaxed);
}

pub fn peek(p: *const u8) -> u8 {
    unsafe { *p }
}
