//! Fixture crate root: contains unsafe code but is missing
//! `#![deny(unsafe_op_in_unsafe_fn)]` — rule 4's failure case.

pub fn read_first(p: *const u8) -> u8 {
    // SAFETY: fixture only — the comment is present so this file
    // trips nothing but the missing crate-root deny attribute.
    unsafe { *p }
}
