//! Workspace automation tasks (`cargo xtask <task>`).
//!
//! `cargo xtask lint` drives the `plf-analyzer` crate (token-tree
//! static analysis: hot-path purity, FP-determinism, unsafe-invariant
//! rules and the unsafe inventory drift gate). The audit files live
//! next to this crate: `relaxed_allowlist.txt`,
//! `unsafe_impl_registry.txt`, `purity_allowlist.txt`,
//! `fpdet_allowlist.txt` and `unsafe_inventory.json`.
//!
//! [`scan`] is the PR 3 line scanner, retained for its comment/string
//! stripping used by scan-parity tests.
#![deny(unsafe_op_in_unsafe_fn)]

pub mod scan;
