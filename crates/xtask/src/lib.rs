//! Workspace automation tasks (`cargo xtask <task>`).
//!
//! Currently one task: [`lint`](crate::lint), the source-level
//! concurrency/unsafe invariant checker. See `crates/xtask/src/lint.rs`
//! for the rule definitions and `relaxed_allowlist.txt` /
//! `unsafe_impl_registry.txt` for the audit trails.

pub mod lint;
pub mod scan;
