//! A minimal Rust source scanner for the lint rules.
//!
//! Splits each line into its *code* text and its *comment* text,
//! dropping the contents of string/char literals, so rules never
//! false-positive on words like `unsafe` inside docs or strings — and
//! so the `// SAFETY:` rule can look only at real comments. This is a
//! deliberately small state machine, not a parser: it understands
//! line comments, nested block comments, plain/byte strings, raw
//! strings (`r#"…"#`), char literals, and lifetimes, which is all the
//! precision the source-level rules need.

/// One source line, split by the scanner.
#[derive(Default, Debug)]
pub struct ScannedLine {
    /// The line's code text with literal contents blanked.
    pub code: String,
    /// The line's comment text (line comments and any block-comment
    /// portion crossing this line).
    pub comment: String,
}

enum State {
    Code,
    LineComment,
    BlockComment(u32),
    Str,
    RawStr(usize),
    CharLit,
}

/// Returns `Some(hashes)` when `chars[i..]` starts a raw string
/// (`r"`, `r#"`, `br#"` …); `hashes` counts the `#`s.
fn raw_string_start(chars: &[char], mut i: usize) -> Option<usize> {
    if chars.get(i) == Some(&'b') {
        i += 1;
    }
    if chars.get(i) != Some(&'r') {
        return None;
    }
    i += 1;
    let mut hashes = 0;
    while chars.get(i) == Some(&'#') {
        hashes += 1;
        i += 1;
    }
    (chars.get(i) == Some(&'"')).then_some(hashes)
}

fn is_ident(c: char) -> bool {
    c.is_alphanumeric() || c == '_'
}

/// Scans a whole source file into per-line code/comment splits.
pub fn scan(src: &str) -> Vec<ScannedLine> {
    let chars: Vec<char> = src.chars().collect();
    let mut lines = Vec::new();
    let mut cur = ScannedLine::default();
    let mut st = State::Code;
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            lines.push(std::mem::take(&mut cur));
            if matches!(st, State::LineComment) {
                st = State::Code;
            }
            i += 1;
            continue;
        }
        match st {
            State::Code => {
                let prev_ident = i > 0 && is_ident(chars[i - 1]);
                if c == '/' && chars.get(i + 1) == Some(&'/') {
                    st = State::LineComment;
                    i += 2;
                } else if c == '/' && chars.get(i + 1) == Some(&'*') {
                    st = State::BlockComment(1);
                    i += 2;
                } else if !prev_ident && raw_string_start(&chars, i).is_some() {
                    let hashes = raw_string_start(&chars, i).unwrap();
                    // Skip prefix up to and including the opening quote.
                    while chars.get(i) != Some(&'"') {
                        i += 1;
                    }
                    i += 1;
                    cur.code.push('"');
                    st = State::RawStr(hashes);
                } else if c == '"' {
                    cur.code.push('"');
                    st = State::Str;
                    i += 1;
                } else if c == 'b' && chars.get(i + 1) == Some(&'"') && !prev_ident {
                    cur.code.push('"');
                    st = State::Str;
                    i += 2;
                } else if c == '\'' || (c == 'b' && chars.get(i + 1) == Some(&'\'') && !prev_ident)
                {
                    let q = if c == 'b' { i + 1 } else { i };
                    // Distinguish a char literal from a lifetime: a
                    // literal either escapes or closes two chars on.
                    let escaped = chars.get(q + 1) == Some(&'\\');
                    let closes = chars.get(q + 2) == Some(&'\'') && chars.get(q + 1) != Some(&'\'');
                    if escaped || closes {
                        cur.code.push('\'');
                        st = State::CharLit;
                        i = q + 1;
                    } else {
                        cur.code.push(c);
                        i += 1;
                    }
                } else {
                    cur.code.push(c);
                    i += 1;
                }
            }
            State::LineComment => {
                cur.comment.push(c);
                i += 1;
            }
            State::BlockComment(depth) => {
                if c == '/' && chars.get(i + 1) == Some(&'*') {
                    st = State::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && chars.get(i + 1) == Some(&'/') {
                    st = if depth == 1 {
                        State::Code
                    } else {
                        State::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    cur.comment.push(c);
                    i += 1;
                }
            }
            State::Str => {
                if c == '\\' {
                    i += 2;
                } else if c == '"' {
                    cur.code.push('"');
                    st = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
            State::RawStr(hashes) => {
                if c == '"' && chars[i + 1..].iter().take_while(|&&h| h == '#').count() >= hashes {
                    cur.code.push('"');
                    st = State::Code;
                    i += 1 + hashes;
                } else {
                    i += 1;
                }
            }
            State::CharLit => {
                if c == '\\' {
                    i += 2;
                } else if c == '\'' {
                    cur.code.push('\'');
                    st = State::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    if !cur.code.is_empty() || !cur.comment.is_empty() {
        lines.push(cur);
    }
    lines
}

/// Whether `code` contains `tok` as a standalone word (not part of a
/// longer identifier such as `unsafe_op_in_unsafe_fn`).
pub fn has_token(code: &str, tok: &str) -> bool {
    let bytes = code.as_bytes();
    let mut start = 0;
    while let Some(pos) = code[start..].find(tok) {
        let p = start + pos;
        let before_ok = p == 0 || !is_ident(bytes[p - 1] as char);
        let after = p + tok.len();
        let after_ok = after >= bytes.len() || !is_ident(bytes[after] as char);
        if before_ok && after_ok {
            return true;
        }
        start = after;
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn comments_are_separated_from_code() {
        let lines = scan("let x = 1; // unsafe in a comment\n");
        assert_eq!(lines[0].code.trim(), "let x = 1;");
        assert!(lines[0].comment.contains("unsafe in a comment"));
        assert!(!has_token(&lines[0].code, "unsafe"));
    }

    #[test]
    fn string_contents_are_blanked() {
        let lines = scan("let s = \"unsafe { Ordering::Relaxed }\";\n");
        assert!(!lines[0].code.contains("unsafe"));
        assert!(!lines[0].code.contains("Relaxed"));
        assert!(lines[0].code.contains("let s = \"\";"));
    }

    #[test]
    fn raw_strings_and_escapes() {
        let lines = scan(r##"let s = r#"unsafe " quote"# ; let c = '\''; let t = "a\"unsafe";"##);
        assert!(!lines[0].code.contains("unsafe"));
        assert!(lines[0].code.contains("let c ="));
    }

    #[test]
    fn lifetimes_are_not_char_literals() {
        let lines = scan("fn f<'a>(x: &'a str) -> &'a str { x } // unsafe\n");
        assert!(lines[0].code.contains("<'a>"));
        assert!(lines[0].comment.contains("unsafe"));
    }

    #[test]
    fn block_comments_nest_and_span_lines() {
        let src = "a /* one /* two */ still */ b\n/* open\nunsafe inside\n*/ code\n";
        let lines = scan(src);
        assert_eq!(lines[0].code.replace(' ', ""), "ab");
        assert!(lines[2].comment.contains("unsafe inside"));
        assert_eq!(lines[3].code.trim(), "code");
    }

    #[test]
    fn token_boundaries() {
        assert!(has_token("unsafe {", "unsafe"));
        assert!(!has_token("deny(unsafe_op_in_unsafe_fn)", "unsafe"));
        assert!(has_token("x.store(1, Ordering::Relaxed)", "Relaxed"));
        assert!(!has_token("RelaxedPlus", "Relaxed"));
    }
}
