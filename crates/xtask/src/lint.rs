//! Source-level concurrency/unsafe invariant lints.
//!
//! Four rules, all enforced over `crates/` and `shims/`:
//!
//! 1. **SAFETY comments** — every `unsafe` site (block, fn, impl) must
//!    have a comment containing `SAFETY` on the same line or within
//!    [`SAFETY_WINDOW`] lines above it.
//! 2. **No relaxed publishing** — a mutating atomic op
//!    (`store`/`swap`/`fetch_*`/`compare_exchange`) with
//!    `Ordering::Relaxed` on the same line is flagged unless the site
//!    is listed in `crates/xtask/relaxed_allowlist.txt`. Applies to
//!    non-test code (`src/`, above the first `#[cfg(test)]`): tests
//!    and model fixtures legitimately use relaxed ops.
//! 3. **Audited `unsafe impl Send/Sync`** — every such impl must be
//!    registered in `crates/xtask/unsafe_impl_registry.txt`; adding a
//!    line there is the audit trail.
//! 4. **`#![deny(unsafe_op_in_unsafe_fn)]`** — required in the crate
//!    root of every crate whose `src/` contains unsafe code.
//!
//! The rules are line-oriented heuristics by design (no rustc, no syn
//! — the environment is offline): precise enough for this codebase's
//! formatting, and the allowlists make intent reviewable in-diff.

use crate::scan::{has_token, scan, ScannedLine};
use std::fmt;
use std::path::{Path, PathBuf};

/// How many lines above an `unsafe` site a `SAFETY` comment may sit.
pub const SAFETY_WINDOW: usize = 10;

const MUTATING_OPS: &[&str] = &[
    ".store(",
    ".swap(",
    ".fetch_add(",
    ".fetch_sub(",
    ".fetch_or(",
    ".fetch_and(",
    ".fetch_xor(",
    ".fetch_min(",
    ".fetch_max(",
    ".compare_exchange",
];

/// One lint violation, pointing at a source line.
#[derive(Debug)]
pub struct Diagnostic {
    /// Workspace-relative path (forward slashes).
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// What rule was violated and how to fix it.
    pub message: String,
}

impl fmt::Display for Diagnostic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}: {}", self.path, self.line, self.message)
    }
}

/// Allowlist / registry entries: a path substring plus a required
/// line substring (rule 2) or type name (rule 3).
pub struct Rules {
    /// Audited relaxed mutating-op sites.
    pub relaxed_allowlist: Vec<(String, String)>,
    /// Audited `unsafe impl Send/Sync` types.
    pub unsafe_impl_registry: Vec<(String, String)>,
}

fn parse_list(text: &str) -> Vec<(String, String)> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .filter_map(|l| {
            let mut it = l.split_whitespace();
            Some((it.next()?.to_string(), it.next()?.to_string()))
        })
        .collect()
}

/// Loads both audit files from `crates/xtask/` under `root`. Missing
/// files yield empty lists (everything is then flagged).
pub fn load_rules(root: &Path) -> Rules {
    let read = |name: &str| {
        std::fs::read_to_string(root.join("crates/xtask").join(name)).unwrap_or_default()
    };
    Rules {
        relaxed_allowlist: parse_list(&read("relaxed_allowlist.txt")),
        unsafe_impl_registry: parse_list(&read("unsafe_impl_registry.txt")),
    }
}

fn listed(list: &[(String, String)], path: &str, hay: &str) -> bool {
    list.iter()
        .any(|(p, s)| path.contains(p.as_str()) && hay.contains(s.as_str()))
}

/// Extracts the type name following `for` in an `unsafe impl … for T`
/// window, generics stripped.
fn impl_target(window: &str) -> Option<String> {
    let pos = window.find(" for ")?;
    let rest = window[pos + 5..].trim_start();
    let name: String = rest
        .chars()
        .take_while(|c| c.is_alphanumeric() || *c == '_')
        .collect();
    (!name.is_empty()).then_some(name)
}

/// Runs rules 1–3 on one scanned file.
pub fn lint_file(path: &str, lines: &[ScannedLine], rules: &Rules) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let in_src = path.contains("/src/");
    let first_test_line = lines
        .iter()
        .position(|l| l.code.contains("#[cfg(test)]"))
        .unwrap_or(lines.len());
    for (n, line) in lines.iter().enumerate() {
        // Rule 1: SAFETY comment near every unsafe site.
        if has_token(&line.code, "unsafe") {
            let lo = n.saturating_sub(SAFETY_WINDOW);
            let documented = lines[lo..=n].iter().any(|l| l.comment.contains("SAFETY"));
            if !documented {
                out.push(Diagnostic {
                    path: path.to_string(),
                    line: n + 1,
                    message: format!(
                        "`unsafe` without a `// SAFETY:` comment on the same line or \
                         within {SAFETY_WINDOW} lines above"
                    ),
                });
            }
        }
        // Rule 2: no Relaxed on publishing/mutating atomic ops.
        if in_src
            && n < first_test_line
            && has_token(&line.code, "Relaxed")
            && MUTATING_OPS.iter().any(|op| line.code.contains(op))
            && !listed(&rules.relaxed_allowlist, path, &line.code)
        {
            out.push(Diagnostic {
                path: path.to_string(),
                line: n + 1,
                message: "mutating atomic op with Ordering::Relaxed; use a stronger \
                          ordering or audit the site in crates/xtask/relaxed_allowlist.txt"
                    .to_string(),
            });
        }
        // Rule 3: unsafe impl Send/Sync must be registered.
        if line.code.contains("unsafe impl") {
            let window: String = lines[n..(n + 3).min(lines.len())]
                .iter()
                .map(|l| l.code.as_str())
                .collect::<Vec<_>>()
                .join(" ");
            let is_marker = has_token(&window, "Send") || has_token(&window, "Sync");
            if is_marker {
                if let Some(ty) = impl_target(&window) {
                    if !listed(&rules.unsafe_impl_registry, path, &ty) {
                        out.push(Diagnostic {
                            path: path.to_string(),
                            line: n + 1,
                            message: format!(
                                "`unsafe impl Send/Sync for {ty}` is not in the audited \
                                 registry crates/xtask/unsafe_impl_registry.txt"
                            ),
                        });
                    }
                }
            }
        }
    }
    out
}

/// Rule 4 for one crate directory: if any file under `src/` has
/// unsafe code, the crate root must carry the deny attribute.
pub fn lint_crate_root(crate_dir: &Path, rel: &str) -> Vec<Diagnostic> {
    let src = crate_dir.join("src");
    let mut files = Vec::new();
    collect_rs(&src, &mut files);
    let has_unsafe = files.iter().any(|f| {
        std::fs::read_to_string(f)
            .map(|text| scan(&text).iter().any(|l| has_token(&l.code, "unsafe")))
            .unwrap_or(false)
    });
    if !has_unsafe {
        return Vec::new();
    }
    let root_file = ["lib.rs", "main.rs"]
        .iter()
        .map(|f| src.join(f))
        .find(|p| p.is_file());
    // Check scanned *code*, not raw text: the attribute quoted in a
    // doc comment must not satisfy the rule.
    let denied = root_file.as_ref().is_some_and(|p| {
        std::fs::read_to_string(p)
            .map(|text| {
                scan(&text)
                    .iter()
                    .any(|l| l.code.contains("#![deny(unsafe_op_in_unsafe_fn)]"))
            })
            .unwrap_or(false)
    });
    if denied {
        Vec::new()
    } else {
        vec![Diagnostic {
            path: format!("{rel}/src/lib.rs"),
            line: 1,
            message: "crate contains unsafe code but its root lacks \
                      #![deny(unsafe_op_in_unsafe_fn)]"
                .to_string(),
        }]
    }
}

/// Recursively collects `.rs` files, skipping `target/` and any
/// directory named `fixtures` (lint test corpora live there).
pub fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    let mut entries: Vec<_> = entries.flatten().map(|e| e.path()).collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
            if name != "target" && name != "fixtures" {
                collect_rs(&path, out);
            }
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .components()
        .map(|c| c.as_os_str().to_string_lossy())
        .collect::<Vec<_>>()
        .join("/")
}

/// Lints an explicit file list (used by the fixture tests).
pub fn lint_paths(root: &Path, files: &[PathBuf], rules: &Rules) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    for file in files {
        let Ok(text) = std::fs::read_to_string(file) else {
            continue;
        };
        out.extend(lint_file(&rel_path(root, file), &scan(&text), rules));
    }
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    out
}

/// Runs all four rules over the whole workspace.
pub fn lint_workspace(root: &Path) -> Vec<Diagnostic> {
    let rules = load_rules(root);
    let mut files = Vec::new();
    for top in ["crates", "shims"] {
        collect_rs(&root.join(top), &mut files);
    }
    let mut out = lint_paths(root, &files, &rules);
    for top in ["crates", "shims"] {
        let Ok(entries) = std::fs::read_dir(root.join(top)) else {
            continue;
        };
        let mut dirs: Vec<_> = entries.flatten().map(|e| e.path()).collect();
        dirs.sort();
        for dir in dirs.into_iter().filter(|d| d.is_dir()) {
            let rel = rel_path(root, &dir);
            out.extend(lint_crate_root(&dir, &rel));
        }
    }
    out.sort_by(|a, b| (&a.path, a.line).cmp(&(&b.path, b.line)));
    out
}
