//! `cargo xtask` — workspace automation entry point.

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // crates/xtask -> workspace root, independent of the caller's cwd.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let root = match args.get(1).map(String::as_str) {
                Some("--root") => match args.get(2) {
                    Some(p) => PathBuf::from(p),
                    None => {
                        eprintln!("--root requires a path");
                        return ExitCode::from(2);
                    }
                },
                Some(other) => {
                    eprintln!("unknown lint option: {other}");
                    return ExitCode::from(2);
                }
                None => workspace_root(),
            };
            let diags = xtask::lint::lint_workspace(&root);
            for d in &diags {
                eprintln!("{d}");
            }
            if diags.is_empty() {
                println!("xtask lint: clean");
                ExitCode::SUCCESS
            } else {
                eprintln!("xtask lint: {} violation(s)", diags.len());
                ExitCode::FAILURE
            }
        }
        _ => {
            eprintln!("usage: cargo xtask lint [--root <workspace>]");
            ExitCode::from(2)
        }
    }
}
