//! `cargo xtask` — workspace automation entry point.
#![deny(unsafe_op_in_unsafe_fn)]

use std::path::PathBuf;
use std::process::ExitCode;

fn workspace_root() -> PathBuf {
    // crates/xtask -> workspace root, independent of the caller's cwd.
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(&args[1..]),
        Some("bench-trend") => bench_trend(&args[1..]),
        _ => {
            eprintln!(
                "usage: cargo xtask lint [--root <workspace>] [--json <path>] \
                 [--update-inventory] [--cfg-feature <name>]...\n       \
                 cargo xtask bench-trend [--gate] [--write] [--root <workspace>]"
            );
            ExitCode::from(2)
        }
    }
}

/// `cargo xtask lint`: run the plf-analyzer rule families over the
/// workspace. `--json <path>` additionally writes the findings as a
/// JSON artifact; `--update-inventory` regenerates
/// `crates/xtask/unsafe_inventory.json` from the current census
/// (after review!); `--cfg-feature <name>` analyzes items gated
/// behind `#[cfg(feature = "<name>")]` — CI uses this to prove the
/// analyzer catches seeded violations.
fn lint(args: &[String]) -> ExitCode {
    let mut root = workspace_root();
    let mut json_path: Option<PathBuf> = None;
    let mut update_inventory = false;
    let mut features: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            "--json" => match it.next() {
                Some(p) => json_path = Some(PathBuf::from(p)),
                None => {
                    eprintln!("--json requires a path");
                    return ExitCode::from(2);
                }
            },
            "--update-inventory" => update_inventory = true,
            "--cfg-feature" => match it.next() {
                Some(f) => features.push(f.clone()),
                None => {
                    eprintln!("--cfg-feature requires a feature name");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown lint option: {other}");
                return ExitCode::from(2);
            }
        }
    }
    let cfg = plf_analyzer::Config {
        root: root.clone(),
        features,
    };
    let started = std::time::Instant::now();
    let mut analysis = match plf_analyzer::analyze_workspace(&cfg) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("xtask lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    if update_inventory {
        let path = root.join("crates/xtask/unsafe_inventory.json");
        if let Err(e) = std::fs::write(&path, &analysis.inventory) {
            eprintln!("xtask lint: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", path.display());
        // Drift findings against the stale file no longer apply.
        analysis.findings.retain(|f| f.rule != "inventory");
    }
    for f in &analysis.findings {
        eprintln!("{f}");
    }
    if let Some(path) = json_path {
        let json = plf_analyzer::report::render_json(&analysis.findings);
        if let Err(e) = std::fs::write(&path, json) {
            eprintln!("xtask lint: cannot write {}: {e}", path.display());
            return ExitCode::FAILURE;
        }
        println!("wrote {}", path.display());
    }
    println!(
        "xtask lint: {} file(s), {} fn(s), {} cfg-skipped item(s) analyzed in {:.0?}",
        analysis.files,
        analysis.fns,
        analysis.skipped_cfg_items,
        started.elapsed()
    );
    if analysis.findings.is_empty() {
        println!("xtask lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("xtask lint: {} finding(s)", analysis.findings.len());
        ExitCode::FAILURE
    }
}

/// `cargo xtask bench-trend`: aggregate the committed `BENCH_*.json`
/// into a trend table. `--write` refreshes `BENCH_TREND.json` and
/// `BENCH_TREND.md` in the workspace root; `--gate` fails (exit 1)
/// when the newest file regresses any (kernel, backend, size) cell
/// more than 10% past the best prior PR, unless the cell is waived in
/// `crates/xtask/trend_waivers.txt`.
fn bench_trend(args: &[String]) -> ExitCode {
    let mut gate = false;
    let mut write = false;
    let mut root = workspace_root();
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--gate" => gate = true,
            "--write" => write = true,
            "--root" => match it.next() {
                Some(p) => root = PathBuf::from(p),
                None => {
                    eprintln!("--root requires a path");
                    return ExitCode::from(2);
                }
            },
            other => {
                eprintln!("unknown bench-trend option: {other}");
                return ExitCode::from(2);
            }
        }
    }
    let files = match plf_prof::trend::scan_dir(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("bench-trend: {e}");
            return ExitCode::FAILURE;
        }
    };
    if files.is_empty() {
        eprintln!("bench-trend: no BENCH_*.json in {}", root.display());
        return ExitCode::FAILURE;
    }
    println!(
        "bench-trend: {} file(s): {}",
        files.len(),
        files
            .iter()
            .map(|f| f.name.as_str())
            .collect::<Vec<_>>()
            .join(", ")
    );
    if write {
        let json_path = root.join("BENCH_TREND.json");
        let md_path = root.join("BENCH_TREND.md");
        for (path, content) in [
            (&json_path, plf_prof::trend::render_trend_json(&files)),
            (&md_path, plf_prof::trend::render_trend_markdown(&files)),
        ] {
            if let Err(e) = std::fs::write(path, content) {
                eprintln!("bench-trend: cannot write {}: {e}", path.display());
                return ExitCode::FAILURE;
            }
            println!("wrote {}", path.display());
        }
    } else {
        print!("{}", plf_prof::trend::render_trend_markdown(&files));
    }
    if gate {
        let waiver_path = root.join("crates/xtask/trend_waivers.txt");
        let waivers = match std::fs::read_to_string(&waiver_path) {
            Ok(text) => match plf_prof::trend::parse_waivers(&text) {
                Ok(w) => w,
                Err(e) => {
                    eprintln!("bench-trend: {}: {e}", waiver_path.display());
                    return ExitCode::FAILURE;
                }
            },
            Err(_) => Vec::new(),
        };
        let report = plf_prof::trend::gate(&files, plf_prof::trend::DEFAULT_TOLERANCE, &waivers);
        print!("{}", report.render());
        if report.failed() {
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
