//! End-to-end lint tests driven through `plf_analyzer`, replacing the
//! PR 3 regex-scanner fixture tests:
//!
//! * the real workspace must lint clean (allowlists and the unsafe
//!   inventory are current);
//! * the committed fixture crate (`crates/xtask/fixtures/`) must trip
//!   the safety rules at the pinned sites;
//! * enabling `seed-hotpath-bug` must surface the seeded kernel
//!   violations — the tripwire CI relies on.

use plf_analyzer::graph::CallGraph;
use plf_analyzer::item::extract;
use plf_analyzer::rules::{safety, Allowlists};
use std::path::{Path, PathBuf};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("xtask lives two levels below the workspace root")
        .to_path_buf()
}

#[test]
fn workspace_lints_clean() {
    let cfg = plf_analyzer::Config {
        root: workspace_root(),
        features: Vec::new(),
    };
    let analysis = plf_analyzer::analyze_workspace(&cfg).expect("analyze");
    assert!(
        analysis.findings.is_empty(),
        "workspace must lint clean; run `cargo xtask lint` to see and audit:\n{}",
        analysis
            .findings
            .iter()
            .map(|f| f.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    // Sanity: the walk really covered the workspace.
    assert!(
        analysis.files > 100,
        "only {} files analyzed",
        analysis.files
    );
    assert!(analysis.fns > 1000, "only {} fns extracted", analysis.fns);
}

#[test]
fn seeded_feature_surfaces_kernel_violations() {
    let cfg = plf_analyzer::Config {
        root: workspace_root(),
        features: vec!["seed-hotpath-bug".into()],
    };
    let analysis = plf_analyzer::analyze_workspace(&cfg).expect("analyze");
    let keys: Vec<&str> = analysis.findings.iter().map(|f| f.key.as_str()).collect();
    assert!(
        keys.contains(&"derivative_core:panic"),
        "seeded purity violation not caught: {keys:?}"
    );
    assert!(
        keys.contains(&"derivative_core:mul_add"),
        "seeded raw-mul_add (libm-collapse shape) not caught: {keys:?}"
    );
    for f in &analysis.findings {
        assert!(
            f.file.contains("kernels/vector.rs"),
            "seeding must not perturb other files: {f}"
        );
    }
}

/// Lints one committed fixture file under its real path with the
/// workspace allowlists (which must not cover fixtures).
fn lint_fixture(name: &str) -> Vec<plf_analyzer::report::Finding> {
    let root = workspace_root();
    let rel = format!("crates/xtask/fixtures/src/{name}");
    let src = std::fs::read_to_string(root.join(&rel)).expect("fixture");
    // Analyze under a crate-root-shaped synthetic path so rule 4
    // applies to lib.rs-like fixtures.
    let as_path = format!("crates/fixture/src/{name}");
    let mut items = extract(&as_path, &src, &[]);
    let fns = std::mem::take(&mut items.fns);
    let graph = CallGraph::build(&fns);
    let allow = Allowlists::load(&root);
    safety::run(std::slice::from_ref(&items), &fns, &graph, &allow)
}

#[test]
fn committed_bad_fixture_trips_safety_rules_at_pinned_lines() {
    let findings = lint_fixture("bad.rs");
    let get = |key: &str| {
        findings
            .iter()
            .find(|f| f.key == key)
            .unwrap_or_else(|| panic!("missing {key}: {findings:?}"))
    };
    // unsafe impl Sync for Racy — line 8, both unregistered and
    // missing its justification comment.
    assert_eq!(get("Racy").line, 8);
    assert_eq!(get("impl:safety_comment").line, 8);
    // flag.store(..., Relaxed) — line 11.
    assert_eq!(get("flag.store").line, 11);
    // bare unsafe block in peek — line 15.
    assert_eq!(get("block:safety_comment").line, 15);
}

#[test]
fn committed_lib_fixture_trips_only_the_missing_deny_attr() {
    let findings = lint_fixture("lib.rs");
    assert_eq!(findings.len(), 1, "{findings:?}");
    assert_eq!(findings[0].key, "unsafe_op_in_unsafe_fn");
}
