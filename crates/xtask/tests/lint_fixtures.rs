//! The lint must (a) flag the fixture corpus with exact file:line
//! diagnostics, (b) respect the allowlist/registry audit files, and
//! (c) pass clean on the real workspace — which also makes `cargo
//! test` itself an enforcement point for the invariants.

use std::path::{Path, PathBuf};
use xtask::lint::{lint_crate_root, lint_paths, lint_workspace, Rules};

fn fixtures_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures")
}

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .unwrap()
        .parent()
        .unwrap()
        .to_path_buf()
}

fn empty_rules() -> Rules {
    Rules {
        relaxed_allowlist: Vec::new(),
        unsafe_impl_registry: Vec::new(),
    }
}

#[test]
fn fixture_violations_carry_exact_file_and_line() {
    let diags = lint_paths(
        &workspace_root(),
        &[fixtures_dir().join("src/bad.rs")],
        &empty_rules(),
    );
    let rendered: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
    let expect = [
        ("bad.rs:8: ", "SAFETY"),             // unsafe impl, unannotated
        ("bad.rs:8: ", "audited"),            // unsafe impl, unregistered
        ("bad.rs:11: ", "Ordering::Relaxed"), // relaxed publishing store
        ("bad.rs:15: ", "SAFETY"),            // unsafe block, unannotated
    ];
    for (loc, frag) in expect {
        assert!(
            rendered.iter().any(|d| d.contains(loc) && d.contains(frag)),
            "missing diagnostic {loc}…{frag} in {rendered:#?}"
        );
    }
    assert_eq!(diags.len(), 4, "{rendered:#?}");
}

#[test]
fn allowlist_and_registry_suppress_audited_sites() {
    let rules = Rules {
        relaxed_allowlist: vec![("bad.rs".into(), ".store(".into())],
        unsafe_impl_registry: vec![("bad.rs".into(), "Racy".into())],
    };
    let diags = lint_paths(
        &workspace_root(),
        &[fixtures_dir().join("src/bad.rs")],
        &rules,
    );
    let rendered: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
    assert!(
        !rendered.iter().any(|d| d.contains("Relaxed")),
        "allowlisted store still flagged: {rendered:#?}"
    );
    assert!(
        !rendered.iter().any(|d| d.contains("audited")),
        "registered impl still flagged: {rendered:#?}"
    );
    // The SAFETY-comment rule has no allowlist: both sites remain.
    assert_eq!(diags.len(), 2, "{rendered:#?}");
}

#[test]
fn missing_crate_root_deny_is_reported() {
    let diags = lint_crate_root(&fixtures_dir(), "crates/xtask/fixtures");
    assert_eq!(diags.len(), 1, "{diags:#?}");
    assert!(diags[0].message.contains("unsafe_op_in_unsafe_fn"));
    assert!(diags[0].path.ends_with("src/lib.rs"));
}

#[test]
fn workspace_is_clean() {
    let diags = lint_workspace(&workspace_root());
    let rendered: Vec<String> = diags.iter().map(|d| d.to_string()).collect();
    assert!(
        diags.is_empty(),
        "workspace lint violations:\n{}",
        rendered.join("\n")
    );
}
