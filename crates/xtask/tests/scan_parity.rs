//! Edge-case tests for the xtask line scanner, pinning parity with
//! the `plf-analyzer` lexer: both front ends must agree on what is
//! code and what is comment, or a SAFETY-comment audit could pass
//! under one tool and fail under the other.

use plf_analyzer::lex::{lex, Tok};
use std::collections::BTreeSet;
use xtask::scan::{has_token, scan};

/// Lines (1-based) whose *code* carries the identifier, per the xtask
/// scanner.
fn scan_code_lines(src: &str, ident: &str) -> BTreeSet<u32> {
    scan(src)
        .iter()
        .enumerate()
        .filter(|(_, l)| has_token(&l.code, ident))
        .map(|(i, _)| i as u32 + 1)
        .collect()
}

/// Lines whose code carries the identifier, per the analyzer lexer.
fn lex_code_lines(src: &str, ident: &str) -> BTreeSet<u32> {
    lex(src)
        .tokens
        .iter()
        .filter(|t| matches!(&t.tok, Tok::Ident(s) if s == ident))
        .map(|t| t.line)
        .collect()
}

/// Lines whose *comment* text contains the needle, per each front end.
fn comment_lines(src: &str, needle: &str) -> (BTreeSet<u32>, BTreeSet<u32>) {
    let from_scan = scan(src)
        .iter()
        .enumerate()
        .filter(|(_, l)| l.comment.contains(needle))
        .map(|(i, _)| i as u32 + 1)
        .collect();
    let from_lex = lex(src)
        .comments
        .iter()
        .filter(|(_, text)| text.contains(needle))
        .map(|(line, _)| *line)
        .collect();
    (from_scan, from_lex)
}

fn assert_parity(src: &str) {
    assert_eq!(
        scan_code_lines(src, "unsafe"),
        lex_code_lines(src, "unsafe"),
        "code-token disagreement on:\n{src}"
    );
    let (s, l) = comment_lines(src, "SAFETY");
    assert_eq!(s, l, "comment disagreement on:\n{src}");
}

#[test]
fn byte_raw_strings_hide_their_contents() {
    let src = "let b = br#\"unsafe { /* SAFETY */ }\"#;\nunsafe { op() } // SAFETY: real\n";
    // Neither front end may see the `unsafe` inside the byte raw
    // string, and both must see the real one on line 2.
    assert_eq!(scan_code_lines(src, "unsafe"), BTreeSet::from([2]));
    assert_eq!(lex_code_lines(src, "unsafe"), BTreeSet::from([2]));
    let (s, l) = comment_lines(src, "SAFETY");
    assert_eq!(s, BTreeSet::from([2]));
    assert_eq!(l, BTreeSet::from([2]));
}

#[test]
fn nested_block_comments_spanning_lines_stay_comments() {
    let src = "fn a() {}\n/* outer SAFETY\n   /* inner, still comment: unsafe */\n   back at depth one */\nunsafe fn b() {}\n";
    // The `unsafe` on line 3 is inside a doubly-nested block comment;
    // only line 5's is code.
    assert_eq!(scan_code_lines(src, "unsafe"), BTreeSet::from([5]));
    assert_eq!(lex_code_lines(src, "unsafe"), BTreeSet::from([5]));
    // The comment text on line 2 is visible to both.
    let (s, l) = comment_lines(src, "SAFETY");
    assert!(s.contains(&2), "{s:?}");
    assert!(l.contains(&2), "{l:?}");
    assert_parity(src);
}

#[test]
fn unbalanced_nesting_does_not_resurface_early() {
    // Two opens, one close: everything after stays comment.
    let src = "/* one /* two */ still comment\nunsafe\n";
    assert_eq!(scan_code_lines(src, "unsafe"), BTreeSet::new());
    assert_eq!(lex_code_lines(src, "unsafe"), BTreeSet::new());
}

#[test]
fn lifetimes_labels_and_char_literals_disambiguate() {
    let src = "fn f<'a>(x: &'a str) -> char {\n    let q = 'q';\n    let esc = '\\'';\n    'outer: loop { break 'outer; }\n    q\n}\n// SAFETY: none needed\n";
    // A char literal containing a comment-opener must not start a
    // comment; a lifetime must not start a char literal that would
    // swallow the rest of the line.
    let tricky = "let c = '/'; let s = '*'; unsafe { op::<'static>() } // SAFETY: here\n";
    for src in [src, tricky] {
        assert_parity(src);
    }
    assert_eq!(scan_code_lines(tricky, "unsafe"), BTreeSet::from([1]));
    assert_eq!(lex_code_lines(tricky, "unsafe"), BTreeSet::from([1]));
}

#[test]
fn parity_on_real_workspace_sources() {
    // The strongest parity statement: both front ends agree on every
    // line of the real workspace — the same sources the SAFETY audit
    // runs over.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(|p| p.parent())
        .expect("workspace root")
        .to_path_buf();
    let mut checked = 0usize;
    for path in plf_analyzer::collect_rs_files(&root) {
        let src = std::fs::read_to_string(&path).expect("read");
        assert_eq!(
            scan_code_lines(&src, "unsafe"),
            lex_code_lines(&src, "unsafe"),
            "front ends disagree on {}",
            path.display()
        );
        let (s, l) = comment_lines(&src, "SAFETY");
        assert_eq!(s, l, "front ends disagree on {}", path.display());
        checked += 1;
    }
    assert!(checked > 100, "only {checked} files checked");
}
