//! Shimmed atomics, mirroring `std::sync::atomic`.
//!
//! Every atomic is *dual-mode*: constructed inside a model run it
//! registers a tracked location with the executing [`Exec`] and every
//! operation becomes a scheduling + memory-model event; constructed
//! outside a model it delegates straight to the real `std` atomic, so
//! a `--features interleave` build behaves identically to a normal
//! build everywhere except inside `interleave::model` closures.

pub mod atomic {
    use crate::exec::{current, Exec};
    pub use std::sync::atomic::Ordering;
    use std::sync::Arc;

    /// Backing representation shared by all shimmed atomic types: the
    /// value is widened to `u64`.
    enum Core {
        Real(std::sync::atomic::AtomicU64),
        Model { exec: Arc<Exec>, loc: usize },
    }

    impl Core {
        fn new(init: u64) -> Self {
            match current::get() {
                Some((exec, tid)) => {
                    let loc = exec.new_location(tid, init);
                    Core::Model { exec, loc }
                }
                None => Core::Real(std::sync::atomic::AtomicU64::new(init)),
            }
        }

        fn model_tid(&self) -> usize {
            current::get()
                .expect("interleave atomic created in a model but used outside one")
                .1
        }

        fn load(&self, ord: Ordering) -> u64 {
            match self {
                Core::Real(a) => a.load(ord),
                Core::Model { exec, loc } => exec.atomic_load(self.model_tid(), *loc, ord),
            }
        }

        fn store(&self, val: u64, ord: Ordering) {
            match self {
                Core::Real(a) => a.store(val, ord),
                Core::Model { exec, loc } => exec.atomic_store(self.model_tid(), *loc, val, ord),
            }
        }

        fn swap(&self, val: u64, ord: Ordering) -> u64 {
            match self {
                Core::Real(a) => a.swap(val, ord),
                Core::Model { exec, loc } => exec.atomic_rmw(self.model_tid(), *loc, ord, |_| val),
            }
        }

        fn compare_exchange(
            &self,
            current_val: u64,
            new: u64,
            success: Ordering,
            failure: Ordering,
        ) -> Result<u64, u64> {
            match self {
                Core::Real(a) => a.compare_exchange(current_val, new, success, failure),
                Core::Model { exec, loc } => {
                    exec.atomic_cas(self.model_tid(), *loc, current_val, new, success, failure)
                }
            }
        }
    }

    macro_rules! fetch_op {
        ($name:ident, $prim:ty, $apply:expr, $real:ident) => {
            #[doc = concat!("Shimmed `", stringify!($name), "`.")]
            pub fn $name(&self, val: $prim, ord: Ordering) -> $prim {
                match &self.core {
                    Core::Real(a) => {
                        // Operate on the widened u64; for the unsigned
                        // primitives used here the truncated result is
                        // identical to the native op.
                        a.$real(val as u64, ord) as $prim
                    }
                    Core::Model { exec, loc } => {
                        let tid = self.core.model_tid();
                        let apply = $apply;
                        exec.atomic_rmw(tid, *loc, ord, |old| apply(old as $prim, val) as u64)
                            as $prim
                    }
                }
            }
        };
    }

    macro_rules! atomic_int {
        ($name:ident, $prim:ty, $doc:literal) => {
            #[doc = $doc]
            pub struct $name {
                core: Core,
            }

            impl $name {
                /// Creates the atomic, registering it with the active
                /// model run if one exists on this thread.
                pub fn new(v: $prim) -> Self {
                    Self {
                        core: Core::new(v as u64),
                    }
                }

                /// Shimmed `load`.
                pub fn load(&self, ord: Ordering) -> $prim {
                    self.core.load(ord) as $prim
                }

                /// Shimmed `store`.
                pub fn store(&self, v: $prim, ord: Ordering) {
                    self.core.store(v as u64, ord)
                }

                /// Shimmed `swap`.
                pub fn swap(&self, v: $prim, ord: Ordering) -> $prim {
                    self.core.swap(v as u64, ord) as $prim
                }

                /// Shimmed `compare_exchange`.
                pub fn compare_exchange(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    self.core
                        .compare_exchange(current as u64, new as u64, success, failure)
                        .map(|v| v as $prim)
                        .map_err(|v| v as $prim)
                }

                /// Shimmed `compare_exchange_weak` (never spuriously
                /// fails in the model — a sound strengthening).
                pub fn compare_exchange_weak(
                    &self,
                    current: $prim,
                    new: $prim,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$prim, $prim> {
                    self.compare_exchange(current, new, success, failure)
                }

                fetch_op!(
                    fetch_add,
                    $prim,
                    |a: $prim, b: $prim| a.wrapping_add(b),
                    fetch_add
                );
                fetch_op!(
                    fetch_sub,
                    $prim,
                    |a: $prim, b: $prim| a.wrapping_sub(b),
                    fetch_sub
                );
                fetch_op!(fetch_or, $prim, |a: $prim, b: $prim| a | b, fetch_or);
                fetch_op!(fetch_and, $prim, |a: $prim, b: $prim| a & b, fetch_and);
            }

            impl Default for $name {
                fn default() -> Self {
                    Self::new(0)
                }
            }

            impl std::fmt::Debug for $name {
                fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
                    write!(f, concat!(stringify!($name), "(..)"))
                }
            }
        };
    }

    atomic_int!(
        AtomicU64,
        u64,
        "Dual-mode stand-in for `std::sync::atomic::AtomicU64`."
    );
    atomic_int!(
        AtomicUsize,
        usize,
        "Dual-mode stand-in for `std::sync::atomic::AtomicUsize`."
    );
    atomic_int!(
        AtomicU32,
        u32,
        "Dual-mode stand-in for `std::sync::atomic::AtomicU32`."
    );

    /// Dual-mode stand-in for `std::sync::atomic::AtomicBool`.
    pub struct AtomicBool {
        core: Core,
    }

    impl AtomicBool {
        /// Creates the atomic, registering it with the active model
        /// run if one exists on this thread.
        pub fn new(v: bool) -> Self {
            Self {
                core: Core::new(v as u64),
            }
        }

        /// Shimmed `load`.
        pub fn load(&self, ord: Ordering) -> bool {
            self.core.load(ord) != 0
        }

        /// Shimmed `store`.
        pub fn store(&self, v: bool, ord: Ordering) {
            self.core.store(v as u64, ord)
        }

        /// Shimmed `swap`.
        pub fn swap(&self, v: bool, ord: Ordering) -> bool {
            self.core.swap(v as u64, ord) != 0
        }

        /// Shimmed `compare_exchange`.
        pub fn compare_exchange(
            &self,
            current: bool,
            new: bool,
            success: Ordering,
            failure: Ordering,
        ) -> Result<bool, bool> {
            self.core
                .compare_exchange(current as u64, new as u64, success, failure)
                .map(|v| v != 0)
                .map_err(|v| v != 0)
        }
    }

    impl Default for AtomicBool {
        fn default() -> Self {
            Self::new(false)
        }
    }

    impl std::fmt::Debug for AtomicBool {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            write!(f, "AtomicBool(..)")
        }
    }
}
