//! Shimmed `std::thread`: spawn/join that the scheduler controls.
//!
//! Model threads are real OS threads; the shim registers them with the
//! executing [`Exec`] so every shimmed operation they perform becomes
//! a scheduling point. A thread that panics with a real payload (e.g.
//! a failed assertion in a model closure) records the panic as the
//! run's failure; the [`SilentUnwind`] sentinel used to tear down
//! threads after a failure is swallowed.

use crate::exec::{current, Exec, SilentUnwind};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Extracts a human-readable message from a panic payload.
pub(crate) fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Dual-mode stand-in for `std::thread::JoinHandle`.
pub struct JoinHandle<T> {
    inner: std::thread::JoinHandle<Option<T>>,
    model: Option<(Arc<Exec>, usize)>,
}

impl<T> JoinHandle<T> {
    /// Shimmed `join`. In a model run this is a blocking scheduler
    /// operation establishing the child-to-parent happens-before edge.
    pub fn join(self) -> std::thread::Result<T> {
        match self.model {
            None => self
                .inner
                .join()
                .map(|v| v.expect("non-model thread always returns a value")),
            Some((exec, child)) => {
                let (_, me) =
                    current::get().expect("joining a model thread from outside the model");
                exec.join_thread(me, child);
                match self.inner.join() {
                    Ok(Some(v)) => Ok(v),
                    // The child unwound after a recorded failure; keep
                    // tearing this thread down the same way.
                    Ok(None) => std::panic::panic_any(SilentUnwind),
                    Err(e) => Err(e),
                }
            }
        }
    }
}

/// Dual-mode stand-in for `std::thread::spawn`.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    match current::get() {
        None => JoinHandle {
            inner: std::thread::spawn(move || Some(f())),
            model: None,
        },
        Some((exec, me)) => {
            let child = exec.spawn_thread(me);
            let exec2 = Arc::clone(&exec);
            let inner = std::thread::spawn(move || {
                let _restore = current::set(Arc::clone(&exec2), child);
                match catch_unwind(AssertUnwindSafe(f)) {
                    Ok(v) => {
                        exec2.finish_thread(child, None);
                        Some(v)
                    }
                    Err(payload) => {
                        if payload.is::<SilentUnwind>() {
                            exec2.finish_thread(child, None);
                        } else {
                            let msg = panic_message(payload.as_ref());
                            exec2.finish_thread(
                                child,
                                Some(format!("thread t{child} panicked: {msg}")),
                            );
                        }
                        None
                    }
                }
            });
            JoinHandle {
                inner,
                model: Some((exec, child)),
            }
        }
    }
}

/// Shimmed `yield_now`: a pure scheduling point in a model run.
pub fn yield_now() {
    match current::get() {
        Some((exec, tid)) => exec.yield_now(tid),
        None => std::thread::yield_now(),
    }
}
