//! `interleave` — an in-tree, loom-style concurrency model checker.
//!
//! The workspace's lock-free runtime (sense-reversing barriers, the
//! fork-join job slot, the comm slot exchange, the span-ring seqlock)
//! is exactly the kind of code where "the tests pass" proves nothing:
//! the bug lives in an interleaving the test machine never schedules,
//! or in a memory-ordering reordering x86 never performs. This crate
//! runs a closure under a model scheduler that *exhaustively* explores
//! bounded thread interleavings and weak-memory outcomes, failing the
//! run on data races, torn reads, lost wakeups, deadlocks, and any
//! assertion the closure itself makes.
//!
//! Offline build note: crates.io is unreachable in this environment,
//! so this is a from-scratch implementation following the workspace's
//! `shims/` pattern, not a vendored loom.
//!
//! # Usage
//!
//! Write the code under test against the shimmed types —
//! [`sync::atomic`], [`cell::UnsafeCell`], [`thread`], [`hint`] —
//! (production crates re-export either these or `std` behind their
//! `interleave` cargo feature), then:
//!
//! ```
//! use interleave::sync::atomic::{AtomicU64, Ordering};
//! use std::sync::Arc;
//!
//! interleave::model(|| {
//!     let c = Arc::new(AtomicU64::new(0));
//!     let c2 = Arc::clone(&c);
//!     let t = interleave::thread::spawn(move || {
//!         c2.fetch_add(1, Ordering::Relaxed);
//!     });
//!     c.fetch_add(1, Ordering::Relaxed);
//!     t.join().unwrap();
//!     assert_eq!(c.load(Ordering::SeqCst), 2);
//! });
//! ```
//!
//! The closure is re-executed once per explored schedule; it must be
//! deterministic apart from the interleaving (no wall-clock, no OS
//! randomness), which the checker enforces by failing on replay
//! divergence.
//!
//! See `DESIGN.md` (§ interleave) for the scheduler and the
//! memory-model approximation, including known deviations from C11.

#![deny(unsafe_op_in_unsafe_fn)]

pub mod cell;
mod exec;
pub mod fixtures;
pub mod hint;
pub mod sync;
pub mod thread;
mod vclock;

use exec::Exec;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};

/// Outcome of a completed (violation-free) exploration.
#[derive(Debug, Clone)]
pub struct Report {
    /// Number of distinct schedules executed.
    pub iterations: u64,
    /// True if exploration stopped at `max_iterations` with branches
    /// left unexplored — the result is then a bounded search, not a
    /// proof over the configured bounds.
    pub truncated: bool,
}

/// A concrete failing execution.
#[derive(Debug, Clone)]
pub struct Violation {
    /// What went wrong (race/torn read/lost wakeup/deadlock/panic).
    pub message: String,
    /// The choice sequence reproducing the failure (branch taken at
    /// every recorded choice point, in order).
    pub schedule: Vec<usize>,
    /// Which iteration of the exploration hit it (1-based).
    pub iteration: u64,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "model violation (iteration {}): {}\n  reproducing schedule: {:?}",
            self.iteration, self.message, self.schedule
        )
    }
}

/// Configurable exploration: bounds on preemptions, schedules, and
/// per-schedule steps.
#[derive(Debug, Clone)]
pub struct Checker {
    preemption_bound: usize,
    max_iterations: u64,
    max_steps: u64,
}

impl Default for Checker {
    fn default() -> Self {
        Checker {
            preemption_bound: 2,
            max_iterations: 50_000,
            max_steps: 50_000,
        }
    }
}

impl Checker {
    /// A checker with the default bounds (preemption bound 2, 50k
    /// schedules, 50k steps per schedule).
    pub fn new() -> Self {
        Self::default()
    }

    /// Caps involuntary context switches per schedule. Most real
    /// concurrency bugs need ≤ 2 preemptions (CHESS heuristic); raising
    /// this widens coverage at a steep state-space cost.
    pub fn preemption_bound(mut self, n: usize) -> Self {
        self.preemption_bound = n;
        self
    }

    /// Caps the number of schedules explored.
    pub fn max_iterations(mut self, n: u64) -> Self {
        self.max_iterations = n;
        self
    }

    /// Caps shimmed operations per schedule (livelock backstop).
    pub fn max_steps(mut self, n: u64) -> Self {
        self.max_steps = n;
        self
    }

    /// Explores `f`; panics with the violation report if any schedule
    /// fails, otherwise returns the exploration [`Report`].
    pub fn check<F>(&self, f: F) -> Report
    where
        F: Fn() + Send + Sync + 'static,
    {
        match self.explore(f) {
            Ok(report) => report,
            Err(v) => panic!("{v}"),
        }
    }

    /// Explores `f`; returns the first [`Violation`] found, or `None`
    /// if every explored schedule passed.
    pub fn find_violation<F>(&self, f: F) -> Option<Violation>
    where
        F: Fn() + Send + Sync + 'static,
    {
        self.explore(f).err()
    }

    fn explore<F>(&self, f: F) -> Result<Report, Violation>
    where
        F: Fn() + Send + Sync + 'static,
    {
        install_model_panic_hook();
        let f = Arc::new(f);
        let mut prefix: Vec<usize> = Vec::new();
        let mut iterations: u64 = 0;
        loop {
            iterations += 1;
            let exec = Arc::new(Exec::new(
                prefix.clone(),
                self.preemption_bound,
                self.max_steps,
            ));
            let root_exec = Arc::clone(&exec);
            let root_f = Arc::clone(&f);
            let root = std::thread::spawn(move || {
                let _restore = exec::current::set(Arc::clone(&root_exec), 0);
                match catch_unwind(AssertUnwindSafe(|| root_f())) {
                    Ok(()) => root_exec.finish_thread(0, None),
                    Err(payload) => {
                        if payload.is::<exec::SilentUnwind>() {
                            root_exec.finish_thread(0, None);
                        } else {
                            let msg = thread::panic_message(payload.as_ref());
                            root_exec.finish_thread(0, Some(format!("t0 panicked: {msg}")));
                        }
                    }
                }
            });
            let (failure, options, chosen) = exec.wait_done();
            let _ = root.join();
            if let Some(message) = failure {
                return Err(Violation {
                    message,
                    schedule: chosen,
                    iteration: iterations,
                });
            }
            // DFS advance: bump the deepest choice with branches left.
            let mut advance_at = None;
            for i in (0..chosen.len()).rev() {
                if chosen[i] + 1 < options[i] {
                    advance_at = Some(i);
                    break;
                }
            }
            match advance_at {
                None => {
                    return Ok(Report {
                        iterations,
                        truncated: false,
                    })
                }
                Some(i) => {
                    prefix.clear();
                    prefix.extend_from_slice(&chosen[..i]);
                    prefix.push(chosen[i] + 1);
                }
            }
            if iterations >= self.max_iterations {
                return Ok(Report {
                    iterations,
                    truncated: true,
                });
            }
        }
    }
}

/// Explores `f` with the default bounds; panics on any violation.
pub fn model<F>(f: F) -> Report
where
    F: Fn() + Send + Sync + 'static,
{
    Checker::new().check(f)
}

/// Silences panic output from threads inside a model run: exploration
/// deliberately drives closures into failing asserts, and the failure
/// is reported once through [`Violation`], not via stderr spam.
/// Installed once per process; chains to the previous hook for
/// non-model panics.
fn install_model_panic_hook() {
    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            if exec::current::in_model() {
                return;
            }
            prev(info);
        }));
    });
}
