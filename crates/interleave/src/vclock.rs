//! Vector clocks: the happens-before backbone of the checker.
//!
//! Every model thread owns a clock; every shimmed operation ticks the
//! executing thread's own component. Release stores snapshot the
//! writer's clock as a *message clock*; acquire loads that read such a
//! store join it into the reader's clock. Two events are
//! happens-before ordered iff the earlier event's clock component (at
//! its own thread index) is contained in the later event's clock.

/// A grow-on-demand vector clock over model-thread ids.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub(crate) struct VClock(Vec<u32>);

impl VClock {
    /// Advances this thread's own component by one.
    pub(crate) fn tick(&mut self, tid: usize) {
        if self.0.len() <= tid {
            self.0.resize(tid + 1, 0);
        }
        self.0[tid] += 1;
    }

    /// Pointwise maximum (acquiring a message clock).
    pub(crate) fn join(&mut self, other: &VClock) {
        if self.0.len() < other.0.len() {
            self.0.resize(other.0.len(), 0);
        }
        for (a, &b) in self.0.iter_mut().zip(&other.0) {
            *a = (*a).max(b);
        }
    }

    /// Component for `tid` (0 if never ticked).
    pub(crate) fn get(&self, tid: usize) -> u32 {
        self.0.get(tid).copied().unwrap_or(0)
    }

    /// Whether an event stamped `self` by thread `tid` happens-before
    /// (or equals) the point described by `other`.
    pub(crate) fn ordered_before(&self, tid: usize, other: &VClock) -> bool {
        self.get(tid) <= other.get(tid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_join_get() {
        let mut a = VClock::default();
        a.tick(0);
        a.tick(0);
        a.tick(2);
        assert_eq!(a.get(0), 2);
        assert_eq!(a.get(1), 0);
        assert_eq!(a.get(2), 1);
        let mut b = VClock::default();
        b.tick(1);
        b.join(&a);
        assert_eq!(b.get(0), 2);
        assert_eq!(b.get(1), 1);
        assert_eq!(b.get(2), 1);
    }

    #[test]
    fn ordering_check() {
        let mut w = VClock::default();
        w.tick(0); // event E by thread 0 at clock {0:1}
        let stamp = w.clone();
        let mut r = VClock::default();
        r.tick(1);
        assert!(!stamp.ordered_before(0, &r), "no sync yet");
        r.join(&stamp);
        assert!(stamp.ordered_before(0, &r), "after join");
    }
}
