//! Shimmed `UnsafeCell` with closure-scoped, causally-checked access.
//!
//! The loom-style API replaces raw pointer dereference with
//! [`UnsafeCell::with`] / [`UnsafeCell::with_mut`]: each access is
//! announced to the scheduler, which checks it for a causal data race
//! against the cell's access history *before* the closure runs — a
//! race is reported as a model failure, never executed as physical UB.
//! The closure itself runs while the thread still holds the scheduling
//! token, so two access closures can never physically overlap.
//!
//! Outside a model run the wrapper is a zero-tracking pass-through
//! over `std::cell::UnsafeCell`.

use crate::exec::{current, Exec};
use std::sync::Arc;

/// Dual-mode stand-in for `std::cell::UnsafeCell`.
pub struct UnsafeCell<T> {
    inner: std::cell::UnsafeCell<T>,
    /// Present iff the cell was created inside a model run.
    model: Option<(Arc<Exec>, usize)>,
}

impl<T> UnsafeCell<T> {
    /// Creates the cell, registering it with the active model run if
    /// one exists on this thread.
    pub fn new(value: T) -> Self {
        let model = current::get().map(|(exec, tid)| {
            let id = exec.new_cell(tid);
            (exec, id)
        });
        Self {
            inner: std::cell::UnsafeCell::new(value),
            model,
        }
    }

    /// Runs `f` with a shared raw pointer to the contents. In a model
    /// run the access is race-checked and serialized.
    pub fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
        match &self.model {
            None => f(self.inner.get() as *const T),
            Some((exec, id)) => {
                let (_, tid) =
                    current::get().expect("interleave UnsafeCell used outside its model run");
                exec.cell_access_start(tid, *id, false);
                let out = f(self.inner.get() as *const T);
                exec.cell_access_end(tid);
                out
            }
        }
    }

    /// Runs `f` with an exclusive raw pointer to the contents. In a
    /// model run the access is race-checked and serialized.
    pub fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
        match &self.model {
            None => f(self.inner.get()),
            Some((exec, id)) => {
                let (_, tid) =
                    current::get().expect("interleave UnsafeCell used outside its model run");
                exec.cell_access_start(tid, *id, true);
                let out = f(self.inner.get());
                exec.cell_access_end(tid);
                out
            }
        }
    }

    /// Consumes the cell, returning the contents (no tracking needed:
    /// ownership proves exclusivity).
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }

    /// Unique-borrow access (no tracking needed: `&mut self` proves
    /// exclusivity).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut()
    }
}

impl<T: Default> Default for UnsafeCell<T> {
    fn default() -> Self {
        Self::new(T::default())
    }
}
