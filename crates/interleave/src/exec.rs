//! One bounded-exhaustive exploration: the scheduler and the memory
//! model.
//!
//! # Scheduling
//!
//! Model threads are real OS threads, but only one holds the *logical
//! token* at a time: every shimmed operation passes through a gate
//! that blocks until the scheduler hands the thread the token, then
//! performs its effect under the execution lock and picks the next
//! thread to run. Picking is a *choice point*: the DFS driver replays
//! a forced prefix of choices and takes the first branch at every new
//! point; after the run, the deepest unexhausted choice is advanced
//! and the closure re-executed. Preemption bounding prunes the tree:
//! once a run has context-switched away from a runnable thread
//! `preemption_bound` times, subsequent picks keep the current thread
//! running.
//!
//! # Memory model (approximation)
//!
//! Sequential consistency is the baseline interleaving semantics, with
//! a happens-before layer on top that models the weaker orderings:
//!
//! * every shimmed op ticks the thread's [`VClock`];
//! * a `Release`/`AcqRel`/`SeqCst` store snapshots the writer's clock
//!   as a message clock; an `Acquire`/`AcqRel`/`SeqCst` load that
//!   reads it joins it into the reader's clock;
//! * a load may read *any* store to the location that is (a) not
//!   already superseded for this thread by per-location coherence and
//!   (b) not happens-before-known to be overwritten. When several
//!   stores qualify, the pick is a choice point — this is how stale
//!   reads of insufficiently-published data are explored;
//! * RMWs always read the newest store (C11 guarantees RMWs read the
//!   last value in modification order);
//! * `SeqCst` loads read the newest store (approximating the single
//!   total order; weaker than C11 but sound for bug *finding*).
//!
//! `UnsafeCell` accesses are checked causally: two accesses, at least
//! one a write, that are not happens-before ordered are reported as a
//! data race — regardless of how the interleaving happened to time
//! them.
//!
//! # Liveness
//!
//! A thread announcing a spin (`hint::spin_loop`) is descheduled until
//! some store lands. If every live thread ends up spinning, each is
//! woken once in *force-fresh* mode (its next load must read the
//! newest store — modeling C11's eventual-visibility guarantee); if
//! the group keeps spinning with no store landing, the execution is
//! reported as a lost wakeup. Blocked joins with no runnable thread
//! anywhere are reported as a deadlock.

use crate::vclock::VClock;
use std::sync::atomic::Ordering;
use std::sync::{Condvar, Mutex, MutexGuard};

/// Sentinel panic payload used to unwind model threads once a failure
/// has been recorded; the thread wrapper swallows it.
pub(crate) struct SilentUnwind;

/// Most stale stores a single load will branch over (newest-first).
/// Bounds the branching factor of relaxed-load exploration.
const MAX_STALE_CANDIDATES: usize = 4;

/// `usize` sentinel for "no thread holds the token".
const NOBODY: usize = usize::MAX;

/// How the scheduler sees a model thread.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum ThreadState {
    /// Eligible to be picked.
    Runnable,
    /// Announced a spin; wakes when any store lands.
    Spinning,
    /// Waiting for the given thread to finish.
    BlockedJoin(usize),
    /// Done (normally or by unwind).
    Finished,
}

/// One store in a location's modification order.
struct StoreRec {
    value: u64,
    tid: usize,
    /// Writer's clock at the store (own component ticked) — used for
    /// happens-before queries against later reads.
    clock: VClock,
    /// Message clock carried iff the store releases.
    msg: Option<VClock>,
}

/// Per-atomic-location state.
struct Location {
    stores: Vec<StoreRec>,
    /// Per-thread coherence floor: index of the newest store this
    /// thread has read or written. A thread never reads older.
    seen: Vec<usize>,
}

/// Per-`UnsafeCell` access history for causal race detection.
struct CellState {
    last_write: Option<(usize, VClock)>,
    /// Reads since the last write.
    reads: Vec<(usize, VClock)>,
}

pub(crate) struct ExecInner {
    // --- exploration state ---
    /// Choices forced by the DFS driver (replayed verbatim).
    prefix: Vec<usize>,
    /// Option count at every choice point seen this run.
    options: Vec<usize>,
    /// Choice taken at every choice point this run.
    chosen: Vec<usize>,
    // --- scheduling ---
    active: usize,
    threads: Vec<ThreadState>,
    preemptions: usize,
    preemption_bound: usize,
    force_fresh: Vec<bool>,
    allspin_rounds: usize,
    // --- memory model ---
    locations: Vec<Location>,
    cells: Vec<CellState>,
    clocks: Vec<VClock>,
    // --- outcome ---
    failure: Option<String>,
    steps: u64,
    step_limit: u64,
}

impl ExecInner {
    fn thread_states(&self) -> String {
        self.threads
            .iter()
            .enumerate()
            .map(|(i, s)| format!("t{i}:{s:?}"))
            .collect::<Vec<_>>()
            .join(" ")
    }

    /// Records a failure and revokes the token so every thread unwinds
    /// at its next gate.
    fn set_failure(&mut self, msg: String) {
        if self.failure.is_none() {
            let states = self.thread_states();
            self.failure = Some(format!("{msg} [threads: {states}]"));
        }
        self.active = NOBODY;
    }
}

/// Shared state of one execution of the model closure.
pub(crate) struct Exec {
    inner: Mutex<ExecInner>,
    cv: Condvar,
}

fn acquires(ord: Ordering) -> bool {
    matches!(ord, Ordering::Acquire | Ordering::AcqRel | Ordering::SeqCst)
}

fn releases(ord: Ordering) -> bool {
    matches!(ord, Ordering::Release | Ordering::AcqRel | Ordering::SeqCst)
}

impl Exec {
    /// Creates an execution with thread 0 (the closure body)
    /// registered and active.
    pub(crate) fn new(prefix: Vec<usize>, preemption_bound: usize, step_limit: u64) -> Self {
        let mut clock0 = VClock::default();
        clock0.tick(0);
        Exec {
            inner: Mutex::new(ExecInner {
                prefix,
                options: Vec::new(),
                chosen: Vec::new(),
                active: 0,
                threads: vec![ThreadState::Runnable],
                preemptions: 0,
                preemption_bound,
                force_fresh: vec![false],
                allspin_rounds: 0,
                locations: Vec::new(),
                cells: Vec::new(),
                clocks: vec![clock0],
                failure: None,
                steps: 0,
                step_limit,
            }),
            cv: Condvar::new(),
        }
    }

    // ---------------------------------------------------------------
    // gate / token plumbing
    // ---------------------------------------------------------------

    /// Blocks until `me` holds the logical token, then returns the
    /// guard with the step accounted and the thread's clock ticked.
    fn gate(&self, me: usize) -> MutexGuard<'_, ExecInner> {
        let mut g = self.inner.lock().unwrap();
        loop {
            if g.failure.is_some() {
                drop(g);
                std::panic::panic_any(SilentUnwind);
            }
            if g.active == me {
                break;
            }
            g = self.cv.wait(g).unwrap();
        }
        g.steps += 1;
        if g.steps > g.step_limit {
            let msg = format!(
                "step limit ({}) exceeded — livelock or unbounded loop in the model",
                g.step_limit
            );
            self.fail(g, msg);
        }
        g.clocks[me].tick(me);
        g
    }

    /// Records the failure, releases every thread, and unwinds the
    /// caller. Never returns. The guard is dropped before unwinding so
    /// the execution mutex is never poisoned.
    fn fail(&self, mut g: MutexGuard<'_, ExecInner>, msg: String) -> ! {
        g.set_failure(msg);
        drop(g);
        self.cv.notify_all();
        std::panic::panic_any(SilentUnwind);
    }

    /// Takes (and records) a choice among `n` options. Only called
    /// with `n >= 2`; single-option points are taken silently so the
    /// DFS tree stays small. On prefix divergence (a nondeterministic
    /// closure) the failure is recorded and option 0 returned; the
    /// thread unwinds at its next gate.
    fn choose(&self, g: &mut MutexGuard<'_, ExecInner>, n: usize) -> usize {
        debug_assert!(n >= 2);
        let i = g.chosen.len();
        let pick = if i < g.prefix.len() { g.prefix[i] } else { 0 };
        if pick >= n {
            g.set_failure(format!(
                "replay divergence at choice {i}: forced option {pick} of {n} — \
                 model closures must be deterministic apart from interleaving"
            ));
            g.options.push(n);
            g.chosen.push(0);
            return 0;
        }
        g.options.push(n);
        g.chosen.push(pick);
        pick
    }

    /// Hands the token to the next thread. `me` is the thread ending
    /// its step (it may or may not still be runnable).
    fn pick_next(&self, g: &mut MutexGuard<'_, ExecInner>, me: usize) {
        if g.failure.is_some() {
            g.active = NOBODY;
            return;
        }
        loop {
            let runnable: Vec<usize> = g
                .threads
                .iter()
                .enumerate()
                .filter(|(_, s)| **s == ThreadState::Runnable)
                .map(|(i, _)| i)
                .collect();
            if runnable.is_empty() {
                let live: Vec<usize> = g
                    .threads
                    .iter()
                    .enumerate()
                    .filter(|(_, s)| **s != ThreadState::Finished)
                    .map(|(i, _)| i)
                    .collect();
                if live.is_empty() {
                    g.active = NOBODY; // execution complete
                    return;
                }
                let spinning: Vec<usize> = live
                    .iter()
                    .copied()
                    .filter(|&t| g.threads[t] == ThreadState::Spinning)
                    .collect();
                if spinning.is_empty() {
                    g.set_failure("deadlock: every live thread is blocked in join".to_string());
                    return;
                }
                // Everyone live is spinning (or join-blocked behind
                // spinners). Wake the spinners in force-fresh mode —
                // C11 guarantees stores become visible in finite time,
                // so a spin that would pass on fresh values must be
                // given the chance. If the cycle repeats with no store
                // landing, nobody is ever going to publish: report it.
                g.allspin_rounds += 1;
                if g.allspin_rounds > g.threads.len() + 2 {
                    g.set_failure(
                        "lost wakeup: every live thread is spinning and no store \
                         can ever wake them"
                            .to_string(),
                    );
                    return;
                }
                for t in spinning {
                    g.threads[t] = ThreadState::Runnable;
                    g.force_fresh[t] = true;
                }
                continue;
            }
            let me_runnable = runnable.contains(&me);
            let ordered: Vec<usize> = if me_runnable {
                std::iter::once(me)
                    .chain(runnable.iter().copied().filter(|&t| t != me))
                    .collect()
            } else {
                runnable
            };
            let constrained = me_runnable && g.preemptions >= g.preemption_bound;
            let pick = if constrained || ordered.len() == 1 {
                0
            } else {
                self.choose(g, ordered.len())
            };
            let next = ordered[pick];
            if me_runnable && next != me {
                g.preemptions += 1;
            }
            g.active = next;
            return;
        }
    }

    /// Finishes an op: schedule the next thread and wake everyone.
    fn end_op(&self, mut g: MutexGuard<'_, ExecInner>, me: usize) {
        self.pick_next(&mut g, me);
        drop(g);
        self.cv.notify_all();
    }

    /// Deschedules `me` (already marked non-runnable in `g`), then
    /// blocks until the scheduler hands the token back. Returns with
    /// the token held (the caller's next gate passes immediately);
    /// interleavings with other threads are explored through the pick
    /// that reactivates `me`, so no behaviors are lost.
    fn block(&self, mut g: MutexGuard<'_, ExecInner>, me: usize) {
        self.pick_next(&mut g, me);
        self.cv.notify_all();
        loop {
            if g.failure.is_some() {
                drop(g);
                self.cv.notify_all();
                std::panic::panic_any(SilentUnwind);
            }
            if g.active == me {
                return;
            }
            g = self.cv.wait(g).unwrap();
        }
    }

    // ---------------------------------------------------------------
    // thread lifecycle
    // ---------------------------------------------------------------

    /// Registers a new model thread spawned by `parent`; the creation
    /// itself is a scheduling point so thread ids stay deterministic.
    /// The child's clock starts as a copy of the parent's (spawn is a
    /// happens-before edge). Returns the child's tid.
    pub(crate) fn spawn_thread(&self, parent: usize) -> usize {
        let mut g = self.gate(parent);
        let tid = g.threads.len();
        let mut child_clock = g.clocks[parent].clone();
        child_clock.tick(tid);
        g.threads.push(ThreadState::Runnable);
        g.clocks.push(child_clock);
        g.force_fresh.push(false);
        self.end_op(g, parent);
        tid
    }

    /// Marks `me` finished and wakes its joiners. Called by the thread
    /// wrapper after the closure returns or unwinds.
    ///
    /// A *clean* finish waits for the scheduling token first: the
    /// Runnable→Finished transition must land at a deterministic point
    /// in the schedule. The closure's epilogue (between its last
    /// shimmed op and this call) runs on real OS time, so taking the
    /// raw lock here would shrink the runnable set — and with it the
    /// arity of scheduling choice points — at a machine-load-dependent
    /// moment, making identical prefixes replay with different option
    /// counts (a spurious "replay divergence"). A *failing* finish
    /// must not wait: the failure it carries may be exactly what the
    /// token holder is blocked on.
    pub(crate) fn finish_thread(&self, me: usize, panic_msg: Option<String>) {
        let mut g = self.inner.lock().unwrap();
        if panic_msg.is_none() {
            loop {
                if g.failure.is_some() || g.active == me {
                    break;
                }
                g = self.cv.wait(g).unwrap();
            }
        }
        g.threads[me] = ThreadState::Finished;
        for t in 0..g.threads.len() {
            if g.threads[t] == ThreadState::BlockedJoin(me) {
                g.threads[t] = ThreadState::Runnable;
            }
        }
        if let Some(msg) = panic_msg {
            g.set_failure(msg);
        } else if g.failure.is_none() && g.active == me {
            self.pick_next(&mut g, me);
        }
        drop(g);
        self.cv.notify_all();
    }

    /// Model-level join: blocks until `target` finishes, then joins
    /// its clock (everything the child did happens-before the join).
    pub(crate) fn join_thread(&self, me: usize, target: usize) {
        let mut g = self.gate(me);
        if g.threads[target] != ThreadState::Finished {
            g.threads[me] = ThreadState::BlockedJoin(target);
            self.block(g, me);
            g = self.inner.lock().unwrap();
        }
        let child_clock = g.clocks[target].clone();
        g.clocks[me].join(&child_clock);
        self.end_op(g, me);
    }

    /// A spin announcement: deschedule until some store lands (or a
    /// force-fresh wake). Returns with the token held so the caller's
    /// condition re-check happens next.
    pub(crate) fn spin(&self, me: usize) {
        let mut g = self.gate(me);
        g.threads[me] = ThreadState::Spinning;
        self.block(g, me);
    }

    /// A pure yield: a scheduling point with no memory effect.
    pub(crate) fn yield_now(&self, me: usize) {
        let g = self.gate(me);
        self.end_op(g, me);
    }

    // ---------------------------------------------------------------
    // atomics
    // ---------------------------------------------------------------

    /// Registers an atomic location with its initial value. The
    /// initial store is treated as a release by the creating thread,
    /// so anyone who synchronizes with the creator (e.g. via spawn)
    /// sees it.
    pub(crate) fn new_location(&self, me: usize, init: u64) -> usize {
        let mut g = self.gate(me);
        let id = g.locations.len();
        let clock = g.clocks[me].clone();
        g.locations.push(Location {
            stores: vec![StoreRec {
                value: init,
                tid: me,
                clock: clock.clone(),
                msg: Some(clock),
            }],
            seen: Vec::new(),
        });
        self.end_op(g, me);
        id
    }

    fn seen_floor(loc: &mut Location, tid: usize) -> usize {
        if loc.seen.len() <= tid {
            loc.seen.resize(tid + 1, 0);
        }
        loc.seen[tid]
    }

    /// An atomic load; may explore stale values for non-SeqCst loads.
    pub(crate) fn atomic_load(&self, me: usize, loc_id: usize, ord: Ordering) -> u64 {
        let mut g = self.gate(me);
        let force_fresh = std::mem::replace(&mut g.force_fresh[me], false);
        let clock_me = g.clocks[me].clone();
        let (n, mut floor) = {
            let loc = &mut g.locations[loc_id];
            let f = Self::seen_floor(loc, me);
            (loc.stores.len(), f)
        };
        {
            // Happens-before floor: a store known (via synchronization)
            // to exist cannot be "unseen"; anything older is dead.
            let loc = &g.locations[loc_id];
            for (j, s) in loc.stores.iter().enumerate().skip(floor) {
                if s.clock.ordered_before(s.tid, &clock_me) {
                    floor = j;
                }
            }
        }
        if ord == Ordering::SeqCst || force_fresh {
            floor = n - 1;
        }
        let first = floor.max(n.saturating_sub(MAX_STALE_CANDIDATES));
        let count = n - first;
        // Candidates newest-first, so choice 0 is the "natural" read.
        let pick = if count >= 2 {
            self.choose(&mut g, count)
        } else {
            0
        };
        let idx = n - 1 - pick;
        let (value, msg) = {
            let loc = &mut g.locations[loc_id];
            loc.seen[me] = loc.seen[me].max(idx);
            let s = &loc.stores[idx];
            (s.value, if acquires(ord) { s.msg.clone() } else { None })
        };
        if let Some(m) = msg {
            g.clocks[me].join(&m);
        }
        self.end_op(g, me);
        value
    }

    /// An atomic store.
    pub(crate) fn atomic_store(&self, me: usize, loc_id: usize, val: u64, ord: Ordering) {
        let mut g = self.gate(me);
        let clock = g.clocks[me].clone();
        let msg = if releases(ord) {
            Some(clock.clone())
        } else {
            None
        };
        let loc = &mut g.locations[loc_id];
        let idx = loc.stores.len();
        loc.stores.push(StoreRec {
            value: val,
            tid: me,
            clock,
            msg,
        });
        Self::seen_floor(loc, me);
        loc.seen[me] = idx;
        Self::wake_spinners(&mut g);
        self.end_op(g, me);
    }

    /// An atomic read-modify-write; always reads the newest store.
    pub(crate) fn atomic_rmw(
        &self,
        me: usize,
        loc_id: usize,
        ord: Ordering,
        f: impl FnOnce(u64) -> u64,
    ) -> u64 {
        let mut g = self.gate(me);
        let (old, acq_msg) = {
            let loc = &g.locations[loc_id];
            let last = loc.stores.last().expect("location has an initial store");
            let m = if acquires(ord) {
                last.msg.clone()
            } else {
                None
            };
            (last.value, m)
        };
        if let Some(m) = acq_msg {
            g.clocks[me].join(&m);
        }
        let new = f(old);
        let clock = g.clocks[me].clone();
        let msg = if releases(ord) {
            Some(clock.clone())
        } else {
            None
        };
        let loc = &mut g.locations[loc_id];
        let idx = loc.stores.len();
        loc.stores.push(StoreRec {
            value: new,
            tid: me,
            clock,
            msg,
        });
        Self::seen_floor(loc, me);
        loc.seen[me] = idx;
        Self::wake_spinners(&mut g);
        self.end_op(g, me);
        old
    }

    /// Compare-exchange; reads the newest store like every RMW.
    pub(crate) fn atomic_cas(
        &self,
        me: usize,
        loc_id: usize,
        current: u64,
        new: u64,
        success: Ordering,
        failure: Ordering,
    ) -> Result<u64, u64> {
        let mut g = self.gate(me);
        let (old, last_msg) = {
            let loc = &g.locations[loc_id];
            let last = loc.stores.last().expect("location has an initial store");
            (last.value, last.msg.clone())
        };
        let ok = old == current;
        let ord = if ok { success } else { failure };
        if acquires(ord) {
            if let Some(m) = last_msg {
                g.clocks[me].join(&m);
            }
        }
        if ok {
            let clock = g.clocks[me].clone();
            let msg = if releases(success) {
                Some(clock.clone())
            } else {
                None
            };
            let loc = &mut g.locations[loc_id];
            let idx = loc.stores.len();
            loc.stores.push(StoreRec {
                value: new,
                tid: me,
                clock,
                msg,
            });
            Self::seen_floor(loc, me);
            loc.seen[me] = idx;
            Self::wake_spinners(&mut g);
        }
        self.end_op(g, me);
        if ok {
            Ok(old)
        } else {
            Err(old)
        }
    }

    fn wake_spinners(g: &mut MutexGuard<'_, ExecInner>) {
        g.allspin_rounds = 0;
        for t in 0..g.threads.len() {
            if g.threads[t] == ThreadState::Spinning {
                g.threads[t] = ThreadState::Runnable;
            }
        }
    }

    // ---------------------------------------------------------------
    // UnsafeCell causality tracking
    // ---------------------------------------------------------------

    /// Registers a cell. Creation counts as the first write, stamped
    /// with the creator's clock: accessing a cell without
    /// synchronizing with its creation is itself a race.
    pub(crate) fn new_cell(&self, me: usize) -> usize {
        let mut g = self.gate(me);
        let id = g.cells.len();
        let clock = g.clocks[me].clone();
        g.cells.push(CellState {
            last_write: Some((me, clock)),
            reads: Vec::new(),
        });
        self.end_op(g, me);
        id
    }

    /// Begins a cell access: gates, checks for a causal race, records
    /// the access, and returns with the token *retained* (the guard is
    /// dropped but no other thread is scheduled). The caller runs the
    /// access closure serialized, then calls [`Self::cell_access_end`]
    /// — this is what keeps racing closures from physically
    /// overlapping even though the race is detected logically.
    pub(crate) fn cell_access_start(&self, me: usize, cell_id: usize, write: bool) {
        let mut g = self.gate(me);
        let clock_me = g.clocks[me].clone();
        if let Some((wtid, wclock)) = &g.cells[cell_id].last_write {
            if *wtid != me && !wclock.ordered_before(*wtid, &clock_me) {
                let kind = if write { "write" } else { "read" };
                let msg = format!(
                    "data race on UnsafeCell #{cell_id}: {kind} by t{me} concurrent \
                     with write by t{wtid} (no happens-before edge)"
                );
                self.fail(g, msg);
            }
        }
        if write {
            let racing_read = g.cells[cell_id]
                .reads
                .iter()
                .find(|(rtid, rclock)| *rtid != me && !rclock.ordered_before(*rtid, &clock_me))
                .map(|(rtid, _)| *rtid);
            if let Some(rtid) = racing_read {
                let msg = format!(
                    "data race on UnsafeCell #{cell_id}: write by t{me} concurrent \
                     with read by t{rtid} (no happens-before edge)"
                );
                self.fail(g, msg);
            }
            g.cells[cell_id].reads.clear();
            g.cells[cell_id].last_write = Some((me, clock_me));
        } else {
            g.cells[cell_id].reads.push((me, clock_me));
        }
        // Guard dropped, token kept: `active` is still `me`, so no
        // other model thread passes its gate until `cell_access_end`.
    }

    /// Ends a cell access begun with [`Self::cell_access_start`].
    pub(crate) fn cell_access_end(&self, me: usize) {
        let g = self.inner.lock().unwrap();
        self.end_op(g, me);
    }

    // ---------------------------------------------------------------
    // driver interface
    // ---------------------------------------------------------------

    /// Blocks until every model thread has finished, then returns
    /// `(failure, options, chosen)`.
    pub(crate) fn wait_done(&self) -> (Option<String>, Vec<usize>, Vec<usize>) {
        let mut g = self.inner.lock().unwrap();
        loop {
            if g.threads.iter().all(|s| *s == ThreadState::Finished) {
                return (
                    g.failure.clone(),
                    std::mem::take(&mut g.options),
                    std::mem::take(&mut g.chosen),
                );
            }
            g = self.cv.wait(g).unwrap();
        }
    }
}

/// The ambient execution for the current OS thread, set by the thread
/// wrapper for the duration of the model closure.
pub(crate) mod current {
    use super::Exec;
    use std::cell::RefCell;
    use std::sync::Arc;

    thread_local! {
        static CURRENT: RefCell<Option<(Arc<Exec>, usize)>> = const { RefCell::new(None) };
    }

    /// Returns the executing model context, if any.
    pub(crate) fn get() -> Option<(Arc<Exec>, usize)> {
        CURRENT.with(|c| c.borrow().clone())
    }

    /// Installs the context; returns a guard restoring the previous.
    pub(crate) fn set(exec: Arc<Exec>, tid: usize) -> Restore {
        let prev = CURRENT.with(|c| c.borrow_mut().replace((exec, tid)));
        Restore(prev)
    }

    /// Whether this OS thread is currently inside a model execution
    /// (drives panic-hook output suppression). Uses `try_borrow` so
    /// it is safe to call from a panic hook.
    pub(crate) fn in_model() -> bool {
        CURRENT.with(|c| c.try_borrow().map(|b| b.is_some()).unwrap_or(false))
    }

    /// RAII restore for [`set`].
    pub(crate) struct Restore(Option<(Arc<Exec>, usize)>);

    impl Drop for Restore {
        fn drop(&mut self) {
            let prev = self.0.take();
            CURRENT.with(|c| *c.borrow_mut() = prev);
        }
    }
}
