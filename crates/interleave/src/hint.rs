//! Shimmed `std::hint` — the spin announcement the liveness checker
//! keys on.

use crate::exec::current;

/// Inside a model run this deschedules the thread until some store
/// lands (or the lost-wakeup detector fires); outside it is the plain
/// CPU pause hint.
pub fn spin_loop() {
    match current::get() {
        Some((exec, tid)) => exec.spin(tid),
        None => std::hint::spin_loop(),
    }
}
