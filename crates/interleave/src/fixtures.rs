//! Known-buggy and known-correct micro-protocols.
//!
//! Each fixture is a model-closure body parameterized (where relevant)
//! by memory orderings, so the self-tests can demonstrate both
//! directions: the weak variant is *caught*, the strengthened variant
//! *passes exhaustively*. They double as living documentation of the
//! exact failure shapes the checker detects — stale publication,
//! seqlock torn reads, lost wakeups, causal `UnsafeCell` races.

use crate::cell;
use crate::hint;
use crate::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use crate::thread;
use std::sync::Arc;

/// Flag-publication: writer stores data then raises a flag with
/// `flag_store`; reader acquire-loads the flag and asserts the data is
/// visible. `Release` is exhaustively correct; `Relaxed` lets the
/// reader acquire the flag yet read the unpublished value.
pub fn publication(flag_store: Ordering) {
    let data = Arc::new(AtomicU64::new(0));
    let flag = Arc::new(AtomicBool::new(false));
    let (d2, f2) = (Arc::clone(&data), Arc::clone(&flag));
    let t = thread::spawn(move || {
        d2.store(42, Ordering::Relaxed);
        f2.store(true, flag_store);
    });
    if flag.load(Ordering::Acquire) {
        assert_eq!(
            data.load(Ordering::Relaxed),
            42,
            "flag observed but data not published"
        );
    }
    t.join().unwrap();
}

/// Two-word seqlock, two writer laps, one reader attempt. The
/// invariant is that both words belong to the same lap. With `Relaxed`
/// word accesses the reader can pair a fresh word with a stale one and
/// still see a clean even/unchanged sequence — the classic torn read.
/// `Release` word stores + `Acquire` word loads make a fresh word drag
/// the odd/advanced sequence number into view, so the re-check catches
/// the tear.
pub fn seqlock(word_store: Ordering, word_load: Ordering) {
    let seq = Arc::new(AtomicU64::new(0));
    let w0 = Arc::new(AtomicU64::new(0));
    let w1 = Arc::new(AtomicU64::new(0));
    let (s2, a2, b2) = (Arc::clone(&seq), Arc::clone(&w0), Arc::clone(&w1));
    let writer = thread::spawn(move || {
        for lap in 1u64..=2 {
            s2.store(2 * lap - 1, Ordering::Release);
            a2.store(lap, word_store);
            b2.store(lap, word_store);
            s2.store(2 * lap, Ordering::Release);
        }
    });
    let s1 = seq.load(Ordering::Acquire);
    if s1.is_multiple_of(2) {
        let a = w0.load(word_load);
        let b = w1.load(word_load);
        let s2 = seq.load(Ordering::Acquire);
        if s1 == s2 {
            assert_eq!(a, b, "torn seqlock read validated by unchanged seq={s1}");
        }
    }
    writer.join().unwrap();
}

/// A thread spinning on a flag nobody will ever set. The liveness
/// checker reports this as a lost wakeup rather than hanging.
pub fn lost_wakeup() {
    let flag = Arc::new(AtomicBool::new(false));
    let f2 = Arc::clone(&flag);
    let t = thread::spawn(move || {
        while !f2.load(Ordering::Acquire) {
            hint::spin_loop();
        }
    });
    t.join().unwrap();
}

/// Shared-cell harness for the race fixtures.
///
/// SAFETY: Sync is sound here because every access goes through
/// `cell::UnsafeCell::with/with_mut`, which the model checker
/// serializes and race-checks; the fixtures exist precisely to prove
/// unsynchronized access is reported before any overlapping access
/// runs.
struct SharedCell(cell::UnsafeCell<u64>);
// SAFETY: see the struct-level invariant above — all access is
// closure-scoped through the checked with/with_mut API.
unsafe impl Sync for SharedCell {}
// SAFETY: u64 is Send; the wrapper adds no thread affinity.
unsafe impl Send for SharedCell {}

/// Two threads touch an `UnsafeCell` — `synced: false` writes from
/// both with no ordering (a causal data race, caught before the
/// closures can overlap); `synced: true` hands the cell over through a
/// release/acquire flag, which passes exhaustively.
pub fn cell_race(synced: bool) {
    let cell = Arc::new(SharedCell(cell::UnsafeCell::new(0)));
    let flag = Arc::new(AtomicBool::new(false));
    let (c2, f2) = (Arc::clone(&cell), Arc::clone(&flag));
    let t = thread::spawn(move || {
        // SAFETY: exclusive access is claimed through with_mut; the
        // checker verifies no concurrent access exists.
        c2.0.with_mut(|p| unsafe { *p = 7 });
        f2.store(true, Ordering::Release);
    });
    if synced {
        while !flag.load(Ordering::Acquire) {
            hint::spin_loop();
        }
    }
    // SAFETY: same with_mut discipline as above; when `synced` the
    // acquire loop established happens-before with the other writer.
    cell.0.with_mut(|p| unsafe { *p += 1 });
    t.join().unwrap();
    let v = cell.0.with(|p| {
        // SAFETY: both threads are joined; no concurrent access.
        unsafe { *p }
    });
    assert_eq!(v, 8, "handoff lost a write");
}

/// Two concurrent `fetch_add`s: RMWs always read the newest store, so
/// no update can be lost under any schedule.
pub fn rmw_no_lost_update() {
    let c = Arc::new(AtomicU64::new(0));
    let c2 = Arc::clone(&c);
    let t = thread::spawn(move || {
        c2.fetch_add(1, Ordering::Relaxed);
    });
    c.fetch_add(1, Ordering::Relaxed);
    t.join().unwrap();
    assert_eq!(c.load(Ordering::SeqCst), 2);
}
