//! The checker checking itself: every fixture's weak variant must be
//! caught, every strengthened variant must pass exhaustively, and the
//! dual-mode shims must behave like `std` outside a model.

use interleave::fixtures;
use interleave::sync::atomic::{AtomicU64, Ordering};
use interleave::Checker;

#[test]
fn publication_relaxed_is_caught() {
    let v = Checker::new()
        .find_violation(|| fixtures::publication(Ordering::Relaxed))
        .expect("relaxed flag store must allow a stale data read");
    assert!(
        v.message.contains("data not published"),
        "unexpected failure: {v}"
    );
    assert!(!v.schedule.is_empty(), "violation should carry a schedule");
}

#[test]
fn publication_release_passes_exhaustively() {
    let report = Checker::new().check(|| fixtures::publication(Ordering::Release));
    assert!(!report.truncated, "tiny model must be fully explored");
    assert!(
        report.iterations > 1,
        "exploration should branch, got {} iteration(s)",
        report.iterations
    );
}

#[test]
fn seqlock_relaxed_words_torn_read_is_caught() {
    let v = Checker::new()
        .find_violation(|| fixtures::seqlock(Ordering::Relaxed, Ordering::Relaxed))
        .expect("relaxed word accesses must allow a torn read");
    assert!(v.message.contains("torn seqlock read"), "unexpected: {v}");
}

#[test]
fn seqlock_release_acquire_words_pass_exhaustively() {
    let report = Checker::new().check(|| fixtures::seqlock(Ordering::Release, Ordering::Acquire));
    assert!(!report.truncated, "seqlock model must be fully explored");
}

#[test]
fn lost_wakeup_is_detected() {
    let v = Checker::new()
        .find_violation(fixtures::lost_wakeup)
        .expect("spin on a never-set flag must be reported");
    assert!(v.message.contains("lost wakeup"), "unexpected: {v}");
}

#[test]
fn unsafecell_race_is_caught_causally() {
    let v = Checker::new()
        .find_violation(|| fixtures::cell_race(false))
        .expect("unsynchronized cell writes must race");
    assert!(
        v.message.contains("data race on UnsafeCell"),
        "unexpected: {v}"
    );
}

#[test]
fn unsafecell_handoff_passes_exhaustively() {
    let report = Checker::new().check(|| fixtures::cell_race(true));
    assert!(!report.truncated);
}

#[test]
fn rmw_atomicity_no_lost_update() {
    let report = Checker::new().check(fixtures::rmw_no_lost_update);
    assert!(!report.truncated);
}

#[test]
fn max_iterations_reports_truncation() {
    let report = Checker::new()
        .max_iterations(1)
        .check(|| fixtures::publication(Ordering::SeqCst));
    assert_eq!(report.iterations, 1);
    assert!(report.truncated, "bound of 1 cannot cover the model");
}

#[test]
fn exploration_is_deterministic_despite_thread_epilogue_timing() {
    // A child whose closure ends in a real-time delay *after* its last
    // shimmed operation: the Runnable -> Finished transition must still
    // land at a schedule-determined point (the finish waits for the
    // scheduling token), not at OS timing. Otherwise the runnable-set
    // arity at later choice points varies with machine load, and DFS
    // replay reports spurious divergence / irreproducible counts.
    let run = || {
        Checker::new().check(|| {
            let v = std::sync::Arc::new(AtomicU64::new(0));
            let a = std::sync::Arc::clone(&v);
            let b = std::sync::Arc::clone(&v);
            let slow = interleave::thread::spawn(move || {
                let x = a.load(Ordering::Acquire);
                a.store(x + 1, Ordering::Release);
                std::thread::sleep(std::time::Duration::from_micros(200));
            });
            let fast = interleave::thread::spawn(move || {
                let x = b.load(Ordering::Acquire);
                b.store(x + 1, Ordering::Release);
            });
            slow.join().unwrap();
            fast.join().unwrap();
            assert!(v.load(Ordering::Acquire) >= 1);
        })
    };
    let first = run();
    assert!(!first.truncated, "tiny model must be fully explored");
    assert!(first.iterations > 1, "exploration should branch");
    for _ in 0..2 {
        let again = run();
        assert_eq!(
            again.iterations, first.iterations,
            "schedule exploration must be reproducible run to run"
        );
    }
}

#[test]
fn shims_pass_through_outside_a_model() {
    // No model run on this thread: the shimmed atomic must behave
    // exactly like std's, including from a plainly-spawned thread.
    let a = std::sync::Arc::new(AtomicU64::new(5));
    let a2 = std::sync::Arc::clone(&a);
    let t = interleave::thread::spawn(move || a2.fetch_add(10, Ordering::SeqCst));
    assert_eq!(t.join().unwrap(), 5);
    assert_eq!(a.load(Ordering::SeqCst), 15);
    assert_eq!(a.swap(1, Ordering::SeqCst), 15);
    assert_eq!(
        a.compare_exchange(1, 2, Ordering::SeqCst, Ordering::SeqCst),
        Ok(1)
    );

    let cell = interleave::cell::UnsafeCell::new(3u32);
    // SAFETY: single-threaded access to a locally-owned cell.
    cell.with_mut(|p| unsafe { *p += 1 });
    // SAFETY: single-threaded access to a locally-owned cell.
    assert_eq!(cell.with(|p| unsafe { *p }), 4);
    interleave::hint::spin_loop();
    interleave::thread::yield_now();
}
