//! Optional Linux hardware counters via `perf_event_open`.
//!
//! Behind the `perf-counters` cargo feature: a counter group reading
//! CPU cycles, retired instructions, and last-level-cache misses for
//! the calling thread (user space only). The syscall is issued
//! directly — the workspace links no libc crate — and every failure
//! path degrades to `None`: containers commonly set
//! `kernel.perf_event_paranoid` high enough to refuse the call, and a
//! profiler must never turn that into a crash.
//!
//! With the feature off (the default) the module compiles to a stub
//! whose [`PerfGroup::open`] always returns `None`, so call sites need
//! no conditional compilation of their own.

/// One reading of the three counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PerfCounters {
    /// CPU cycles (user space, this thread).
    pub cycles: u64,
    /// Retired instructions.
    pub instructions: u64,
    /// Last-level-cache misses.
    pub llc_misses: u64,
}

impl PerfCounters {
    /// Instructions per cycle; 0 when cycles were not counted.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }
}

/// An open group of the three hardware counters.
pub struct PerfGroup(imp::Group);

impl PerfGroup {
    /// Opens the counter group for the calling thread; `None` when the
    /// feature is disabled, the platform lacks `perf_event_open`, or
    /// the kernel refuses (permissions, missing PMU).
    pub fn open() -> Option<PerfGroup> {
        imp::Group::open().map(PerfGroup)
    }

    /// Zeroes the counters and starts counting.
    pub fn reset_and_enable(&mut self) {
        self.0.reset_and_enable();
    }

    /// Stops counting and reads the three values; `None` if any
    /// counter read fails.
    pub fn disable_and_read(&mut self) -> Option<PerfCounters> {
        self.0.disable_and_read()
    }
}

/// True when opening a group can possibly succeed on this build.
pub fn compiled_in() -> bool {
    imp::COMPILED_IN
}

#[cfg(all(feature = "perf-counters", target_os = "linux", target_arch = "x86_64"))]
mod imp {
    use super::PerfCounters;

    pub(super) const COMPILED_IN: bool = true;

    const SYS_READ: u64 = 0;
    const SYS_CLOSE: u64 = 3;
    const SYS_IOCTL: u64 = 16;
    const SYS_PERF_EVENT_OPEN: u64 = 298;

    const PERF_TYPE_HARDWARE: u64 = 0;
    const PERF_COUNT_HW_CPU_CYCLES: u64 = 0;
    const PERF_COUNT_HW_INSTRUCTIONS: u64 = 1;
    const PERF_COUNT_HW_CACHE_MISSES: u64 = 3;
    /// `PERF_ATTR_SIZE_VER0`: the original 64-byte attr layout, which
    /// every kernel with the syscall accepts and which contains all
    /// the fields used here.
    const ATTR_SIZE: u32 = 64;
    /// attr flag bits: disabled | exclude_kernel | exclude_hv.
    const ATTR_FLAGS: u64 = 1 | (1 << 5) | (1 << 6);

    const IOC_ENABLE: u64 = 0x2400;
    const IOC_DISABLE: u64 = 0x2401;
    const IOC_RESET: u64 = 0x2403;

    /// Raw 5-argument syscall.
    ///
    /// # Safety
    ///
    /// The caller must pass a valid syscall number and arguments per
    /// that syscall's contract (pointers must reference live memory of
    /// the size the kernel will access).
    // SAFETY: obligation deferred to callers per the doc contract
    // above; the body's own asm safety is justified at the asm block.
    unsafe fn syscall5(nr: u64, a1: u64, a2: u64, a3: u64, a4: u64, a5: u64) -> i64 {
        let ret: i64;
        // SAFETY: the x86_64 Linux syscall ABI — args in rdi/rsi/rdx/
        // r10/r8, number in rax, result in rax; rcx and r11 are
        // clobbered by the instruction. Validity of the arguments is
        // the caller's obligation (documented above).
        unsafe {
            core::arch::asm!(
                "syscall",
                inlateout("rax") nr as i64 => ret,
                in("rdi") a1,
                in("rsi") a2,
                in("rdx") a3,
                in("r10") a4,
                in("r8") a5,
                lateout("rcx") _,
                lateout("r11") _,
                options(nostack),
            );
        }
        ret
    }

    fn perf_event_open(config: u64, group_fd: i64) -> Option<i32> {
        // perf_event_attr, original 64-byte layout, as 8 words:
        // [0] type:u32 | size:u32<<32, [1] config, [2] sample_period,
        // [3] sample_type, [4] read_format, [5] flag bits,
        // [6] wakeup_events:u32 | bp_type:u32, [7] bp_addr.
        let attr: [u64; 8] = [
            PERF_TYPE_HARDWARE | ((ATTR_SIZE as u64) << 32),
            config,
            0,
            0,
            0,
            ATTR_FLAGS,
            0,
            0,
        ];
        // SAFETY: attr points to 64 bytes of live, initialized stack
        // memory matching the size field; pid=0/cpu=-1 measures the
        // calling thread on any CPU; flags=0.
        let fd = unsafe {
            syscall5(
                SYS_PERF_EVENT_OPEN,
                attr.as_ptr() as u64,
                0,
                (-1i64) as u64,
                group_fd as u64,
                0,
            )
        };
        (fd >= 0).then_some(fd as i32)
    }

    fn ioctl(fd: i32, req: u64) {
        // SAFETY: fd is a perf event fd owned by this module; ENABLE/
        // DISABLE/RESET take no argument (0). Errors are ignored — the
        // subsequent read simply yields a useless count.
        unsafe {
            syscall5(SYS_IOCTL, fd as u64, req, 0, 0, 0);
        }
    }

    fn read_u64(fd: i32) -> Option<u64> {
        let mut buf = [0u8; 8];
        // SAFETY: buf is 8 bytes of live writable memory and the
        // length passed is exactly its size.
        let n = unsafe { syscall5(SYS_READ, fd as u64, buf.as_mut_ptr() as u64, 8, 0, 0) };
        (n == 8).then(|| u64::from_ne_bytes(buf))
    }

    pub(super) struct Group {
        /// cycles, instructions, LLC misses — cycles leads the group.
        fds: [i32; 3],
    }

    impl Group {
        pub(super) fn open() -> Option<Group> {
            let lead = perf_event_open(PERF_COUNT_HW_CPU_CYCLES, -1)?;
            let mut fds = [lead, -1, -1];
            for (slot, config) in [
                (1, PERF_COUNT_HW_INSTRUCTIONS),
                (2, PERF_COUNT_HW_CACHE_MISSES),
            ] {
                match perf_event_open(config, lead as i64) {
                    Some(fd) => fds[slot] = fd,
                    None => {
                        // SAFETY: every fd in fds that is >= 0 was
                        // returned by perf_event_open above and is
                        // owned exclusively here.
                        for fd in fds.into_iter().filter(|&fd| fd >= 0) {
                            unsafe {
                                syscall5(SYS_CLOSE, fd as u64, 0, 0, 0, 0);
                            }
                        }
                        return None;
                    }
                }
            }
            Some(Group { fds })
        }

        pub(super) fn reset_and_enable(&mut self) {
            for fd in self.fds {
                ioctl(fd, IOC_RESET);
            }
            for fd in self.fds {
                ioctl(fd, IOC_ENABLE);
            }
        }

        pub(super) fn disable_and_read(&mut self) -> Option<PerfCounters> {
            for fd in self.fds {
                ioctl(fd, IOC_DISABLE);
            }
            Some(PerfCounters {
                cycles: read_u64(self.fds[0])?,
                instructions: read_u64(self.fds[1])?,
                llc_misses: read_u64(self.fds[2])?,
            })
        }
    }

    impl Drop for Group {
        fn drop(&mut self) {
            for fd in self.fds {
                // SAFETY: each fd was opened by this Group and closed
                // exactly once, here.
                unsafe {
                    syscall5(SYS_CLOSE, fd as u64, 0, 0, 0, 0);
                }
            }
        }
    }
}

#[cfg(not(all(feature = "perf-counters", target_os = "linux", target_arch = "x86_64")))]
mod imp {
    use super::PerfCounters;

    pub(super) const COMPILED_IN: bool = false;

    pub(super) struct Group;

    impl Group {
        pub(super) fn open() -> Option<Group> {
            None
        }

        pub(super) fn reset_and_enable(&mut self) {}

        pub(super) fn disable_and_read(&mut self) -> Option<PerfCounters> {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn open_never_panics_and_reads_when_available() {
        match PerfGroup::open() {
            None => {
                // Feature off, non-Linux, or the kernel refused —
                // the documented graceful path.
            }
            Some(mut g) => {
                g.reset_and_enable();
                let mut x = 1u64;
                for i in 0..100_000u64 {
                    x = x.wrapping_mul(6364136223846793005).wrapping_add(i);
                }
                std::hint::black_box(x);
                let c = g.disable_and_read().expect("open group reads");
                assert!(c.cycles > 0, "{c:?}");
                assert!(c.instructions > 0, "{c:?}");
                assert!(c.ipc() > 0.0);
            }
        }
    }

    #[test]
    fn stub_reports_compiled_out() {
        if !compiled_in() {
            assert!(PerfGroup::open().is_none());
        }
    }
}
