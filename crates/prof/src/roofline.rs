//! Host roofline calibration: one memory probe, one compute probe.
//!
//! The roofline model bounds a kernel's attainable GFLOP/s by
//! `min(peak_flops, arithmetic_intensity × peak_bandwidth)`. Both
//! peaks are measured **single-core**, because the microbench times
//! kernels single-threaded — a kernel at 80% of the single-core roof
//! is genuinely well optimized even if the socket could stream more.
//!
//! * Bandwidth: a STREAM-style triad `a[i] = b[i] + s·c[i]` over
//!   arrays far larger than the last-level cache, counted at 24
//!   bytes/element (two reads + one write — the same no-write-allocate
//!   convention as the kernel cost model, so "% of roof" compares like
//!   with like).
//! * Compute: a bundle of independent fused multiply-add chains, 2
//!   flops per `mul_add`, wide enough for the compiler to vectorize.
//!
//! Each probe runs one untimed warmup round then `rounds` timed ones
//! and keeps the **best** round (peaks are maxima by definition; the
//! trimmed-mean machinery the microbench uses answers "typical", not
//! "attainable"). Results are cached to [`CACHE_FILE`] with host
//! provenance so repeated reports skip the multi-second measurement.

use crate::host;
use crate::json::Json;
use std::fmt::Write as _;
use std::hint::black_box;
use std::path::Path;
use std::time::Instant;

/// Default cache location, relative to the working directory.
pub const CACHE_FILE: &str = "HOST_ROOFLINE.json";

/// Schema marker inside the cache file.
pub const SCHEMA: &str = "host-roofline/1";

/// Triad array length for the full measurement: 4 Mi doubles = 32 MB
/// per array, 96 MB of traffic per pass — beyond any current LLC.
const TRIAD_LEN: usize = 4 << 20;
/// FMA chain iterations for the full measurement (×[`FMA_ACCS`]×2
/// flops each).
const FMA_ITERS: usize = 8_000_000;
/// Independent FMA accumulators; enough ILP to saturate the FMA ports
/// and let the autovectorizer use full-width registers.
const FMA_ACCS: usize = 16;
/// Timed rounds per probe (after one warmup); best kept.
const ROUNDS: usize = 5;

/// Calibrated single-core peaks plus the provenance of the host that
/// produced them.
#[derive(Clone, Debug, PartialEq)]
pub struct HostRoofline {
    /// Peak compute, MFLOP/s (integer so it embeds in the flat trace
    /// grammar; 1 MFLOP/s resolution is far below probe noise).
    pub peak_mflops: u64,
    /// Peak bandwidth, MB/s.
    pub peak_mbps: u64,
    /// CPU model string.
    pub cpu_model: String,
    /// Logical cores on the measuring host.
    pub cores: u64,
    /// Git revision of the measuring tree.
    pub git_rev: String,
    /// SIMD features available to the measuring binary.
    pub simd: String,
}

impl HostRoofline {
    /// The ridge point in flop/byte; ops below it are memory-bound.
    pub fn ridge(&self) -> f64 {
        if self.peak_mbps == 0 {
            0.0
        } else {
            self.peak_mflops as f64 / self.peak_mbps as f64
        }
    }

    /// Serializes to the cache-file JSON.
    pub fn to_json(&self) -> String {
        fn esc(s: &str) -> String {
            s.replace('\\', "\\\\").replace('"', "\\\"")
        }
        let mut s = String::new();
        s.push_str("{\n");
        let _ = writeln!(s, "  \"schema\": \"{SCHEMA}\",");
        let _ = writeln!(s, "  \"peak_mflops\": {},", self.peak_mflops);
        let _ = writeln!(s, "  \"peak_mbps\": {},", self.peak_mbps);
        let _ = writeln!(s, "  \"cpu_model\": \"{}\",", esc(&self.cpu_model));
        let _ = writeln!(s, "  \"cores\": {},", self.cores);
        let _ = writeln!(s, "  \"git_rev\": \"{}\",", esc(&self.git_rev));
        let _ = writeln!(s, "  \"simd\": \"{}\"", esc(&self.simd));
        s.push_str("}\n");
        s
    }

    /// Writes the cache file.
    pub fn save(&self, path: &Path) -> std::io::Result<()> {
        std::fs::write(path, self.to_json())
    }
}

/// Loads a cached calibration; `None` when the file is missing,
/// unparseable, or from a different schema.
pub fn load_cached(path: &Path) -> Option<HostRoofline> {
    let text = std::fs::read_to_string(path).ok()?;
    let v = Json::parse(&text).ok()?;
    if v.get("schema")?.as_str()? != SCHEMA {
        return None;
    }
    Some(HostRoofline {
        peak_mflops: v.get("peak_mflops")?.as_u64()?,
        peak_mbps: v.get("peak_mbps")?.as_u64()?,
        cpu_model: v.get("cpu_model")?.as_str()?.to_string(),
        cores: v.get("cores")?.as_u64()?,
        git_rev: v.get("git_rev")?.as_str()?.to_string(),
        simd: v.get("simd")?.as_str()?.to_string(),
    })
}

/// Full calibration with the default probe sizes (a few seconds).
pub fn measure() -> HostRoofline {
    measure_with(TRIAD_LEN, FMA_ITERS, ROUNDS)
}

/// Calibration with explicit probe sizes — tests and the CI smoke
/// test shrink them to keep runtime bounded; peaks from shrunken
/// probes are noisy but still positive.
pub fn measure_with(triad_len: usize, fma_iters: usize, rounds: usize) -> HostRoofline {
    HostRoofline {
        peak_mflops: (fma_peak_flops(fma_iters, rounds) / 1e6) as u64,
        peak_mbps: (triad_bandwidth(triad_len, rounds) / 1e6) as u64,
        cpu_model: host::cpu_model(),
        cores: host::cores(),
        git_rev: host::git_rev(),
        simd: host::simd_flags(),
    }
}

/// Cached calibration if present and measured by the same CPU model,
/// else a fresh measurement saved back to `path` (best effort — a
/// read-only directory only costs the cache).
pub fn load_or_measure(path: &Path) -> HostRoofline {
    if let Some(cached) = load_cached(path) {
        if cached.cpu_model == host::cpu_model() {
            return cached;
        }
    }
    let fresh = measure();
    let _ = fresh.save(path);
    fresh
}

/// Best-round STREAM triad bandwidth, bytes/second.
fn triad_bandwidth(len: usize, rounds: usize) -> f64 {
    let b = vec![1.000_1f64; len];
    let c = vec![0.999_9f64; len];
    let mut a = vec![0.0f64; len];
    let scalar = black_box(3.000_4f64);
    let bytes_per_pass = (3 * len * std::mem::size_of::<f64>()) as f64;
    let mut best = 0.0f64;
    for round in 0..=rounds {
        let start = Instant::now();
        for i in 0..len {
            a[i] = b[i] + scalar * c[i];
        }
        let dt = start.elapsed().as_secs_f64();
        black_box(&a);
        // Round 0 is warmup: first touch faults the pages in.
        if round > 0 && dt > 0.0 {
            best = best.max(bytes_per_pass / dt);
        }
    }
    best
}

/// Best-round FMA throughput, flops/second.
///
/// The baseline x86-64 target lacks FMA, so a plain `f64::mul_add`
/// here would compile to a correctly-rounded libm *call* and measure
/// call overhead, not the machine. Like the SIMD kernels, the probe
/// dispatches at runtime to a `#[target_feature(enable = "fma")]`
/// body where `mul_add` lowers to `vfmadd`; hosts without FMA fall
/// back to separate multiply+add (still 2 flops per step — that *is*
/// their peak).
fn fma_peak_flops(iters: usize, rounds: usize) -> f64 {
    // Multiplier near 1 and tiny addend keep every accumulator finite
    // and non-degenerate for any iteration count.
    let m = black_box(0.999_999_9f64);
    let addend = black_box(1e-9f64);
    #[cfg(target_arch = "x86_64")]
    let use_fma = std::arch::is_x86_feature_detected!("fma");
    #[cfg(not(target_arch = "x86_64"))]
    let use_fma = false;
    let mut best = 0.0f64;
    for round in 0..=rounds {
        let start = Instant::now();
        let acc = if use_fma {
            #[cfg(target_arch = "x86_64")]
            // SAFETY: guarded by the is_x86_feature_detected!("fma")
            // check above.
            unsafe {
                fma_chains_fma(iters, m, addend)
            }
            #[cfg(not(target_arch = "x86_64"))]
            unreachable!()
        } else {
            fma_chains_portable(iters, m, addend)
        };
        let dt = start.elapsed().as_secs_f64();
        black_box(acc);
        let flops = (iters * FMA_ACCS * 2) as f64;
        if round > 0 && dt > 0.0 {
            best = best.max(flops / dt);
        }
    }
    best
}

/// The FMA-chain body with fused multiply-adds available to codegen.
// SAFETY: `target_feature` makes this fn unsafe to *call*; the single
// call site guards it with is_x86_feature_detected!("fma"). The body
// itself is ordinary safe arithmetic.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn fma_chains_fma(iters: usize, m: f64, addend: f64) -> [f64; FMA_ACCS] {
    let mut acc = [1.0f64; FMA_ACCS];
    for _ in 0..iters {
        for a in acc.iter_mut() {
            *a = a.mul_add(m, addend);
        }
    }
    acc
}

/// Fallback body: separate multiply and add, which every target
/// vectorizes without libm calls.
fn fma_chains_portable(iters: usize, m: f64, addend: f64) -> [f64; FMA_ACCS] {
    let mut acc = [1.0f64; FMA_ACCS];
    for _ in 0..iters {
        for a in acc.iter_mut() {
            *a = *a * m + addend;
        }
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("plf-prof-{}-{name}", std::process::id()))
    }

    #[test]
    fn shrunken_probes_yield_positive_peaks() {
        let r = measure_with(1 << 14, 20_000, 2);
        assert!(r.peak_mflops > 0, "{r:?}");
        assert!(r.peak_mbps > 0, "{r:?}");
        assert!(!r.cpu_model.is_empty());
        // Even a noisy host computes faster than a 1980s workstation.
        assert!(r.peak_mflops >= 10, "{r:?}");
    }

    #[test]
    fn cache_roundtrips_and_rejects_foreign_schema() {
        let r = HostRoofline {
            peak_mflops: 12_345,
            peak_mbps: 23_456,
            cpu_model: "Test \"CPU\" x1".into(),
            cores: 8,
            git_rev: "abc1234".into(),
            simd: "avx2+fma".into(),
        };
        let path = tmp_path("cache.json");
        r.save(&path).unwrap();
        assert_eq!(load_cached(&path), Some(r));
        std::fs::write(&path, "{\"schema\": \"something-else/9\"}").unwrap();
        assert_eq!(load_cached(&path), None);
        std::fs::write(&path, "not json").unwrap();
        assert_eq!(load_cached(&path), None);
        let _ = std::fs::remove_file(&path);
        assert_eq!(load_cached(&path), None);
    }

    #[test]
    fn ridge_is_flops_over_bandwidth() {
        let r = HostRoofline {
            peak_mflops: 10_000,
            peak_mbps: 20_000,
            cpu_model: String::new(),
            cores: 1,
            git_rev: String::new(),
            simd: String::new(),
        };
        assert!((r.ridge() - 0.5).abs() < 1e-12);
    }
}
