#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]
//! `plf-prof` — host performance profiling support for the PLF
//! workspace.
//!
//! Three concerns live here, all std-only:
//!
//! * [`roofline`] — machine calibration: a STREAM-triad bandwidth
//!   probe and an FMA peak-FLOP probe (single core, matching the
//!   single-threaded microbench cells), cached to
//!   [`roofline::CACHE_FILE`] with host provenance so `trace-report`
//!   and `plf-microbench` can place each kernel on the roofline
//!   without re-measuring.
//! * [`perf`] — optional Linux `perf_event_open` hardware counters
//!   (cycles, instructions, LLC misses) behind the `perf-counters`
//!   cargo feature, degrading to `None` wherever the syscall is
//!   unavailable.
//! * [`trend`] — cross-PR performance trend tracking: aggregates the
//!   committed `BENCH_*.json` files into a trend table and gates new
//!   results against the best prior PR per (kernel, backend, size)
//!   cell, with an audited waiver list for accepted regressions.
//!
//! [`json`] is the minimal recursive JSON reader the other modules
//! share (the workspace has no serde).

pub mod host;
pub mod json;
pub mod perf;
pub mod roofline;
pub mod trend;

pub use roofline::HostRoofline;
