//! A minimal recursive JSON reader.
//!
//! The workspace has no serde; the flat-object parser in
//! `plf_core::trace` deliberately rejects nesting and floats, but the
//! bench artifacts (`BENCH_*.json`, `HOST_ROOFLINE.json`) are nested
//! documents with fractional numbers, so trend tracking needs a real —
//! if small — parser. It accepts exactly the JSON this workspace
//! writes: objects, arrays, strings with the common escapes, `f64`
//! numbers, booleans and `null`. Object key order is preserved.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; everything this workspace writes fits an `f64`.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete document; trailing whitespace is allowed,
    /// trailing garbage is not.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object member lookup; `None` on missing key or non-object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    ///
    /// Numbers at or above 2^53 are rejected even when integral: they
    /// pass through an `f64` during parsing, which cannot represent
    /// every integer past that point, so `Some` here could silently
    /// hand back a rounded neighbor of what the document said (2^53
    /// itself is excluded because `9007199254740993` parses to it).
    pub fn as_u64(&self) -> Option<u64> {
        const LIMIT: f64 = 9_007_199_254_740_992.0; // 2^53
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n < LIMIT => Some(*n as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hi = self.hex4(self.pos + 1)?;
                            self.pos += 4;
                            match hi {
                                // High surrogate: JSON encodes
                                // non-BMP characters as a \uXXXX
                                // pair; the low half must follow
                                // immediately.
                                0xD800..=0xDBFF => {
                                    if self.bytes.get(self.pos + 1..self.pos + 3)
                                        != Some(b"\\u".as_slice())
                                    {
                                        return Err(format!(
                                            "lone high surrogate \\u{hi:04X} at byte {}",
                                            self.pos
                                        ));
                                    }
                                    let lo = self.hex4(self.pos + 3)?;
                                    if !(0xDC00..=0xDFFF).contains(&lo) {
                                        return Err(format!(
                                            "high surrogate \\u{hi:04X} followed by \\u{lo:04X}, \
                                             not a low surrogate"
                                        ));
                                    }
                                    self.pos += 6;
                                    let code = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                                    out.push(char::from_u32(code).ok_or("bad surrogate pair")?);
                                }
                                0xDC00..=0xDFFF => {
                                    return Err(format!(
                                        "lone low surrogate \\u{hi:04X} at byte {}",
                                        self.pos
                                    ))
                                }
                                _ => out.push(char::from_u32(hi).ok_or("bad \\u escape")?),
                            }
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through verbatim.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    /// Four hex digits starting at byte `at`, as a UTF-16 code unit.
    fn hex4(&self, at: usize) -> Result<u32, String> {
        let hex = self.bytes.get(at..at + 4).ok_or("truncated \\u escape")?;
        u32::from_str_radix(std::str::from_utf8(hex).map_err(|e| e.to_string())?, 16)
            .map_err(|e| e.to_string())
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document_with_floats() {
        let doc = r#"{
          "schema": "plf-microbench/2",
          "host_simd": true,
          "results": [
            {"kernel": "newview_ii", "patterns": 1000,
             "ns_per_site": {"scalar": 5.600, "simd": 1.25e0}}
          ],
          "nothing": null
        }"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some("plf-microbench/2"));
        assert_eq!(v.get("host_simd"), Some(&Json::Bool(true)));
        assert_eq!(v.get("nothing"), Some(&Json::Null));
        let row = &v.get("results").unwrap().as_arr().unwrap()[0];
        assert_eq!(row.get("patterns").unwrap().as_u64(), Some(1000));
        let ns = row.get("ns_per_site").unwrap();
        assert_eq!(ns.get("scalar").unwrap().as_f64(), Some(5.6));
        assert_eq!(ns.get("simd").unwrap().as_f64(), Some(1.25));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Json::parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} x").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::parse("3.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-2").unwrap().as_u64(), None);
        assert_eq!(Json::parse("12").unwrap().as_u64(), Some(12));
    }

    #[test]
    fn as_u64_rejects_integers_past_f64_exactness() {
        // 2^53 - 1 is the last integer every neighbor of which is
        // exactly representable; from 2^53 up, the f64 parse may have
        // rounded (9007199254740993 parses to exactly 2^53), so
        // returning a u64 would invent digits.
        assert_eq!(
            Json::parse("9007199254740991").unwrap().as_u64(),
            Some(9007199254740991)
        );
        assert_eq!(Json::parse("9007199254740992").unwrap().as_u64(), None);
        assert_eq!(Json::parse("9007199254740993").unwrap().as_u64(), None);
        assert_eq!(Json::parse("18446744073709551615").unwrap().as_u64(), None);
    }

    #[test]
    fn surrogate_pairs_decode_and_lone_halves_are_rejected() {
        // U+1F600 GRINNING FACE as its JSON surrogate pair.
        let v = Json::parse(r#""\uD83D\uDE00""#).unwrap();
        assert_eq!(v.as_str(), Some("\u{1F600}"));
        // Pair embedded mid-string, mixed with other escapes
        // (U+1D11E MUSICAL SYMBOL G CLEF).
        let v = Json::parse(r#""ok\t\uD834\uDD1E!""#).unwrap();
        assert_eq!(v.as_str(), Some("ok\t\u{1D11E}!"));
        // Raw multi-byte UTF-8 still passes through verbatim, and BMP
        // escapes still decode directly.
        assert_eq!(
            Json::parse("\"\u{E9}\u{1F600}\"").unwrap().as_str(),
            Some("\u{E9}\u{1F600}")
        );
        assert_eq!(Json::parse(r#""\u00e9""#).unwrap().as_str(), Some("\u{E9}"));

        // Lone halves and malformed pairs are errors, not mojibake.
        for bad in [
            r#""\uD83D""#,       // lone high surrogate at end
            r#""\uD83Dx""#,      // high surrogate followed by text
            r#""\uD83D\n""#,     // high surrogate, non-\u escape
            r#""\uDE00""#,       // lone low surrogate
            r#""\uD83D\uD83D""#, // high followed by high
            r#""\uD83DA""#,      // high followed by BMP escape
        ] {
            assert!(Json::parse(bad).is_err(), "accepted {bad}");
        }
    }
}
