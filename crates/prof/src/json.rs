//! A minimal recursive JSON reader.
//!
//! The workspace has no serde; the flat-object parser in
//! `plf_core::trace` deliberately rejects nesting and floats, but the
//! bench artifacts (`BENCH_*.json`, `HOST_ROOFLINE.json`) are nested
//! documents with fractional numbers, so trend tracking needs a real —
//! if small — parser. It accepts exactly the JSON this workspace
//! writes: objects, arrays, strings with the common escapes, `f64`
//! numbers, booleans and `null`. Object key order is preserved.

/// A parsed JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number; everything this workspace writes fits an `f64`.
    Num(f64),
    /// A string, unescaped.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in document order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses a complete document; trailing whitespace is allowed,
    /// trailing garbage is not.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing garbage at byte {}", p.pos));
        }
        Ok(v)
    }

    /// Object member lookup; `None` on missing key or non-object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char,
                self.pos,
                self.peek().map(|c| c as char)
            ))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            other => Err(format!(
                "unexpected {:?} at byte {}",
                other.map(|c| c as char),
                self.pos
            )),
        }
    }

    fn literal(&mut self, word: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            members.push((key, self.value()?));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(members));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos,
                        other.map(|c| c as char)
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err("unterminated string".into()),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or("truncated \\u escape")?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| e.to_string())?;
                            // Surrogate pairs never appear in the
                            // ASCII-only documents this reads.
                            out.push(char::from_u32(code).ok_or("bad \\u escape")?);
                            self.pos += 4;
                        }
                        other => return Err(format!("bad escape {:?}", other.map(|c| c as char))),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Multi-byte UTF-8 sequences pass through verbatim.
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && self.bytes[self.pos] & 0xC0 == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(
                        std::str::from_utf8(&self.bytes[start..self.pos])
                            .map_err(|e| e.to_string())?,
                    );
                }
            }
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).map_err(|e| e.to_string())?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|e| format!("bad number {text:?}: {e}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document_with_floats() {
        let doc = r#"{
          "schema": "plf-microbench/2",
          "host_simd": true,
          "results": [
            {"kernel": "newview_ii", "patterns": 1000,
             "ns_per_site": {"scalar": 5.600, "simd": 1.25e0}}
          ],
          "nothing": null
        }"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("schema").unwrap().as_str(), Some("plf-microbench/2"));
        assert_eq!(v.get("host_simd"), Some(&Json::Bool(true)));
        assert_eq!(v.get("nothing"), Some(&Json::Null));
        let row = &v.get("results").unwrap().as_arr().unwrap()[0];
        assert_eq!(row.get("patterns").unwrap().as_u64(), Some(1000));
        let ns = row.get("ns_per_site").unwrap();
        assert_eq!(ns.get("scalar").unwrap().as_f64(), Some(5.6));
        assert_eq!(ns.get("simd").unwrap().as_f64(), Some(1.25));
    }

    #[test]
    fn string_escapes_roundtrip() {
        let v = Json::parse(r#""a\"b\\c\ndA""#).unwrap();
        assert_eq!(v.as_str(), Some("a\"b\\c\ndA"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("{\"a\":1} x").is_err());
        assert!(Json::parse("nul").is_err());
        assert!(Json::parse("").is_err());
    }

    #[test]
    fn as_u64_rejects_fractions_and_negatives() {
        assert_eq!(Json::parse("3.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-2").unwrap().as_u64(), None);
        assert_eq!(Json::parse("12").unwrap().as_u64(), Some(12));
    }
}
