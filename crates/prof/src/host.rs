//! Host provenance: who produced a benchmark number.
//!
//! Every artifact this workspace commits (`BENCH_*.json`,
//! `HOST_ROOFLINE.json`) carries enough provenance to judge later
//! whether two numbers are comparable: CPU model, core count, the git
//! revision of the tree that produced them, and the SIMD target
//! features the binary was compiled for.

/// The CPU model string from `/proc/cpuinfo`, or `"unknown"` where
/// that file is absent (non-Linux hosts).
pub fn cpu_model() -> String {
    let Ok(text) = std::fs::read_to_string("/proc/cpuinfo") else {
        return "unknown".into();
    };
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("model name") {
            if let Some((_, v)) = rest.split_once(':') {
                return v.trim().to_string();
            }
        }
    }
    "unknown".into()
}

/// Logical cores available to this process.
pub fn cores() -> u64 {
    std::thread::available_parallelism()
        .map(|n| n.get() as u64)
        .unwrap_or(1)
}

/// Short git revision of the working tree, `"unknown"` outside a repo
/// (or where git is not installed); `-dirty` is appended when the
/// tree has uncommitted changes, so a committed artifact can be traced
/// to an exact source state.
pub fn git_rev() -> String {
    let run = |args: &[&str]| -> Option<String> {
        let out = std::process::Command::new("git").args(args).output().ok()?;
        out.status
            .success()
            .then(|| String::from_utf8_lossy(&out.stdout).trim().to_string())
    };
    let Some(rev) = run(&["rev-parse", "--short", "HEAD"]) else {
        return "unknown".into();
    };
    match run(&["status", "--porcelain"]) {
        Some(s) if !s.is_empty() => format!("{rev}-dirty"),
        _ => rev,
    }
}

/// The x86 SIMD target features the *running binary* was compiled
/// with or can detect at runtime, as a compact flag string
/// (e.g. `"avx2+fma"`); `"none"` when neither is available.
pub fn simd_flags() -> String {
    #[cfg(target_arch = "x86_64")]
    {
        let mut flags = Vec::new();
        if std::arch::is_x86_feature_detected!("avx2") {
            flags.push("avx2");
        }
        if std::arch::is_x86_feature_detected!("fma") {
            flags.push("fma");
        }
        if std::arch::is_x86_feature_detected!("avx512f") {
            flags.push("avx512f");
        }
        if flags.is_empty() {
            "none".into()
        } else {
            flags.join("+")
        }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        "none".into()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn provenance_is_always_nonempty() {
        assert!(!cpu_model().is_empty());
        assert!(cores() >= 1);
        assert!(!git_rev().is_empty());
        assert!(!simd_flags().is_empty());
    }
}
