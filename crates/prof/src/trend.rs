//! Cross-PR performance trend tracking over committed `BENCH_*.json`.
//!
//! Each PR that runs `plf-microbench` commits a `BENCH_<n>.json`
//! artifact. This module aggregates every such file in a directory
//! into one trend table — per (kernel, backend, pattern-count) cell, a
//! series of ns/site values ordered by PR number — and gates the
//! newest file against history: a cell that is more than
//! [`DEFAULT_TOLERANCE`] slower than the **best prior** PR fails the
//! gate unless the regression is waived.
//!
//! Waivers are an audited allowlist (`trend_waivers.txt`, same idiom
//! as the xtask lint allowlists): one `kernel backend patterns` triple
//! per line with a mandatory `#` comment citing why the regression is
//! accepted. Comparing against the best *prior* PR (not the immediate
//! predecessor) stops slow drift: two back-to-back 8% regressions fail
//! even though each is under the per-step tolerance.
//!
//! All `plf-microbench/*` schemas share the `results` array shape, so
//! one parser covers the whole history.

use crate::json::Json;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::path::Path;

/// Gate tolerance: a cell may be at most 10% slower than the best
/// prior PR. Wide enough for shared-VM timing noise on the trimmed
/// mean, tight enough to catch real codegen regressions.
pub const DEFAULT_TOLERANCE: f64 = 0.10;

/// One (kernel, backend, size) measurement from one bench file.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchCell {
    /// Kernel entry-point name (`"newview_ii"` …).
    pub kernel: String,
    /// Backend name (`"scalar"`, `"vector"`, `"simd"`, `"auto"`).
    pub backend: String,
    /// Pattern count of the cell.
    pub patterns: u64,
    /// Trimmed-mean nanoseconds per site.
    pub ns_per_site: f64,
}

/// One parsed `BENCH_<n>.json`.
#[derive(Clone, Debug, PartialEq)]
pub struct BenchFile {
    /// The `<n>` from the filename — the PR ordering key.
    pub seq: u64,
    /// Filename, for reporting.
    pub name: String,
    /// Schema marker (`"plf-microbench/2"` …).
    pub schema: String,
    /// Every cell in the file.
    pub cells: Vec<BenchCell>,
}

/// Parses one bench document (any `plf-microbench/*` schema).
pub fn parse_bench(name: &str, seq: u64, text: &str) -> Result<BenchFile, String> {
    let v = Json::parse(text).map_err(|e| format!("{name}: {e}"))?;
    let schema = v
        .get("schema")
        .and_then(Json::as_str)
        .ok_or_else(|| format!("{name}: missing schema"))?;
    if !schema.starts_with("plf-microbench/") {
        return Err(format!("{name}: foreign schema {schema:?}"));
    }
    let rows = v
        .get("results")
        .and_then(Json::as_arr)
        .ok_or_else(|| format!("{name}: missing results array"))?;
    let mut cells = Vec::new();
    for row in rows {
        let kernel = row
            .get("kernel")
            .and_then(Json::as_str)
            .ok_or_else(|| format!("{name}: result row without kernel"))?;
        let patterns = row
            .get("patterns")
            .and_then(Json::as_u64)
            .ok_or_else(|| format!("{name}: result row without patterns"))?;
        let ns = row
            .get("ns_per_site")
            .ok_or_else(|| format!("{name}: result row without ns_per_site"))?;
        let Json::Obj(backends) = ns else {
            return Err(format!("{name}: ns_per_site is not an object"));
        };
        for (backend, value) in backends {
            let ns_per_site = value
                .as_f64()
                .ok_or_else(|| format!("{name}: non-numeric ns_per_site.{backend}"))?;
            cells.push(BenchCell {
                kernel: kernel.to_string(),
                backend: backend.clone(),
                patterns,
                ns_per_site,
            });
        }
    }
    Ok(BenchFile {
        seq,
        name: name.to_string(),
        schema: schema.to_string(),
        cells,
    })
}

/// Loads every `BENCH_<n>.json` in `dir`, ascending by `<n>`.
/// Unparseable files are hard errors — a corrupt committed artifact
/// should fail CI loudly, not silently narrow the history.
pub fn scan_dir(dir: &Path) -> Result<Vec<BenchFile>, String> {
    let mut files = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let name = entry.file_name().to_string_lossy().into_owned();
        let Some(seq) = name
            .strip_prefix("BENCH_")
            .and_then(|s| s.strip_suffix(".json"))
            .and_then(|s| s.parse::<u64>().ok())
        else {
            continue;
        };
        let text = std::fs::read_to_string(entry.path()).map_err(|e| format!("{name}: {e}"))?;
        files.push(parse_bench(&name, seq, &text)?);
    }
    files.sort_by_key(|f| f.seq);
    Ok(files)
}

/// One audited accepted regression.
#[derive(Clone, Debug, PartialEq)]
pub struct Waiver {
    /// Kernel name the waiver covers.
    pub kernel: String,
    /// Backend the waiver covers.
    pub backend: String,
    /// Pattern count the waiver covers.
    pub patterns: u64,
}

/// Parses a waiver file: `kernel backend patterns # reason` per line;
/// blank lines and `#`-leading lines are comments. Malformed lines
/// are errors — a typo in a waiver must not silently disable it.
pub fn parse_waivers(text: &str) -> Result<Vec<Waiver>, String> {
    let mut out = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let parts: Vec<&str> = line.split_whitespace().collect();
        let [kernel, backend, patterns] = parts[..] else {
            return Err(format!(
                "waiver line {}: expected `kernel backend patterns`, got {raw:?}",
                i + 1
            ));
        };
        let patterns = patterns
            .parse::<u64>()
            .map_err(|e| format!("waiver line {}: bad pattern count: {e}", i + 1))?;
        out.push(Waiver {
            kernel: kernel.to_string(),
            backend: backend.to_string(),
            patterns,
        });
    }
    Ok(out)
}

/// One cell of the newest file that exceeded tolerance vs history.
#[derive(Clone, Debug, PartialEq)]
pub struct Regression {
    /// Kernel name.
    pub kernel: String,
    /// Backend name.
    pub backend: String,
    /// Pattern count.
    pub patterns: u64,
    /// Best (lowest) prior ns/site and the file it came from.
    pub best_prior: f64,
    /// Best prior file name.
    pub best_prior_file: String,
    /// Newest ns/site.
    pub latest: f64,
    /// Whether an entry in the waiver list covers this cell.
    pub waived: bool,
}

impl Regression {
    /// Slowdown factor vs the best prior PR.
    pub fn ratio(&self) -> f64 {
        self.latest / self.best_prior
    }
}

/// Outcome of gating the newest file against history.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct GateReport {
    /// Every over-tolerance cell, waived or not.
    pub regressions: Vec<Regression>,
    /// Cells compared (newest cells that have at least one prior).
    pub compared: usize,
}

impl GateReport {
    /// The gate fails on any unwaived regression.
    pub fn failed(&self) -> bool {
        self.regressions.iter().any(|r| !r.waived)
    }

    /// Human-readable summary, one line per regression.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for r in &self.regressions {
            let _ = writeln!(
                s,
                "{} {} {} @ {}: {:.3} ns/site vs best prior {:.3} ({}) = {:.2}x",
                if r.waived { "WAIVED" } else { "FAIL" },
                r.kernel,
                r.backend,
                r.patterns,
                r.latest,
                r.best_prior,
                r.best_prior_file,
                r.ratio()
            );
        }
        let _ = writeln!(
            s,
            "trend gate: {} cells compared, {} regressions ({} waived)",
            self.compared,
            self.regressions.len(),
            self.regressions.iter().filter(|r| r.waived).count()
        );
        s
    }
}

type CellKey = (String, String, u64);

fn key(c: &BenchCell) -> CellKey {
    (c.kernel.clone(), c.backend.clone(), c.patterns)
}

/// Gates the newest of `files` against all earlier ones. With fewer
/// than two files there is nothing to compare and the gate passes.
pub fn gate(files: &[BenchFile], tolerance: f64, waivers: &[Waiver]) -> GateReport {
    let Some((latest, prior)) = files.split_last() else {
        return GateReport::default();
    };
    if prior.is_empty() {
        return GateReport::default();
    }
    // Best prior value per cell key across the whole history.
    let mut best: BTreeMap<CellKey, (f64, &str)> = BTreeMap::new();
    for f in prior {
        for c in &f.cells {
            let entry = best.entry(key(c)).or_insert((c.ns_per_site, &f.name));
            if c.ns_per_site < entry.0 {
                *entry = (c.ns_per_site, &f.name);
            }
        }
    }
    let mut report = GateReport::default();
    for c in &latest.cells {
        let Some(&(best_prior, best_file)) = best.get(&key(c)) else {
            continue; // first measurement of this cell
        };
        report.compared += 1;
        if c.ns_per_site > (1.0 + tolerance) * best_prior {
            report.regressions.push(Regression {
                kernel: c.kernel.clone(),
                backend: c.backend.clone(),
                patterns: c.patterns,
                best_prior,
                best_prior_file: best_file.to_string(),
                latest: c.ns_per_site,
                waived: waivers.iter().any(|w| {
                    w.kernel == c.kernel && w.backend == c.backend && w.patterns == c.patterns
                }),
            });
        }
    }
    report
}

/// All series across the history: cell key → ns/site per file
/// (`None` where a file lacks the cell).
fn series(files: &[BenchFile]) -> BTreeMap<CellKey, Vec<Option<f64>>> {
    let mut out: BTreeMap<CellKey, Vec<Option<f64>>> = BTreeMap::new();
    for (i, f) in files.iter().enumerate() {
        for c in &f.cells {
            let row = out.entry(key(c)).or_insert_with(|| vec![None; files.len()]);
            row[i] = Some(c.ns_per_site);
        }
    }
    out
}

/// Renders `BENCH_TREND.json`.
pub fn render_trend_json(files: &[BenchFile]) -> String {
    let mut s = String::new();
    s.push_str("{\n  \"schema\": \"plf-bench-trend/1\",\n  \"files\": [");
    for (i, f) in files.iter().enumerate() {
        if i > 0 {
            s.push_str(", ");
        }
        let _ = write!(s, "{{\"seq\": {}, \"name\": \"{}\"}}", f.seq, f.name);
    }
    s.push_str("],\n  \"series\": [\n");
    let all = series(files);
    for (i, ((kernel, backend, patterns), values)) in all.iter().enumerate() {
        let _ = write!(
            s,
            "    {{\"kernel\": \"{kernel}\", \"backend\": \"{backend}\", \
             \"patterns\": {patterns}, \"ns_per_site\": ["
        );
        for (j, v) in values.iter().enumerate() {
            if j > 0 {
                s.push_str(", ");
            }
            match v {
                Some(x) => {
                    let _ = write!(s, "{x:.3}");
                }
                None => s.push_str("null"),
            }
        }
        s.push_str("]}");
        s.push_str(if i + 1 == all.len() { "\n" } else { ",\n" });
    }
    s.push_str("  ]\n}\n");
    s
}

/// Renders the trend as a markdown document: one table per pattern
/// count, kernels × backends as rows, PRs as columns, newest-vs-best
/// delta in the last column.
pub fn render_trend_markdown(files: &[BenchFile]) -> String {
    let mut s = String::from("# Kernel performance trend (ns/site)\n");
    let _ = writeln!(
        s,
        "\nLower is better. Generated by `cargo xtask bench-trend` from {} committed bench file(s).\n",
        files.len()
    );
    let all = series(files);
    let mut sizes: Vec<u64> = all.keys().map(|(_, _, p)| *p).collect();
    sizes.sort_unstable();
    sizes.dedup();
    for patterns in sizes {
        let _ = writeln!(s, "## {patterns} patterns\n");
        s.push_str("| kernel | backend |");
        for f in files {
            let _ = write!(s, " {} |", f.name.trim_end_matches(".json"));
        }
        s.push_str(" vs best |\n|---|---|");
        for _ in files {
            s.push_str("---|");
        }
        s.push_str("---|\n");
        for ((kernel, backend, p), values) in &all {
            if *p != patterns {
                continue;
            }
            let _ = write!(s, "| {kernel} | {backend} |");
            for v in values {
                match v {
                    Some(x) => {
                        let _ = write!(s, " {x:.2} |");
                    }
                    None => s.push_str(" – |"),
                }
            }
            let newest = values.last().and_then(|v| *v);
            let best_prior = values[..values.len().saturating_sub(1)]
                .iter()
                .filter_map(|v| *v)
                .fold(f64::INFINITY, f64::min);
            match (newest, best_prior.is_finite()) {
                (Some(n), true) => {
                    let _ = writeln!(s, " {:+.1}% |", (n / best_prior - 1.0) * 100.0);
                }
                _ => s.push_str(" – |\n"),
            }
        }
        s.push('\n');
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(seq: u64, cells: &[(&str, &str, u64, f64)]) -> BenchFile {
        BenchFile {
            seq,
            name: format!("BENCH_{seq}.json"),
            schema: "plf-microbench/2".into(),
            cells: cells
                .iter()
                .map(|&(kernel, backend, patterns, ns)| BenchCell {
                    kernel: kernel.into(),
                    backend: backend.into(),
                    patterns,
                    ns_per_site: ns,
                })
                .collect(),
        }
    }

    #[test]
    fn parses_real_microbench_shape() {
        let doc = r#"{
          "schema": "plf-microbench/2",
          "host_simd": true,
          "backends": ["scalar", "vector"],
          "results": [
            {"kernel": "newview_ii", "patterns": 1000,
             "ns_per_site": {"scalar": 5.600, "vector": 2.100},
             "speedup_vs_scalar": {"vector": 2.667}}
          ],
          "site_repeats": {"kernel_newview_ii": {"sites": 100000}}
        }"#;
        let f = parse_bench("BENCH_6.json", 6, doc).unwrap();
        assert_eq!(f.seq, 6);
        assert_eq!(f.cells.len(), 2);
        assert_eq!(f.cells[0].kernel, "newview_ii");
        assert_eq!(f.cells[1].backend, "vector");
        assert!((f.cells[1].ns_per_site - 2.1).abs() < 1e-12);
        assert!(parse_bench("x", 1, r#"{"schema": "other/1", "results": []}"#).is_err());
    }

    #[test]
    fn synthetic_20pct_regression_fails_gate() {
        let history = vec![
            file(5, &[("newview_ii", "simd", 1000, 1.00)]),
            file(6, &[("newview_ii", "simd", 1000, 1.20)]),
        ];
        let report = gate(&history, DEFAULT_TOLERANCE, &[]);
        assert!(report.failed());
        assert_eq!(report.regressions.len(), 1);
        let r = &report.regressions[0];
        assert!((r.ratio() - 1.2).abs() < 1e-12);
        assert_eq!(r.best_prior_file, "BENCH_5.json");
        assert!(report.render().contains("FAIL newview_ii simd @ 1000"));
    }

    #[test]
    fn waived_regression_passes_but_is_reported() {
        let history = vec![
            file(5, &[("derivative_sum_ii", "simd", 1000, 1.00)]),
            file(6, &[("derivative_sum_ii", "simd", 1000, 1.71)]),
        ];
        let waivers = parse_waivers("derivative_sum_ii simd 1000  # accepted trade-off\n").unwrap();
        let report = gate(&history, DEFAULT_TOLERANCE, &waivers);
        assert!(!report.failed());
        assert_eq!(report.regressions.len(), 1);
        assert!(report.regressions[0].waived);
        assert!(report.render().contains("WAIVED"));
    }

    #[test]
    fn gate_compares_against_best_prior_not_predecessor() {
        // 8% + 8% drift: each step under tolerance, sum over it.
        let history = vec![
            file(4, &[("evaluate_ii", "auto", 10000, 1.00)]),
            file(5, &[("evaluate_ii", "auto", 10000, 1.08)]),
            file(6, &[("evaluate_ii", "auto", 10000, 1.1664)]),
        ];
        assert!(gate(&history, DEFAULT_TOLERANCE, &[]).failed());
    }

    #[test]
    fn improvements_and_new_cells_pass() {
        let history = vec![
            file(5, &[("newview_ii", "simd", 1000, 2.00)]),
            file(
                6,
                &[
                    ("newview_ii", "simd", 1000, 1.50),
                    ("newview_ii", "auto", 1000, 1.40), // new backend
                ],
            ),
        ];
        let report = gate(&history, DEFAULT_TOLERANCE, &[]);
        assert!(!report.failed());
        assert!(report.regressions.is_empty());
        assert_eq!(report.compared, 1);
        // Single or empty history trivially passes.
        assert!(!gate(&history[..1], DEFAULT_TOLERANCE, &[]).failed());
        assert!(!gate(&[], DEFAULT_TOLERANCE, &[]).failed());
    }

    #[test]
    fn waiver_parser_rejects_malformed_lines() {
        assert!(parse_waivers("# pure comment\n\nk b 100 # ok\n").is_ok());
        assert!(parse_waivers("k b # missing patterns\n").is_err());
        assert!(parse_waivers("k b ten # not a number\n").is_err());
    }

    #[test]
    fn trend_renderers_cover_all_cells() {
        let history = vec![
            file(5, &[("newview_ii", "simd", 1000, 2.00)]),
            file(
                6,
                &[
                    ("newview_ii", "simd", 1000, 1.50),
                    ("evaluate_ii", "auto", 10000, 3.25),
                ],
            ),
        ];
        let json = render_trend_json(&history);
        assert!(json.contains("\"schema\": \"plf-bench-trend/1\""), "{json}");
        assert!(json.contains("[2.000, 1.500]"), "{json}");
        assert!(json.contains("[null, 3.250]"), "{json}");
        // The trend json parses with our own reader.
        let v = Json::parse(&json).unwrap();
        assert_eq!(v.get("series").unwrap().as_arr().unwrap().len(), 2);
        let md = render_trend_markdown(&history);
        assert!(md.contains("## 1000 patterns"), "{md}");
        assert!(
            md.contains("| newview_ii | simd | 2.00 | 1.50 | -25.0% |"),
            "{md}"
        );
        assert!(md.contains("– |"), "{md}");
    }
}
