//! Per-site rate estimation for the CAT model (Stamatakis 2006).
//!
//! The CAT procedure: for each site, find the evolutionary rate that
//! maximizes that site's likelihood on the current tree (scanned over
//! a log-spaced candidate grid), then cluster the per-site optima into
//! a small number of categories and normalize so the weighted mean
//! rate is 1. This is the estimation half of the §VII "CAT model"
//! future-work item; the evaluation half is `plf_core::cat`.

use phylo_models::{CatRates, Eigensystem};
use phylo_tree::Tree;
use plf_core::cat::CatEngine;

/// Configuration of the CAT estimation procedure.
#[derive(Clone, Copy, Debug)]
pub struct CatEstimateConfig {
    /// Number of candidate rates scanned per site.
    pub grid_size: usize,
    /// Smallest candidate rate.
    pub rate_min: f64,
    /// Largest candidate rate.
    pub rate_max: f64,
    /// Number of final categories (RAxML default: 25).
    pub categories: usize,
}

impl Default for CatEstimateConfig {
    fn default() -> Self {
        CatEstimateConfig {
            grid_size: 16,
            rate_min: 0.05,
            rate_max: 8.0,
            categories: 4,
        }
    }
}

/// Estimates per-site CAT rates on `tree`.
///
/// `tips[tip_id][pattern]` are 4-bit codes in the tree's tip-id order;
/// the returned assignment is normalized to weighted mean rate 1.
pub fn estimate_cat_rates(
    tree: &Tree,
    eigen: &Eigensystem,
    tips: &[Vec<u8>],
    weights: &[u32],
    config: CatEstimateConfig,
) -> CatRates {
    assert!(config.grid_size >= 2 && config.categories >= 1);
    assert!(config.rate_min > 0.0 && config.rate_max > config.rate_min);
    let n = weights.len();

    // Candidate rates, log-spaced.
    let grid: Vec<f64> = (0..config.grid_size)
        .map(|i| {
            let t = i as f64 / (config.grid_size - 1) as f64;
            (config.rate_min.ln() + t * (config.rate_max / config.rate_min).ln()).exp()
        })
        .collect();

    // For every candidate rate, evaluate all sites at that rate in one
    // pass (a homogeneous single-category CAT engine) and keep the
    // argmax per site.
    let mut best_rate_idx = vec![0usize; n];
    let mut best_ll = vec![f64::NEG_INFINITY; n];
    for (gi, &r) in grid.iter().enumerate() {
        let rates = CatRates::new(vec![r], vec![0; n]);
        let mut engine =
            CatEngine::new(tree, eigen.clone(), rates, tips.to_vec(), weights.to_vec());
        let site_ll = engine.site_log_likelihoods(tree, 0);
        for i in 0..n {
            if site_ll[i] > best_ll[i] {
                best_ll[i] = site_ll[i];
                best_rate_idx[i] = gi;
            }
        }
    }

    // Cluster: quantile-bucket the per-site optimal rates into
    // `categories` groups and use each group's weighted geometric mean
    // as the category rate.
    let mut order: Vec<usize> = (0..n).collect();
    order.sort_by(|&a, &b| best_rate_idx[a].cmp(&best_rate_idx[b]));
    let categories = config.categories.min(n);
    let mut site_category = vec![0u32; n];
    let mut cat_rates = Vec::with_capacity(categories);
    for c in 0..categories {
        let lo = c * n / categories;
        let hi = ((c + 1) * n / categories).max(lo + 1).min(n);
        let members = &order[lo..hi];
        let mut wsum = 0.0;
        let mut lsum = 0.0;
        for &site in members {
            let w = weights[site].max(1) as f64;
            wsum += w;
            lsum += w * grid[best_rate_idx[site]].ln();
        }
        cat_rates.push((lsum / wsum).exp());
        for &site in members {
            site_category[site] = c as u32;
        }
    }
    // Merge numerically identical neighbors is unnecessary: CatRates
    // tolerates duplicates. Normalize the weighted mean to 1.
    let mut rates = CatRates::new(cat_rates, site_category);
    rates.normalize(weights);
    rates
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_models::{DiscreteGamma, Gtr, GtrParams};
    use phylo_tree::newick;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    /// Simulates data where the first half of the sites evolve slowly
    /// and the second half fast, returning (tree, tips, weights).
    fn two_speed_dataset(sites_per_class: usize) -> (Tree, Vec<Vec<u8>>, Vec<u32>, Gtr) {
        let tree = newick::parse("((a:0.2,b:0.3):0.1,c:0.25,(d:0.15,e:0.35):0.2);").unwrap();
        let gtr = Gtr::new(GtrParams::jc69());
        let mut rng = SmallRng::seed_from_u64(42);
        // Slow sites: shrink all branches; fast: stretch them.
        let scale_tree = |f: f64| {
            let mut t = tree.clone();
            for e in 0..t.num_edges() {
                let l = t.length(e);
                t.set_length(e, l * f).unwrap();
            }
            t
        };
        let gamma = DiscreteGamma::new(50.0); // nearly homogeneous within class
        let slow = phylo_seqgen::simulate_states(
            &scale_tree(0.1),
            gtr.eigen(),
            &gamma,
            sites_per_class,
            &mut rng,
        );
        let fast = phylo_seqgen::simulate_states(
            &scale_tree(3.0),
            gtr.eigen(),
            &gamma,
            sites_per_class,
            &mut rng,
        );
        let tips: Vec<Vec<u8>> = (0..5)
            .map(|t| {
                let mut row: Vec<u8> = slow[t].iter().map(|&s| 1u8 << s).collect();
                row.extend(fast[t].iter().map(|&s| 1u8 << s));
                row
            })
            .collect();
        let weights = vec![1u32; 2 * sites_per_class];
        (tree, tips, weights, gtr)
    }

    #[test]
    fn recovers_two_speed_structure() {
        let (tree, tips, weights, gtr) = two_speed_dataset(300);
        let cats = estimate_cat_rates(
            &tree,
            gtr.eigen(),
            &tips,
            &weights,
            CatEstimateConfig {
                categories: 2,
                ..Default::default()
            },
        );
        // Mean estimated rate in the fast half must clearly exceed the
        // slow half.
        let n = weights.len();
        let mean_rate = |range: std::ops::Range<usize>| -> f64 {
            range.clone().map(|i| cats.site_rate(i)).sum::<f64>() / range.len() as f64
        };
        let slow = mean_rate(0..n / 2);
        let fast = mean_rate(n / 2..n);
        assert!(
            fast > 2.0 * slow,
            "slow mean {slow}, fast mean {fast} — classes not separated"
        );
        // Normalization: weighted mean rate 1.
        let mean: f64 = (0..n).map(|i| cats.site_rate(i)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 1e-9, "mean {mean}");
    }

    #[test]
    fn estimated_cat_beats_homogeneous_fit() {
        let (tree, tips, weights, gtr) = two_speed_dataset(200);
        let cats = estimate_cat_rates(&tree, gtr.eigen(), &tips, &weights, Default::default());
        let mut cat_engine = CatEngine::new(
            &tree,
            gtr.eigen().clone(),
            cats,
            tips.clone(),
            weights.clone(),
        );
        let ll_cat = cat_engine.log_likelihood(&tree, 0);
        let mut homog = CatEngine::new(
            &tree,
            gtr.eigen().clone(),
            CatRates::homogeneous(weights.len()),
            tips,
            weights,
        );
        let ll_homog = homog.log_likelihood(&tree, 0);
        assert!(
            ll_cat > ll_homog + 10.0,
            "CAT {ll_cat} vs homogeneous {ll_homog}"
        );
    }

    #[test]
    fn single_category_degenerates_to_homogeneous() {
        let (tree, tips, weights, gtr) = two_speed_dataset(50);
        let cats = estimate_cat_rates(
            &tree,
            gtr.eigen(),
            &tips,
            &weights,
            CatEstimateConfig {
                categories: 1,
                ..Default::default()
            },
        );
        assert_eq!(cats.num_categories(), 1);
        assert!((cats.rates()[0] - 1.0).abs() < 1e-9, "normalized to 1");
    }
}
