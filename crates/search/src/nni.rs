//! NNI polishing rounds.
//!
//! Lazy SPR with bounded local smoothing can stall one
//! nearest-neighbor interchange away from a better topology (the
//! classic local optimum of hill-climbing tree search). An NNI pass
//! with thorough local branch optimization around each internal edge
//! escapes exactly those optima; RAxML's slow descent phase plays the
//! same role.

use crate::newton::optimize_branch;
use crate::Evaluator;
use phylo_tree::moves::{nni, nni_swap, NniVariant};
use phylo_tree::{EdgeId, Tree};

/// Result of one NNI round.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NniRoundResult {
    /// Log-likelihood after the round.
    pub log_likelihood: f64,
    /// Accepted interchanges.
    pub accepted: usize,
    /// Scored interchanges.
    pub evaluated: usize,
}

/// The five edges incident to the endpoints of internal edge `e`
/// (including `e` itself): the neighborhood an NNI perturbs.
fn local_edges(tree: &Tree, e: EdgeId) -> Vec<EdgeId> {
    let (u, v) = tree.endpoints(e);
    let mut out = vec![e];
    out.extend(tree.incident(u).iter().copied().filter(|&x| x != e));
    out.extend(tree.incident(v).iter().copied().filter(|&x| x != e));
    out
}

/// One NNI round over all internal edges, both variants each, with
/// local 5-branch re-optimization before accepting.
pub fn nni_round<E: Evaluator + ?Sized>(
    evaluator: &mut E,
    tree: &mut Tree,
    epsilon: f64,
) -> NniRoundResult {
    let _span = plf_core::span::enter("nni_round");
    let mut current = evaluator.log_likelihood(tree, 0);
    let mut accepted = 0;
    let mut evaluated = 0;

    let internal: Vec<EdgeId> = tree.internal_edges().collect();
    for e in internal {
        for variant in [NniVariant::First, NniVariant::Second] {
            let saved: Vec<(EdgeId, f64)> = local_edges(tree, e)
                .into_iter()
                .map(|x| (x, tree.length(x)))
                .collect();
            let Ok((x, y)) = nni(tree, e, variant) else {
                continue;
            };
            for &(le, _) in &saved {
                optimize_branch(evaluator, tree, le);
            }
            let ll = evaluator.log_likelihood(tree, e);
            evaluated += 1;
            if ll > current + epsilon {
                current = ll;
                accepted += 1;
            } else {
                nni_swap(tree, e, x, y).expect("NNI swap-back");
                for (le, len) in saved {
                    tree.set_length(le, len).expect("restoring a valid length");
                }
            }
        }
    }

    plf_core::metrics::counter("nni.moves.evaluated").add(evaluated as u64);
    plf_core::metrics::counter("nni.moves.accepted").add(accepted as u64);
    NniRoundResult {
        log_likelihood: current,
        accepted,
        evaluated,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_bio::CompressedAlignment;
    use phylo_models::{DiscreteGamma, Gtr, GtrParams};
    use phylo_tree::build::{default_names, random_tree};
    use phylo_tree::newick;
    use plf_core::{EngineConfig, LikelihoodEngine};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn local_edges_are_five_for_internal() {
        let t = newick::parse("((a:0.1,b:0.1):0.1,c:0.1,(d:0.1,e:0.1):0.1);").unwrap();
        let e = t.internal_edges().next().unwrap();
        assert_eq!(local_edges(&t, e).len(), 5);
    }

    #[test]
    fn nni_round_fixes_a_single_swap() {
        // Simulate on a known 6-taxon tree, start from that tree with
        // one NNI applied: one round must swap it back.
        let mut rng = SmallRng::seed_from_u64(300);
        let names = default_names(6);
        let true_tree = random_tree(&names, 0.15, &mut rng).unwrap();
        let g = Gtr::new(GtrParams::jc69());
        let gamma = DiscreteGamma::new(5.0);
        let aln = phylo_seqgen::simulate_alignment(&true_tree, g.eigen(), &gamma, 4000, &mut rng);
        let ca = CompressedAlignment::from_alignment(&aln);

        let mut tree = true_tree.clone();
        let e = tree.internal_edges().next().unwrap();
        nni(&mut tree, e, NniVariant::First).unwrap();
        assert!(tree.rf_distance(&true_tree) > 0);

        let mut engine = LikelihoodEngine::new(&tree, &ca, EngineConfig::default());
        crate::branch_opt::smooth_branches(&mut engine, &mut tree, 1e-3, 6);
        let r = nni_round(&mut engine, &mut tree, 1e-3);
        assert!(r.accepted >= 1, "{r:?}");
        assert_eq!(tree.rf_distance(&true_tree), 0);
    }
}
