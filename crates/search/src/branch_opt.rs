//! Whole-tree branch-length smoothing.

use crate::newton::optimize_branch;
use crate::Evaluator;
use phylo_tree::Tree;

/// Result of a smoothing pass.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SmoothResult {
    /// Log-likelihood after the final pass.
    pub log_likelihood: f64,
    /// Number of full passes over all edges.
    pub passes: usize,
}

/// Optimizes every branch length by repeated Newton passes over all
/// edges until a full pass improves the log-likelihood by less than
/// `epsilon`, or `max_passes` is reached (RAxML's "smoothTree").
pub fn smooth_branches<E: Evaluator + ?Sized>(
    evaluator: &mut E,
    tree: &mut Tree,
    epsilon: f64,
    max_passes: usize,
) -> SmoothResult {
    let _span = plf_core::span::enter("smooth_branches");
    assert!(epsilon > 0.0 && max_passes > 0);
    let mut current = evaluator.log_likelihood(tree, 0);
    let mut passes = 0;
    for _ in 0..max_passes {
        passes += 1;
        for edge in 0..tree.num_edges() {
            optimize_branch(evaluator, tree, edge);
        }
        let next = evaluator.log_likelihood(tree, 0);
        let gain = next - current;
        current = next;
        if gain.abs() < epsilon {
            break;
        }
    }
    SmoothResult {
        log_likelihood: current,
        passes,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_bio::CompressedAlignment;
    use phylo_models::{DiscreteGamma, Gtr, GtrParams};
    use phylo_tree::build::{default_names, random_tree};
    use plf_core::{EngineConfig, LikelihoodEngine};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn smoothing_beats_single_edge_optimization_and_converges() {
        let mut rng = SmallRng::seed_from_u64(21);
        let names = default_names(7);
        let true_tree = random_tree(&names, 0.2, &mut rng).unwrap();
        let g = Gtr::new(GtrParams::jc69());
        let gamma = DiscreteGamma::new(1.0);
        let aln = phylo_seqgen::simulate_alignment(&true_tree, g.eigen(), &gamma, 2000, &mut rng);
        let ca = CompressedAlignment::from_alignment(&aln);

        // Start from the right topology but uniform branch lengths.
        let mut tree = true_tree.clone();
        for e in 0..tree.num_edges() {
            tree.set_length(e, 0.05).unwrap();
        }
        let mut engine = LikelihoodEngine::new(&tree, &ca, EngineConfig::default());
        let before = engine.log_likelihood(&tree, 0);
        let r = smooth_branches(&mut engine, &mut tree, 1e-4, 16);
        assert!(
            r.log_likelihood > before,
            "{} !> {before}",
            r.log_likelihood
        );
        // A second smoothing changes almost nothing (converged).
        let r2 = smooth_branches(&mut engine, &mut tree, 1e-4, 16);
        assert!((r2.log_likelihood - r.log_likelihood).abs() < 1e-2);
        assert!(r2.passes <= 2);
    }
}
