//! The full maximum-likelihood search driver.
//!
//! Mirrors the RAxML-Light / ExaML "full ML tree search" the paper
//! times in Table III: alternate SPR improvement rounds with branch
//! smoothing and periodic model-parameter re-optimization until no
//! round improves the score by more than the epsilon.

use crate::branch_opt::smooth_branches;
use crate::checkpoint::RetryPolicy;
use crate::model_opt::optimize_model;
use crate::spr::spr_round;
use crate::Evaluator;
use phylo_tree::Tree;

/// Search configuration.
#[derive(Clone, Copy, Debug)]
pub struct SearchConfig {
    /// SPR regraft radius in edge hops (RAxML's rearrangement
    /// setting; 5–10 typical).
    pub spr_radius: usize,
    /// Stop when a full round gains less log-likelihood than this.
    pub epsilon: f64,
    /// Hard cap on improvement rounds.
    pub max_rounds: usize,
    /// Whether to optimize α and the GTR rates (off for fixed-model
    /// benchmark runs).
    pub optimize_model: bool,
    /// Branch-smoothing passes per round.
    pub smoothing_passes: usize,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            spr_radius: 5,
            epsilon: 0.01,
            max_rounds: 20,
            optimize_model: true,
            smoothing_passes: 8,
        }
    }
}

/// Outcome of a completed search.
#[derive(Clone, Debug)]
pub struct SearchResult {
    /// Final log-likelihood.
    pub log_likelihood: f64,
    /// Improvement rounds executed.
    pub rounds: usize,
    /// Total SPR candidates scored.
    pub spr_evaluated: usize,
    /// Total SPR moves accepted.
    pub spr_accepted: usize,
    /// Final tree in Newick form.
    pub newick: String,
}

/// The search driver. Stateless apart from its configuration; operates
/// on a caller-owned tree and evaluator so the same instance can run
/// under any parallel scheme.
#[derive(Clone, Copy, Debug, Default)]
pub struct MlSearch {
    /// Configuration used by [`MlSearch::run`].
    pub config: SearchConfig,
}

impl MlSearch {
    /// Creates a driver with the given configuration.
    pub fn new(config: SearchConfig) -> Self {
        MlSearch { config }
    }

    /// Runs the search to convergence, mutating `tree` in place.
    pub fn run<E: Evaluator + ?Sized>(&self, evaluator: &mut E, tree: &mut Tree) -> SearchResult {
        self.run_impl(evaluator, tree, None, |_| Ok(()))
            .expect("progress hook is infallible")
    }

    /// Runs the search with round-level checkpointing: if `path`
    /// exists, the search resumes from it (restoring tree, model, and
    /// progress counters); after the initial conditioning and after
    /// every improvement round, the state is saved atomically and
    /// durably under the default bounded [`RetryPolicy`]. A write
    /// that still fails after the retries aborts the search with an
    /// error — it is *propagated*, not panicked, so the caller keeps
    /// the choice of giving up, re-pathing, or dropping to an
    /// uncheckpointed run.
    pub fn run_checkpointed<E: Evaluator + ?Sized>(
        &self,
        evaluator: &mut E,
        tree: &mut Tree,
        path: &std::path::Path,
    ) -> Result<SearchResult, String> {
        let resume = if path.exists() {
            Some(crate::checkpoint::Checkpoint::load(path)?)
        } else {
            None
        };
        let policy = RetryPolicy::default();
        self.run_resumable(evaluator, tree, resume.as_ref(), |cp| {
            cp.save_with_retry(path, &policy)
                .map_err(|e| format!("checkpoint write to {} failed: {e}", path.display()))
        })
    }

    /// The general resumable entry point the parallel schemes build
    /// on: applies `resume` (tree, model, progress counters) if
    /// given, then runs with `on_progress` called after the initial
    /// conditioning and after every improvement round. A progress
    /// error (e.g. a checkpoint write that exhausted its retries)
    /// aborts the search and is returned.
    pub fn run_resumable<E: Evaluator + ?Sized>(
        &self,
        evaluator: &mut E,
        tree: &mut Tree,
        resume: Option<&crate::checkpoint::Checkpoint>,
        on_progress: impl FnMut(&crate::checkpoint::Checkpoint) -> Result<(), String>,
    ) -> Result<SearchResult, String> {
        if let Some(cp) = resume {
            // The checkpoint came from disk: validate it here at the
            // boundary so the engine's hot paths can assume the model
            // parameters are sound.
            cp.validate()
                .map_err(|e| format!("invalid checkpoint: {e}"))?;
            *tree = cp.tree().map_err(|e| e.to_string())?;
            evaluator.set_model(cp.params);
            evaluator.set_alpha(cp.alpha);
        }
        self.run_impl(evaluator, tree, resume.cloned(), on_progress)
    }

    fn run_impl<E: Evaluator + ?Sized>(
        &self,
        evaluator: &mut E,
        tree: &mut Tree,
        resume: Option<crate::checkpoint::Checkpoint>,
        mut on_progress: impl FnMut(&crate::checkpoint::Checkpoint) -> Result<(), String>,
    ) -> Result<SearchResult, String> {
        let _search_span = plf_core::span::enter("search");
        let cfg = &self.config;
        let (mut current, start_round, mut spr_evaluated, mut spr_accepted) = match &resume {
            Some(cp) => (
                cp.log_likelihood,
                cp.rounds_done,
                cp.moves_evaluated,
                cp.moves_accepted,
            ),
            None => {
                // Initial conditioning: branch lengths, then model.
                smooth_branches(evaluator, tree, cfg.epsilon, cfg.smoothing_passes);
                if cfg.optimize_model {
                    optimize_model(evaluator, tree, 1e-3);
                    smooth_branches(evaluator, tree, cfg.epsilon, cfg.smoothing_passes);
                }
                let ll = evaluator.log_likelihood(tree, 0);
                on_progress(&self.snapshot(evaluator, tree, 0, ll, 0, 0))?;
                (ll, 0, 0, 0)
            }
        };

        let mut rounds = start_round;
        for _ in start_round..cfg.max_rounds {
            rounds += 1;
            let _round_span = plf_core::span::enter("round");
            plf_core::metrics::counter("search.rounds").inc();
            let r = spr_round(evaluator, tree, cfg.spr_radius, cfg.epsilon);
            spr_evaluated += r.evaluated;
            spr_accepted += r.accepted;
            smooth_branches(evaluator, tree, cfg.epsilon, cfg.smoothing_passes);
            // NNI polish escapes the radius-limited lazy-SPR local
            // optima (RAxML's slow descent phase).
            let n = crate::nni::nni_round(evaluator, tree, cfg.epsilon);
            spr_evaluated += n.evaluated;
            spr_accepted += n.accepted;
            smooth_branches(evaluator, tree, cfg.epsilon, cfg.smoothing_passes);
            if cfg.optimize_model {
                optimize_model(evaluator, tree, 1e-3);
            }
            let next = evaluator.log_likelihood(tree, 0);
            let gain = next - current;
            current = next;
            on_progress(&self.snapshot(
                evaluator,
                tree,
                rounds,
                current,
                spr_evaluated,
                spr_accepted,
            ))?;
            if (r.accepted == 0 && n.accepted == 0) || gain < cfg.epsilon {
                break;
            }
        }

        Ok(SearchResult {
            log_likelihood: current,
            rounds,
            spr_evaluated,
            spr_accepted,
            newick: phylo_tree::newick::to_newick(tree),
        })
    }

    fn snapshot<E: Evaluator + ?Sized>(
        &self,
        evaluator: &E,
        tree: &Tree,
        rounds_done: usize,
        log_likelihood: f64,
        moves_evaluated: usize,
        moves_accepted: usize,
    ) -> crate::checkpoint::Checkpoint {
        crate::checkpoint::Checkpoint {
            newick: phylo_tree::newick::to_newick(tree),
            alpha: evaluator.alpha(),
            params: evaluator.model(),
            rounds_done,
            log_likelihood,
            moves_evaluated,
            moves_accepted,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_bio::CompressedAlignment;
    use phylo_models::{DiscreteGamma, Gtr, GtrParams};
    use phylo_tree::build::{default_names, random_tree};
    use plf_core::{EngineConfig, KernelKind, LikelihoodEngine};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn dataset(seed: u64, taxa: usize, sites: usize) -> (Tree, CompressedAlignment) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let names = default_names(taxa);
        let true_tree = random_tree(&names, 0.12, &mut rng).unwrap();
        let g = Gtr::new(GtrParams {
            rates: [1.2, 2.8, 0.9, 1.1, 3.3, 1.0],
            freqs: [0.3, 0.2, 0.2, 0.3],
        });
        let gamma = DiscreteGamma::new(0.8);
        let aln = phylo_seqgen::simulate_alignment(&true_tree, g.eigen(), &gamma, sites, &mut rng);
        (true_tree, CompressedAlignment::from_alignment(&aln))
    }

    #[test]
    fn full_search_recovers_truth_and_reports_consistently() {
        let (true_tree, ca) = dataset(4242, 7, 4000);
        let names = true_tree.tip_names().to_vec();
        let mut tree = random_tree(&names, 0.1, &mut SmallRng::seed_from_u64(5)).unwrap();
        let mut engine = LikelihoodEngine::new(&tree, &ca, EngineConfig::default());
        let search = MlSearch::new(SearchConfig {
            max_rounds: 8,
            ..Default::default()
        });
        let result = search.run(&mut engine, &mut tree);
        assert!(result.log_likelihood.is_finite());
        assert!(result.rounds >= 1);
        assert_eq!(tree.rf_distance(&true_tree), 0, "topology not recovered");
        // Reported newick round-trips to the same topology.
        let parsed = phylo_tree::newick::parse(&result.newick).unwrap();
        assert_eq!(parsed.rf_distance(&tree), 0);
        // Reported score matches a fresh evaluation.
        let fresh = engine.log_likelihood(&tree, 0);
        assert!((fresh - result.log_likelihood).abs() < 1e-6);
    }

    #[test]
    fn checkpointed_search_resumes_to_identical_result() {
        let (_, ca) = dataset(777, 7, 1500);
        let names = default_names(7);
        let start = random_tree(&names, 0.1, &mut SmallRng::seed_from_u64(4)).unwrap();
        let cfg = EngineConfig::default();
        let full_cfg = SearchConfig {
            max_rounds: 6,
            ..Default::default()
        };

        // Uninterrupted reference run.
        let mut t_ref = start.clone();
        let mut e_ref = LikelihoodEngine::new(&t_ref, &ca, cfg);
        let r_ref = MlSearch::new(full_cfg).run(&mut e_ref, &mut t_ref);

        // Interrupted run: one round, checkpoint, then resume with a
        // completely fresh engine and tree.
        let dir = std::env::temp_dir().join("phylomic-search-cp");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("cp-{}.ckp", std::process::id()));
        let _ = std::fs::remove_file(&path);

        let mut t1 = start.clone();
        let mut e1 = LikelihoodEngine::new(&t1, &ca, cfg);
        MlSearch::new(SearchConfig {
            max_rounds: 1,
            ..full_cfg
        })
        .run_checkpointed(&mut e1, &mut t1, &path)
        .unwrap();

        // Resume twice from the same checkpoint: must be identical
        // (deterministic restart).
        let mut resumed = Vec::new();
        for _ in 0..2 {
            let mut t2 = start.clone(); // overwritten by the checkpoint
            let mut e2 = LikelihoodEngine::new(&t2, &ca, cfg);
            let scratch = dir.join(format!("cp-copy-{}.ckp", resumed.len()));
            std::fs::copy(&path, &scratch).unwrap();
            let r2 = MlSearch::new(full_cfg)
                .run_checkpointed(&mut e2, &mut t2, &scratch)
                .unwrap();
            std::fs::remove_file(&scratch).ok();
            resumed.push((r2, t2));
        }
        std::fs::remove_file(&path).ok();
        assert_eq!(
            resumed[0].0.log_likelihood, resumed[1].0.log_likelihood,
            "resume must be deterministic"
        );
        assert_eq!(resumed[0].1.rf_distance(&resumed[1].1), 0);

        // Trajectory-equivalence: the resumed run ends at an optimum
        // at least as good as the uninterrupted one (up to round-off;
        // the Newick round-trip permutes edge enumeration order, so
        // the path may differ — see checkpoint.rs docs).
        let (r2, t2) = &resumed[0];
        assert!(
            r2.log_likelihood >= r_ref.log_likelihood - 0.1,
            "resumed {} much worse than uninterrupted {}",
            r2.log_likelihood,
            r_ref.log_likelihood
        );
        let _ = t2;
    }

    #[test]
    fn checkpoint_write_failure_is_propagated_not_panicked() {
        let (_, ca) = dataset(31, 5, 400);
        let names = default_names(5);
        let mut tree = random_tree(&names, 0.1, &mut SmallRng::seed_from_u64(2)).unwrap();
        let mut engine = LikelihoodEngine::new(&tree, &ca, EngineConfig::default());
        // The checkpoint "directory" is a plain file, so every write
        // attempt (and every retry) fails with NotADirectory-ish
        // errors. The search must surface that as Err, not unwind.
        let dir = std::env::temp_dir().join(format!("phylomic-notadir-{}", std::process::id()));
        let _ = std::fs::remove_file(&dir);
        std::fs::write(&dir, b"occupied").unwrap();
        let path = dir.join("run.ckp");
        let search = MlSearch::new(SearchConfig {
            max_rounds: 1,
            ..Default::default()
        });
        let err = search
            .run_resumable(&mut engine, &mut tree, None, |cp| {
                cp.save_with_retry(&path, &crate::checkpoint::RetryPolicy::none())
                    .map_err(|e| format!("checkpoint write failed: {e}"))
            })
            .unwrap_err();
        assert!(err.contains("checkpoint write failed"), "got: {err}");
        std::fs::remove_file(&dir).ok();
    }

    #[test]
    fn all_kernel_backends_find_the_same_tree() {
        let (_, ca) = dataset(99, 6, 1200);
        let names = default_names(6);
        let start = random_tree(&names, 0.1, &mut SmallRng::seed_from_u64(8)).unwrap();
        let search = MlSearch::new(SearchConfig {
            max_rounds: 4,
            optimize_model: false,
            ..Default::default()
        });

        let mut reference: Option<(Tree, f64)> = None;
        for kernel in [KernelKind::Scalar, KernelKind::Vector, KernelKind::Simd] {
            let mut tree = start.clone();
            let mut engine = LikelihoodEngine::new(
                &tree,
                &ca,
                EngineConfig {
                    kernel,
                    alpha: 0.8,
                    ..EngineConfig::default()
                },
            );
            let result = search.run(&mut engine, &mut tree);
            match &reference {
                None => reference = Some((tree, result.log_likelihood)),
                Some((t0, ll0)) => {
                    assert_eq!(t0.rf_distance(&tree), 0, "{kernel} found a different tree");
                    assert!(
                        (ll0 - result.log_likelihood).abs() < 1e-6,
                        "{kernel}: {ll0} vs {}",
                        result.log_likelihood
                    );
                }
            }
        }
    }
}
