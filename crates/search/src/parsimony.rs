//! Fitch parsimony and randomized stepwise-addition starting trees.
//!
//! RAxML-family searches do not start from a random topology in
//! production: they build a randomized maximum-parsimony tree first
//! (cheap, bitwise set operations) and hand it to the likelihood
//! optimizer. The 4-bit DNA encoding makes Fitch's algorithm a pair of
//! `AND`/`OR` instructions per node and site.
//!
//! * [`fitch_score`] — the parsimony length of a tree;
//! * [`stepwise_addition_tree`] — grow a tree by inserting taxa (in
//!   random order) at their parsimony-optimal edge, the classic
//!   `dnapars`/RAxML starting-tree procedure.

use phylo_bio::CompressedAlignment;
use phylo_tree::build::StepwiseBuilder;
use phylo_tree::traverse::children;
use phylo_tree::{EdgeId, NodeId, Tree, TreeError};
use rand::Rng;

/// Per-node Fitch state sets for one tree, pattern-major.
struct FitchStates {
    /// `sets[node][pattern]`: the Fitch state set (4-bit mask).
    sets: Vec<Vec<u8>>,
}

/// Parsimony length (weighted number of required state changes) of
/// `tree` on `aln`, by Fitch's algorithm rooted at an arbitrary edge.
pub fn fitch_score(tree: &Tree, aln: &CompressedAlignment) -> u64 {
    let tips = tip_rows(tree, aln);
    let n_pat = aln.num_patterns();
    let root_edge: EdgeId = 0;
    let (ra, rb) = tree.endpoints(root_edge);

    let mut states = FitchStates {
        sets: vec![Vec::new(); tree.num_nodes()],
    };
    let mut score = 0u64;

    // Post-order over both sides of the root edge.
    for d in phylo_tree::traverse::full_schedule(tree, root_edge) {
        let ch = children(tree, d.node, d.toward_edge);
        let left = node_set(&states, &tips, ch[0].1);
        let right = node_set(&states, &tips, ch[1].1);
        let mut set = vec![0u8; n_pat];
        for i in 0..n_pat {
            let inter = left[i] & right[i];
            if inter != 0 {
                set[i] = inter;
            } else {
                set[i] = left[i] | right[i];
                score += aln.weights()[i] as u64;
            }
        }
        states.sets[d.node] = set;
    }

    // Root-edge union step.
    let left = node_set(&states, &tips, ra);
    let right = node_set(&states, &tips, rb);
    for i in 0..n_pat {
        if left[i] & right[i] == 0 {
            score += aln.weights()[i] as u64;
        }
    }
    score
}

fn tip_rows(tree: &Tree, aln: &CompressedAlignment) -> Vec<Vec<u8>> {
    (0..tree.num_taxa())
        .map(|tip| {
            let row = aln
                .taxon_index(tree.tip_name(tip))
                .unwrap_or_else(|| panic!("taxon {:?} missing", tree.tip_name(tip)));
            aln.row(row).iter().map(|c| c.bits()).collect()
        })
        .collect()
}

fn node_set<'a>(states: &'a FitchStates, tips: &'a [Vec<u8>], node: NodeId) -> &'a [u8] {
    if node < tips.len() {
        &tips[node]
    } else {
        &states.sets[node]
    }
}

/// Builds a starting tree by randomized stepwise addition under
/// parsimony: taxa are shuffled, the first three form the initial
/// triplet, and each next taxon is attached at the edge minimizing the
/// Fitch score of the grown tree.
///
/// Branch lengths are set to a uniform `initial_length` (the
/// likelihood optimizer refines them immediately).
pub fn stepwise_addition_tree<R: Rng>(
    aln: &CompressedAlignment,
    initial_length: f64,
    rng: &mut R,
) -> Result<Tree, TreeError> {
    let n = aln.num_taxa();
    if n < 3 {
        return Err(TreeError::TooFewTaxa(n));
    }
    // Shuffle the insertion order (the "randomized" in RAxML's
    // randomized stepwise addition), but keep the alignment's name set.
    let mut order: Vec<usize> = (0..n).collect();
    for i in (1..n).rev() {
        order.swap(i, rng.random_range(0..=i));
    }
    let names: Vec<String> = order.iter().map(|&i| aln.names()[i].clone()).collect();

    let mut builder = StepwiseBuilder::new(&names, initial_length)?;
    for _ in 3..n {
        // Try every current edge; keep the parsimony-best insertion.
        let edges = builder.current_edges();
        let mut best: Option<(u64, EdgeId)> = None;
        for &e in &edges {
            let mut trial = builder.clone();
            trial.attach_next(e, initial_length)?;
            let score = partial_fitch(trial.peek(), aln);
            if best.is_none_or(|(b, _)| score < b) {
                best = Some((score, e));
            }
        }
        let (_, edge) = best.expect("at least one edge exists");
        builder.attach_next(edge, initial_length)?;
    }
    builder.finish()
}

/// Fitch score of a partially built tree (only attached taxa count).
fn partial_fitch(tree: &Tree, aln: &CompressedAlignment) -> u64 {
    // The builder's partial tree violates full-arena invariants, so we
    // evaluate on the attached subgraph: walk from the first inner
    // node over nodes with incident edges.
    let n_pat = aln.num_patterns();
    let tips = tip_rows_partial(tree, aln);
    let root = tree.num_taxa(); // triplet center, always attached
                                // Iterative post-order on the attached subgraph.
    let mut score = 0u64;
    let mut sets: Vec<Option<Vec<u8>>> = vec![None; tree.num_nodes()];
    let mut stack = vec![(root, usize::MAX, false)];
    while let Some((node, parent_edge, expanded)) = stack.pop() {
        if node < tree.num_taxa() {
            continue;
        }
        if !expanded {
            stack.push((node, parent_edge, true));
            for &e in tree.incident(node) {
                if e != parent_edge {
                    stack.push((tree.other_end(e, node), e, false));
                }
            }
        } else {
            let kids: Vec<NodeId> = tree
                .incident(node)
                .iter()
                .filter(|&&e| e != parent_edge)
                .map(|&e| tree.other_end(e, node))
                .collect();
            let mut acc: Option<Vec<u8>> = None;
            for k in kids {
                let kset: &[u8] = if k < tree.num_taxa() {
                    &tips[k]
                } else {
                    sets[k].as_ref().expect("post-order")
                };
                acc = Some(match acc {
                    None => kset.to_vec(),
                    Some(prev) => {
                        let mut out = vec![0u8; n_pat];
                        for i in 0..n_pat {
                            let inter = prev[i] & kset[i];
                            if inter != 0 {
                                out[i] = inter;
                            } else {
                                out[i] = prev[i] | kset[i];
                                score += aln.weights()[i] as u64;
                            }
                        }
                        out
                    }
                });
            }
            sets[node] = acc;
        }
    }
    score
}

fn tip_rows_partial(tree: &Tree, aln: &CompressedAlignment) -> Vec<Vec<u8>> {
    (0..tree.num_taxa())
        .map(|tip| {
            if tree.incident(tip).is_empty() {
                Vec::new() // not yet attached
            } else {
                let row = aln
                    .taxon_index(tree.tip_name(tip))
                    .unwrap_or_else(|| panic!("taxon {:?} missing", tree.tip_name(tip)));
                aln.row(row).iter().map(|c| c.bits()).collect()
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_bio::{Alignment, Sequence};
    use phylo_models::{DiscreteGamma, Gtr, GtrParams};
    use phylo_tree::build::{default_names, random_tree};
    use phylo_tree::newick;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn aln(rows: &[(&str, &str)]) -> CompressedAlignment {
        CompressedAlignment::from_alignment(
            &Alignment::new(
                rows.iter()
                    .map(|(n, s)| Sequence::from_str_named(*n, s).unwrap())
                    .collect(),
            )
            .unwrap(),
        )
    }

    #[test]
    fn identical_sequences_score_zero() {
        let a = aln(&[("a", "ACGT"), ("b", "ACGT"), ("c", "ACGT"), ("d", "ACGT")]);
        let t = newick::parse("((a:1,b:1):1,c:1,d:1);").unwrap();
        assert_eq!(fitch_score(&t, &a), 0);
    }

    #[test]
    fn single_substitution_scores_one() {
        let a = aln(&[("a", "A"), ("b", "A"), ("c", "A"), ("d", "C")]);
        let t = newick::parse("((a:1,b:1):1,c:1,d:1);").unwrap();
        assert_eq!(fitch_score(&t, &a), 1);
    }

    #[test]
    fn weights_multiply_score() {
        // Two identical variable columns = weight-2 pattern.
        let a = aln(&[("a", "AA"), ("b", "AA"), ("c", "AA"), ("d", "CC")]);
        let t = newick::parse("((a:1,b:1):1,c:1,d:1);").unwrap();
        assert_eq!(fitch_score(&t, &a), 2);
    }

    #[test]
    fn score_depends_on_topology() {
        // Pattern AACC: grouping (a,b)(c,d) costs 1; (a,c)(b,d) costs 2.
        let a = aln(&[("a", "A"), ("b", "A"), ("c", "C"), ("d", "C")]);
        let good = newick::parse("((a:1,b:1):1,c:1,d:1);").unwrap();
        let bad = newick::parse("((a:1,c:1):1,b:1,d:1);").unwrap();
        assert_eq!(fitch_score(&good, &a), 1);
        assert_eq!(fitch_score(&bad, &a), 2);
    }

    #[test]
    fn ambiguity_codes_never_increase_score() {
        let strict = aln(&[("a", "A"), ("b", "A"), ("c", "C"), ("d", "C")]);
        let loose = aln(&[("a", "A"), ("b", "N"), ("c", "C"), ("d", "Y")]);
        let t = newick::parse("((a:1,b:1):1,c:1,d:1);").unwrap();
        assert!(fitch_score(&t, &loose) <= fitch_score(&t, &strict));
    }

    #[test]
    fn stepwise_addition_recovers_clean_topology() {
        let mut rng = SmallRng::seed_from_u64(19);
        let names = default_names(8);
        let truth = random_tree(&names, 0.08, &mut rng).unwrap();
        let g = Gtr::new(GtrParams::jc69());
        let gamma = DiscreteGamma::new(20.0);
        let sim = phylo_seqgen::simulate_alignment(&truth, g.eigen(), &gamma, 3000, &mut rng);
        let ca = CompressedAlignment::from_alignment(&sim);
        let mp = stepwise_addition_tree(&ca, 0.05, &mut SmallRng::seed_from_u64(3)).unwrap();
        mp.validate().unwrap();
        // The MP tree's parsimony score must beat a random tree's, and
        // on clean low-divergence data MP recovers the topology or
        // lands within one rearrangement.
        let rand_t = random_tree(&names, 0.05, &mut SmallRng::seed_from_u64(9)).unwrap();
        assert!(fitch_score(&mp, &ca) <= fitch_score(&rand_t, &ca));
        assert!(
            mp.rf_distance(&truth) <= 2,
            "MP tree RF {} from the truth",
            mp.rf_distance(&truth)
        );
    }

    #[test]
    fn stepwise_tree_is_a_better_ml_start_than_random() {
        let mut rng = SmallRng::seed_from_u64(77);
        let names = default_names(10);
        let truth = random_tree(&names, 0.1, &mut rng).unwrap();
        let g = Gtr::new(GtrParams::jc69());
        let gamma = DiscreteGamma::new(1.0);
        let sim = phylo_seqgen::simulate_alignment(&truth, g.eigen(), &gamma, 1200, &mut rng);
        let ca = CompressedAlignment::from_alignment(&sim);
        let mp = stepwise_addition_tree(&ca, 0.05, &mut SmallRng::seed_from_u64(5)).unwrap();
        let rand_t = random_tree(&names, 0.05, &mut SmallRng::seed_from_u64(6)).unwrap();
        use plf_core::{EngineConfig, LikelihoodEngine};
        let mut e1 = LikelihoodEngine::new(&mp, &ca, EngineConfig::default());
        let mut e2 = LikelihoodEngine::new(&rand_t, &ca, EngineConfig::default());
        let ll_mp = crate::Evaluator::log_likelihood(&mut e1, &mp, 0);
        let ll_rand = crate::Evaluator::log_likelihood(&mut e2, &rand_t, 0);
        assert!(
            ll_mp > ll_rand,
            "MP start {ll_mp} vs random start {ll_rand}"
        );
    }

    #[test]
    fn different_seeds_vary_insertion_order() {
        let a = aln(&[
            ("a", "ACGTACGTAC"),
            ("b", "ACGTACGAAC"),
            ("c", "ACCTACGTAC"),
            ("d", "GCGTACGTCC"),
            ("e", "ACGAACGTAG"),
            ("f", "TCGTACCTAC"),
        ]);
        let t1 = stepwise_addition_tree(&a, 0.05, &mut SmallRng::seed_from_u64(1)).unwrap();
        let t2 = stepwise_addition_tree(&a, 0.05, &mut SmallRng::seed_from_u64(2)).unwrap();
        t1.validate().unwrap();
        t2.validate().unwrap();
        // Same taxa either way.
        let mut n1: Vec<_> = t1.tip_names().to_vec();
        let mut n2: Vec<_> = t2.tip_names().to_vec();
        n1.sort();
        n2.sort();
        assert_eq!(n1, n2);
    }
}
