//! Nonparametric bootstrap support values.
//!
//! The standard Felsenstein bootstrap: resample alignment columns with
//! replacement, repeat the (fast) search on each pseudo-replicate, and
//! report for every split of the best tree the fraction of replicates
//! containing it. With pattern-compressed data, resampling is a
//! multinomial redraw of the pattern *weights* — no sequence data
//! moves, which is also how RAxML implements it.

use crate::{MlSearch, SearchConfig};
use phylo_bio::CompressedAlignment;
use phylo_tree::consensus::split_frequencies;
use phylo_tree::Tree;
use plf_core::{EngineConfig, LikelihoodEngine};
use rand::Rng;
use std::collections::BTreeMap;

/// Bootstrap run configuration.
#[derive(Clone, Copy, Debug)]
pub struct BootstrapConfig {
    /// Number of pseudo-replicates.
    pub replicates: usize,
    /// Search effort per replicate (bootstrap searches are
    /// conventionally faster/shallower than the primary search).
    pub search: SearchConfig,
    /// Engine options per replicate.
    pub engine: EngineConfig,
}

impl Default for BootstrapConfig {
    fn default() -> Self {
        BootstrapConfig {
            replicates: 20,
            search: SearchConfig {
                max_rounds: 3,
                optimize_model: false,
                smoothing_passes: 4,
                ..Default::default()
            },
            engine: EngineConfig::default(),
        }
    }
}

/// Result of a bootstrap analysis.
#[derive(Clone, Debug)]
pub struct BootstrapResult {
    /// Split → fraction of replicates containing it.
    pub split_frequencies: BTreeMap<Vec<String>, f64>,
    /// The replicate trees (for consensus building).
    pub trees: Vec<Tree>,
}

impl BootstrapResult {
    /// Support of a split in percent (0 when never seen).
    pub fn support_percent(&self, split: &[String]) -> f64 {
        100.0 * self.split_frequencies.get(split).copied().unwrap_or(0.0)
    }
}

/// Draws one bootstrap weight vector: a multinomial redistribution of
/// the original `total` sites over the patterns, proportional to their
/// original weights.
pub fn bootstrap_weights<R: Rng>(weights: &[u32], rng: &mut R) -> Vec<u32> {
    let total: u64 = weights.iter().map(|&w| w as u64).sum();
    // Inverse-CDF sampling over the cumulative weights.
    let cum: Vec<u64> = weights
        .iter()
        .scan(0u64, |acc, &w| {
            *acc += w as u64;
            Some(*acc)
        })
        .collect();
    let mut out = vec![0u32; weights.len()];
    for _ in 0..total {
        let x = rng.random_range(0..total);
        let idx = cum.partition_point(|&c| c <= x);
        out[idx] += 1;
    }
    out
}

/// Replaces an alignment's pattern weights (same patterns, resampled
/// multiplicities).
fn with_weights(aln: &CompressedAlignment, weights: Vec<u32>) -> CompressedAlignment {
    CompressedAlignment::from_parts(
        aln.names().to_vec(),
        (0..aln.num_taxa()).map(|t| aln.row(t).to_vec()).collect(),
        weights,
    )
    .expect("same shape as the source alignment")
}

/// Runs `config.replicates` bootstrap searches from `start_tree` and
/// collects split frequencies.
pub fn run_bootstrap<R: Rng>(
    aln: &CompressedAlignment,
    start_tree: &Tree,
    config: BootstrapConfig,
    rng: &mut R,
) -> BootstrapResult {
    assert!(config.replicates > 0);
    let search = MlSearch::new(config.search);
    let mut trees = Vec::with_capacity(config.replicates);
    for _ in 0..config.replicates {
        let weights = bootstrap_weights(aln.weights(), rng);
        let replicate = with_weights(aln, weights);
        let mut tree = start_tree.clone();
        let mut engine = LikelihoodEngine::new(&tree, &replicate, config.engine);
        let _ = search.run(&mut engine, &mut tree);
        trees.push(tree);
    }
    BootstrapResult {
        split_frequencies: split_frequencies(&trees),
        trees,
    }
}

/// Annotates a Newick string with bootstrap support values as inner
/// labels (the format RAxML writes): `(A,B)87:0.1` means the AB split
/// appeared in 87 % of replicates.
pub fn annotate_newick(tree: &Tree, result: &BootstrapResult) -> String {
    // Render with supports: reuse the writer but inject labels.
    // Simplest correct approach: rebuild the newick manually here.
    fn write_subtree(
        tree: &Tree,
        node: usize,
        in_edge: usize,
        result: &BootstrapResult,
        out: &mut String,
    ) {
        if tree.is_tip(node) {
            out.push_str(tree.tip_name(node));
        } else {
            out.push('(');
            let mut first = true;
            for (e, child) in tree.neighbors(node) {
                if e == in_edge {
                    continue;
                }
                if !first {
                    out.push(',');
                }
                first = false;
                write_subtree(tree, child, e, result, out);
            }
            out.push(')');
            // Support label for the split this edge induces.
            let (a, b) = tree.endpoints(in_edge);
            if !tree.is_tip(a) && !tree.is_tip(b) {
                let side = {
                    let mut names: Vec<String> = tree
                        .tips_behind(in_edge, node)
                        .into_iter()
                        .map(|t| tree.tip_name(t).to_string())
                        .collect();
                    names.sort();
                    let mut comp: Vec<String> = tree
                        .tip_names()
                        .iter()
                        .filter(|n| !names.contains(n))
                        .cloned()
                        .collect();
                    comp.sort();
                    if names < comp {
                        names
                    } else {
                        comp
                    }
                };
                let support = result.support_percent(&side).round() as u32;
                out.push_str(&support.to_string());
            }
        }
        out.push(':');
        out.push_str(&format!("{}", tree.length(in_edge)));
    }

    let anchor = tree.other_end(tree.incident(0)[0], 0);
    let mut out = String::new();
    out.push('(');
    let mut first = true;
    for (e, child) in tree.neighbors(anchor) {
        if !first {
            out.push(',');
        }
        first = false;
        write_subtree(tree, child, e, result, &mut out);
    }
    out.push_str(");");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use phylo_models::{DiscreteGamma, Gtr, GtrParams};
    use phylo_tree::build::{default_names, random_tree};
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn bootstrap_weights_preserve_total() {
        let mut rng = SmallRng::seed_from_u64(1);
        let weights = vec![3u32, 1, 7, 2, 10];
        for _ in 0..10 {
            let b = bootstrap_weights(&weights, &mut rng);
            assert_eq!(
                b.iter().map(|&w| w as u64).sum::<u64>(),
                weights.iter().map(|&w| w as u64).sum::<u64>()
            );
            assert_eq!(b.len(), weights.len());
        }
    }

    #[test]
    fn bootstrap_weights_follow_multiplicities() {
        // A pattern with 90% of the mass keeps roughly 90% after
        // resampling.
        let mut rng = SmallRng::seed_from_u64(2);
        let weights = vec![900u32, 50, 50];
        let mut acc = [0u64; 3];
        for _ in 0..20 {
            let b = bootstrap_weights(&weights, &mut rng);
            for (i, &w) in b.iter().enumerate() {
                acc[i] += w as u64;
            }
        }
        let total: u64 = acc.iter().sum();
        let frac = acc[0] as f64 / total as f64;
        assert!(
            (0.85..0.95).contains(&frac),
            "heavy pattern fraction {frac}"
        );
    }

    #[test]
    fn strong_signal_gets_high_support() {
        let mut rng = SmallRng::seed_from_u64(31);
        let names = default_names(6);
        let truth = random_tree(&names, 0.12, &mut rng).unwrap();
        let g = Gtr::new(GtrParams::jc69());
        let gamma = DiscreteGamma::new(5.0);
        // 6000 sites over 6 taxa make every internal branch
        // overwhelmingly supported, and 12 replicates give the
        // support percentage enough resolution that the threshold is
        // robust to the RNG stream (8 replicates of 3000 sites sat
        // within noise of it and failed under a different `rand`
        // sampling algorithm).
        let sim = phylo_seqgen::simulate_alignment(&truth, g.eigen(), &gamma, 6000, &mut rng);
        let aln = phylo_bio::CompressedAlignment::from_alignment(&sim);
        let start = random_tree(&names, 0.1, &mut SmallRng::seed_from_u64(8)).unwrap();
        let result = run_bootstrap(
            &aln,
            &start,
            BootstrapConfig {
                replicates: 12,
                ..Default::default()
            },
            &mut SmallRng::seed_from_u64(9),
        );
        assert_eq!(result.trees.len(), 12);
        // Clean data: every true split appears in most replicates.
        for split in truth.splits() {
            let s = result.support_percent(&split);
            assert!(s >= 75.0, "split {split:?} support {s}%");
        }
    }

    #[test]
    fn annotated_newick_parses_and_matches_topology() {
        let mut rng = SmallRng::seed_from_u64(41);
        let names = default_names(6);
        let truth = random_tree(&names, 0.12, &mut rng).unwrap();
        let g = Gtr::new(GtrParams::jc69());
        let gamma = DiscreteGamma::new(5.0);
        let sim = phylo_seqgen::simulate_alignment(&truth, g.eigen(), &gamma, 1000, &mut rng);
        let aln = phylo_bio::CompressedAlignment::from_alignment(&sim);
        let result = run_bootstrap(
            &aln,
            &truth,
            BootstrapConfig {
                replicates: 3,
                ..Default::default()
            },
            &mut SmallRng::seed_from_u64(2),
        );
        let annotated = annotate_newick(&truth, &result);
        // Inner labels must not break parsing, and the topology
        // round-trips.
        let parsed = phylo_tree::newick::parse(&annotated).unwrap();
        assert_eq!(parsed.rf_distance(&truth), 0);
    }
}
